"""Capture-file size and compression model (paper §VII-B).

The prototype streams measurements into CSV files — a 3 hour run
produced ~600 MB, which zip compression on the phone reduced to
~240 MB before upload.  :class:`CsvRecordingModel` reproduces the CSV
encoding (one row per sample, one column per carrier, fixed decimal
precision) so byte counts can be *measured* on synthetic traces and
extrapolated, and :func:`compressed_size_bytes` applies real DEFLATE
(``zlib``) to measure the compression ratio instead of assuming one.
"""

import io
import zlib
from dataclasses import dataclass

import numpy as np

from repro._util.validation import check_positive


@dataclass(frozen=True)
class CsvRecordingModel:
    """CSV encoder matching the prototype's capture format.

    Each row is ``timestamp,ch0,ch1,...`` with fixed precision, newline
    terminated.  ``decimals`` controls the recorded precision; 6 decimal
    digits comfortably exceeds the lock-in's effective resolution.
    """

    decimals: int = 6
    timestamp_decimals: int = 4

    def __post_init__(self) -> None:
        if self.decimals < 1 or self.timestamp_decimals < 1:
            raise ValueError("decimal counts must be >= 1")

    def encode(self, trace: np.ndarray, sampling_rate_hz: float) -> bytes:
        """Encode a ``(n_channels, n_samples)`` trace to CSV bytes."""
        trace = np.asarray(trace, dtype=float)
        if trace.ndim != 2:
            raise ValueError(f"trace must be 2-D, got shape {trace.shape}")
        check_positive("sampling_rate_hz", sampling_rate_hz)
        n_channels, n_samples = trace.shape
        buffer = io.StringIO()
        value_format = f"%.{self.decimals}f"
        time_format = f"%.{self.timestamp_decimals}f"
        for index in range(n_samples):
            row = [time_format % (index / sampling_rate_hz)]
            row.extend(value_format % trace[channel, index] for channel in range(n_channels))
            buffer.write(",".join(row))
            buffer.write("\n")
        return buffer.getvalue().encode("ascii")

    def bytes_per_sample(self, n_channels: int) -> float:
        """Analytic estimate of bytes per sample row.

        timestamp (~2 + timestamp_decimals + separators) plus per
        channel (sign-less '0.' + decimals + comma), plus the newline.
        """
        if n_channels < 1:
            raise ValueError("n_channels must be >= 1")
        timestamp_bytes = 6 + self.timestamp_decimals
        channel_bytes = 3 + self.decimals
        return timestamp_bytes + n_channels * channel_bytes + 1

    def estimate_capture_bytes(
        self, duration_s: float, sampling_rate_hz: float, n_channels: int
    ) -> float:
        """Estimated raw CSV size of a capture of ``duration_s``."""
        check_positive("duration_s", duration_s)
        check_positive("sampling_rate_hz", sampling_rate_hz)
        n_samples = duration_s * sampling_rate_hz
        return n_samples * self.bytes_per_sample(n_channels)


def compressed_size_bytes(payload: bytes, level: int = 6) -> int:
    """DEFLATE-compressed size of ``payload`` (the phone's zip step)."""
    if not 0 <= level <= 9:
        raise ValueError(f"level must be in 0..9, got {level}")
    return len(zlib.compress(payload, level))


def compression_ratio(payload: bytes, level: int = 6) -> float:
    """Compressed / raw size ratio; the paper reports ~0.4 on captures."""
    if not payload:
        raise ValueError("payload must be non-empty")
    return compressed_size_bytes(payload, level) / len(payload)
