"""Capture-file size and compression model (paper §VII-B).

The prototype streams measurements into CSV files — a 3 hour run
produced ~600 MB, which zip compression on the phone reduced to
~240 MB before upload.  :class:`CsvRecordingModel` reproduces the CSV
encoding (one row per sample, one column per carrier, fixed decimal
precision) so byte counts can be *measured* on synthetic traces and
extrapolated, and :func:`compressed_size_bytes` applies real DEFLATE
(``zlib``) to measure the compression ratio instead of assuming one.
"""

import io
import math
import zlib
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro._util.errors import ValidationError
from repro._util.validation import check_positive


@dataclass(frozen=True)
class CsvRecordingModel:
    """CSV encoder matching the prototype's capture format.

    Each row is ``timestamp,ch0,ch1,...`` with fixed precision, newline
    terminated.  ``decimals`` controls the recorded precision; 6 decimal
    digits comfortably exceeds the lock-in's effective resolution.
    """

    decimals: int = 6
    timestamp_decimals: int = 4

    def __post_init__(self) -> None:
        if self.decimals < 1 or self.timestamp_decimals < 1:
            raise ValueError("decimal counts must be >= 1")

    def encode(self, trace: np.ndarray, sampling_rate_hz: float) -> bytes:
        """Encode a ``(n_channels, n_samples)`` trace to CSV bytes."""
        trace = np.asarray(trace, dtype=float)
        if trace.ndim != 2:
            raise ValueError(f"trace must be 2-D, got shape {trace.shape}")
        check_positive("sampling_rate_hz", sampling_rate_hz)
        n_channels, n_samples = trace.shape
        buffer = io.StringIO()
        value_format = f"%.{self.decimals}f"
        time_format = f"%.{self.timestamp_decimals}f"
        for index in range(n_samples):
            row = [time_format % (index / sampling_rate_hz)]
            row.extend(value_format % trace[channel, index] for channel in range(n_channels))
            buffer.write(",".join(row))
            buffer.write("\n")
        return buffer.getvalue().encode("ascii")

    def decode(
        self, payload: bytes, max_bytes: int = 1 << 27
    ) -> Tuple[np.ndarray, float]:
        """Inverse of :meth:`encode`: CSV bytes back to a trace.

        Returns ``(trace, sampling_rate_hz)`` where the trace has shape
        ``(n_channels, n_samples)`` and the rate is inferred from the
        first timestamp step (``inf`` for a single-row capture).

        This parser faces attacker-supplied uploads, so its only
        failure mode is :class:`ValidationError` — non-ASCII bytes,
        ragged rows, non-numeric or non-finite cells, non-increasing
        timestamps, and payloads over ``max_bytes`` are all refused.
        """
        try:
            payload = bytes(payload)
        except (TypeError, ValueError) as error:
            raise ValidationError(f"payload is not bytes-like: {error}") from error
        if len(payload) > max_bytes:
            raise ValidationError(
                f"payload has {len(payload)} bytes; cap is {max_bytes}"
            )
        try:
            text = payload.decode("ascii")
        except UnicodeDecodeError as error:
            raise ValidationError(f"payload is not ASCII CSV: {error}") from error
        timestamps = []
        rows = []
        n_columns = None
        for line_number, line in enumerate(text.split("\n"), start=1):
            if not line:
                continue
            cells = line.split(",")
            if n_columns is None:
                n_columns = len(cells)
                if n_columns < 2:
                    raise ValidationError("rows need a timestamp plus >= 1 channel")
            elif len(cells) != n_columns:
                raise ValidationError(
                    f"row {line_number} has {len(cells)} columns; expected {n_columns}"
                )
            try:
                values = [float(cell) for cell in cells]
            except ValueError as error:
                raise ValidationError(
                    f"row {line_number} has a non-numeric cell: {error}"
                ) from error
            if not all(math.isfinite(v) for v in values):
                raise ValidationError(f"row {line_number} has non-finite values")
            if timestamps and values[0] <= timestamps[-1]:
                raise ValidationError(
                    f"row {line_number} timestamp {values[0]} does not increase"
                )
            timestamps.append(values[0])
            rows.append(values[1:])
        if not rows:
            raise ValidationError("payload contains no sample rows")
        trace = np.asarray(rows, dtype=float).T
        if len(timestamps) > 1:
            step = timestamps[1] - timestamps[0]
            sampling_rate_hz = 1.0 / step if step > 0 else math.inf
        else:
            sampling_rate_hz = math.inf
        return trace, sampling_rate_hz

    def bytes_per_sample(self, n_channels: int) -> float:
        """Analytic estimate of bytes per sample row.

        timestamp (~2 + timestamp_decimals + separators) plus per
        channel (sign-less '0.' + decimals + comma), plus the newline.
        """
        if n_channels < 1:
            raise ValueError("n_channels must be >= 1")
        timestamp_bytes = 6 + self.timestamp_decimals
        channel_bytes = 3 + self.decimals
        return timestamp_bytes + n_channels * channel_bytes + 1

    def estimate_capture_bytes(
        self, duration_s: float, sampling_rate_hz: float, n_channels: int
    ) -> float:
        """Estimated raw CSV size of a capture of ``duration_s``."""
        check_positive("duration_s", duration_s)
        check_positive("sampling_rate_hz", sampling_rate_hz)
        n_samples = duration_s * sampling_rate_hz
        return n_samples * self.bytes_per_sample(n_channels)


def compressed_size_bytes(payload: bytes, level: int = 6) -> int:
    """DEFLATE-compressed size of ``payload`` (the phone's zip step)."""
    if not 0 <= level <= 9:
        raise ValueError(f"level must be in 0..9, got {level}")
    return len(zlib.compress(payload, level))


def compression_ratio(payload: bytes, level: int = 6) -> float:
    """Compressed / raw size ratio; the paper reports ~0.4 on captures."""
    if not payload:
        raise ValueError("payload must be non-empty")
    return compressed_size_bytes(payload, level) / len(payload)
