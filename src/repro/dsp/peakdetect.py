"""Peak detection on detrended traces (paper §VI-C).

"Peak detection is achieved by setting a minimum threshold on the data
section of one minus the detrended subsequence."  We detrend each
channel, form ``1 - detrended`` (dips become positive peaks), and apply
:func:`scipy.signal.find_peaks` with a depth threshold and a minimum
separation.  Each detected peak records its timestamp, depth, FWHM and
its per-carrier amplitude vector, which is everything the decryptor and
the authentication classifier consume.

:meth:`PeakDetector.detect` and :meth:`PeakDetector.detect_batch` run
on the fused columnar pass in :mod:`repro.dsp.fused`; the staged
formulation is retained here (:meth:`PeakDetector._report_from_dips`)
as the differential-test oracle (``tests/_dsp_oracle.py``) and for the
stage profiler, which needs per-stage boundaries to time.
"""

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

import numpy as np
from scipy import signal as sp_signal

from repro._util.validation import check_positive
from repro.dsp.detrend import DetrendConfig


@dataclass(frozen=True)
class DetectedPeak:
    """One peak found on the encrypted (or plaintext) trace.

    ``amplitudes`` is the fractional dip depth per acquisition channel
    measured at this peak's sample index; ``depth`` is the depth on the
    detection channel.
    """

    time_s: float
    depth: float
    width_s: float
    amplitudes: np.ndarray
    sample_index: int

    def __post_init__(self) -> None:
        amplitudes = np.atleast_1d(np.asarray(self.amplitudes, dtype=float))
        object.__setattr__(self, "amplitudes", amplitudes)


@dataclass(frozen=True)
class PeakReport:
    """Everything the analysis side returns to the controller.

    The report deliberately contains *only* ciphertext-domain facts:
    encoded peak count, timestamps, depths, widths and channel
    amplitudes (paper §IV-A: "returns encoded peak count, with
    associated time-stamps, amplitudes and widths").
    """

    peaks: Tuple[DetectedPeak, ...]
    duration_s: float
    sampling_rate_hz: float
    detection_channel: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "peaks", tuple(self.peaks))

    @property
    def count(self) -> int:
        """Encoded (ciphertext) peak count."""
        return len(self.peaks)

    def peaks_between(self, start_s: float, end_s: float) -> List[DetectedPeak]:
        """Peaks with ``start_s <= time < end_s`` (epoch slicing)."""
        return [p for p in self.peaks if start_s <= p.time_s < end_s]

    def times(self) -> np.ndarray:
        """All peak timestamps as an array."""
        return np.asarray([p.time_s for p in self.peaks])


@dataclass(frozen=True)
class PeakDetector:
    """Detrend-threshold-measure peak extraction.

    Parameters
    ----------
    depth_threshold:
        Minimum fractional dip depth to call a peak.  The quietest
        natural peak (a 3.58 µm bead at the lowest cipher gain, 0.5x)
        dips ~0.1-0.2 %, so the default sits well below that but above
        the noise floor.
    min_separation_s:
        Minimum spacing between reported peaks.
    detection_channel:
        Channel used for finding peaks (amplitudes are then sampled on
        every channel).  The lowest carrier has the strongest response
        for all particle types, so it is the default.
    """

    depth_threshold: float = 8e-4
    min_separation_s: float = 6e-3
    detection_channel: int = 0
    detrend: DetrendConfig = DetrendConfig()

    def __post_init__(self) -> None:
        check_positive("depth_threshold", self.depth_threshold)
        check_positive("min_separation_s", self.min_separation_s)
        if self.detection_channel < 0:
            raise ValueError("detection_channel must be >= 0")

    # ------------------------------------------------------------------
    def detect(self, trace: np.ndarray, sampling_rate_hz: float) -> PeakReport:
        """Find peaks in a ``(n_channels, n_samples)`` voltage trace.

        Runs the fused columnar pass (:func:`repro.dsp.fused.fused_detect`),
        which is bit-identical to the staged detrend → ``1 - x`` →
        :meth:`_report_from_dips` formulation it replaced.
        """
        trace = self._validate(trace, sampling_rate_hz)
        return _fused.fused_detect(self, trace, sampling_rate_hz)

    def detect_batch(
        self,
        traces: Sequence[np.ndarray],
        sampling_rates_hz: Union[float, Sequence[float]],
    ) -> List[PeakReport]:
        """Find peaks in many traces with one fused columnar pass.

        Traces sharing a shape and sampling rate are stacked into one
        columnar :class:`~repro.dsp.fused.TraceBatch` and carried
        through detrend → ``1 - x`` → threshold → measurement in a
        single pass (:func:`repro.dsp.fused.fused_detect_many`),
        amortising the window bookkeeping over the whole batch.
        Reports come back in input order and are bit-identical to
        calling :meth:`detect` on each trace alone — the serving
        stack's batcher depends on that equivalence.
        """
        if np.isscalar(sampling_rates_hz):
            rates = [float(sampling_rates_hz)] * len(traces)
        else:
            rates = [float(rate) for rate in sampling_rates_hz]
        if len(rates) != len(traces):
            raise ValueError(
                f"{len(traces)} traces but {len(rates)} sampling rates"
            )
        validated = [
            self._validate(trace, rate) for trace, rate in zip(traces, rates)
        ]
        return _fused.fused_detect_many(self, validated, rates)

    # ------------------------------------------------------------------
    def _validate(self, trace: np.ndarray, sampling_rate_hz: float) -> np.ndarray:
        trace = np.asarray(trace, dtype=float)
        if trace.ndim != 2:
            raise ValueError(f"trace must be 2-D (channels, samples), got {trace.shape}")
        check_positive("sampling_rate_hz", sampling_rate_hz)
        if self.detection_channel >= trace.shape[0]:
            raise ValueError(
                f"detection_channel {self.detection_channel} out of range for "
                f"{trace.shape[0]}-channel trace"
            )
        return trace

    def _report_from_dips(self, dips: np.ndarray, sampling_rate_hz: float) -> PeakReport:
        """Threshold one trace's positive-dip matrix into a report."""
        n_samples = dips.shape[1]
        duration_s = n_samples / sampling_rate_hz
        detection = dips[self.detection_channel]
        distance = max(int(round(self.min_separation_s * sampling_rate_hz)), 1)
        indices, properties = sp_signal.find_peaks(
            detection, height=self.depth_threshold, distance=distance
        )
        if indices.size == 0:
            return PeakReport((), duration_s, sampling_rate_hz, self.detection_channel)

        widths_samples = sp_signal.peak_widths(detection, indices, rel_height=0.5)[0]
        peaks = []
        half_window = max(distance // 2, 1)
        for index, height, width in zip(indices, properties["peak_heights"], widths_samples):
            lo = max(index - half_window, 0)
            hi = min(index + half_window + 1, n_samples)
            amplitudes = dips[:, lo:hi].max(axis=1)
            peaks.append(
                DetectedPeak(
                    time_s=index / sampling_rate_hz,
                    depth=float(height),
                    width_s=float(width / sampling_rate_hz),
                    amplitudes=amplitudes,
                    sample_index=int(index),
                )
            )
        return PeakReport(tuple(peaks), duration_s, sampling_rate_hz, self.detection_channel)


# Imported at the bottom: repro.dsp.fused needs DetectedPeak/PeakReport
# from this module, so the cycle is broken by binding the fused module
# only after those classes exist.
import repro.dsp.fused as _fused  # noqa: E402
