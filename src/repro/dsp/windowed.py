"""Chunked windowed peak detection with exact carry-over state.

The streaming layer (:mod:`repro.stream`) feeds a trace to the cloud in
chunks.  The contract that makes streaming *safe* — resumable after a
relay disconnect, rate-adaptable under congestion — is that the chunk
split is **invisible to the outcome**: concatenating the streamed
results must be bit-identical to running the one-shot
:class:`~repro.dsp.peakdetect.PeakDetector` on the full trace.  This
module provides that, in three layers:

* :class:`StreamingDetrender` — the piecewise polynomial detrend of
  :func:`~repro.dsp.detrend.piecewise_polynomial_detrend_rows`,
  restructured as a feed/finish pipeline.  A window of the baseline
  grid is fitted the moment its samples are all present, using the same
  float operations in the same order as the one-shot function, so the
  finalized columns it emits are bit-identical to the corresponding
  columns of the one-shot output.
* :class:`ExactPeakStream` — an incremental reimplementation of the
  exact subset of :func:`scipy.signal.find_peaks` /
  :func:`scipy.signal.peak_widths` semantics that
  :meth:`PeakDetector._report_from_dips` relies on (local maxima with
  plateau midpoints, height filter, distance selection, prominence
  bases with ``wlen=-1``, half-prominence width interpolation).  It
  consumes finalized dip columns and emits peaks as soon as their
  outcome is provably fixed, keeping only a bounded carry-over: a
  retained tail of recent columns, a monotone-stack summary of the
  trimmed history, and per-peak descending-minima records.
* :class:`WindowedPeakDetector` — the two glued together behind the
  chunk-facing ``feed``/``finish`` API the session layer uses.

Carry-over invariants (why trimming is safe)
--------------------------------------------

Let ``thr`` be the depth threshold and ``gmin`` the running minimum of
all finalized detection samples.  The retained tail may be cut at a
column ``c`` only when ``x[c] <= 0.5 * (thr + gmin)``.  Any future peak
``p`` passing the height filter has ``x[p] >= thr``, so its
half-prominence level is at least ``0.5 * (x[p] + lmin) >= 0.5 * (thr +
gmin) >= x[c]`` whenever its left minimum ``lmin`` comes from the
trimmed region — meaning the left width crossing always lies inside the
retained tail.  The prominence *value* of the trimmed region is
preserved exactly by the monotone stack (each entry is a value and the
minimum of the segment it folded), which answers "minimum left of the
tail until the first sample exceeding ``h``" without the samples.

Known measure-zero caveat: scipy's distance selection breaks *exact*
peak-height ties with an unstable global argsort; this implementation
sorts per connected component.  Two bit-equal heights inside one
component closer than ``distance`` may therefore resolve differently —
impossible to hit with continuous-valued noise, and irrelevant for any
distance-1 configuration.
"""

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro._util.validation import check_positive
from repro.dsp.detrend import (
    DetrendConfig,
    fit_baseline_rows,
    piecewise_polynomial_detrend_rows,
)
from repro.dsp.peakdetect import DetectedPeak, PeakDetector, PeakReport

__all__ = [
    "StreamingDetrender",
    "ExactPeakStream",
    "WindowedPeakDetector",
]


class StreamingDetrender:
    """Feed/finish form of the piecewise polynomial detrend.

    Emits columns of ``accumulated / weights`` exactly as the one-shot
    :func:`piecewise_polynomial_detrend_rows` would compute them: a
    baseline window is processed the moment its raw samples are all
    buffered, and a column is finalized once no future window can touch
    it (every window at or past the next grid start begins after it).
    Streams shorter than one nominal window fall back to the one-shot
    function over the whole buffer, because the one-shot path clamps
    the window (and therefore the grid step) to the trace length.
    """

    def __init__(
        self,
        n_channels: int,
        sampling_rate_hz: float,
        config: DetrendConfig = DetrendConfig(),
    ) -> None:
        if n_channels < 1:
            raise ValueError(f"n_channels must be >= 1, got {n_channels}")
        check_positive("sampling_rate_hz", sampling_rate_hz)
        self.n_channels = int(n_channels)
        self.sampling_rate_hz = float(sampling_rate_hz)
        self.config = config
        self._window = max(
            int(round(config.window_s * sampling_rate_hz)), config.order + 2
        )
        self._step = max(
            int(round(self._window * (1.0 - config.overlap_fraction))), 1
        )
        self._buffer = np.empty((self.n_channels, 0), dtype=float)
        self._acc = np.empty((self.n_channels, 0), dtype=float)
        self._weights = np.empty(0, dtype=float)
        self._base = 0  # absolute index of the first buffered column
        self._seen = 0  # total raw samples fed
        self._next_start = 0  # next unprocessed baseline-window start
        self._last_stop = 0  # stop of the last processed window
        self._n_windows = 0
        self._finished = False

    @property
    def buffered(self) -> int:
        """Columns currently held in the carry-over buffer."""
        return self._seen - self._base

    def feed(self, block: np.ndarray) -> np.ndarray:
        """Buffer raw columns; return newly finalized detrended columns."""
        if self._finished:
            raise RuntimeError("StreamingDetrender already finished")
        block = np.asarray(block, dtype=float)
        if block.ndim != 2 or block.shape[0] != self.n_channels:
            raise ValueError(
                f"block must be ({self.n_channels}, k), got {block.shape}"
            )
        if block.shape[1] == 0:
            return np.empty((self.n_channels, 0), dtype=float)
        self._buffer = np.concatenate([self._buffer, block], axis=1)
        self._acc = np.concatenate(
            [self._acc, np.zeros_like(block)], axis=1
        )
        self._weights = np.concatenate(
            [self._weights, np.zeros(block.shape[1])]
        )
        self._seen += block.shape[1]
        emitted: List[np.ndarray] = []
        while self._next_start + self._window <= self._seen:
            emitted.append(self._process_window(self._next_start))
        if not emitted:
            return np.empty((self.n_channels, 0), dtype=float)
        return np.concatenate(emitted, axis=1)

    def _accumulate(self, start: int, stop: int) -> None:
        """Fit and blend one baseline window, as the one-shot loop does."""
        lo = start - self._base
        hi = stop - self._base
        segments = self._buffer[:, lo:hi]
        baselines = fit_baseline_rows(segments, self.config.order)
        safe = np.where(np.abs(baselines) > 1e-12, baselines, 1e-12)
        detrended = segments / safe
        length = stop - start
        taper = np.minimum(
            np.arange(1, length + 1), np.arange(length, 0, -1)
        ).astype(float)
        self._acc[:, lo:hi] += detrended * taper
        self._weights[lo:hi] += taper
        self._last_stop = stop
        self._n_windows += 1

    def _process_window(self, start: int) -> np.ndarray:
        self._accumulate(start, start + self._window)
        # Columns before the next grid start are final: every future
        # window begins at or past it.
        cut = start + self._step
        n_cols = cut - self._base
        out = self._acc[:, :n_cols] / self._weights[:n_cols]
        self._acc = self._acc[:, n_cols:]
        self._weights = self._weights[n_cols:]
        self._buffer = self._buffer[:, n_cols:]
        self._base = cut
        self._next_start = cut
        return out

    def finish(self) -> np.ndarray:
        """Process the clamped tail windows; return remaining columns."""
        if self._finished:
            raise RuntimeError("StreamingDetrender already finished")
        self._finished = True
        n = self._seen
        if n == 0:
            return np.empty((self.n_channels, 0), dtype=float)
        if self._n_windows == 0:
            # Shorter than one nominal window: the one-shot path would
            # have clamped window (and step) to the trace length, so
            # reproduce it wholesale.
            return piecewise_polynomial_detrend_rows(
                self._buffer, self.sampling_rate_hz, self.config
            )
        while self._last_stop < n:
            start = self._next_start
            stop = min(start + self._window, n)
            self._accumulate(start, stop)
            self._next_start = start + self._step
        return self._acc / self._weights


class _MonotoneStack:
    """Summary of trimmed history for left prominence walks.

    Entries are ``(value, segment_min)`` in chronological order, with
    strictly decreasing values front to back... inverted: pushing ``v``
    folds every entry whose value is ``<= v`` (a left walk that passes
    ``v`` would have passed them too).  ``query(h)`` returns the
    minimum over the suffix of history a walk bounded by barrier value
    ``> h`` can reach, and whether a barrier exists at all.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: List[Tuple[float, float]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, value: float) -> None:
        seg_min = value
        entries = self._entries
        while entries and entries[-1][0] <= value:
            seg_min = min(seg_min, entries.pop()[1])
        entries.append((value, seg_min))

    def query(self, h: float) -> Tuple[float, bool]:
        """Min over reachable trimmed history; True if a barrier stops it."""
        best = np.inf
        for value, seg_min in reversed(self._entries):
            if value <= h:
                best = min(best, seg_min)
            else:
                return best, True
        return best, False


class ExactPeakStream:
    """Incremental exact peak extraction over finalized dip columns.

    Mirrors, operation for operation, what
    :meth:`PeakDetector._report_from_dips` computes with scipy on the
    full dips matrix.  ``feed`` accepts ``(n_channels, k)`` blocks of
    finalized dips; ``finish`` returns the :class:`PeakReport`.
    """

    def __init__(
        self,
        n_channels: int,
        sampling_rate_hz: float,
        depth_threshold: float,
        min_separation_s: float,
        detection_channel: int,
        trim_margin: int = 4096,
    ) -> None:
        self.n_channels = int(n_channels)
        self.sampling_rate_hz = float(sampling_rate_hz)
        self.threshold = float(depth_threshold)
        self.distance = max(int(round(min_separation_s * sampling_rate_hz)), 1)
        self.half_window = max(self.distance // 2, 1)
        self.channel = int(detection_channel)
        if not 0 <= self.channel < self.n_channels:
            raise ValueError(
                f"detection_channel {detection_channel} out of range for "
                f"{n_channels} channels"
            )
        self._trim_threshold = max(4 * self.distance, int(trim_margin))
        self._tail = np.empty((self.n_channels, 0), dtype=float)
        self._tail_base = 0  # absolute index of tail column 0
        self._n = 0  # finalized samples so far
        self._gmin = np.inf  # min over all finalized detection samples
        self._stack = _MonotoneStack()
        self._scan_i = 1  # next local-maxima scan position
        self._pending: List[dict] = []  # open distance component
        self._open: List[dict] = []  # survivors awaiting right finalization
        self._amp_jobs: List[dict] = []  # peaks awaiting amplitude windows
        self._complete: List[dict] = []  # fully measured peaks
        self._finished = False

    # -- introspection --------------------------------------------------
    @property
    def n_fed(self) -> int:
        return self._n

    @property
    def peaks_emitted(self) -> int:
        return len(self._complete)

    def carry_state(self) -> Dict[str, int]:
        """Size of every piece of carry-over (bounded-memory evidence)."""
        return {
            "retained_columns": self._tail.shape[1],
            "stack_entries": len(self._stack),
            "pending_candidates": len(self._pending),
            "open_peaks": len(self._open),
            "amplitude_jobs": len(self._amp_jobs),
        }

    # -- feeding --------------------------------------------------------
    def feed(self, dips_block: np.ndarray) -> int:
        """Consume finalized dip columns; return newly completed peaks."""
        if self._finished:
            raise RuntimeError("ExactPeakStream already finished")
        block = np.asarray(dips_block, dtype=float)
        if block.ndim != 2 or block.shape[0] != self.n_channels:
            raise ValueError(
                f"dips block must be ({self.n_channels}, k), got {block.shape}"
            )
        if block.shape[1] == 0:
            return 0
        before = len(self._complete)
        old_n = self._n
        self._tail = np.concatenate([self._tail, block], axis=1)
        self._n += block.shape[1]
        detection = block[self.channel]
        self._gmin = min(self._gmin, float(detection.min()))
        self._feed_open_peaks(old_n)
        self._scan()
        self._maybe_close_component(at_finish=False)
        self._resolve_amplitudes(at_finish=False)
        self._trim()
        return len(self._complete) - before

    def finish(self) -> PeakReport:
        """Finalize every open structure and assemble the report."""
        if self._finished:
            raise RuntimeError("ExactPeakStream already finished")
        self._finished = True
        n = self._n
        duration_s = n / self.sampling_rate_hz
        if n == 0:
            return PeakReport((), 0.0, self.sampling_rate_hz, self.channel)
        self._scan()
        self._maybe_close_component(at_finish=True)
        self._resolve_amplitudes(at_finish=True)
        # Peaks whose right walk hit the end of the trace: the walk
        # stops at the array edge, so the right minimum seen so far is
        # the right base minimum.
        for peak in self._open:
            prom = peak["h"] - max(peak["lmin"], peak["rmin"])
            self._finalize_peak(peak, prom)
        self._open = []
        done = sorted(
            (p for p in self._complete), key=lambda peak: peak["p"]
        )
        peaks = tuple(
            DetectedPeak(
                time_s=peak["p"] / self.sampling_rate_hz,
                depth=float(peak["h"]),
                width_s=float(peak["width"] / self.sampling_rate_hz),
                amplitudes=peak["amps"],
                sample_index=int(peak["p"]),
            )
            for peak in done
        )
        return PeakReport(peaks, duration_s, self.sampling_rate_hz, self.channel)

    # -- local maxima scan ----------------------------------------------
    def _scan(self) -> None:
        L, base = self._n, self._tail_base
        if self._scan_i >= L - 1:
            return
        x = self._tail[self.channel]
        region = x[self._scan_i - 1 - base : L - base]
        if region.shape[0] >= 3 and not np.any(region[1:] == region[:-1]):
            # Tie-free fast path: strict interior maxima, and the
            # plateau machinery can neither defer nor skip anything.
            interior = region[1:-1]
            mask = (region[:-2] < interior) & (interior > region[2:])
            for rel in np.nonzero(mask)[0]:
                self._candidate(self._scan_i + rel)
            self._scan_i = L - 1
            return
        # Scalar path, mirroring scipy's _local_maxima_1d: a plateau
        # whose right edge is not yet visible defers the scan.
        i = self._scan_i
        while i < L - 1:
            xi = x[i - base]
            if x[i - 1 - base] < xi:
                ahead = i + 1
                while ahead < L and x[ahead - base] == xi:
                    ahead += 1
                if ahead == L:
                    break  # plateau reaches the available end: defer
                if x[ahead - base] < xi:
                    self._candidate((i + ahead - 1) // 2)
                    i = ahead
            i += 1
        self._scan_i = i

    # -- candidates and distance selection ------------------------------
    def _candidate(self, p: int) -> None:
        x = self._tail[self.channel]
        h = float(x[p - self._tail_base])
        if not self.threshold <= h:
            return
        if self._pending and p - self._pending[-1]["p"] >= self.distance:
            self._close_component()
        records, lmin = self._left_package(p, h)
        lo = max(p - self.half_window, 0)
        peak = {
            "p": p,
            "h": h,
            "lmin": lmin,
            "lrecords": records,
            "lo": lo,
            "amps": None,
            "width": None,
            "dead": False,
        }
        self._pending.append(peak)
        self._amp_jobs.append(peak)

    def _left_package(
        self, p: int, h: float
    ) -> Tuple[List[Tuple[int, float, float]], float]:
        """Walk left from ``p`` as scipy's prominence walk would.

        Returns the strictly-descending running-minima records
        ``(pos, value, next_value)`` found inside the retained tail and
        the left minimum (folding in the trimmed-history stack when the
        walk falls off the tail without meeting a barrier).
        """
        x = self._tail[self.channel]
        base = self._tail_base
        records: List[Tuple[int, float, float]] = []
        cur = h
        i = p - 1
        while i >= base:
            v = float(x[i - base])
            if v > h:
                return records, cur  # barrier stops the walk
            if v < cur:
                records.append((i, v, float(x[i + 1 - base])))
                cur = v
            i -= 1
        trimmed_min, _ = self._stack.query(h)
        return records, min(cur, trimmed_min)

    def _maybe_close_component(self, at_finish: bool) -> None:
        if not self._pending:
            return
        if at_finish or self._scan_i - self._pending[-1]["p"] >= self.distance:
            self._close_component()

    def _close_component(self) -> None:
        pending, self._pending = self._pending, []
        if len(pending) == 1:
            keep = [True]
        else:
            keep = self._select_by_distance(pending)
        for peak, kept in zip(pending, keep):
            if not kept:
                peak["dead"] = True
                continue
            peak["rmin"] = peak["h"]
            peak["rrecords"] = []
            # Backlog: detection samples finalized since the peak.
            start = peak["p"] + 1
            if start < self._n:
                x = self._tail[self.channel]
                seg = x[start - self._tail_base : self._n - self._tail_base]
                if not self._feed_right(peak, seg, start, peak["h"]):
                    self._open.append(peak)
            else:
                self._open.append(peak)

    def _select_by_distance(self, pending: List[dict]) -> List[bool]:
        """scipy's _select_by_peak_distance on one closed component."""
        positions = [peak["p"] for peak in pending]
        priority = np.asarray([peak["h"] for peak in pending])
        size = len(positions)
        keep = [True] * size
        order = np.argsort(priority)
        for rank in range(size - 1, -1, -1):
            j = int(order[rank])
            if not keep[j]:
                continue
            k = j - 1
            while k >= 0 and positions[j] - positions[k] < self.distance:
                keep[k] = False
                k -= 1
            k = j + 1
            while k < size and positions[k] - positions[j] < self.distance:
                keep[k] = False
                k += 1
        return keep

    # -- right-side tracking --------------------------------------------
    def _feed_open_peaks(self, block_start: int) -> None:
        if not self._open:
            return
        x = self._tail[self.channel]
        base = self._tail_base
        seg = x[block_start - base : self._n - base]
        prev = (
            float(x[block_start - 1 - base]) if block_start > base else None
        )
        survivors = []
        for peak in self._open:
            prev_val = prev if prev is not None else peak["h"]
            if not self._feed_right(peak, seg, block_start, prev_val):
                survivors.append(peak)
        self._open = survivors

    def _feed_right(
        self, peak: dict, seg: np.ndarray, seg_start: int, prev_val: float
    ) -> bool:
        """Advance one peak's right walk over ``seg``; True if finalized."""
        h = peak["h"]
        above = seg > h
        limit = int(np.argmax(above)) if above.any() else seg.shape[0]
        sub = seg[:limit]
        if sub.shape[0]:
            # Running minimum carried across blocks: a record is a sample
            # strictly below everything since the peak, not merely below
            # the minimum of this block's prefix.
            running = np.minimum.accumulate(
                np.concatenate(([peak["rmin"]], sub))
            )
            for rel in np.nonzero(sub < running[:-1])[0]:
                pos = seg_start + int(rel)
                value = float(sub[rel])
                before = float(sub[rel - 1]) if rel > 0 else prev_val
                peak["rrecords"].append((pos, value, before))
                peak["rmin"] = value
                if value < peak["lmin"]:
                    # The right base can only sink lower: the max of the
                    # two base minima is pinned to lmin, so prominence —
                    # and the crossing, which is at or before this
                    # record — are already decided.
                    self._finalize_peak(peak, h - peak["lmin"])
                    return True
        if limit < seg.shape[0]:
            self._finalize_peak(peak, h - max(peak["lmin"], peak["rmin"]))
            return True
        return False

    # -- finalization ---------------------------------------------------
    def _finalize_peak(self, peak: dict, prominence: float) -> None:
        h = peak["h"]
        level = h - prominence * 0.5
        p = peak["p"]
        if level < h:
            left_ip = self._cross(peak["lrecords"], level, left=True)
            right_ip = self._cross(peak["rrecords"], level, left=False)
        else:
            # Zero prominence: both half-height walks stop on the peak
            # sample itself.
            left_ip = float(p)
            right_ip = float(p)
        peak["width"] = right_ip - left_ip
        if peak["amps"] is not None:
            self._complete.append(peak)

    @staticmethod
    def _cross(
        records: List[Tuple[int, float, float]], level: float, left: bool
    ) -> float:
        for pos, value, neighbour in records:
            if value <= level:
                ip = float(pos)
                if value < level:
                    if left:
                        ip += (level - value) / (neighbour - value)
                    else:
                        ip -= (level - value) / (neighbour - value)
                return ip
        raise AssertionError(
            "half-prominence crossing missing from carry-over records; "
            "the trim invariant was violated"
        )

    # -- amplitudes ------------------------------------------------------
    def _resolve_amplitudes(self, at_finish: bool) -> None:
        if not self._amp_jobs:
            return
        remaining = []
        for peak in self._amp_jobs:
            if peak["dead"]:
                continue
            hi = peak["p"] + self.half_window + 1
            if hi <= self._n or at_finish:
                hi = min(hi, self._n)
                lo = peak["lo"] - self._tail_base
                peak["amps"] = self._tail[:, lo : hi - self._tail_base].max(
                    axis=1
                )
                if peak["width"] is not None:
                    self._complete.append(peak)
            else:
                remaining.append(peak)
        self._amp_jobs = remaining

    # -- trimming --------------------------------------------------------
    def _trim(self) -> None:
        if self._tail.shape[1] <= self._trim_threshold:
            return
        bound = self._scan_i - 1
        for peak in self._pending:
            bound = min(bound, peak["lo"], peak["p"])
        for peak in self._amp_jobs:
            bound = min(bound, peak["lo"])
        if bound <= self._tail_base:
            return
        if not np.isfinite(self._gmin):
            return
        cut_level = 0.5 * (self.threshold + self._gmin)
        x = self._tail[self.channel]
        window = x[1 : bound - self._tail_base + 1]
        eligible = np.nonzero(window <= cut_level)[0]
        if eligible.shape[0] == 0:
            return
        cut = self._tail_base + 1 + int(eligible[-1])
        for value in x[: cut - self._tail_base]:
            self._stack.push(float(value))
        self._tail = self._tail[:, cut - self._tail_base :]
        self._tail_base = cut


class WindowedPeakDetector:
    """Chunk-facing exact streaming detector.

    ``feed`` raw ``(n_channels, k)`` voltage chunks, then ``finish`` for
    a :class:`PeakReport` bit-identical to
    ``PeakDetector.detect(full_trace, fs)`` — regardless of how the
    trace was split into chunks.
    """

    def __init__(
        self,
        n_channels: int,
        sampling_rate_hz: float,
        detector: Optional[PeakDetector] = None,
    ) -> None:
        self.detector = detector if detector is not None else PeakDetector()
        if self.detector.detection_channel >= n_channels:
            raise ValueError(
                f"detection_channel {self.detector.detection_channel} out of "
                f"range for {n_channels}-channel stream"
            )
        self.n_channels = int(n_channels)
        self.sampling_rate_hz = float(sampling_rate_hz)
        self._detrender = StreamingDetrender(
            n_channels, sampling_rate_hz, self.detector.detrend
        )
        self._peaks = ExactPeakStream(
            n_channels,
            sampling_rate_hz,
            self.detector.depth_threshold,
            self.detector.min_separation_s,
            self.detector.detection_channel,
        )
        self.n_samples = 0
        self._finished = False

    @property
    def peaks_emitted(self) -> int:
        return self._peaks.peaks_emitted

    def carry_state(self) -> Dict[str, int]:
        state = self._peaks.carry_state()
        state["detrend_buffered"] = self._detrender.buffered
        return state

    def feed(self, chunk: np.ndarray) -> int:
        """Consume one chunk; return the number of newly final peaks."""
        if self._finished:
            raise RuntimeError("WindowedPeakDetector already finished")
        chunk = np.asarray(chunk, dtype=float)
        if chunk.ndim != 2 or chunk.shape[0] != self.n_channels:
            raise ValueError(
                f"chunk must be ({self.n_channels}, k), got {chunk.shape}"
            )
        self.n_samples += chunk.shape[1]
        columns = self._detrender.feed(chunk)
        if columns.shape[1] == 0:
            return 0
        return self._peaks.feed(1.0 - columns)

    def finish(self) -> PeakReport:
        """Flush the carry-over and return the full-trace report."""
        if self._finished:
            raise RuntimeError("WindowedPeakDetector already finished")
        self._finished = True
        columns = self._detrender.finish()
        if columns.shape[1]:
            self._peaks.feed(1.0 - columns)
        return self._peaks.finish()
