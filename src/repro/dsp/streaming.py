"""Streaming peak detection for long captures (§VI-C / §VII-B).

The paper's 3-hour runs produce ~5 M samples per channel; holding the
whole record in memory before detection is unnecessary because the
detrend-and-threshold pipeline is local.  §VI-C already partitions the
signal into overlapping sub-sequences for detrending; this module
extends that partitioning into a streaming interface: feed chunks as
they are acquired, receive peaks with global timestamps as soon as
their neighbourhood is complete.

Equivalence: peaks are emitted from the *interior* of each processing
window (a guard margin at the trailing edge defers boundary peaks to
the next window), so streaming results match batch detection wherever
peaks are separated from window edges by more than the margin.
"""

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro._util.errors import ConfigurationError
from repro._util.validation import check_positive
from repro.dsp.peakdetect import DetectedPeak, PeakDetector, PeakReport
from repro.obs import NULL_OBSERVER


class StreamingPeakDetector:
    """Chunked wrapper around :class:`PeakDetector`.

    Parameters
    ----------
    detector:
        The underlying batch detector (its detrend window sets the
        natural processing granularity).
    sampling_rate_hz:
        Sampling rate of the incoming chunks.
    window_s:
        Processing window length; must comfortably exceed the
        detector's detrend window.
    guard_s:
        Trailing margin whose peaks are deferred to the next window.
    observer:
        Observability sink (windows processed / peaks emitted metrics).
    """

    def __init__(
        self,
        sampling_rate_hz: float,
        detector: Optional[PeakDetector] = None,
        window_s: float = 30.0,
        guard_s: float = 1.0,
        observer=NULL_OBSERVER,
    ) -> None:
        check_positive("sampling_rate_hz", sampling_rate_hz)
        check_positive("window_s", window_s)
        check_positive("guard_s", guard_s)
        if guard_s >= window_s / 2:
            raise ConfigurationError("guard_s must be well below window_s")
        self.detector = detector or PeakDetector()
        self.observer = observer
        self.sampling_rate_hz = sampling_rate_hz
        self.window_samples = int(round(window_s * sampling_rate_hz))
        self.guard_samples = int(round(guard_s * sampling_rate_hz))
        self._buffer: Optional[np.ndarray] = None
        self._buffer_start_sample = 0
        self._samples_seen = 0
        self._next_emit_sample = 0
        self._emitted: List[DetectedPeak] = []
        self._finished = False

    # ------------------------------------------------------------------
    @property
    def n_emitted(self) -> int:
        """Peaks emitted so far."""
        return len(self._emitted)

    def feed(self, chunk: np.ndarray) -> List[DetectedPeak]:
        """Feed a ``(n_channels, n)`` chunk; returns newly final peaks."""
        if self._finished:
            raise ConfigurationError("detector already finished")
        chunk = np.asarray(chunk, dtype=float)
        if chunk.ndim != 2:
            raise ConfigurationError("chunk must be 2-D (channels, samples)")
        if self._buffer is None:
            self._buffer = chunk.copy()
        else:
            if chunk.shape[0] != self._buffer.shape[0]:
                raise ConfigurationError("chunk channel count changed mid-stream")
            self._buffer = np.concatenate([self._buffer, chunk], axis=1)
        self._samples_seen += chunk.shape[1]

        fresh: List[DetectedPeak] = []
        while self._buffer.shape[1] >= self.window_samples:
            fresh.extend(self._process_window(final=False))
        return fresh

    def finish(self) -> PeakReport:
        """Flush the remaining buffer and return the complete report."""
        if self._finished:
            raise ConfigurationError("detector already finished")
        while self._buffer is not None and self._buffer.shape[1] > 0:
            emitted = self._process_window(final=True)
            if self._buffer.shape[1] == 0:
                break
            if not emitted and self._buffer.shape[1] < self.window_samples:
                # Final partial window: process whatever is left.
                emitted = self._process_window(final=True, force=True)
                break
        self._finished = True
        duration_s = self._samples_seen / self.sampling_rate_hz
        peaks = tuple(sorted(self._emitted, key=lambda p: p.time_s))
        return PeakReport(
            peaks=peaks,
            duration_s=duration_s,
            sampling_rate_hz=self.sampling_rate_hz,
            detection_channel=self.detector.detection_channel,
        )

    # ------------------------------------------------------------------
    def _process_window(self, final: bool, force: bool = False) -> List[DetectedPeak]:
        assert self._buffer is not None
        available = self._buffer.shape[1]
        take = min(self.window_samples, available)
        if take == 0:
            return []
        if not force and not final and take < self.window_samples:
            return []
        window = self._buffer[:, :take]
        with self.observer.span("streaming_window", samples=take):
            report = self.detector.detect(window, self.sampling_rate_hz)

        is_last = force or (final and available <= self.window_samples)
        cutoff_local = take if is_last else take - self.guard_samples
        offset_s = self._buffer_start_sample / self.sampling_rate_hz

        emitted = []
        for peak in report.peaks:
            global_index = peak.sample_index + self._buffer_start_sample
            # Emit each peak exactly once: past the dedup pointer and
            # inside the finalised (pre-guard) region of this window.
            if global_index >= self._next_emit_sample and peak.sample_index < cutoff_local:
                emitted.append(
                    DetectedPeak(
                        time_s=peak.time_s + offset_s,
                        depth=peak.depth,
                        width_s=peak.width_s,
                        amplitudes=peak.amplitudes,
                        sample_index=global_index,
                    )
                )
        self._emitted.extend(emitted)
        self.observer.incr("streaming.windows")
        self.observer.incr("streaming.peaks_emitted", len(emitted))
        self._next_emit_sample = self._buffer_start_sample + cutoff_local
        # Keep a lead-in margin before the emission cutoff so deferred
        # peaks re-appear with full left context in the next window.
        advance = take if is_last else max(cutoff_local - self.guard_samples, 1)
        self._buffer = self._buffer[:, advance:]
        self._buffer_start_sample += advance
        return emitted
