"""Fused columnar DSP hot path (the Fig 14 bottleneck, vectorised).

The staged pipeline the paper describes — lock-in demod output →
piecewise detrend → ``1 - x`` → threshold → per-peak measurement —
historically ran stage-at-a-time over per-object traces, materialising
a fresh array at every stage and measuring each detected peak in a
Python loop.  This module is the same pipeline as *one fused pass over
a columnar batch*:

* :class:`TraceBatch` — traces of one shape stacked into a single
  contiguous ``(n_traces * n_channels, n_samples)`` matrix.  Per-trace
  rows, and the per-channel "column" across the batch, are zero-copy
  views; nothing is re-packed downstream.
* :func:`fused_detect_batch` — detrend, invert, threshold and measure
  the whole batch while materialising exactly one ``(rows, samples)``
  dips buffer: the detrend blend accumulates into the output buffer,
  the normalisation and ``1 - x`` inversion run in place on it, and
  per-peak depth/width/amplitude measurement is replaced by
  vectorised :func:`scipy.signal.peak_widths` plus one clipped
  window-max gather per trace (no per-peak Python loop).
* :func:`fused_detect` / :func:`fused_detect_many` — the single-trace
  hot path and the mixed-shape front door used by
  :meth:`~repro.dsp.peakdetect.PeakDetector.detect` /
  :meth:`~repro.dsp.peakdetect.PeakDetector.detect_batch`, and
  therefore by the serving batcher, the windowed streaming tier and
  the sharded fleet.

Bit-identity contract
---------------------

The fused pass must be *exactly* equal — same ``PeakReport`` tuples,
bit-identical amplitudes — to the retained staged pipeline
(:func:`~repro.dsp.detrend.piecewise_polynomial_detrend_rows` followed
by :meth:`~repro.dsp.peakdetect.PeakDetector._report_from_dips`).
That holds by construction:

* both paths fit window baselines with the shared, per-row-independent
  :func:`~repro.dsp.detrend.fit_baseline_rows` kernel;
* the fused blend applies the same elementwise ufuncs to the same
  operands, merely writing into a pre-allocated buffer instead of
  allocating per stage (IEEE elementwise results do not depend on the
  destination);
* the window-max amplitude gather clamps its index window to the trace
  edges, so each peak's gathered multiset equals the staged slice's
  (duplicated edge samples cannot change a max).

``tests/test_dsp_fused_differential.py`` enforces the contract against
the staged oracle (``tests/_dsp_oracle.py``) over seeded trace
families and hypothesis-generated shapes; ``benchmarks/bench_dsp.py``
records the speedup in the ``BENCH_dsp.json`` trajectory.
"""

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

import numpy as np
from scipy import signal as sp_signal

from repro._util.validation import check_positive
from repro.dsp.detrend import DetrendConfig, fit_baseline_rows
from repro.dsp.peakdetect import DetectedPeak, PeakReport

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.dsp.peakdetect import PeakDetector

__all__ = [
    "TraceBatch",
    "fused_detect",
    "fused_detect_batch",
    "fused_detect_many",
    "fused_dips",
    "partition_traces",
]

#: Per-length cache of the triangular blend taper (values identical to
#: the staged path's per-window recomputation).
_TAPER_CACHE: Dict[int, np.ndarray] = {}
_TAPER_CACHE_MAX = 128


def _taper(length: int) -> np.ndarray:
    taper = _TAPER_CACHE.get(length)
    if taper is None:
        taper = np.minimum(
            np.arange(1, length + 1), np.arange(length, 0, -1)
        ).astype(float)
        if len(_TAPER_CACHE) >= _TAPER_CACHE_MAX:
            _TAPER_CACHE.pop(next(iter(_TAPER_CACHE)))
        _TAPER_CACHE[length] = taper
    return taper


@dataclass(frozen=True)
class TraceBatch:
    """A shape-homogeneous batch in columnar layout.

    ``data`` holds every trace's channels stacked trace-major into one
    contiguous ``(n_traces * n_channels, n_samples)`` matrix; trace
    ``i`` occupies rows ``[i * n_channels, (i + 1) * n_channels)``.
    All accessors are zero-copy views into that one allocation.
    """

    data: np.ndarray
    n_traces: int
    n_channels: int
    sampling_rate_hz: float

    def __post_init__(self) -> None:
        data = np.asarray(self.data, dtype=float)
        if not data.flags.c_contiguous:
            data = np.ascontiguousarray(data)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        if self.n_traces < 0 or self.n_channels < 1:
            raise ValueError(
                f"bad batch geometry: {self.n_traces} traces x "
                f"{self.n_channels} channels"
            )
        if data.shape[0] != self.n_traces * self.n_channels:
            raise ValueError(
                f"data has {data.shape[0]} rows, expected "
                f"{self.n_traces} traces x {self.n_channels} channels"
            )
        check_positive("sampling_rate_hz", self.sampling_rate_hz)
        object.__setattr__(self, "data", data)

    @classmethod
    def from_traces(
        cls, traces: Sequence[np.ndarray], sampling_rate_hz: float
    ) -> "TraceBatch":
        """Stack ``(n_channels, n_samples)`` traces of one shape."""
        if not traces:
            raise ValueError("from_traces needs at least one trace")
        first = np.asarray(traces[0], dtype=float)
        if first.ndim != 2:
            raise ValueError(f"traces must be 2-D, got shape {first.shape}")
        for trace in traces[1:]:
            if np.asarray(trace).shape != first.shape:
                raise ValueError(
                    f"mixed shapes in one batch: {np.asarray(trace).shape} "
                    f"vs {first.shape}; use partition_traces"
                )
        if len(traces) == 1:
            data = first
        else:
            data = np.concatenate(
                [np.asarray(trace, dtype=float) for trace in traces], axis=0
            )
        return cls(
            data=data,
            n_traces=len(traces),
            n_channels=first.shape[0],
            sampling_rate_hz=float(sampling_rate_hz),
        )

    @property
    def n_samples(self) -> int:
        return self.data.shape[1]

    def trace(self, index: int) -> np.ndarray:
        """Zero-copy ``(n_channels, n_samples)`` view of one trace."""
        if not 0 <= index < self.n_traces:
            raise IndexError(f"trace {index} out of range for {self.n_traces}")
        lo = index * self.n_channels
        return self.data[lo : lo + self.n_channels]

    def channel_rows(self, channel: int) -> np.ndarray:
        """Zero-copy ``(n_traces, n_samples)`` view of one channel."""
        if not 0 <= channel < self.n_channels:
            raise IndexError(
                f"channel {channel} out of range for {self.n_channels}"
            )
        return self.data[channel :: self.n_channels]


def partition_traces(
    traces: Sequence[np.ndarray], sampling_rates_hz: Sequence[float]
) -> List[Tuple[TraceBatch, List[int]]]:
    """Group mixed-shape traces into columnar batches.

    Traces sharing ``(n_channels, n_samples, rate)`` are stacked into
    one :class:`TraceBatch`; each group carries the input positions of
    its members so callers can reassemble results in submission order.
    Groups appear in order of first member.
    """
    if len(traces) != len(sampling_rates_hz):
        raise ValueError(
            f"{len(traces)} traces but {len(sampling_rates_hz)} sampling rates"
        )
    groups: Dict[Tuple[int, int, float], List[int]] = {}
    arrays = [np.asarray(trace, dtype=float) for trace in traces]
    for position, (trace, rate) in enumerate(zip(arrays, sampling_rates_hz)):
        if trace.ndim != 2:
            raise ValueError(
                f"trace {position} must be 2-D (channels, samples), "
                f"got {trace.shape}"
            )
        groups.setdefault((*trace.shape, float(rate)), []).append(position)
    return [
        (
            TraceBatch.from_traces([arrays[p] for p in members], rate),
            members,
        )
        for (_, _, rate), members in groups.items()
    ]


# ---------------------------------------------------------------------------
# Fused pass
# ---------------------------------------------------------------------------
def fused_dips(
    data: np.ndarray, sampling_rate_hz: float, config: DetrendConfig
) -> np.ndarray:
    """Detrend + invert every row into one buffer (``1 - detrended``).

    Identical arithmetic to the staged
    ``1.0 - piecewise_polynomial_detrend_rows(...)`` — the same
    baseline fits, taper blend, normalisation and inversion — but the
    blend accumulates directly into the returned buffer and the final
    two stages run in place on it, so the whole detrend→invert chain
    materialises exactly one ``(rows, samples)`` array.
    """
    data = np.asarray(data, dtype=float)
    check_positive("sampling_rate_hz", sampling_rate_hz)
    n_rows, n = data.shape
    if n == 0 or n_rows == 0:
        return 1.0 - data.copy()
    window = max(
        int(round(config.window_s * sampling_rate_hz)), config.order + 2
    )
    window = min(window, n)
    step = max(int(round(window * (1.0 - config.overlap_fraction))), 1)

    dips = np.zeros((n_rows, n))
    weights = np.zeros(n)
    start = 0
    while True:
        stop = min(start + window, n)
        segments = data[:, start:stop]
        baselines = fit_baseline_rows(segments, config.order)
        safe = np.where(np.abs(baselines) > 1e-12, baselines, 1e-12)
        detrended = segments / safe
        taper = _taper(stop - start)
        np.multiply(detrended, taper, out=detrended)
        dips[:, start:stop] += detrended
        weights[start:stop] += taper
        if stop >= n:
            break
        start += step
    np.divide(dips, weights, out=dips)
    np.subtract(1.0, dips, out=dips)
    return dips


def _empty_report(sampling_rate_hz: float, detection_channel: int) -> PeakReport:
    return PeakReport((), 0.0, sampling_rate_hz, detection_channel)


def _measure_trace(
    dips: np.ndarray,
    sampling_rate_hz: float,
    depth_threshold: float,
    distance: int,
    detection_channel: int,
) -> PeakReport:
    """Threshold one trace's dips and measure every peak, vectorised.

    Mirrors :meth:`PeakDetector._report_from_dips` exactly, with the
    per-peak Python loop replaced by one clipped window-max gather:
    peak ``p``'s staged amplitude is ``dips[:, max(p-h,0):min(p+h+1,n)]
    .max(axis=1)``; gathering ``clip(p-h .. p+h, 0, n-1)`` instead
    yields the same multiset per channel (edge clamping only repeats
    samples), hence a bit-identical max.
    """
    n_samples = dips.shape[1]
    duration_s = n_samples / sampling_rate_hz
    detection = dips[detection_channel]
    indices, properties = sp_signal.find_peaks(
        detection, height=depth_threshold, distance=distance
    )
    if indices.size == 0:
        return PeakReport((), duration_s, sampling_rate_hz, detection_channel)
    widths_samples = sp_signal.peak_widths(detection, indices, rel_height=0.5)[0]
    half_window = max(distance // 2, 1)
    offsets = np.arange(-half_window, half_window + 1)[:, np.newaxis]
    gather = np.clip(indices[np.newaxis, :] + offsets, 0, n_samples - 1)
    # (n_channels, window, n_peaks) -> max over the window axis.
    amplitudes = dips[:, gather].max(axis=1)
    times_s = indices / sampling_rate_hz
    widths_s = widths_samples / sampling_rate_hz
    heights = properties["peak_heights"]
    peaks = tuple(
        DetectedPeak(
            time_s=times_s[j],
            depth=float(heights[j]),
            width_s=float(widths_s[j]),
            amplitudes=amplitudes[:, j].copy(),
            sample_index=int(indices[j]),
        )
        for j in range(indices.shape[0])
    )
    return PeakReport(peaks, duration_s, sampling_rate_hz, detection_channel)


def fused_detect_batch(
    detector: "PeakDetector", batch: TraceBatch
) -> List[PeakReport]:
    """One fused pass over a columnar batch; reports in batch order.

    Bit-identical to running the staged pipeline on each trace alone
    (see the module docstring for why), which is the guarantee the
    serving batcher, the windowed streaming tier and the sharded fleet
    all inherit.
    """
    if detector.detection_channel >= batch.n_channels:
        raise ValueError(
            f"detection_channel {detector.detection_channel} out of range "
            f"for {batch.n_channels}-channel batch"
        )
    if batch.n_samples == 0:
        return [
            _empty_report(batch.sampling_rate_hz, detector.detection_channel)
            for _ in range(batch.n_traces)
        ]
    dips = fused_dips(batch.data, batch.sampling_rate_hz, detector.detrend)
    distance = max(
        int(round(detector.min_separation_s * batch.sampling_rate_hz)), 1
    )
    reports = []
    for index in range(batch.n_traces):
        lo = index * batch.n_channels
        reports.append(
            _measure_trace(
                dips[lo : lo + batch.n_channels],
                batch.sampling_rate_hz,
                detector.depth_threshold,
                distance,
                detector.detection_channel,
            )
        )
    return reports


def fused_detect(
    detector: "PeakDetector", trace: np.ndarray, sampling_rate_hz: float
) -> PeakReport:
    """Single-trace hot path: a one-trace columnar batch, one pass."""
    trace = np.asarray(trace, dtype=float)
    batch = TraceBatch(
        data=trace,
        n_traces=1,
        n_channels=trace.shape[0],
        sampling_rate_hz=float(sampling_rate_hz),
    )
    return fused_detect_batch(detector, batch)[0]


def fused_detect_many(
    detector: "PeakDetector",
    traces: Sequence[np.ndarray],
    sampling_rates_hz: Sequence[float],
) -> List[PeakReport]:
    """Mixed-shape batch front door: partition, fuse, reassemble.

    Results come back in submission order regardless of how the shape
    groups interleave; every position is filled exactly once (no
    placeholder sentinels anywhere in the assembly).
    """
    ordered: Dict[int, PeakReport] = {}
    for batch, positions in partition_traces(traces, sampling_rates_hz):
        for report, position in zip(fused_detect_batch(detector, batch), positions):
            ordered[position] = report
    if len(ordered) != len(traces):
        raise AssertionError(
            f"assembled {len(ordered)} reports for {len(traces)} traces"
        )
    return [ordered[position] for position in range(len(traces))]
