"""Cloud-side signal processing (paper §VI-C).

The untrusted analysis side sees only the encrypted trace; everything it
can legitimately do is here:

* :mod:`~repro.dsp.detrend` — remove slow baseline drift by fitting
  second-order polynomials to overlapping sub-sequences and normalising
  by the fit (the paper's empirically optimal scheme; global low-order
  fits under-fit, high-order fits deform peaks — both are provided for
  the ablation).
* :mod:`~repro.dsp.peakdetect` — threshold the detrended signal and
  extract each peak's timestamp, depth, width and per-carrier
  amplitudes.
* :mod:`~repro.dsp.features` — per-peak feature vectors at selected
  carrier frequencies (the Figure 16 scatter axes).
* :mod:`~repro.dsp.recording` — CSV capture-size and zip-compression
  model for the §VII-B data-volume accounting.
* :mod:`~repro.dsp.windowed` — chunked windowed detrend + peak
  detection with explicit carry-over state, bit-identical to the
  one-shot path (the streaming workload's DSP core).
* :mod:`~repro.dsp.fused` — the columnar :class:`TraceBatch` layout
  and the fused detrend → invert → threshold → measure pass that
  :meth:`PeakDetector.detect`/:meth:`~PeakDetector.detect_batch` run
  on (see ``docs/dsp.md``; proven bit-identical to the staged
  formulation by ``tests/test_dsp_fused_differential.py``).
"""

from repro.dsp.detrend import (
    DetrendConfig,
    fit_baseline_rows,
    global_polynomial_detrend,
    piecewise_polynomial_detrend,
)
from repro.dsp.features import FeatureExtractor, PeakFeatures
from repro.dsp.peakdetect import DetectedPeak, PeakDetector, PeakReport
from repro.dsp.fused import (
    TraceBatch,
    fused_detect,
    fused_detect_batch,
    fused_detect_many,
    fused_dips,
    partition_traces,
)
from repro.dsp.recording import CsvRecordingModel, compressed_size_bytes
from repro.dsp.streaming import StreamingPeakDetector
from repro.dsp.windowed import (
    ExactPeakStream,
    StreamingDetrender,
    WindowedPeakDetector,
)

__all__ = [
    "StreamingPeakDetector",
    "StreamingDetrender",
    "ExactPeakStream",
    "WindowedPeakDetector",
    "DetrendConfig",
    "fit_baseline_rows",
    "global_polynomial_detrend",
    "piecewise_polynomial_detrend",
    "FeatureExtractor",
    "PeakFeatures",
    "DetectedPeak",
    "PeakDetector",
    "PeakReport",
    "TraceBatch",
    "fused_detect",
    "fused_detect_batch",
    "fused_detect_many",
    "fused_dips",
    "partition_traces",
    "CsvRecordingModel",
    "compressed_size_bytes",
]
