"""Cloud-side signal processing (paper §VI-C).

The untrusted analysis side sees only the encrypted trace; everything it
can legitimately do is here:

* :mod:`~repro.dsp.detrend` — remove slow baseline drift by fitting
  second-order polynomials to overlapping sub-sequences and normalising
  by the fit (the paper's empirically optimal scheme; global low-order
  fits under-fit, high-order fits deform peaks — both are provided for
  the ablation).
* :mod:`~repro.dsp.peakdetect` — threshold the detrended signal and
  extract each peak's timestamp, depth, width and per-carrier
  amplitudes.
* :mod:`~repro.dsp.features` — per-peak feature vectors at selected
  carrier frequencies (the Figure 16 scatter axes).
* :mod:`~repro.dsp.recording` — CSV capture-size and zip-compression
  model for the §VII-B data-volume accounting.
* :mod:`~repro.dsp.windowed` — chunked windowed detrend + peak
  detection with explicit carry-over state, bit-identical to the
  one-shot path (the streaming workload's DSP core).
"""

from repro.dsp.detrend import (
    DetrendConfig,
    global_polynomial_detrend,
    piecewise_polynomial_detrend,
)
from repro.dsp.features import FeatureExtractor, PeakFeatures
from repro.dsp.peakdetect import DetectedPeak, PeakDetector, PeakReport
from repro.dsp.recording import CsvRecordingModel, compressed_size_bytes
from repro.dsp.streaming import StreamingPeakDetector
from repro.dsp.windowed import (
    ExactPeakStream,
    StreamingDetrender,
    WindowedPeakDetector,
)

__all__ = [
    "StreamingPeakDetector",
    "StreamingDetrender",
    "ExactPeakStream",
    "WindowedPeakDetector",
    "DetrendConfig",
    "global_polynomial_detrend",
    "piecewise_polynomial_detrend",
    "FeatureExtractor",
    "PeakFeatures",
    "DetectedPeak",
    "PeakDetector",
    "PeakReport",
    "CsvRecordingModel",
    "compressed_size_bytes",
]
