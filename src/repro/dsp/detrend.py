"""Baseline detrending (paper §VI-C).

The acquired signal drifts slowly (fluid concentration, temperature).
The paper's recipe, reproduced exactly:

1. Partition the sequence into overlapping sub-sequences.
2. Fit a **second-order polynomial** to each sub-sequence.
3. Divide the sub-sequence by the fit ("detrended and normalized by
   dividing the subsection of data by the fitted polynomial").
4. Blend the overlapping detrended sections back together; the result
   has a baseline with mean value one, and peak detection thresholds
   ``1 - detrended``.

The paper justifies second order empirically: a *global* second-order
fit under-fits long records, high global orders over-fit and deform
peaks.  :func:`global_polynomial_detrend` implements the global variant
so the ablation benchmark can reproduce that comparison.
"""

from dataclasses import dataclass

import numpy as np

from repro._util.validation import check_in_range, check_positive


@dataclass(frozen=True)
class DetrendConfig:
    """Parameters of the piecewise polynomial detrend.

    Parameters
    ----------
    window_s:
        Sub-sequence length in seconds.
    overlap_fraction:
        Fractional overlap between consecutive windows (0 = disjoint).
    order:
        Polynomial order (paper: 2).
    """

    window_s: float = 10.0
    overlap_fraction: float = 0.5
    order: int = 2

    def __post_init__(self) -> None:
        check_positive("window_s", self.window_s)
        check_in_range("overlap_fraction", self.overlap_fraction, 0.0, 0.9)
        if self.order < 0:
            raise ValueError(f"order must be >= 0, got {self.order}")


def _fit_baseline(window: np.ndarray, order: int, n_iterations: int = 3) -> np.ndarray:
    """Robust polynomial baseline of one window.

    Peaks are dips *below* the baseline; a plain least-squares fit is
    dragged down by them (and its edges curl up/down in compensation,
    producing phantom peaks).  We therefore iterate: fit, then exclude
    samples sitting far below the fit, and refit on the remainder, so
    the polynomial tracks the drifting baseline rather than the signal.
    """
    n = window.shape[0]
    if n <= order:
        return np.full(n, float(np.mean(window)) if n else 1.0)
    x = np.linspace(-1.0, 1.0, n)
    keep = np.ones(n, dtype=bool)
    baseline = np.empty(n)
    for _ in range(max(n_iterations, 1)):
        coefficients = np.polynomial.polynomial.polyfit(x[keep], window[keep], order)
        baseline = np.polynomial.polynomial.polyval(x, coefficients)
        residual = window - baseline
        negative = residual[residual < 0]
        if negative.size == 0:
            break
        # Robust scale from the median absolute residual of the kept set.
        scale = 1.4826 * np.median(np.abs(residual[keep])) + 1e-15
        new_keep = residual > -2.5 * scale
        # Never discard so much that the fit becomes degenerate.
        if new_keep.sum() <= order + 1 or np.array_equal(new_keep, keep):
            break
        keep = new_keep
    return baseline


def piecewise_polynomial_detrend(
    signal: np.ndarray,
    sampling_rate_hz: float,
    config: DetrendConfig = DetrendConfig(),
) -> np.ndarray:
    """Detrend ``signal`` with overlapping second-order fits.

    Returns the normalised signal (baseline ~ 1.0).  Overlapping windows
    are blended with triangular weights, which minimises the fit error
    at the window ends exactly as the paper prescribes ("detrended with
    overlap sections to minimize the error of the fitted polynomial at
    both ends").
    """
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 1:
        raise ValueError(f"signal must be 1-D, got shape {signal.shape}")
    return piecewise_polynomial_detrend_rows(
        signal[np.newaxis, :], sampling_rate_hz, config
    )[0]


def piecewise_polynomial_detrend_rows(
    signals: np.ndarray,
    sampling_rate_hz: float,
    config: DetrendConfig = DetrendConfig(),
) -> np.ndarray:
    """Detrend every row of a ``(rows, samples)`` matrix in one pass.

    The window partitioning, taper weights, blending and normalisation
    are computed once and applied to all rows with array arithmetic;
    only the robust polynomial fit runs per row (its data-dependent
    outlier masks cannot be shared).  Every row's arithmetic is
    element-wise identical to :func:`piecewise_polynomial_detrend` on
    that row alone, so batched analysis is bit-identical to serial —
    the property the serving stack's dynamic batcher relies on.
    """
    signals = np.asarray(signals, dtype=float)
    if signals.ndim != 2:
        raise ValueError(f"signals must be 2-D (rows, samples), got {signals.shape}")
    check_positive("sampling_rate_hz", sampling_rate_hz)
    n_rows, n = signals.shape
    if n == 0 or n_rows == 0:
        return signals.copy()

    window = max(int(round(config.window_s * sampling_rate_hz)), config.order + 2)
    window = min(window, n)
    step = max(int(round(window * (1.0 - config.overlap_fraction))), 1)

    accumulated = np.zeros_like(signals)
    weights = np.zeros(n)
    start = 0
    while True:
        stop = min(start + window, n)
        segments = signals[:, start:stop]
        baselines = np.vstack(
            [_fit_baseline(segments[row], config.order) for row in range(n_rows)]
        )
        # Guard against a degenerate fit crossing zero.
        safe = np.where(np.abs(baselines) > 1e-12, baselines, 1e-12)
        detrended = segments / safe
        length = stop - start
        taper = np.minimum(np.arange(1, length + 1), np.arange(length, 0, -1)).astype(float)
        accumulated[:, start:stop] += detrended * taper
        weights[start:stop] += taper
        if stop >= n:
            break
        start += step
    return accumulated / weights


def global_polynomial_detrend(
    signal: np.ndarray,
    order: int,
    robust: bool = True,
) -> np.ndarray:
    """Single global polynomial fit over the whole record.

    Provided for the §VI-C ablation: low orders under-fit long records
    (residual drift), and — with ``robust=False``, the plain
    least-squares fit the paper discusses — high orders over-fit and
    deform peaks.
    """
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 1:
        raise ValueError(f"signal must be 1-D, got shape {signal.shape}")
    if order < 0:
        raise ValueError(f"order must be >= 0, got {order}")
    baseline = _fit_baseline(signal, order, n_iterations=3 if robust else 1)
    safe = np.where(np.abs(baseline) > 1e-12, baseline, 1e-12)
    return signal / safe


def residual_drift(detrended: np.ndarray, sampling_rate_hz: float, block_s: float = 5.0) -> float:
    """RMS deviation of the block-median baseline from 1.0.

    A quality metric for detrending: block medians are insensitive to
    peaks, so residual deviation measures uncorrected drift rather than
    signal content.
    """
    detrended = np.asarray(detrended, dtype=float)
    check_positive("sampling_rate_hz", sampling_rate_hz)
    check_positive("block_s", block_s)
    block = max(int(round(block_s * sampling_rate_hz)), 1)
    n_blocks = max(detrended.shape[0] // block, 1)
    medians = [
        float(np.median(detrended[i * block : (i + 1) * block]))
        for i in range(n_blocks)
        if detrended[i * block : (i + 1) * block].size
    ]
    if not medians:
        return 0.0
    deviations = np.asarray(medians) - 1.0
    return float(np.sqrt(np.mean(deviations**2)))
