"""Baseline detrending (paper §VI-C).

The acquired signal drifts slowly (fluid concentration, temperature).
The paper's recipe, reproduced exactly:

1. Partition the sequence into overlapping sub-sequences.
2. Fit a **second-order polynomial** to each sub-sequence.
3. Divide the sub-sequence by the fit ("detrended and normalized by
   dividing the subsection of data by the fitted polynomial").
4. Blend the overlapping detrended sections back together; the result
   has a baseline with mean value one, and peak detection thresholds
   ``1 - detrended``.

The paper justifies second order empirically: a *global* second-order
fit under-fits long records, high global orders over-fit and deform
peaks.  :func:`global_polynomial_detrend` implements the global variant
so the ablation benchmark can reproduce that comparison.
"""

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro._util.validation import check_in_range, check_positive


@dataclass(frozen=True)
class DetrendConfig:
    """Parameters of the piecewise polynomial detrend.

    Parameters
    ----------
    window_s:
        Sub-sequence length in seconds.
    overlap_fraction:
        Fractional overlap between consecutive windows (0 = disjoint).
    order:
        Polynomial order (paper: 2).
    """

    window_s: float = 10.0
    overlap_fraction: float = 0.5
    order: int = 2

    def __post_init__(self) -> None:
        check_positive("window_s", self.window_s)
        check_in_range("overlap_fraction", self.overlap_fraction, 0.0, 0.9)
        if self.order < 0:
            raise ValueError(f"order must be >= 0, got {self.order}")


def _fit_baseline(window: np.ndarray, order: int, n_iterations: int = 3) -> np.ndarray:
    """Robust polynomial baseline of one window (scalar reference).

    Peaks are dips *below* the baseline; a plain least-squares fit is
    dragged down by them (and its edges curl up/down in compensation,
    producing phantom peaks).  We therefore iterate: fit, then exclude
    samples sitting far below the fit, and refit on the remainder, so
    the polynomial tracks the drifting baseline rather than the signal.

    This is the legacy per-row polyfit formulation, retained as the
    numerical reference for :func:`fit_baseline_rows` (which agrees to
    ~1e-12 relative) and as the engine of the slow-path ablation in
    :func:`global_polynomial_detrend`.  The hot path — one-shot,
    batched, windowed and fused detection — runs on
    :func:`fit_baseline_rows`.
    """
    n = window.shape[0]
    if n <= order:
        return np.full(n, float(np.mean(window)) if n else 1.0)
    x = np.linspace(-1.0, 1.0, n)
    keep = np.ones(n, dtype=bool)
    baseline = np.empty(n)
    for _ in range(max(n_iterations, 1)):
        coefficients = np.polynomial.polynomial.polyfit(x[keep], window[keep], order)
        baseline = np.polynomial.polynomial.polyval(x, coefficients)
        residual = window - baseline
        negative = residual[residual < 0]
        if negative.size == 0:
            break
        # Robust scale from the median absolute residual of the kept set.
        scale = 1.4826 * np.median(np.abs(residual[keep])) + 1e-15
        new_keep = residual > -2.5 * scale
        # Never discard so much that the fit becomes degenerate.
        if new_keep.sum() <= order + 1 or np.array_equal(new_keep, keep):
            break
        keep = new_keep
    return baseline


# Per-(length, order) fit grid: the x axis, its powers up to 2*order
# (built by repeated multiplication, never ``**``), and the full-mask
# moments.  Bounded so hypothesis-style workloads with many distinct
# window lengths cannot grow it without limit.
_GRID_CACHE: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
_GRID_CACHE_MAX = 128

#: Rows per kernel tile.  The masked reductions allocate (rows, n)
#: temporaries; tiling keeps them cache-resident for large stacked
#: batches.  Tiling is invisible to the output: each row's arithmetic
#: is independent of its batch-mates, so any row partition produces
#: bitwise-identical baselines.
_ROW_BLOCK = 8


def _fit_grid(n: int, order: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    key = (n, order)
    cached = _GRID_CACHE.get(key)
    if cached is None:
        x = np.linspace(-1.0, 1.0, n)
        powers = np.empty((2 * order + 1, n))
        powers[0] = 1.0
        for p in range(1, 2 * order + 1):
            np.multiply(powers[p - 1], x, out=powers[p])
        full_moments = powers.sum(axis=1)
        if len(_GRID_CACHE) >= _GRID_CACHE_MAX:
            _GRID_CACHE.pop(next(iter(_GRID_CACHE)))
        cached = (x, powers, full_moments)
        _GRID_CACHE[key] = cached
    return cached


def fit_baseline_rows(
    segments: np.ndarray, order: int, n_iterations: int = 3
) -> np.ndarray:
    """Robust polynomial baselines of every row of ``(rows, n)`` at once.

    Same recipe as :func:`_fit_baseline` — iterate fit / discard
    far-below-fit samples / refit — but solved through masked normal
    equations so one call fits the whole matrix: the Gram moments and
    right-hand sides are full-length masked reductions, the per-row
    ``(order+1)``-square systems are solved as one stacked
    :func:`numpy.linalg.solve`, and the polynomial is evaluated with a
    vectorised Horner pass.

    The arithmetic of each row is **independent of which other rows
    share the call**: the input is copied to a canonical contiguous
    layout, every reduction runs over that row's full length (masked
    samples contribute exact zeros), and the stacked solve factorises
    each small system separately.  That per-row independence is what
    lets the one-shot, batched (``detect_batch``), windowed-streaming
    and fused columnar paths all share this kernel while staying
    bit-identical to each other.
    """
    segments = np.ascontiguousarray(np.asarray(segments, dtype=float))
    if segments.ndim != 2:
        raise ValueError(f"segments must be 2-D (rows, n), got {segments.shape}")
    if order < 0:
        raise ValueError(f"order must be >= 0, got {order}")
    rows, n = segments.shape
    if n == 0 or rows == 0:
        return np.empty((rows, n))
    if n <= order:
        return np.repeat(segments.mean(axis=1)[:, np.newaxis], n, axis=1)
    if rows > _ROW_BLOCK:
        baseline = np.empty((rows, n))
        for lo in range(0, rows, _ROW_BLOCK):
            baseline[lo : lo + _ROW_BLOCK] = fit_baseline_rows(
                segments[lo : lo + _ROW_BLOCK], order, n_iterations
            )
        return baseline
    x, powers, full_moments = _fit_grid(n, order)
    d = order + 1
    baseline = np.empty((rows, n))
    # Rows still iterating; converged rows keep their last baseline.
    active = np.arange(rows)
    seg_active = segments
    keep_active = np.ones((rows, n), dtype=bool)
    last = max(n_iterations, 1) - 1
    for iteration in range(last + 1):
        n_active = active.shape[0]
        weights = keep_active.astype(float)
        if iteration == 0:
            moments = np.repeat(full_moments[np.newaxis, :], n_active, axis=0)
        else:
            moments = np.empty((n_active, 2 * order + 1))
            for p in range(2 * order + 1):
                moments[:, p] = (weights * powers[p]).sum(axis=1)
        weighted = weights * seg_active
        rhs = np.empty((n_active, d))
        for j in range(d):
            rhs[:, j] = (weighted * powers[j]).sum(axis=1)
        gram = np.empty((n_active, d, d))
        for j in range(d):
            for k in range(j, d):
                gram[:, j, k] = moments[:, j + k]
                if k != j:
                    gram[:, k, j] = moments[:, j + k]
        coefficients = _solve_rows(gram, rhs)
        fitted = np.repeat(coefficients[:, -1][:, np.newaxis], n, axis=1)
        for j in range(d - 2, -1, -1):
            fitted = fitted * x[np.newaxis, :] + coefficients[:, j][:, np.newaxis]
        baseline[active] = fitted
        if iteration == last:
            break
        residual = seg_active - fitted
        converged = ~(residual < 0).any(axis=1)
        new_keep = keep_active.copy()
        for row in range(n_active):
            if converged[row]:
                continue
            kept_abs = np.abs(residual[row][keep_active[row]])
            scale = 1.4826 * np.median(kept_abs) + 1e-15
            refit = residual[row] > -2.5 * scale
            # Never discard so much that the fit becomes degenerate.
            if refit.sum() <= order + 1 or np.array_equal(refit, keep_active[row]):
                converged[row] = True
            else:
                new_keep[row] = refit
        still = ~converged
        if not still.any():
            break
        active = active[still]
        seg_active = np.ascontiguousarray(seg_active[still])
        keep_active = np.ascontiguousarray(new_keep[still])
    return baseline


def _solve_rows(gram: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Stacked small-system solve with a per-row singularity fallback.

    ``numpy.linalg.solve`` raises if *any* stacked system is singular,
    which would let one degenerate row change its batch-mates' code
    path.  The fallback therefore re-solves row by row — each row's
    result depends only on its own system either way.
    """
    try:
        return np.linalg.solve(gram, rhs[:, :, np.newaxis])[:, :, 0]
    except np.linalg.LinAlgError:
        out = np.empty_like(rhs)
        for row in range(rhs.shape[0]):
            try:
                out[row] = np.linalg.solve(
                    gram[row], rhs[row][:, np.newaxis]
                )[:, 0]
            except np.linalg.LinAlgError:
                out[row] = np.linalg.lstsq(gram[row], rhs[row], rcond=None)[0]
        return out


def piecewise_polynomial_detrend(
    signal: np.ndarray,
    sampling_rate_hz: float,
    config: DetrendConfig = DetrendConfig(),
) -> np.ndarray:
    """Detrend ``signal`` with overlapping second-order fits.

    Returns the normalised signal (baseline ~ 1.0).  Overlapping windows
    are blended with triangular weights, which minimises the fit error
    at the window ends exactly as the paper prescribes ("detrended with
    overlap sections to minimize the error of the fitted polynomial at
    both ends").
    """
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 1:
        raise ValueError(f"signal must be 1-D, got shape {signal.shape}")
    return piecewise_polynomial_detrend_rows(
        signal[np.newaxis, :], sampling_rate_hz, config
    )[0]


def piecewise_polynomial_detrend_rows(
    signals: np.ndarray,
    sampling_rate_hz: float,
    config: DetrendConfig = DetrendConfig(),
) -> np.ndarray:
    """Detrend every row of a ``(rows, samples)`` matrix in one pass.

    The window partitioning, taper weights, blending and normalisation
    are computed once and applied to all rows with array arithmetic,
    and the robust polynomial fits of a window run as one
    :func:`fit_baseline_rows` call over every row.  That kernel's
    arithmetic is per-row independent, so every row's result is
    bit-identical to :func:`piecewise_polynomial_detrend` on that row
    alone and batched analysis is bit-identical to serial — the
    property the serving stack's dynamic batcher and the fused
    columnar path (:mod:`repro.dsp.fused`) rely on.
    """
    signals = np.asarray(signals, dtype=float)
    if signals.ndim != 2:
        raise ValueError(f"signals must be 2-D (rows, samples), got {signals.shape}")
    check_positive("sampling_rate_hz", sampling_rate_hz)
    n_rows, n = signals.shape
    if n == 0 or n_rows == 0:
        return signals.copy()

    window = max(int(round(config.window_s * sampling_rate_hz)), config.order + 2)
    window = min(window, n)
    step = max(int(round(window * (1.0 - config.overlap_fraction))), 1)

    accumulated = np.zeros_like(signals)
    weights = np.zeros(n)
    start = 0
    while True:
        stop = min(start + window, n)
        segments = signals[:, start:stop]
        baselines = fit_baseline_rows(segments, config.order)
        # Guard against a degenerate fit crossing zero.
        safe = np.where(np.abs(baselines) > 1e-12, baselines, 1e-12)
        detrended = segments / safe
        length = stop - start
        taper = np.minimum(np.arange(1, length + 1), np.arange(length, 0, -1)).astype(float)
        accumulated[:, start:stop] += detrended * taper
        weights[start:stop] += taper
        if stop >= n:
            break
        start += step
    return accumulated / weights


def global_polynomial_detrend(
    signal: np.ndarray,
    order: int,
    robust: bool = True,
) -> np.ndarray:
    """Single global polynomial fit over the whole record.

    Provided for the §VI-C ablation: low orders under-fit long records
    (residual drift), and — with ``robust=False``, the plain
    least-squares fit the paper discusses — high orders over-fit and
    deform peaks.
    """
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 1:
        raise ValueError(f"signal must be 1-D, got shape {signal.shape}")
    if order < 0:
        raise ValueError(f"order must be >= 0, got {order}")
    baseline = _fit_baseline(signal, order, n_iterations=3 if robust else 1)
    safe = np.where(np.abs(baseline) > 1e-12, baseline, 1e-12)
    return signal / safe


def residual_drift(detrended: np.ndarray, sampling_rate_hz: float, block_s: float = 5.0) -> float:
    """RMS deviation of the block-median baseline from 1.0.

    A quality metric for detrending: block medians are insensitive to
    peaks, so residual deviation measures uncorrected drift rather than
    signal content.
    """
    detrended = np.asarray(detrended, dtype=float)
    check_positive("sampling_rate_hz", sampling_rate_hz)
    check_positive("block_s", block_s)
    block = max(int(round(block_s * sampling_rate_hz)), 1)
    n_blocks = max(detrended.shape[0] // block, 1)
    medians = [
        float(np.median(detrended[i * block : (i + 1) * block]))
        for i in range(n_blocks)
        if detrended[i * block : (i + 1) * block].size
    ]
    if not medians:
        return 0.0
    deviations = np.asarray(medians) - 1.0
    return float(np.sqrt(np.mean(deviations**2)))
