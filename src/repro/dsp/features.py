"""Per-peak feature vectors for particle classification.

Figure 16 of the paper plots each particle's dip amplitude at 500 kHz
against its amplitude at 2500 kHz; the three populations (3.58 µm beads,
7.8 µm beads, blood cells) form separable clusters because the bead
response is flat in frequency while the cell response rolls off.  The
:class:`FeatureExtractor` turns detected peaks into exactly those
feature vectors, selecting the acquisition channels nearest the
requested feature frequencies.
"""

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro._util.errors import ConfigurationError
from repro.dsp.peakdetect import DetectedPeak, PeakReport

#: The Figure 16 feature axes.
DEFAULT_FEATURE_FREQUENCIES_HZ: Tuple[float, ...] = (500e3, 2500e3)


@dataclass(frozen=True)
class PeakFeatures:
    """Feature vector of one peak: amplitudes at the feature carriers."""

    time_s: float
    vector: np.ndarray
    width_s: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "vector", np.asarray(self.vector, dtype=float))


@dataclass(frozen=True)
class FeatureExtractor:
    """Maps detected peaks to amplitude features at chosen carriers.

    Parameters
    ----------
    carrier_frequencies_hz:
        The acquisition's carrier set (channel ordering).
    feature_frequencies_hz:
        The carriers to use as features; each must be within
        ``tolerance_hz`` of an actual carrier.
    """

    carrier_frequencies_hz: Tuple[float, ...]
    feature_frequencies_hz: Tuple[float, ...] = DEFAULT_FEATURE_FREQUENCIES_HZ
    tolerance_hz: float = 1e5

    def __post_init__(self) -> None:
        carriers = tuple(float(f) for f in self.carrier_frequencies_hz)
        features = tuple(float(f) for f in self.feature_frequencies_hz)
        if not carriers:
            raise ConfigurationError("carrier_frequencies_hz must be non-empty")
        if not features:
            raise ConfigurationError("feature_frequencies_hz must be non-empty")
        object.__setattr__(self, "carrier_frequencies_hz", carriers)
        object.__setattr__(self, "feature_frequencies_hz", features)
        # Fail fast if a requested feature frequency has no carrier.
        object.__setattr__(self, "_channel_indices", tuple(self._resolve_channels()))

    def _resolve_channels(self) -> List[int]:
        indices = []
        for wanted in self.feature_frequencies_hz:
            errors = [abs(carrier - wanted) for carrier in self.carrier_frequencies_hz]
            best = int(np.argmin(errors))
            if errors[best] > self.tolerance_hz:
                raise ConfigurationError(
                    f"no carrier within {self.tolerance_hz:.0f} Hz of requested "
                    f"feature frequency {wanted:.0f} Hz"
                )
            indices.append(best)
        return indices

    @property
    def channel_indices(self) -> Tuple[int, ...]:
        """Acquisition channel index per feature dimension."""
        return self._channel_indices

    @property
    def n_features(self) -> int:
        """Dimensionality of the feature vectors."""
        return len(self.feature_frequencies_hz)

    # ------------------------------------------------------------------
    def features_for_peak(self, peak: DetectedPeak) -> PeakFeatures:
        """Feature vector of a single detected peak."""
        self._check_channels(peak)
        vector = peak.amplitudes[list(self._channel_indices)]
        return PeakFeatures(time_s=peak.time_s, vector=vector, width_s=peak.width_s)

    def _check_channels(self, peak: DetectedPeak) -> None:
        for channel in self._channel_indices:
            if channel >= peak.amplitudes.shape[0]:
                raise ConfigurationError(
                    f"peak has {peak.amplitudes.shape[0]} channels, "
                    f"feature needs channel {channel}"
                )

    def _amplitude_matrix(self, report: PeakReport) -> np.ndarray:
        """One ``(n_peaks, n_features)`` gather across the whole report.

        Stacking every peak's amplitude vector and selecting the
        feature channels as a single fancy-index replaces the old
        peak-at-a-time loop; each output row is the same elements the
        per-peak ``amplitudes[channels]`` gather would copy.
        """
        for peak in report.peaks:
            self._check_channels(peak)
        stacked = np.stack([peak.amplitudes for peak in report.peaks])
        return stacked[:, list(self._channel_indices)]

    def features_for_report(self, report: PeakReport) -> List[PeakFeatures]:
        """Feature vectors for every peak in a report."""
        if not report.peaks:
            return []
        matrix = self._amplitude_matrix(report)
        return [
            PeakFeatures(time_s=peak.time_s, vector=matrix[row], width_s=peak.width_s)
            for row, peak in enumerate(report.peaks)
        ]

    def feature_matrix(self, report: PeakReport) -> np.ndarray:
        """(n_peaks, n_features) matrix for vectorised classification."""
        if not report.peaks:
            return np.empty((0, self.n_features))
        return self._amplitude_matrix(report)
