"""Channel geometry (paper Figure 6 and §VI-A).

The measurement pore is a 30 µm wide, 20 µm high, 500 µm long channel
cast in PDMS and bonded over the electrode array.  Its cross-section
sets the conversion between volumetric flow rate and particle velocity,
and its narrowness is what serialises particles so they pass the
electrodes one at a time.
"""

from dataclasses import dataclass

from repro._util.units import MICRO, MINUTE, micrometer
from repro._util.validation import check_positive


@dataclass(frozen=True)
class MicrofluidicChannel:
    """Rectangular measurement pore.

    Defaults are the paper's fabricated dimensions.
    """

    width_m: float = micrometer(30.0)
    height_m: float = micrometer(20.0)
    length_m: float = micrometer(500.0)

    def __post_init__(self) -> None:
        check_positive("width_m", self.width_m)
        check_positive("height_m", self.height_m)
        check_positive("length_m", self.length_m)

    @property
    def cross_section_m2(self) -> float:
        """Cross-sectional area of the pore."""
        return self.width_m * self.height_m

    @property
    def volume_liters(self) -> float:
        """Pore volume in litres (1 m^3 = 1000 L)."""
        return self.cross_section_m2 * self.length_m * 1000.0

    # ------------------------------------------------------------------
    def velocity_for_flow_rate(self, flow_rate_ul_min: float) -> float:
        """Mean particle velocity (m/s) at a volumetric rate in µL/min.

        Plug-flow mean: v = Q / A.  At the paper's 0.08 µL/min this gives
        ~2.2 mm/s, which over the 45 µm sensing length yields the ~20 ms
        dips of Figure 11.
        """
        check_positive("flow_rate_ul_min", flow_rate_ul_min)
        rate_m3_s = flow_rate_ul_min * MICRO * 1e-3 / MINUTE
        return rate_m3_s / self.cross_section_m2

    def flow_rate_for_velocity(self, velocity_m_s: float) -> float:
        """Inverse of :meth:`velocity_for_flow_rate` (returns µL/min)."""
        check_positive("velocity_m_s", velocity_m_s)
        rate_m3_s = velocity_m_s * self.cross_section_m2
        return rate_m3_s / MICRO * 1e3 * MINUTE

    def transit_time_s(self, flow_rate_ul_min: float) -> float:
        """Time a particle spends inside the full 500 µm pore."""
        return self.length_m / self.velocity_for_flow_rate(flow_rate_ul_min)

    def fits_particle(self, diameter_m: float) -> bool:
        """Whether a particle can physically enter the pore."""
        check_positive("diameter_m", diameter_m)
        return diameter_m < min(self.width_m, self.height_m)
