"""Dilution-series planning (the Fig 12/13 laboratory workflow).

"We diluted the 7.8 µm and 3.58 µm beads with PBS, which is a commonly
used biological buffer ... We diluted at different concentrations to
evaluate the empirical peak detection."

:class:`DilutionSeries` plans and executes that protocol: a stock
suspension, a ladder of dilution factors, and a pipetting-error model
(real serial dilution compounds small volumetric errors at every
step).  The executed series returns the *intended* and *realised*
samples so calibration code can distinguish protocol error from sensor
error.
"""

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro._util.errors import ValidationError
from repro._util.rng import RngLike, ensure_rng
from repro._util.validation import check_in_range, check_positive
from repro.particles.sample import Sample


@dataclass(frozen=True)
class DilutionStep:
    """One prepared dilution: intended factor and realised sample."""

    intended_factor: float
    realised_factor: float
    sample: Sample

    @property
    def factor_error(self) -> float:
        """Relative deviation of the realised factor."""
        return abs(self.realised_factor - self.intended_factor) / self.intended_factor


@dataclass(frozen=True)
class DilutionSeries:
    """A ladder of dilutions from one stock.

    Parameters
    ----------
    factors:
        Intended cumulative dilution factors, each >= 1 (1 = neat
        stock), strictly increasing.
    pipetting_cv:
        Coefficient of variation of each pipetted volume; factor errors
        compound as sqrt(#steps) through the serial protocol.
    aliquot_volume_ul:
        Volume of the prepared aliquot at each concentration.
    """

    factors: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0)
    pipetting_cv: float = 0.02
    aliquot_volume_ul: float = 5.0

    def __post_init__(self) -> None:
        factors = tuple(float(f) for f in self.factors)
        if not factors:
            raise ValidationError("factors must be non-empty")
        if factors[0] < 1.0:
            raise ValidationError("factors must be >= 1")
        if any(b <= a for a, b in zip(factors, factors[1:])):
            raise ValidationError("factors must be strictly increasing")
        object.__setattr__(self, "factors", factors)
        check_in_range("pipetting_cv", self.pipetting_cv, 0.0, 0.5)
        check_positive("aliquot_volume_ul", self.aliquot_volume_ul)

    @property
    def n_steps(self) -> int:
        """Number of prepared concentrations."""
        return len(self.factors)

    # ------------------------------------------------------------------
    def execute(self, stock: Sample, rng: RngLike = None) -> List[DilutionStep]:
        """Prepare every dilution from ``stock``.

        Serial protocol: each rung is prepared from the previous one,
        so pipetting errors compound; realised counts are binomial
        draws from the source rung (a physical aliquot).
        """
        generator = ensure_rng(rng)
        steps: List[DilutionStep] = []
        current = stock
        realised_factor = 1.0
        previous_intended = 1.0
        for intended in self.factors:
            # Serial protocol: each rung is prepared from the previous
            # rung using the *intended* step ratio — the technician has
            # no way of knowing the realised factor, so errors compound.
            step_factor = intended / previous_intended
            previous_intended = intended
            if self.pipetting_cv > 0 and step_factor > 1.0:
                realised_step = step_factor * (
                    1.0 + generator.normal(0.0, self.pipetting_cv)
                )
                realised_step = max(realised_step, 1.0)
            else:
                realised_step = step_factor
            if realised_step > 1.0:
                current = current.dilute(realised_step)
            realised_factor *= realised_step
            aliquot = current.aliquot(
                min(self.aliquot_volume_ul, current.volume_ul), rng=generator
            )
            steps.append(
                DilutionStep(
                    intended_factor=intended,
                    realised_factor=realised_factor,
                    sample=aliquot,
                )
            )
        return steps

    # ------------------------------------------------------------------
    def expected_concentrations(
        self, stock: Sample, particle_type
    ) -> List[float]:
        """Intended concentration ladder for one species (per µL)."""
        base = stock.concentration_per_ul(particle_type)
        return [base / factor for factor in self.factors]
