"""Particle transport from the inlet well to the sensing region.

Converts a :class:`~repro.particles.sample.Sample` plus a flow schedule
into timed particle arrivals at the electrodes, including the two loss
mechanisms §VII-B blames for the Fig 12/13 under-counts:

* **Inlet settling** — beads sink in the inlet well and never enter the
  channel; heavier (larger) beads settle faster.  Modelled as a
  per-particle survival probability ``exp(-t / tau(d))`` with the
  settling time constant scaled by Stokes' law (tau ∝ 1/d²).
* **Wall adsorption** — a fixed per-particle probability of sticking to
  the PDMS channel walls.

Arrival times follow the pumped volume: a particle sitting at a random
position in the well arrives when its surrounding fluid parcel is drawn
through, making the arrival process Poisson-like at constant flow and
correctly modulated when the cipher changes the flow speed.
"""

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro._util.rng import RngLike, ensure_rng
from repro._util.validation import check_positive, check_probability
from repro.microfluidics.flow import FlowController
from repro.particles.sample import Particle, Sample


@dataclass(frozen=True)
class ParticleArrival:
    """One particle reaching the sensing region.

    ``velocity_m_s`` is the transit velocity at arrival time (set by the
    flow level active in that epoch), which determines the dip width.
    """

    time_s: float
    particle: Particle
    velocity_m_s: float


@dataclass(frozen=True)
class TransportModel:
    """Inlet-to-sensor transport with settling and adsorption losses.

    Parameters
    ----------
    settling_tau_s_at_7p8um:
        Settling time constant of a 7.8 µm bead; other diameters scale
        as (7.8 µm / d)² per Stokes' law.  Biological cells are close to
        neutrally buoyant, so ``cell_settling_factor`` multiplies their
        time constant.
    adsorption_probability:
        Chance a particle sticks to the channel wall and is never
        counted.
    """

    settling_tau_s_at_7p8um: float = 2400.0
    cell_settling_factor: float = 10.0
    adsorption_probability: float = 0.03
    reference_diameter_m: float = 7.8e-6

    def __post_init__(self) -> None:
        check_positive("settling_tau_s_at_7p8um", self.settling_tau_s_at_7p8um)
        check_positive("cell_settling_factor", self.cell_settling_factor)
        check_probability("adsorption_probability", self.adsorption_probability)
        check_positive("reference_diameter_m", self.reference_diameter_m)

    # ------------------------------------------------------------------
    def settling_tau_s(self, particle: Particle) -> float:
        """Settling time constant for ``particle`` (Stokes scaling)."""
        tau = self.settling_tau_s_at_7p8um * (
            self.reference_diameter_m / particle.diameter_m
        ) ** 2
        if not particle.particle_type.is_synthetic:
            tau *= self.cell_settling_factor
        return tau

    def survival_probability(self, particle: Particle, arrival_time_s: float) -> float:
        """Probability the particle reaches the sensor at ``arrival_time_s``."""
        if arrival_time_s < 0:
            raise ValueError(f"arrival_time_s must be >= 0, got {arrival_time_s}")
        settle = np.exp(-arrival_time_s / self.settling_tau_s(particle))
        return float(settle * (1.0 - self.adsorption_probability))

    # ------------------------------------------------------------------
    def schedule_arrivals(
        self,
        sample: Sample,
        flow: FlowController,
        duration_s: float,
        rng: RngLike = None,
    ) -> List[ParticleArrival]:
        """Simulate which particles arrive during ``duration_s`` and when.

        Each particle occupies a uniformly random fluid parcel of the
        sample; it arrives when the pump has drawn that much volume.
        Particles whose parcel is not reached within ``duration_s`` do
        not arrive; survivors are thinned by the loss model.  The result
        is sorted by time.
        """
        check_positive("duration_s", duration_s)
        generator = ensure_rng(rng)
        particles = sample.draw_particles(rng=generator)
        if not particles:
            return []

        pumped_ul = flow.volume_pumped_ul(0.0, duration_s)
        sample_ul = sample.volume_ul
        positions_ul = generator.uniform(0.0, sample_ul, size=len(particles))

        arrivals: List[ParticleArrival] = []
        for particle, position_ul in zip(particles, positions_ul):
            if position_ul > pumped_ul:
                continue  # parcel not drawn within the run
            time_s = self._time_for_volume(flow, position_ul, duration_s)
            if time_s is None:
                continue
            if generator.random() > self.survival_probability(particle, time_s):
                continue  # settled in the well or stuck to a wall
            arrivals.append(
                ParticleArrival(
                    time_s=time_s,
                    particle=particle,
                    velocity_m_s=flow.velocity_at(time_s),
                )
            )
        arrivals.sort(key=lambda a: a.time_s)
        return arrivals

    def expected_count(
        self,
        sample: Sample,
        flow: FlowController,
        duration_s: float,
    ) -> float:
        """Expected arrivals ignoring losses (the Fig 12/13 x-axis).

        This is the 'estimated' count computed from the manufacturer
        concentration: particles whose fluid parcel is pumped through.
        """
        check_positive("duration_s", duration_s)
        pumped_ul = flow.volume_pumped_ul(0.0, duration_s)
        fraction = min(pumped_ul / sample.volume_ul, 1.0)
        return sample.total_count * fraction

    # ------------------------------------------------------------------
    @staticmethod
    def _time_for_volume(
        flow: FlowController, volume_ul: float, duration_s: float
    ) -> Optional[float]:
        """Invert the cumulative pumped-volume function by bisection."""
        if volume_ul <= 0.0:
            return 0.0
        lo, hi = 0.0, duration_s
        if flow.volume_pumped_ul(0.0, hi) < volume_ul:
            return None
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if flow.volume_pumped_ul(0.0, mid) < volume_ul:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)
