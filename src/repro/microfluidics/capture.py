"""Antibody capture chamber (paper Figure 1).

"A probe-molecule (antibodies) coated microfluidic channel
pre-concentrate[s] target biomolecules (cells, viruses, proteins,
nucleic acids, etc.) of interest on the channel surface.  These
specifically bound cells are then released from the surface and then
flow though an electrical impedance sensor."

The chamber turns whole blood into an enriched suspension of the target
species before impedance counting — this is how a CD4 count selects
CD4+ cells out of all leukocytes.  Model parameters:

* ``capture_efficiency`` — fraction of target particles that bind;
* ``nonspecific_fraction`` — fraction of *non-target* particles
  retained by imperfect washing;
* ``release_efficiency`` — fraction of bound particles recovered by
  the release (elution) step;
* ``elution_volume_ul`` — output volume; smaller than the input volume
  means genuine pre-concentration.

Synthetic password beads carry no antibody epitopes, so they behave as
non-target particles; the password pipette is therefore mixed in
*after* capture (the protocol order of paper §II).
"""

from dataclasses import dataclass
from typing import Tuple

from repro._util.errors import ConfigurationError
from repro._util.rng import RngLike, ensure_rng
from repro._util.validation import check_in_range, check_positive
from repro.particles.sample import Sample


@dataclass(frozen=True)
class CaptureChamber:
    """Antibody-coated pre-concentration chamber.

    Parameters
    ----------
    target_type_name:
        Name of the particle species the antibody coating binds.
    """

    target_type_name: str
    capture_efficiency: float = 0.90
    nonspecific_fraction: float = 0.02
    release_efficiency: float = 0.95
    elution_volume_ul: float = 5.0

    def __post_init__(self) -> None:
        if not self.target_type_name:
            raise ConfigurationError("target_type_name must be non-empty")
        check_in_range("capture_efficiency", self.capture_efficiency, 0.0, 1.0)
        check_in_range("nonspecific_fraction", self.nonspecific_fraction, 0.0, 1.0)
        check_in_range("release_efficiency", self.release_efficiency, 0.0, 1.0)
        check_positive("elution_volume_ul", self.elution_volume_ul)

    # ------------------------------------------------------------------
    @property
    def target_yield(self) -> float:
        """End-to-end fraction of target particles recovered."""
        return self.capture_efficiency * self.release_efficiency

    def enrichment_factor(self, input_volume_ul: float) -> float:
        """Concentration gain for the target species.

        capture*release survival times the volume reduction from input
        to elution volume.
        """
        check_positive("input_volume_ul", input_volume_ul)
        return self.target_yield * input_volume_ul / self.elution_volume_ul

    def selectivity(self) -> float:
        """Target yield over non-target carryover — the purification
        power of the antibody coating."""
        if self.nonspecific_fraction == 0.0:
            return float("inf")
        return self.target_yield / (self.nonspecific_fraction * self.release_efficiency)

    # ------------------------------------------------------------------
    def process(self, sample: Sample, rng: RngLike = None) -> Tuple[Sample, Sample]:
        """Run one sample through capture-wash-release.

        Returns ``(eluate, waste)``: the enriched output suspension and
        everything washed away.  Counts are binomial draws, so repeated
        runs fluctuate realistically.
        """
        generator = ensure_rng(rng)
        eluate_counts = {}
        waste_counts = {}
        for particle_type, count in sample.counts.items():
            if particle_type.name == self.target_type_name:
                bound = int(generator.binomial(count, self.capture_efficiency))
            else:
                bound = int(generator.binomial(count, self.nonspecific_fraction))
            released = int(generator.binomial(bound, self.release_efficiency))
            if released:
                eluate_counts[particle_type] = released
            lost = count - released
            if lost:
                waste_counts[particle_type] = lost
        eluate = Sample(
            volume_liters=self.elution_volume_ul * 1e-6, counts=eluate_counts
        )
        waste = Sample(volume_liters=sample.volume_liters, counts=waste_counts)
        return eluate, waste

    # ------------------------------------------------------------------
    def blood_equivalent_concentration(
        self,
        measured_eluate_concentration_per_ul: float,
        input_volume_ul: float,
    ) -> float:
        """Map a measured eluate concentration back to the blood value.

        Divides out the (deterministic part of the) enrichment so the
        diagnostic thresholds, which are defined on blood, still apply.
        """
        if measured_eluate_concentration_per_ul < 0:
            raise ConfigurationError("measured concentration must be >= 0")
        factor = self.enrichment_factor(input_volume_ul)
        if factor == 0.0:
            raise ConfigurationError("chamber has zero target yield")
        return measured_eluate_concentration_per_ul / factor
