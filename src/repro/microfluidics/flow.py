"""Flow-rate control and the quantised speed levels used by the cipher.

The third component of the encryption key, ``S(t)``, is the channel flow
speed (paper §IV-A): changing the speed stretches or compresses dip
widths, concealing the width signature of a particle type.  §VI-B uses
16 discrete speeds (4-bit resolution).  :class:`FlowSpeedTable` maps key
levels to flow rates; :class:`FlowController` tracks the active level
over time so the decryptor can undo width scaling per epoch.
"""

import bisect
from dataclasses import dataclass, field
from typing import List, Tuple

from repro._util.errors import ConfigurationError
from repro._util.validation import check_positive
from repro.microfluidics.channel import MicrofluidicChannel

#: Paper's nominal operating rate (§VII intro / Figure 11 analysis).
NOMINAL_FLOW_RATE_UL_MIN = 0.08


@dataclass(frozen=True)
class FlowSpeedTable:
    """Quantised flow-rate levels available to the key schedule.

    Levels are geometrically spaced between ``min_rate`` and
    ``max_rate`` so each step scales dip widths by a constant factor —
    this keeps every level equally distinguishable to the decryptor
    while spanning a wide width range for the eavesdropper.
    """

    n_levels: int = 16
    min_rate_ul_min: float = 0.04
    max_rate_ul_min: float = 0.10

    def __post_init__(self) -> None:
        if self.n_levels < 1:
            raise ConfigurationError(f"n_levels must be >= 1, got {self.n_levels}")
        check_positive("min_rate_ul_min", self.min_rate_ul_min)
        check_positive("max_rate_ul_min", self.max_rate_ul_min)
        if self.max_rate_ul_min < self.min_rate_ul_min:
            raise ConfigurationError("max_rate_ul_min must be >= min_rate_ul_min")

    @property
    def resolution_bits(self) -> int:
        """Bits needed to represent a level (the ``R_flow`` of Eq. 2)."""
        return max(1, (self.n_levels - 1).bit_length())

    def rate_for_level(self, level: int) -> float:
        """Flow rate (µL/min) for key level ``level`` in [0, n_levels)."""
        if not 0 <= level < self.n_levels:
            raise ConfigurationError(
                f"flow level {level} out of range [0, {self.n_levels})"
            )
        if self.n_levels == 1:
            return self.min_rate_ul_min
        ratio = self.max_rate_ul_min / self.min_rate_ul_min
        return self.min_rate_ul_min * ratio ** (level / (self.n_levels - 1))

    def level_for_rate(self, rate_ul_min: float) -> int:
        """Nearest key level for a flow rate (used by calibration)."""
        check_positive("rate_ul_min", rate_ul_min)
        best_level = 0
        best_error = float("inf")
        for level in range(self.n_levels):
            error = abs(self.rate_for_level(level) - rate_ul_min)
            if error < best_error:
                best_level, best_error = level, error
        return best_level

    def all_rates(self) -> List[float]:
        """All level rates in level order."""
        return [self.rate_for_level(level) for level in range(self.n_levels)]


@dataclass
class FlowController:
    """Time-indexed record of the active flow rate.

    The controller is commanded by the encryptor at epoch boundaries and
    queried by the transport model (to schedule arrivals) and by the
    decryptor (to undo width scaling).  Rates are piecewise constant.
    """

    channel: MicrofluidicChannel = field(default_factory=MicrofluidicChannel)
    initial_rate_ul_min: float = NOMINAL_FLOW_RATE_UL_MIN

    def __post_init__(self) -> None:
        check_positive("initial_rate_ul_min", self.initial_rate_ul_min)
        self._switch_times: List[float] = [0.0]
        self._rates: List[float] = [self.initial_rate_ul_min]

    def set_rate(self, time_s: float, rate_ul_min: float) -> None:
        """Command a new rate effective at ``time_s`` (non-decreasing)."""
        check_positive("rate_ul_min", rate_ul_min)
        if time_s < self._switch_times[-1]:
            raise ConfigurationError(
                f"flow commands must be time-ordered: {time_s} < {self._switch_times[-1]}"
            )
        if time_s == self._switch_times[-1]:
            self._rates[-1] = rate_ul_min
        else:
            self._switch_times.append(float(time_s))
            self._rates.append(rate_ul_min)

    def rate_at(self, time_s: float) -> float:
        """Active flow rate (µL/min) at ``time_s``."""
        if time_s < 0:
            raise ConfigurationError(f"time_s must be >= 0, got {time_s}")
        index = bisect.bisect_right(self._switch_times, time_s) - 1
        return self._rates[index]

    def velocity_at(self, time_s: float) -> float:
        """Particle velocity (m/s) at ``time_s``."""
        return self.channel.velocity_for_flow_rate(self.rate_at(time_s))

    def volume_pumped_ul(self, start_s: float, end_s: float) -> float:
        """Liquid volume (µL) pushed through in [start_s, end_s]."""
        if end_s < start_s:
            raise ConfigurationError("end_s must be >= start_s")
        total = 0.0
        boundaries = self._switch_times + [float("inf")]
        for i, rate in enumerate(self._rates):
            seg_start = max(start_s, boundaries[i])
            seg_end = min(end_s, boundaries[i + 1])
            if seg_end > seg_start:
                total += rate * (seg_end - seg_start) / 60.0
        return total

    def segments(self) -> List[Tuple[float, float]]:
        """(switch_time_s, rate_ul_min) history, oldest first."""
        return list(zip(self._switch_times, self._rates))
