"""Peristaltic pump model (Harvard Apparatus Pico Plus Elite stand-in).

The pump withdraws fluid through the channel at a commanded rate.  Real
peristaltic pumps have a bounded rate range, quantised settings, and a
small periodic pulsatility from the rollers; all three are modelled so
the flow-speed key component is realistic rather than an ideal knob.
"""

from dataclasses import dataclass

import numpy as np

from repro._util.errors import ConfigurationError
from repro._util.validation import check_positive


@dataclass
class PeristalticPump:
    """Syringe/peristaltic pump with bounded, quantised rate control.

    Parameters
    ----------
    min_rate_ul_min, max_rate_ul_min:
        Supported rate range.
    rate_step_ul_min:
        Rate quantisation of the pump firmware.
    pulsatility_fraction:
        Peak relative rate ripple caused by the rollers (0 disables).
    pulsation_frequency_hz:
        Roller passage frequency.
    """

    min_rate_ul_min: float = 0.01
    max_rate_ul_min: float = 1.0
    rate_step_ul_min: float = 0.001
    pulsatility_fraction: float = 0.01
    pulsation_frequency_hz: float = 0.5

    def __post_init__(self) -> None:
        check_positive("min_rate_ul_min", self.min_rate_ul_min)
        check_positive("max_rate_ul_min", self.max_rate_ul_min)
        check_positive("rate_step_ul_min", self.rate_step_ul_min)
        check_positive("pulsation_frequency_hz", self.pulsation_frequency_hz)
        if not 0.0 <= self.pulsatility_fraction < 1.0:
            raise ConfigurationError("pulsatility_fraction must be in [0, 1)")
        if self.max_rate_ul_min < self.min_rate_ul_min:
            raise ConfigurationError("max_rate_ul_min must be >= min_rate_ul_min")
        self._commanded_rate = self.min_rate_ul_min

    def command_rate(self, rate_ul_min: float) -> float:
        """Command a rate; returns the actually achievable rate.

        The pump clamps to its range and quantises to its step size, so
        callers must use the *returned* value for decryption bookkeeping.
        """
        check_positive("rate_ul_min", rate_ul_min)
        clamped = min(max(rate_ul_min, self.min_rate_ul_min), self.max_rate_ul_min)
        quantised = round(clamped / self.rate_step_ul_min) * self.rate_step_ul_min
        quantised = min(max(quantised, self.min_rate_ul_min), self.max_rate_ul_min)
        self._commanded_rate = quantised
        return quantised

    @property
    def commanded_rate_ul_min(self) -> float:
        """The currently commanded (quantised) rate."""
        return self._commanded_rate

    def instantaneous_rate(self, time_s) -> np.ndarray:
        """Rate including roller pulsatility at time(s) ``time_s``."""
        t = np.asarray(time_s, dtype=float)
        ripple = self.pulsatility_fraction * np.sin(
            2.0 * np.pi * self.pulsation_frequency_hz * t
        )
        return self._commanded_rate * (1.0 + ripple)

    def supports_rate(self, rate_ul_min: float) -> bool:
        """Whether ``rate_ul_min`` is inside the pump's range."""
        return self.min_rate_ul_min <= rate_ul_min <= self.max_rate_ul_min
