"""Microfluidic substrate: channel, flow, pump, and particle transport.

Reproduces the paper's §III-C / Figure 6 channel (a 30 µm x 20 µm
measurement pore, 500 µm long, with dispersal wells at both ends), the
external peristaltic pump driving ~0.08 µL/min, and the transport
behaviour the evaluation observes: Poisson particle arrivals, transit
times that set peak widths (~20 ms), and the inlet-settling /
wall-adsorption losses responsible for the under-counts in Figures 12
and 13.

Flow speed is also one third of the encryption key (``S(t)``): the
:class:`~repro.microfluidics.flow.FlowSpeedTable` quantises the pump's
range into the discrete levels the key schedule draws from.
"""

from repro.microfluidics.capture import CaptureChamber
from repro.microfluidics.dilution import DilutionSeries, DilutionStep
from repro.microfluidics.channel import MicrofluidicChannel
from repro.microfluidics.flow import FlowController, FlowSpeedTable
from repro.microfluidics.pump import PeristalticPump
from repro.microfluidics.transport import ParticleArrival, TransportModel

__all__ = [
    "CaptureChamber",
    "DilutionSeries",
    "DilutionStep",
    "MicrofluidicChannel",
    "FlowController",
    "FlowSpeedTable",
    "PeristalticPump",
    "ParticleArrival",
    "TransportModel",
]
