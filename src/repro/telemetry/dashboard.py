"""The telemetry observer and the ``repro top`` terminal dashboard.

:class:`TelemetryObserver` is a drop-in
:class:`~repro.obs.observer.Observer` that additionally routes every
``observe()`` into an exponential quantile sketch
(:class:`~repro.telemetry.quantiles.QuantileRegistry`) and through the
:class:`~repro.telemetry.slo.SloEngine`'s latency hook.  Components
instrumented against the plain observer API pick all of this up
without change — the fleet scheduler, batcher, cloud server and
authenticator never learn telemetry exists.

:func:`render_dashboard` is a pure function from (metrics, quantiles,
SLO engine, now) to a fixed-width text frame, so the ``repro top``
output golden-files cleanly under a
:class:`~repro.obs.clock.ManualClock`.
"""

from typing import Any, List, Optional, Sequence

from repro.obs.clock import Clock
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import Observer
from repro.obs.tracing import Tracer
from repro.telemetry.quantiles import QuantileRegistry, merge_registries
from repro.telemetry.slo import DEFAULT_RULES, SloEngine, SloRule

WIDTH = 72


class TelemetryObserver(Observer):
    """An observer whose histograms also feed quantile sketches + SLOs.

    Parameters
    ----------
    quantiles:
        Sketch registry; a fresh one per observer by default so
        per-worker observers can be rolled up later.
    engine:
        SLO engine; built over ``rules`` and this observer's metrics
        registry when omitted.
    rules:
        SLO rules for the default-built engine.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
        clock: Optional[Clock] = None,
        quantiles: Optional[QuantileRegistry] = None,
        engine: Optional[SloEngine] = None,
        rules: Sequence[SloRule] = DEFAULT_RULES,
    ) -> None:
        super().__init__(tracer=tracer, metrics=metrics, events=events, clock=clock)
        self.quantiles = quantiles if quantiles is not None else QuantileRegistry()
        if engine is None:
            engine_clock = clock if clock is not None else self.tracer.clock
            engine = SloEngine(self.metrics, rules=rules, clock=engine_clock)
        self.engine = engine

    def observe(self, name: str, value: float) -> None:
        """Record into the reservoir histogram, the sketch, and the SLOs."""
        super().observe(name, value)
        self.quantiles.observe(name, value)
        self.engine.observe_hook(name, value)

    def tick(self, now_s: Optional[float] = None) -> None:
        """Snapshot SLO counters (delegates to the engine)."""
        self.engine.tick(now_s=now_s)


def rollup_quantiles(
    observers: Sequence[TelemetryObserver],
) -> QuantileRegistry:
    """Fleet-wide quantile roll-up across per-worker observers."""
    return merge_registries([observer.quantiles for observer in observers])


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------
def _rule_line(width: int, title: str) -> str:
    pad = max(0, width - len(title) - 5)
    return f"== {title} " + "=" * pad


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e9:
        return f"{int(value)}"
    return f"{value:.4g}"


def render_dashboard(
    metrics: MetricsRegistry,
    quantiles: QuantileRegistry,
    engine: Optional[SloEngine],
    now_s: float,
    width: int = WIDTH,
    max_rows: int = 30,
) -> str:
    """One ``repro top`` frame as plain text.

    Pure: reads instrument state, writes nothing, takes time as an
    argument — identical inputs render the identical frame.
    """
    lines: List[str] = []
    lines.append(_rule_line(width, f"fleet telemetry @ t={now_s:.1f}s"))

    if engine is not None:
        lines.append(_rule_line(width, "SLOs (burn = error-rate / budget)"))
        for status in engine.status(now_s=now_s):
            lines.append(status.format())

    snapshot = metrics.snapshot()
    counters = snapshot["counters"]
    gauges = snapshot["gauges"]
    if counters or gauges:
        lines.append(_rule_line(width, "counters & gauges"))
        rows: List[Any] = sorted(counters.items()) + sorted(
            (f"{name} (gauge)", value) for name, value in gauges.items()
        )
        for name, value in rows[:max_rows]:
            lines.append(f"{name:<44} {_format_value(value):>12}")
        if len(rows) > max_rows:
            lines.append(f"... {len(rows) - max_rows} more")

    quantile_summaries = quantiles.snapshot()
    if quantile_summaries:
        lines.append(_rule_line(width, "latency quantiles (exp-bucket sketch)"))
        header = (
            f"{'histogram':<26} {'count':>6} {'p50':>8} {'p95':>8} "
            f"{'p99':>8} {'max':>8}"
        )
        lines.append(header)
        for name, summary in sorted(quantile_summaries.items()):
            lines.append(
                f"{name:<26} {int(summary['count']):>6} "
                f"{summary['p50']:>8.4f} {summary['p95']:>8.4f} "
                f"{summary['p99']:>8.4f} {summary['max']:>8.4f}"
            )

    lines.append(_rule_line(width, "end"))
    return "\n".join(lines)


def render_observer(
    observer: TelemetryObserver, now_s: Optional[float] = None, width: int = WIDTH
) -> str:
    """Render one telemetry observer's full state as a dashboard frame."""
    now = observer.engine.clock() if now_s is None else now_s
    return render_dashboard(
        observer.metrics, observer.quantiles, observer.engine, now, width=width
    )
