"""Exponential-bucket quantile histograms with mergeable state.

The :mod:`repro.obs` reservoir histogram answers "roughly where is
p95" from a bounded sample; fleet SLOs need something stronger — a
sketch whose quantile error is *bounded by construction* and whose
state can be **merged** across workers for a fleet-wide roll-up.
:class:`ExponentialHistogram` provides both: buckets grow
geometrically by ``growth``, so any quantile estimate is within one
bucket (a relative error of ``growth - 1``) of the true value, and two
sketches over disjoint observation streams merge by adding bucket
counts.

:class:`RollingHistogram` windows the sketch over time: observations
land in the current sub-window slot and summaries merge only the slots
inside the window, so "p99 over the last five minutes" forgets old
load spikes.  Time comes from an injectable clock, never from the wall
directly, keeping rolling summaries replayable under
:class:`~repro.obs.clock.ManualClock`.

Everything here is synchronised: fleet workers share one sketch, and a
snapshot taken mid-``observe`` from another thread is internally
consistent (count, sum and bucket totals agree — no torn reads).
"""

import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro._util.errors import ConfigurationError
from repro.obs.clock import MONOTONIC_CLOCK, Clock

#: Default geometric bucket growth: quantiles are within ~15 % of truth.
DEFAULT_GROWTH = 1.15

#: Observations at or below this magnitude land in the zero bucket.
DEFAULT_MIN_VALUE = 1e-9


class ExponentialHistogram:
    """A mergeable quantile sketch over geometric buckets.

    Parameters
    ----------
    name:
        Instrument name (``serve.e2e_s`` style dotted path).
    growth:
        Bucket boundary ratio; bounds the relative quantile error at
        ``growth - 1``.  Must be > 1.
    min_value:
        Magnitude below which observations count into the zero bucket
        (negative observations are refused — every instrumented
        quantity here is a duration, size or count).
    """

    __slots__ = (
        "name", "growth", "min_value", "_log_growth", "_buckets",
        "_zero_count", "_count", "_sum", "_min", "_max", "_lock",
    )

    def __init__(
        self,
        name: str,
        growth: float = DEFAULT_GROWTH,
        min_value: float = DEFAULT_MIN_VALUE,
    ) -> None:
        if growth <= 1.0:
            raise ConfigurationError(f"growth must be > 1, got {growth}")
        if min_value <= 0.0:
            raise ConfigurationError(f"min_value must be > 0, got {min_value}")
        self.name = name
        self.growth = float(growth)
        self.min_value = float(min_value)
        self._log_growth = math.log(self.growth)
        self._buckets: Dict[int, int] = {}
        self._zero_count = 0
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _index_for(self, value: float) -> int:
        """Bucket index of ``value``; bucket ``i`` spans
        ``[min_value * growth**i, min_value * growth**(i+1))``."""
        return int(math.floor(math.log(value / self.min_value) / self._log_growth))

    def _upper_bound(self, index: int) -> float:
        return self.min_value * self.growth ** (index + 1)

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        """Add one observation (must be >= 0)."""
        value = float(value)
        if value < 0.0:
            raise ConfigurationError(
                f"histogram {self.name!r} observations must be >= 0, got {value}"
            )
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)
            if value <= self.min_value:
                self._zero_count += 1
            else:
                index = self._index_for(value)
                self._buckets[index] = self._buckets.get(index, 0) + 1

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Total observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Exact sum of observations."""
        return self._sum

    @property
    def mean(self) -> float:
        """Exact mean (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Quantile estimate, ``q`` in [0, 100].

        Walks the buckets in order until the target rank is covered and
        returns that bucket's upper bound, clamped to the exact
        min/max; relative error is bounded by ``growth - 1``.
        """
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError("percentile q must be within [0, 100]")
        with self._lock:
            return self._percentile_locked(q)

    def _percentile_locked(self, q: float) -> float:
        if self._count == 0:
            return 0.0
        assert self._min is not None and self._max is not None
        rank = q / 100.0 * self._count
        seen = self._zero_count
        if seen >= rank:
            return self._min
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                estimate = self._upper_bound(index)
                return max(self._min, min(self._max, estimate))
        return self._max

    def summary(self) -> Dict[str, float]:
        """count / mean / min / p50 / p95 / p99 / max, one lock hold."""
        with self._lock:
            low = self._min if self._min is not None else 0.0
            high = self._max if self._max is not None else 0.0
            return {
                "count": self._count,
                "mean": self._sum / self._count if self._count else 0.0,
                "min": low,
                "p50": self._percentile_locked(50.0),
                "p95": self._percentile_locked(95.0),
                "p99": self._percentile_locked(99.0),
                "max": high,
            }

    # ------------------------------------------------------------------
    def merge_from(self, other: "ExponentialHistogram") -> None:
        """Fold ``other``'s state into this sketch (fleet roll-up).

        Requires matching bucket geometry — merging differently shaped
        sketches would silently misplace counts.
        """
        if (other.growth, other.min_value) != (self.growth, self.min_value):
            raise ConfigurationError(
                f"cannot merge {other.name!r} into {self.name!r}: "
                "bucket geometry differs"
            )
        # Lock ordering by id() prevents a deadlock if two threads
        # merge the pair in opposite directions.
        first, second = sorted((self, other), key=id)
        with first._lock, second._lock:
            self._count += other._count
            self._sum += other._sum
            self._zero_count += other._zero_count
            for index, n in other._buckets.items():
                self._buckets[index] = self._buckets.get(index, 0) + n
            if other._min is not None:
                self._min = (
                    other._min if self._min is None else min(self._min, other._min)
                )
            if other._max is not None:
                self._max = (
                    other._max if self._max is None else max(self._max, other._max)
                )

    def copy(self) -> "ExponentialHistogram":
        """An independent snapshot of this sketch's state."""
        clone = ExponentialHistogram(
            self.name, growth=self.growth, min_value=self.min_value
        )
        with self._lock:
            clone._buckets = dict(self._buckets)
            clone._zero_count = self._zero_count
            clone._count = self._count
            clone._sum = self._sum
            clone._min = self._min
            clone._max = self._max
        return clone

    # ------------------------------------------------------------------
    # Wire state (cross-process roll-up)
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, object]:
        """Plain-dict dump of the full sketch state.

        Unlike :meth:`summary` (which keeps only derived quantiles),
        the state is *lossless*: a shard process ships it over the
        message transport and :meth:`from_state` rebuilds a sketch that
        merges exactly as the original would — the cross-shard p99 is
        computed from real bucket counts, never from per-shard
        percentiles.
        """
        with self._lock:
            return {
                "name": self.name,
                "growth": self.growth,
                "min_value": self.min_value,
                "buckets": dict(self._buckets),
                "zero_count": self._zero_count,
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
            }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "ExponentialHistogram":
        """Rebuild a sketch from :meth:`state` output (typed refusal)."""
        try:
            sketch = cls(
                str(state["name"]),
                growth=float(state["growth"]),  # type: ignore[arg-type]
                min_value=float(state["min_value"]),  # type: ignore[arg-type]
            )
            sketch._buckets = {
                int(index): int(n)
                for index, n in dict(state["buckets"]).items()  # type: ignore[call-overload]
            }
            sketch._zero_count = int(state["zero_count"])  # type: ignore[arg-type]
            sketch._count = int(state["count"])  # type: ignore[arg-type]
            sketch._sum = float(state["sum"])  # type: ignore[arg-type]
            sketch._min = None if state["min"] is None else float(state["min"])  # type: ignore[arg-type]
            sketch._max = None if state["max"] is None else float(state["max"])  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed histogram state: {exc}") from exc
        return sketch


class RollingHistogram:
    """An :class:`ExponentialHistogram` windowed over recent time.

    Keeps ``n_slots`` sub-window sketches covering ``window_s`` seconds
    in total; an observation lands in the slot for ``clock()`` and
    slots older than the window are recycled lazily.  ``summary()``
    merges only live slots, so percentiles cover *recent* behaviour.
    """

    def __init__(
        self,
        name: str,
        window_s: float = 300.0,
        n_slots: int = 6,
        growth: float = DEFAULT_GROWTH,
        min_value: float = DEFAULT_MIN_VALUE,
        clock: Clock = MONOTONIC_CLOCK,
    ) -> None:
        if window_s <= 0:
            raise ConfigurationError(f"window_s must be > 0, got {window_s}")
        if n_slots < 1:
            raise ConfigurationError(f"n_slots must be >= 1, got {n_slots}")
        self.name = name
        self.window_s = float(window_s)
        self.n_slots = int(n_slots)
        self.slot_s = self.window_s / self.n_slots
        self.growth = float(growth)
        self.min_value = float(min_value)
        self.clock = clock
        #: slot ring: (slot epoch, sketch); epoch = floor(now / slot_s).
        self._slots: List[Optional[Tuple[int, ExponentialHistogram]]] = [
            None
        ] * self.n_slots
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _sketch_for_now(self, now_s: float) -> ExponentialHistogram:
        epoch = int(math.floor(now_s / self.slot_s))
        position = epoch % self.n_slots
        slot = self._slots[position]
        if slot is None or slot[0] != epoch:
            sketch = ExponentialHistogram(
                self.name, growth=self.growth, min_value=self.min_value
            )
            self._slots[position] = (epoch, sketch)
            return sketch
        return slot[1]

    def observe(self, value: float, now_s: Optional[float] = None) -> None:
        """Record ``value`` into the current sub-window."""
        now = self.clock() if now_s is None else float(now_s)
        with self._lock:
            sketch = self._sketch_for_now(now)
        sketch.observe(value)

    def merged(self, now_s: Optional[float] = None) -> ExponentialHistogram:
        """One sketch merging every slot still inside the window."""
        now = self.clock() if now_s is None else float(now_s)
        current_epoch = int(math.floor(now / self.slot_s))
        merged = ExponentialHistogram(
            self.name, growth=self.growth, min_value=self.min_value
        )
        with self._lock:
            live = [
                sketch
                for slot in self._slots
                if slot is not None
                for epoch, sketch in (slot,)
                if current_epoch - epoch < self.n_slots
            ]
        for sketch in live:
            merged.merge_from(sketch)
        return merged

    def summary(self, now_s: Optional[float] = None) -> Dict[str, float]:
        """Windowed count / mean / min / p50 / p95 / p99 / max."""
        return self.merged(now_s).summary()


class QuantileRegistry:
    """Named :class:`ExponentialHistogram` instruments, created on use.

    The telemetry analogue of
    :class:`~repro.obs.metrics.MetricsRegistry`; sketches share bucket
    geometry so any two registries (one per fleet worker, say) can be
    rolled up with :func:`merge_registries`.
    """

    def __init__(
        self, growth: float = DEFAULT_GROWTH, min_value: float = DEFAULT_MIN_VALUE
    ) -> None:
        self.growth = float(growth)
        self.min_value = float(min_value)
        self._histograms: Dict[str, ExponentialHistogram] = {}
        self._lock = threading.Lock()

    def histogram(self, name: str) -> ExponentialHistogram:
        """Get or create the sketch ``name``."""
        with self._lock:
            sketch = self._histograms.get(name)
            if sketch is None:
                sketch = ExponentialHistogram(
                    name, growth=self.growth, min_value=self.min_value
                )
                self._histograms[name] = sketch
            return sketch

    def observe(self, name: str, value: float) -> None:
        """Record one observation into sketch ``name``."""
        self.histogram(name).observe(value)

    def names(self) -> Sequence[str]:
        """All sketch names, sorted."""
        with self._lock:
            return sorted(self._histograms)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Summaries of every sketch."""
        with self._lock:
            items = sorted(self._histograms.items())
        return {name: sketch.summary() for name, sketch in items}

    def state(self) -> Dict[str, object]:
        """Lossless plain-dict dump of every sketch (wire-friendly)."""
        with self._lock:
            items = sorted(self._histograms.items())
        return {
            "growth": self.growth,
            "min_value": self.min_value,
            "histograms": {name: sketch.state() for name, sketch in items},
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "QuantileRegistry":
        """Rebuild a registry from :meth:`state` output.

        The inverse of :meth:`state`; a rebuilt registry merges through
        :func:`merge_registries` exactly as the in-process original
        would, which is how per-shard telemetry crosses the process
        boundary for the fleet-wide roll-up.
        """
        try:
            registry = cls(
                growth=float(state["growth"]),  # type: ignore[arg-type]
                min_value=float(state["min_value"]),  # type: ignore[arg-type]
            )
            histograms = dict(state["histograms"])  # type: ignore[call-overload]
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed registry state: {exc}") from exc
        for name, sketch_state in histograms.items():
            registry._histograms[str(name)] = ExponentialHistogram.from_state(
                sketch_state
            )
        return registry


def merge_registries(registries: Sequence[QuantileRegistry]) -> QuantileRegistry:
    """Fleet-wide roll-up: merge per-worker registries into one.

    Sketch for sketch, bucket counts add; the merged p99 is the true
    cross-worker p99 (to bucket resolution), not an average of
    per-worker percentiles — averaging percentiles is the classic
    roll-up mistake this exists to avoid.
    """
    if not registries:
        raise ConfigurationError("merge_registries needs at least one registry")
    first = registries[0]
    merged = QuantileRegistry(growth=first.growth, min_value=first.min_value)
    for registry in registries:
        for name in registry.names():
            merged.histogram(name).merge_from(registry.histogram(name))
    return merged
