"""Deterministic stage profiler with folded-stack (flamegraph) output.

:class:`StageProfiler` times named stages on two injectable clocks —
wall (monotonic) and CPU (``time.process_time`` by default) — and
aggregates them by *call path*, so nested stages fold into
``parent;child`` lines exactly the way ``flamegraph.pl`` and speedscope
expect.  Under a :class:`~repro.obs.clock.ManualClock` pair the whole
profile is a pure function of the clock cranks, which is what lets the
tests golden-file it.

:func:`profile_pipeline` drives the paper's processing chain through
the profiler stage by stage — demodulate, detrend, threshold,
classify, authenticate — on a fixed synthetic capture, answering
"where does a diagnostic's compute go" with one command
(``python -m repro profile``).  It deliberately mirrors
:meth:`AcquisitionFrontEnd.acquire
<repro.hardware.acquisition.AcquisitionFrontEnd.acquire>` and
:meth:`PeakDetector.detect <repro.dsp.peakdetect.PeakDetector.detect>`
internals instead of calling them whole, because those public entry
points fuse the stages this profile exists to separate.
"""

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro._util.errors import ConfigurationError
from repro.obs.clock import MONOTONIC_CLOCK, Clock

#: Default CPU clock (process time: excludes sleeps and other processes).
CPU_CLOCK: Clock = time.process_time


@dataclass
class StageStat:
    """Aggregate timing of one call path."""

    path: str
    calls: int = 0
    wall_s: float = 0.0
    cpu_s: float = 0.0

    @property
    def name(self) -> str:
        """Leaf stage name (last path segment)."""
        return self.path.rsplit(";", 1)[-1]

    @property
    def depth(self) -> int:
        """Nesting depth (0 for a root stage)."""
        return self.path.count(";")


class StageProfiler:
    """Aggregating two-clock stage timer.

    Use as::

        profiler = StageProfiler()
        with profiler.stage("analysis"):
            with profiler.stage("detrend"):
                ...

    which records paths ``analysis`` and ``analysis;detrend``.  Not
    thread-safe by design — a profile is one thread's story; profile
    each worker separately and compare the folded outputs.
    """

    def __init__(
        self, wall_clock: Clock = MONOTONIC_CLOCK, cpu_clock: Clock = CPU_CLOCK
    ) -> None:
        self.wall_clock = wall_clock
        self.cpu_clock = cpu_clock
        self._stats: Dict[str, StageStat] = {}
        self._stack: List[str] = []

    # ------------------------------------------------------------------
    @contextmanager
    def stage(self, name: str) -> Iterator[StageStat]:
        """Time one stage; nests under any currently open stage."""
        if not name or ";" in name:
            raise ConfigurationError(
                f"stage name must be non-empty and ';'-free, got {name!r}"
            )
        path = ";".join(self._stack + [name])
        stat = self._stats.setdefault(path, StageStat(path))
        self._stack.append(name)
        wall0 = self.wall_clock()
        cpu0 = self.cpu_clock()
        try:
            yield stat
        finally:
            stat.cpu_s += self.cpu_clock() - cpu0
            stat.wall_s += self.wall_clock() - wall0
            stat.calls += 1
            self._stack.pop()

    # ------------------------------------------------------------------
    @property
    def stats(self) -> List[StageStat]:
        """Every recorded path, sorted by path."""
        return [self._stats[path] for path in sorted(self._stats)]

    def total_wall_s(self) -> float:
        """Wall time across root stages only (children are contained)."""
        return sum(s.wall_s for s in self._stats.values() if s.depth == 0)

    def self_wall_s(self, path: str) -> float:
        """Wall time of ``path`` minus its direct children (self time)."""
        stat = self._stats.get(path)
        if stat is None:
            raise ConfigurationError(f"unknown stage path {path!r}")
        prefix = path + ";"
        children = sum(
            s.wall_s
            for p, s in self._stats.items()
            if p.startswith(prefix) and ";" not in p[len(prefix):]
        )
        return max(0.0, stat.wall_s - children)

    def folded(self, scale: float = 1e6) -> str:
        """Folded-stack lines: ``path <self-time>`` per stage.

        ``scale`` converts seconds to the integer sample unit
        (default microseconds).  Feed straight to ``flamegraph.pl`` or
        paste into speedscope.
        """
        lines = []
        for path in sorted(self._stats):
            weight = int(round(self.self_wall_s(path) * scale))
            lines.append(f"{path} {weight}")
        return "\n".join(lines)

    def report(self) -> Dict[str, Dict[str, float]]:
        """Plain-dict dump: path -> calls / wall_s / cpu_s / self_wall_s."""
        return {
            path: {
                "calls": stat.calls,
                "wall_s": stat.wall_s,
                "cpu_s": stat.cpu_s,
                "self_wall_s": self.self_wall_s(path),
            }
            for path, stat in sorted(self._stats.items())
        }

    def format(self) -> str:
        """Indented table for terminal output."""
        lines = [f"{'stage':<38} {'calls':>5} {'wall ms':>9} {'cpu ms':>9}"]
        lines.append("-" * len(lines[0]))
        for stat in self.stats:
            label = "  " * stat.depth + stat.name
            lines.append(
                f"{label:<38} {stat.calls:>5} "
                f"{stat.wall_s * 1e3:>9.2f} {stat.cpu_s * 1e3:>9.2f}"
            )
        return "\n".join(lines)


def folded_from_tracer(tracer, scale: float = 1e6) -> str:
    """Folded-stack lines from a live :class:`~repro.obs.tracing.Tracer`.

    Turns a recorded span tree into the same flamegraph format the
    stage profiler emits (self time per path), so any instrumented run
    — not just :func:`profile_pipeline` — can be rendered as a flame
    graph.
    """
    weights: Dict[str, float] = {}

    def visit(span, prefix: str) -> None:
        path = f"{prefix};{span.name}" if prefix else span.name
        child_total = sum(child.duration_s for child in span.children)
        weights[path] = weights.get(path, 0.0) + max(
            0.0, span.duration_s - child_total
        )
        for child in span.children:
            visit(child, path)

    for root in tracer.roots:
        visit(root, "")
    return "\n".join(f"{path} {int(round(s * scale))}" for path, s in sorted(weights.items()))


# ---------------------------------------------------------------------------
# The pipeline profile driver
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PipelineProfile:
    """Result of one :func:`profile_pipeline` run."""

    profiler: StageProfiler
    n_events: int
    n_peaks: int
    n_classified: int
    auth_accepted: bool

    def format(self) -> str:
        head = (
            f"pipeline profile: {self.n_events} events -> {self.n_peaks} peaks "
            f"-> {self.n_classified} classified, auth "
            f"{'accepted' if self.auth_accepted else 'rejected'}"
        )
        return head + "\n" + self.profiler.format()


def profile_pipeline(
    duration_s: float = 8.0,
    n_particles: int = 60,
    seed: int = 0,
    profiler: Optional[StageProfiler] = None,
) -> PipelineProfile:
    """Profile the processing chain stage by stage on a fixed capture.

    Synthesises ``n_particles`` password-bead transits through a
    one-epoch plan (setup is *not* profiled — it is the experiment rig,
    not the pipeline), then times the five stages the paper's
    processing budget is spent on:

    ``demodulate``
        lock-in demodulate/filter/decimate of the noisy internal-rate
        signal to the recorded trace;
    ``detrend``
        piecewise polynomial baseline removal;
    ``threshold``
        dip thresholding and peak extraction;
    ``classify``
        per-peak feature extraction and Mahalanobis classification;
    ``authenticate``
        identifier recovery and constant-time registry matching.
    """
    import numpy as np

    from repro.auth.authenticator import ServerAuthenticator
    from repro.auth.enrollment import enroll_classifier
    from repro.core.config import MedSenConfig
    from repro.crypto.encryptor import SignalEncryptor
    from repro.dsp.features import FeatureExtractor
    from repro.dsp.peakdetect import PeakDetector
    from repro.dsp.detrend import piecewise_polynomial_detrend_rows
    from repro.experiments import FIGURE_CARRIERS_HZ, single_key_plan
    from repro.hardware.acquisition import AcquiredTrace
    from repro.microfluidics.channel import MicrofluidicChannel
    from repro.microfluidics.transport import ParticleArrival
    from repro.particles.sample import Particle
    from repro.physics.lockin import LockInAmplifier
    from repro.physics.noise import NoiseModel
    from repro.physics.peaks import synthesize_pulse_train
    from repro._util.errors import AuthenticationError, MedSenError
    from repro._util.rng import ensure_rng

    if duration_s <= 0:
        raise ConfigurationError(f"duration_s must be > 0, got {duration_s}")
    if n_particles < 1:
        raise ConfigurationError(f"n_particles must be >= 1, got {n_particles}")
    prof = profiler if profiler is not None else StageProfiler()
    rng = ensure_rng(seed)

    # --- setup (unprofiled): synthesise one capture of bead transits ---
    config = MedSenConfig()
    bead_type = config.alphabet.bead_types[0]
    plan = single_key_plan(active={1, 5, 9})
    channel = MicrofluidicChannel()
    velocity = channel.velocity_for_flow_rate(
        plan.flow_table.rate_for_level(plan.schedule.epochs[0].flow_level)
    )
    margin = min(1.0, duration_s / 4.0)
    arrival_times = np.linspace(margin, duration_s - margin, n_particles)
    arrivals = [
        ParticleArrival(float(t), Particle(bead_type, bead_type.diameter_m), velocity)
        for t in arrival_times
    ]
    encryptor = SignalEncryptor(carrier_frequencies_hz=FIGURE_CARRIERS_HZ)
    events = encryptor.events_for_arrivals(arrivals, plan)
    lockin = LockInAmplifier(carrier_frequencies_hz=FIGURE_CARRIERS_HZ)
    noise = NoiseModel()
    fractional = synthesize_pulse_train(
        events,
        n_channels=lockin.n_channels,
        sampling_rate_hz=lockin.internal_rate_hz,
        duration_s=duration_s,
    )
    noisy = noise.apply(fractional, lockin.internal_rate_hz, rng=rng)
    detector = PeakDetector()
    features = FeatureExtractor(carrier_frequencies_hz=FIGURE_CARRIERS_HZ)
    classifier = enroll_classifier(
        list(config.alphabet.bead_types),
        feature_frequencies_hz=features.feature_frequencies_hz,
        circuit=config.circuit,
        rng=rng,
    )
    authenticator = ServerAuthenticator(config.alphabet)

    # --- the profiled chain -------------------------------------------
    with prof.stage("pipeline"):
        with prof.stage("demodulate"):
            voltages = lockin.demodulate(noisy)
        trace = AcquiredTrace(
            voltages,
            sampling_rate_hz=lockin.output_rate_hz,
            carrier_frequencies_hz=lockin.carrier_frequencies_hz,
        )
        with prof.stage("detrend"):
            dips = 1.0 - piecewise_polynomial_detrend_rows(
                trace.voltages, trace.sampling_rate_hz, detector.detrend
            )
        with prof.stage("threshold"):
            report = detector._report_from_dips(dips, trace.sampling_rate_hz)
        with prof.stage("classify"):
            if report.peaks:
                matrix = features.feature_matrix(report)
                classification = classifier.classify(matrix)
                counts = ServerAuthenticator.counts_from_classification(
                    classification
                )
                n_classified = int(sum(round(c) for c in counts.values()))
            else:
                counts = {}
                n_classified = 0
        with prof.stage("authenticate"):
            flow_rate_ul_min = plan.flow_table.rate_for_level(
                plan.schedule.epochs[0].flow_level
            )
            pumped_volume_ul = flow_rate_ul_min * duration_s / 60.0
            bead_counts = {
                bead.name: counts.get(bead.name, 0.0)
                for bead in config.alphabet.bead_types
            }
            try:
                recovered, _ = authenticator.recover_identifier(
                    bead_counts, pumped_volume_ul
                )
                authenticator.register("profiled-user", recovered)
                decision = authenticator.authenticate(bead_counts, pumped_volume_ul)
                accepted = decision.accepted
            except (AuthenticationError, MedSenError):
                accepted = False

    return PipelineProfile(
        profiler=prof,
        n_events=len(events),
        n_peaks=report.count,
        n_classified=n_classified,
        auth_accepted=accepted,
    )
