"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SloRule` names a service-level objective over instruments
that already exist in a :class:`~repro.obs.metrics.MetricsRegistry`:

* ``ratio`` rules divide a *good*-event counter by a total (either an
  explicit total counter, or ``good + bad``) — availability,
  auth-rejection rate;
* ``latency`` rules count an observation as good when it lands at or
  under ``threshold_s`` — ingest latency.

The :class:`SloEngine` turns those rules into alerting state the way
site reliability practice does it: the **burn rate** is the observed
error rate divided by the error budget ``1 - objective`` (burn 1.0
exhausts the budget exactly at the window's end), evaluated over a
short and a long window simultaneously so a page needs both a real
spike *and* sustained damage.  Default thresholds follow the classic
multi-window table: page at burn >= 14.4, warn at >= 6.0.

Time is injectable; under a :class:`~repro.obs.clock.ManualClock` the
whole alerting history is a pure function of the observation stream.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro._util.errors import ConfigurationError
from repro.obs.clock import MONOTONIC_CLOCK, Clock
from repro.obs.metrics import MetricsRegistry

#: Multi-window burn thresholds (error-budget multiples).
PAGE_BURN = 14.4
WARN_BURN = 6.0

#: Default evaluation windows (seconds).
SHORT_WINDOW_S = 300.0
LONG_WINDOW_S = 3600.0


@dataclass(frozen=True)
class SloRule:
    """One objective over existing instruments.

    Parameters
    ----------
    name:
        Rule identifier (``availability``, ``ingest_latency`` ...).
    kind:
        ``"ratio"`` or ``"latency"``.
    objective:
        Target good fraction in (0, 1), e.g. ``0.99``.
    good, total, bad:
        Counter names for ratio rules.  Give ``total`` *or* ``bad``
        (total is then ``good + bad``), never both.
    histogram, threshold_s:
        For latency rules: the histogram observations are judged
        against, and the latency at or under which one counts as good.
    """

    name: str
    kind: str
    objective: float
    good: str = ""
    total: str = ""
    bad: str = ""
    histogram: str = ""
    threshold_s: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("ratio", "latency"):
            raise ConfigurationError(
                f"rule {self.name!r}: kind must be 'ratio' or 'latency', "
                f"got {self.kind!r}"
            )
        if not 0.0 < self.objective < 1.0:
            raise ConfigurationError(
                f"rule {self.name!r}: objective must be in (0, 1), "
                f"got {self.objective}"
            )
        if self.kind == "ratio":
            if not self.good:
                raise ConfigurationError(f"rule {self.name!r}: good counter required")
            if bool(self.total) == bool(self.bad):
                raise ConfigurationError(
                    f"rule {self.name!r}: give exactly one of total= or bad="
                )
        else:
            if not self.histogram:
                raise ConfigurationError(
                    f"rule {self.name!r}: histogram name required"
                )
            if self.threshold_s <= 0:
                raise ConfigurationError(
                    f"rule {self.name!r}: threshold_s must be > 0"
                )

    @property
    def error_budget(self) -> float:
        """Allowed bad fraction, ``1 - objective``."""
        return 1.0 - self.objective


#: The fleet's stock objectives, over instruments the serving and auth
#: layers already emit.
DEFAULT_RULES: Tuple[SloRule, ...] = (
    SloRule(
        name="availability",
        kind="ratio",
        objective=0.99,
        good="serve.completed",
        total="serve.submitted",
        description="fleet requests that complete",
    ),
    SloRule(
        name="ingest_latency",
        kind="latency",
        objective=0.95,
        histogram="serve.e2e_s",
        threshold_s=2.5,
        description="end-to-end request latency <= 2.5 s",
    ),
    SloRule(
        name="auth_acceptance",
        kind="ratio",
        objective=0.90,
        good="auth.accepted",
        bad="auth.rejected",
        description="authentication attempts that match a registered identity",
    ),
)


@dataclass
class SloStatus:
    """One rule's evaluated state at a point in time."""

    rule: SloRule
    good: float
    total: float
    compliance: float
    short_burn: float
    long_burn: float
    state: str  # "ok" | "warn" | "page" | "no_data"

    def format(self) -> str:
        """One dashboard line."""
        return (
            f"{self.rule.name:<16} {self.state:<7} "
            f"slo={self.rule.objective:.2%} met={self.compliance:.2%} "
            f"burn {self.short_burn:5.1f}/{self.long_burn:5.1f} "
            f"({self.good:.0f}/{self.total:.0f})"
        )


class SloEngine:
    """Evaluates :class:`SloRule` objectives against live metrics.

    The engine never scrapes instruments it doesn't own for latency
    rules — instead :meth:`observe_hook` is called in-line by the
    telemetry observer for every histogram observation, and the engine
    keeps its own good/total counters per rule.  Ratio rules read the
    named counters from ``registry`` at :meth:`tick` time.

    ``tick()`` appends one (time, good, total) snapshot row per rule;
    burn rates difference two snapshots, so the engine needs periodic
    ticks (the fleet scheduler's poll loop, or a test's manual clock)
    but no background thread.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        rules: Sequence[SloRule] = DEFAULT_RULES,
        clock: Clock = MONOTONIC_CLOCK,
        max_snapshots: int = 4096,
    ) -> None:
        if max_snapshots < 2:
            raise ConfigurationError("max_snapshots must be >= 2")
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate rule names in {names}")
        self.registry = registry
        self.rules = tuple(rules)
        self.clock = clock
        self.max_snapshots = max_snapshots
        #: rule -> [(t, good, total)] rings, oldest first.
        self._snapshots: Dict[str, List[Tuple[float, float, float]]] = {
            rule.name: [] for rule in self.rules
        }
        #: latency rules' own good/total tallies, fed by observe_hook.
        self._latency_counts: Dict[str, Tuple[float, float]] = {
            rule.name: (0.0, 0.0) for rule in self.rules if rule.kind == "latency"
        }

    # ------------------------------------------------------------------
    def observe_hook(self, name: str, value: float) -> None:
        """Judge one histogram observation against the latency rules.

        Called by :class:`~repro.telemetry.dashboard.TelemetryObserver`
        for every ``observe()``; cheap no-op for unrelated histograms.
        """
        for rule in self.rules:
            if rule.kind == "latency" and rule.histogram == name:
                good, total = self._latency_counts[rule.name]
                self._latency_counts[rule.name] = (
                    good + (1.0 if value <= rule.threshold_s else 0.0),
                    total + 1.0,
                )

    # ------------------------------------------------------------------
    def _current_counts(self, rule: SloRule) -> Tuple[float, float]:
        if rule.kind == "latency":
            return self._latency_counts[rule.name]
        good = self.registry.counter(rule.good).value
        if rule.total:
            total = self.registry.counter(rule.total).value
        else:
            total = good + self.registry.counter(rule.bad).value
        return good, total

    def tick(self, now_s: Optional[float] = None) -> None:
        """Record one snapshot row per rule (call periodically)."""
        now = self.clock() if now_s is None else float(now_s)
        for rule in self.rules:
            good, total = self._current_counts(rule)
            ring = self._snapshots[rule.name]
            ring.append((now, good, total))
            if len(ring) > self.max_snapshots:
                del ring[: len(ring) - self.max_snapshots]

    # ------------------------------------------------------------------
    def burn_rate(
        self, rule_name: str, window_s: float, now_s: Optional[float] = None
    ) -> float:
        """Error budget consumption speed over the trailing window.

        0.0 when the window saw no traffic (an idle service is not
        burning budget); snapshots older than the window are ignored,
        falling back to the oldest in-window row as the baseline.
        """
        rule = self._rule(rule_name)
        ring = self._snapshots[rule_name]
        if not ring:
            return 0.0
        now = self.clock() if now_s is None else float(now_s)
        horizon = now - window_s
        newest = ring[-1]
        baseline = None
        for row in ring:
            if row[0] >= horizon:
                baseline = row
                break
        if baseline is None or baseline is newest:
            # One in-window snapshot: treat the window as starting cold.
            baseline = (horizon, 0.0, 0.0)
        d_good = newest[1] - baseline[1]
        d_total = newest[2] - baseline[2]
        if d_total <= 0.0:
            return 0.0
        error_rate = 1.0 - d_good / d_total
        return error_rate / rule.error_budget

    def status(self, now_s: Optional[float] = None) -> List[SloStatus]:
        """Evaluate every rule: compliance, burn rates, alert state."""
        now = self.clock() if now_s is None else float(now_s)
        out = []
        for rule in self.rules:
            good, total = self._current_counts(rule)
            compliance = good / total if total > 0 else 1.0
            short = self.burn_rate(rule.name, SHORT_WINDOW_S, now_s=now)
            long = self.burn_rate(rule.name, LONG_WINDOW_S, now_s=now)
            if total <= 0:
                state = "no_data"
            elif short >= PAGE_BURN and long >= PAGE_BURN / 4:
                # A page needs the long window damaged too, or a single
                # bad minute after a quiet hour would wake someone.
                state = "page"
            elif short >= WARN_BURN:
                state = "warn"
            else:
                state = "ok"
            out.append(
                SloStatus(
                    rule=rule,
                    good=good,
                    total=total,
                    compliance=compliance,
                    short_burn=short,
                    long_burn=long,
                    state=state,
                )
            )
        return out

    def worst_state(self, now_s: Optional[float] = None) -> str:
        """The most severe rule state (for exit codes / banners)."""
        severity = {"no_data": 0, "ok": 1, "warn": 2, "page": 3}
        states = [status.state for status in self.status(now_s=now_s)]
        return max(states, key=lambda s: severity[s]) if states else "no_data"

    # ------------------------------------------------------------------
    def _rule(self, rule_name: str) -> SloRule:
        for rule in self.rules:
            if rule.name == rule_name:
                return rule
        raise ConfigurationError(f"unknown SLO rule {rule_name!r}")
