"""Fleet telemetry: quantile sketches, SLOs, profiling, benchmarks.

Builds on :mod:`repro.obs` (which stays dependency-free and
behaviour-neutral) with the operator-facing layer:

* :mod:`repro.telemetry.quantiles` — mergeable exponential-bucket
  histograms with bounded quantile error, rolling windows, and a
  cross-worker roll-up;
* :mod:`repro.telemetry.slo` — declarative SLO rules with
  multi-window burn-rate alerting;
* :mod:`repro.telemetry.dashboard` — the :class:`TelemetryObserver`
  drop-in and the pure-text ``repro top`` frame renderer;
* :mod:`repro.telemetry.profiler` — deterministic stage profiler with
  folded-stack (flamegraph) output and the pipeline profile driver;
* :mod:`repro.telemetry.bench` — the ``BENCH_*.json`` benchmark
  trajectory runner and its CI regression gate.
"""

from repro.telemetry.bench import (
    DEFAULT_AREAS,
    SCHEMA,
    Regression,
    compare_artifacts,
    load_artifact,
    make_artifact,
    run_area,
    run_benchmarks,
    write_artifact,
)
from repro.telemetry.dashboard import (
    TelemetryObserver,
    render_dashboard,
    render_observer,
    rollup_quantiles,
)
from repro.telemetry.profiler import (
    CPU_CLOCK,
    PipelineProfile,
    StageProfiler,
    StageStat,
    folded_from_tracer,
    profile_pipeline,
)
from repro.telemetry.quantiles import (
    ExponentialHistogram,
    QuantileRegistry,
    RollingHistogram,
    merge_registries,
)
from repro.telemetry.slo import (
    DEFAULT_RULES,
    LONG_WINDOW_S,
    PAGE_BURN,
    SHORT_WINDOW_S,
    WARN_BURN,
    SloEngine,
    SloRule,
    SloStatus,
)

__all__ = [
    "ExponentialHistogram",
    "RollingHistogram",
    "QuantileRegistry",
    "merge_registries",
    "SloRule",
    "SloEngine",
    "SloStatus",
    "DEFAULT_RULES",
    "PAGE_BURN",
    "WARN_BURN",
    "SHORT_WINDOW_S",
    "LONG_WINDOW_S",
    "TelemetryObserver",
    "render_dashboard",
    "render_observer",
    "rollup_quantiles",
    "StageProfiler",
    "StageStat",
    "PipelineProfile",
    "CPU_CLOCK",
    "profile_pipeline",
    "folded_from_tracer",
    "SCHEMA",
    "DEFAULT_AREAS",
    "Regression",
    "make_artifact",
    "load_artifact",
    "write_artifact",
    "compare_artifacts",
    "run_area",
    "run_benchmarks",
]
