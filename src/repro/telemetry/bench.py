"""Benchmark trajectory: versioned artifacts and a regression gate.

``python -m repro bench`` runs the ``collect()`` entry points of the
area benchmarks under ``benchmarks/`` and writes one
``BENCH_<area>.json`` artifact per area at the repository root.  The
committed artifacts form the *benchmark trajectory*: every commit
that moves a number re-generates them, so the repo's history doubles
as a performance record, and CI compares a fresh run against the
committed baseline and fails on regressions beyond each metric's
tolerance band.

Artifact schema (``medsen-bench/v1``)::

    {
      "schema": "medsen-bench/v1",
      "area": "throughput",
      "quick": true,
      "metrics": {
        "speedup_8x": {
          "value": 3.4,
          "unit": "ratio",
          "direction": "higher",   # higher | lower | near
          "tolerance": 0.35,       # relative band
          "gate": true             # participates in the CI gate
        }
      }
    }

Gating policy: host-dependent wall-clock metrics are recorded for the
trajectory but **not** gated (``gate: false``) — CI machines are too
noisy.  Gated metrics are dimensionless ratios and deterministic
counts, which a code change can move but a slow runner cannot.
Artifacts deliberately carry no timestamps or hostnames, so
regenerating on an identical tree yields an identical file.
"""

import importlib.util
import json
import os
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro._util.errors import ConfigurationError, ValidationError

SCHEMA = "medsen-bench/v1"

#: Areas with ``collect()`` entry points, run by default.
DEFAULT_AREAS = ("throughput", "end_to_end", "scaling", "failover", "dsp")

_DIRECTIONS = ("higher", "lower", "near")


@dataclass(frozen=True)
class Regression:
    """One gated metric outside its tolerance band."""

    area: str
    metric: str
    baseline: float
    measured: float
    direction: str
    tolerance: float

    def format(self) -> str:
        return (
            f"{self.area}.{self.metric}: measured {self.measured:.4g} vs "
            f"baseline {self.baseline:.4g} (direction {self.direction}, "
            f"tolerance {self.tolerance:.0%})"
        )


def _check_metric(name: str, spec: Dict) -> None:
    if not isinstance(spec, dict):
        raise ValidationError(f"metric {name!r}: spec must be a dict")
    for key in ("value", "unit", "direction", "tolerance", "gate"):
        if key not in spec:
            raise ValidationError(f"metric {name!r}: missing {key!r}")
    if spec["direction"] not in _DIRECTIONS:
        raise ValidationError(
            f"metric {name!r}: direction must be one of {_DIRECTIONS}, "
            f"got {spec['direction']!r}"
        )
    if not isinstance(spec["value"], (int, float)) or isinstance(spec["value"], bool):
        raise ValidationError(f"metric {name!r}: value must be a number")
    if not isinstance(spec["tolerance"], (int, float)) or spec["tolerance"] < 0:
        raise ValidationError(f"metric {name!r}: tolerance must be >= 0")
    if not isinstance(spec["gate"], bool):
        raise ValidationError(f"metric {name!r}: gate must be a bool")


def make_artifact(area: str, metrics: Dict[str, Dict], quick: bool) -> Dict:
    """Wrap collected metrics into a schema-checked artifact dict."""
    if not area or not area.replace("_", "").isalnum():
        raise ValidationError(f"bad area name {area!r}")
    if not metrics:
        raise ValidationError(f"area {area!r} collected no metrics")
    for name, spec in metrics.items():
        _check_metric(name, spec)
    return {"schema": SCHEMA, "area": area, "quick": bool(quick), "metrics": metrics}


def load_artifact(path: str) -> Dict:
    """Read and validate one ``BENCH_*.json`` artifact."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("schema") != SCHEMA:
        raise ValidationError(
            f"{path}: not a {SCHEMA} artifact "
            f"(schema={payload.get('schema') if isinstance(payload, dict) else None!r})"
        )
    for key in ("area", "quick", "metrics"):
        if key not in payload:
            raise ValidationError(f"{path}: missing {key!r}")
    for name, spec in payload["metrics"].items():
        _check_metric(name, spec)
    return payload


def write_artifact(artifact: Dict, out_dir: str) -> str:
    """Write ``BENCH_<area>.json`` (stable key order); returns the path."""
    path = os.path.join(out_dir, f"BENCH_{artifact['area']}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


# ---------------------------------------------------------------------------
# Comparison / gate
# ---------------------------------------------------------------------------
def compare_artifacts(baseline: Dict, measured: Dict) -> List[Regression]:
    """Gated regressions of ``measured`` against ``baseline``.

    Only metrics marked ``gate: true`` *in the baseline* participate —
    the committed trajectory decides what is load-bearing.  A gated
    baseline metric missing from the fresh run is itself a regression
    (a silently dropped benchmark must not pass the gate).
    """
    if baseline.get("area") != measured.get("area"):
        raise ValidationError(
            f"area mismatch: baseline {baseline.get('area')!r} "
            f"vs measured {measured.get('area')!r}"
        )
    area = baseline["area"]
    regressions: List[Regression] = []
    for name, spec in baseline["metrics"].items():
        if not spec["gate"]:
            continue
        fresh = measured["metrics"].get(name)
        reference = float(spec["value"])
        direction = spec["direction"]
        tolerance = float(spec["tolerance"])
        if fresh is None:
            regressions.append(
                Regression(area, name, reference, float("nan"), direction, tolerance)
            )
            continue
        value = float(fresh["value"])
        band = tolerance * max(abs(reference), 1e-12)
        if direction == "higher":
            failed = value < reference - band
        elif direction == "lower":
            failed = value > reference + band
        else:  # near
            failed = abs(value - reference) > band
        if failed:
            regressions.append(
                Regression(area, name, reference, value, direction, tolerance)
            )
    return regressions


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------
def _load_bench_module(area: str, bench_dir: str):
    """Import ``bench_<area>.py`` from ``bench_dir``.

    Loads by file path under a private module name so the runner works
    from any CWD, while making sure ``bench_dir``'s parent is on
    ``sys.path`` (the bench modules import ``benchmarks._harness``).
    """
    path = os.path.join(bench_dir, f"bench_{area}.py")
    if not os.path.isfile(path):
        raise ConfigurationError(f"no benchmark for area {area!r} at {path}")
    parent = os.path.dirname(os.path.abspath(bench_dir))
    if parent not in sys.path:
        sys.path.insert(0, parent)
    module_name = f"_medsen_bench_{area}"
    spec = importlib.util.spec_from_file_location(module_name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    spec.loader.exec_module(module)
    return module


def default_bench_dir() -> str:
    """``benchmarks/`` at the repository root (package-relative)."""
    here = os.path.dirname(os.path.abspath(__file__))
    # src/repro/telemetry -> src/repro -> src -> repo root
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "benchmarks")


def run_area(area: str, quick: bool, bench_dir: Optional[str] = None) -> Dict:
    """Run one area's ``collect()`` and return its artifact dict."""
    module = _load_bench_module(area, bench_dir or default_bench_dir())
    collect = getattr(module, "collect", None)
    if collect is None:
        raise ConfigurationError(
            f"bench_{area}.py has no collect(quick) entry point"
        )
    metrics = collect(quick=quick)
    return make_artifact(area, metrics, quick)


def run_benchmarks(
    areas: Sequence[str] = DEFAULT_AREAS,
    quick: bool = True,
    bench_dir: Optional[str] = None,
    out_dir: Optional[str] = None,
    baseline_dir: Optional[str] = None,
) -> Dict:
    """Run areas, write artifacts, and optionally gate against baselines.

    Returns ``{"artifacts": {area: path}, "regressions": [Regression]}``.
    When ``baseline_dir`` is given, each area with a committed
    ``BENCH_<area>.json`` there is compared *before* anything is
    overwritten; areas without a baseline just produce a fresh
    artifact (first commit of a new trajectory).
    """
    out = out_dir or os.getcwd()
    artifacts: Dict[str, str] = {}
    regressions: List[Regression] = []
    for area in areas:
        artifact = run_area(area, quick=quick, bench_dir=bench_dir)
        if baseline_dir is not None:
            baseline_path = os.path.join(baseline_dir, f"BENCH_{area}.json")
            if os.path.isfile(baseline_path):
                baseline = load_artifact(baseline_path)
                regressions.extend(compare_artifacts(baseline, artifact))
        artifacts[area] = write_artifact(artifact, out)
    return {"artifacts": artifacts, "regressions": regressions}
