"""Key generation: entropy source and schedule construction.

The prototype draws key material from the controller's
``/dev/random`` (§VI-B).  :class:`EntropySource` stands in for that
interface — it wraps a seeded generator, meters how many bits have been
consumed, and is the *only* object the :class:`KeyGenerator` draws from,
so tests can audit entropy consumption against the Eq. 2 accounting.

:class:`KeyGenerator` builds :class:`~repro.crypto.key.KeySchedule`
objects under the constraints §IV/§VII-A establish:

* at least ``min_active`` electrodes per epoch (an empty selection would
  blind the sensor);
* optionally no two *adjacent* electrodes active at once — the paper's
  suggested mitigation for the Figure 11d consecutive-pattern leak.
"""

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

import numpy as np

from repro._util.errors import ConfigurationError
from repro._util.rng import RngLike, ensure_rng
from repro._util.validation import check_positive
from repro.crypto.gains import GainTable
from repro.crypto.key import EpochKey, KeySchedule
from repro.microfluidics.flow import FlowSpeedTable


class EntropySource:
    """Metered randomness source (the /dev/random stand-in).

    All key material flows through :meth:`randint`; ``bits_consumed``
    counts the entropy drawn so tests can compare actual consumption
    with the analytical key-length formulas.
    """

    def __init__(self, rng: RngLike = None) -> None:
        self._rng = ensure_rng(rng)
        self._bits_consumed = 0

    def randint(self, n_values: int) -> int:
        """Uniform integer in ``[0, n_values)``, metering entropy."""
        if n_values < 1:
            raise ConfigurationError(f"n_values must be >= 1, got {n_values}")
        if n_values == 1:
            return 0
        self._bits_consumed += max(1, (n_values - 1).bit_length())
        return int(self._rng.integers(0, n_values))

    def random_bits(self, n_bits: int) -> int:
        """Uniform ``n_bits``-bit integer."""
        if n_bits < 0:
            raise ConfigurationError(f"n_bits must be >= 0, got {n_bits}")
        if n_bits == 0:
            return 0
        self._bits_consumed += n_bits
        return int(self._rng.integers(0, 1 << n_bits))

    def shuffle(self, items: List) -> None:
        """In-place Fisher-Yates shuffle drawing from this source."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(i + 1)
            items[i], items[j] = items[j], items[i]

    @property
    def bits_consumed(self) -> int:
        """Total entropy bits drawn so far."""
        return self._bits_consumed


@dataclass
class KeyGenerator:
    """Builds key schedules for a given sensor configuration.

    Parameters
    ----------
    n_electrodes:
        Output electrodes on the array the schedule will drive.
    gain_table, flow_table:
        Quantisation tables; their level counts bound the drawn levels.
    min_active, max_active:
        Bounds on ``|E|`` per epoch (``max_active=None`` means all).
    avoid_consecutive:
        Reject subsets containing adjacent electrode numbers (§VII-A
        mitigation).  Requires enough electrodes to make such subsets
        possible for every allowed size.
    """

    n_electrodes: int
    gain_table: GainTable = field(default_factory=GainTable)
    flow_table: FlowSpeedTable = field(default_factory=FlowSpeedTable)
    min_active: int = 1
    max_active: Optional[int] = None
    avoid_consecutive: bool = False
    #: Electrode numbers in physical order; adjacency is evaluated on
    #: this sequence.  ``None`` means numeric order 1..n.  Pass the
    #: array's ``position_order`` so the lead/electrode-1 physical
    #: adjacency is respected.
    position_order: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.n_electrodes < 1:
            raise ConfigurationError(f"n_electrodes must be >= 1, got {self.n_electrodes}")
        if not 1 <= self.min_active <= self.n_electrodes:
            raise ConfigurationError(
                f"min_active must be in 1..{self.n_electrodes}, got {self.min_active}"
            )
        max_active = self.n_electrodes if self.max_active is None else self.max_active
        if not self.min_active <= max_active <= self.n_electrodes:
            raise ConfigurationError(
                f"max_active must be in {self.min_active}..{self.n_electrodes}"
            )
        self.max_active = max_active
        if self.avoid_consecutive:
            largest_spread = (self.n_electrodes + 1) // 2
            if self.max_active > largest_spread:
                raise ConfigurationError(
                    f"avoid_consecutive with {self.n_electrodes} electrodes supports at "
                    f"most {largest_spread} active electrodes, got max_active={self.max_active}"
                )
        if self.position_order is not None:
            order = tuple(int(e) for e in self.position_order)
            if sorted(order) != list(range(1, self.n_electrodes + 1)):
                raise ConfigurationError(
                    "position_order must be a permutation of 1..n_electrodes"
                )
            self.position_order = order

    # ------------------------------------------------------------------
    def draw_epoch_key(self, entropy: EntropySource) -> EpochKey:
        """Draw one epoch key ``(E, G, S)`` from ``entropy``."""
        size = self.min_active + entropy.randint(self.max_active - self.min_active + 1)
        active = self._draw_subset(entropy, size)
        gains = tuple(
            entropy.randint(self.gain_table.n_levels) for _ in range(self.n_electrodes)
        )
        flow = entropy.randint(self.flow_table.n_levels)
        return EpochKey(active_electrodes=active, gain_levels=gains, flow_level=flow)

    def generate_schedule(
        self,
        duration_s: float,
        epoch_duration_s: float,
        entropy: EntropySource,
    ) -> KeySchedule:
        """Generate a schedule covering at least ``duration_s``."""
        check_positive("duration_s", duration_s)
        check_positive("epoch_duration_s", epoch_duration_s)
        n_epochs = int(np.ceil(duration_s / epoch_duration_s))
        epochs = tuple(self.draw_epoch_key(entropy) for _ in range(n_epochs))
        return KeySchedule(epoch_duration_s=epoch_duration_s, epochs=epochs)

    # ------------------------------------------------------------------
    def _draw_subset(self, entropy: EntropySource, size: int) -> FrozenSet[int]:
        """Uniform subset of ``size`` electrodes (rejection sampling when
        consecutive numbers are forbidden)."""
        if not self.avoid_consecutive:
            numbers = list(range(1, self.n_electrodes + 1))
            entropy.shuffle(numbers)
            return frozenset(numbers[:size])
        # Sample non-adjacent *positions* directly via the standard
        # bijection: choosing k non-adjacent items from n is choosing k
        # items from n - k + 1 and fanning them out; then map positions
        # back to electrode numbers through the physical order.
        order = self.position_order or tuple(range(1, self.n_electrodes + 1))
        reduced_n = self.n_electrodes - size + 1
        numbers = list(range(reduced_n))
        entropy.shuffle(numbers)
        chosen = sorted(numbers[:size])
        positions = [value + offset for offset, value in enumerate(chosen)]
        return frozenset(order[position] for position in positions)
