"""Security accounting for the analog cipher (paper §IV-A).

Quantifies the claims the paper argues qualitatively:

* the size of the epoch-key space (and hence the entropy per epoch);
* the set of true counts consistent with an observed ciphertext count
  (what a peak-counting eavesdropper is reduced to guessing over);
* the comparison against the perfectly secret one-time pad: the ideal
  per-cell scheme (Eq. 1) draws a fresh key per cell, so ciphertexts
  carry no information about cell identity.
"""

from math import comb, log2
from typing import List, Optional, Set

from repro._util.errors import ValidationError


def subset_count(
    n_electrodes: int,
    min_active: int = 1,
    max_active: Optional[int] = None,
    avoid_consecutive: bool = False,
) -> int:
    """Number of admissible active-electrode subsets ``E``.

    With ``avoid_consecutive`` the count of k-subsets with no two
    adjacent numbers is ``C(n - k + 1, k)`` (standard stars-and-bars
    bijection).
    """
    if n_electrodes < 1:
        raise ValidationError(f"n_electrodes must be >= 1, got {n_electrodes}")
    max_active = n_electrodes if max_active is None else max_active
    if not 1 <= min_active <= max_active <= n_electrodes:
        raise ValidationError(
            f"need 1 <= min_active <= max_active <= n_electrodes, got "
            f"{min_active}, {max_active}, {n_electrodes}"
        )
    total = 0
    for size in range(min_active, max_active + 1):
        if avoid_consecutive:
            total += comb(n_electrodes - size + 1, size) if size <= (n_electrodes + 1) // 2 else 0
        else:
            total += comb(n_electrodes, size)
    return total


def keyspace_size(
    n_electrodes: int,
    n_gain_levels: int,
    n_flow_levels: int,
    min_active: int = 1,
    max_active: Optional[int] = None,
    avoid_consecutive: bool = False,
) -> int:
    """Number of distinct epoch keys ``(E, G, S)``.

    Gains are drawn per electrode (active or not, so key size does not
    leak |E|), hence the ``n_gain_levels ** n_electrodes`` factor.
    """
    if n_gain_levels < 1 or n_flow_levels < 1:
        raise ValidationError("level counts must be >= 1")
    subsets = subset_count(n_electrodes, min_active, max_active, avoid_consecutive)
    return subsets * (n_gain_levels**n_electrodes) * n_flow_levels


def epoch_key_entropy_bits(
    n_electrodes: int,
    n_gain_levels: int,
    n_flow_levels: int,
    min_active: int = 1,
    max_active: Optional[int] = None,
    avoid_consecutive: bool = False,
) -> float:
    """log2 of the epoch-key space: entropy per epoch under uniform keys."""
    return log2(
        keyspace_size(
            n_electrodes,
            n_gain_levels,
            n_flow_levels,
            min_active,
            max_active,
            avoid_consecutive,
        )
    )


def possible_multiplication_factors(
    n_electrodes: int,
    min_active: int = 1,
    max_active: Optional[int] = None,
) -> List[int]:
    """All values m(E) can take on an ``n_electrodes``-output array.

    The lead contributes 1 dip, the other ``n-1`` outputs 2 dips each,
    so with k active electrodes m is either 2k (lead inactive) or
    2k - 1 (lead active).
    """
    if n_electrodes < 1:
        raise ValidationError(f"n_electrodes must be >= 1, got {n_electrodes}")
    max_active = n_electrodes if max_active is None else max_active
    if not 1 <= min_active <= max_active <= n_electrodes:
        raise ValidationError("invalid active-electrode bounds")
    factors: Set[int] = set()
    for k in range(min_active, max_active + 1):
        if k <= n_electrodes - 1:
            factors.add(2 * k)  # lead not in E (needs k non-lead outputs)
        factors.add(2 * k - 1)  # lead in E
    return sorted(factors)


def ciphertext_count_candidates(
    observed_peak_count: int,
    n_electrodes: int,
    min_active: int = 1,
    max_active: Optional[int] = None,
) -> List[int]:
    """True counts consistent with an observed ciphertext peak count.

    A peak-counting eavesdropper who knows the hardware but not the key
    must consider ``round(observed / m)`` for every admissible m — this
    is the residual uncertainty §IV-A's "determined attacker" faces per
    epoch (before the gain/width masking removes the side channels that
    could narrow m down).
    """
    if observed_peak_count < 0:
        raise ValidationError("observed_peak_count must be >= 0")
    candidates: Set[int] = set()
    for m in possible_multiplication_factors(n_electrodes, min_active, max_active):
        candidates.add(int(round(observed_peak_count / m)))
    return sorted(candidates)


def count_confusion_bits(
    observed_peak_count: int,
    n_electrodes: int,
    min_active: int = 1,
    max_active: Optional[int] = None,
) -> float:
    """log2 of the candidate-count set size: attacker count uncertainty."""
    candidates = ciphertext_count_candidates(
        observed_peak_count, n_electrodes, min_active, max_active
    )
    return log2(len(candidates)) if candidates else 0.0
