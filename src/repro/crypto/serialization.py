"""Binary serialization for key material and plans.

Needed by the §VII-B key-sharing extension ("MedSen's design also
allows (not implemented) sharing of the generated keys with trusted
parties, e.g., the patient's practitioners"): a key schedule and the
hardware parameters it binds to must travel as bytes so they can be
sealed under a shared secret.

Format (little-endian, struct-packed)::

    magic  b"MSK1"
    array:  n_outputs u16, electrode_width f64, pitch f64
    gains:  n_levels u16, min f64, max f64
    flow:   n_levels u16, min f64, max f64
    epochs: epoch_duration f64, n_epochs u32, then per epoch:
            electrode bitmask u32, flow level u8,
            n_electrodes gain-level u8s
"""

import hashlib
import math
import struct

from repro._util.errors import MedSenError, ValidationError
from repro.crypto.encryptor import EncryptionPlan
from repro.crypto.gains import GainTable
from repro.crypto.key import EpochKey, KeySchedule
from repro.hardware.electrodes import ElectrodeArray
from repro.microfluidics.flow import FlowSpeedTable

_MAGIC = b"MSK1"
_HEADER = struct.Struct("<4sHddHddHdddI")
_EPOCH_FIXED = struct.Struct("<IB")

#: Hard cap on an admissible serialized plan.  The largest legitimate
#: plan (32 electrodes, multi-hour capture at 100 ms epochs) is well
#: under 64 KiB; 1 MiB leaves 16x headroom while refusing a forged
#: header that promises four billion epochs before any allocation.
MAX_PLAN_BYTES = 1 << 20


def plan_to_bytes(plan: EncryptionPlan) -> bytes:
    """Serialize an encryption plan (hardware binding + schedule)."""
    schedule = plan.schedule
    if schedule.n_electrodes > 32:
        raise ValidationError("serialization supports at most 32 electrodes")
    header = _HEADER.pack(
        _MAGIC,
        plan.array.n_outputs,
        plan.array.electrode_width_m,
        plan.array.pitch_m,
        plan.gain_table.n_levels,
        plan.gain_table.min_gain,
        plan.gain_table.max_gain,
        plan.flow_table.n_levels,
        plan.flow_table.min_rate_ul_min,
        plan.flow_table.max_rate_ul_min,
        schedule.epoch_duration_s,
        schedule.n_epochs,
    )
    chunks = [header]
    for epoch in schedule.epochs:
        chunks.append(_EPOCH_FIXED.pack(epoch.electrodes_bitmask(), epoch.flow_level))
        chunks.append(bytes(epoch.gain_levels))
    return b"".join(chunks)


def plan_fingerprint(plan: EncryptionPlan) -> str:
    """Short stable digest identifying a plan *without* leaking it.

    BLAKE2b-128 over the canonical plan bytes: equal plans (same
    schedule, same hardware binding) share a fingerprint, and the
    16-byte hex digest reveals nothing about the key material — so the
    fingerprint may travel outside the TCB to detect controller/server
    key-epoch desync (see :meth:`MicroController.resync
    <repro.hardware.controller.MicroController.resync>`).
    """
    return hashlib.blake2b(plan_to_bytes(plan), digest_size=16).hexdigest()


def plan_from_bytes(blob: bytes) -> EncryptionPlan:
    """Inverse of :func:`plan_to_bytes`.

    This parser sits on the untrusted side of the §VII-B key-sharing
    exchange, so it must *contain* malice, not just decode honesty:
    truncated, oversized, bad-magic, or value-poisoned (NaN/inf) blobs
    all raise :class:`ValidationError` — never a raw ``struct.error``,
    ``IndexError``, or a component's :class:`ConfigurationError`.
    """
    try:
        blob = bytes(blob)
    except (TypeError, ValueError) as error:
        raise ValidationError(f"plan blob is not bytes-like: {error}") from error
    if len(blob) < _HEADER.size:
        raise ValidationError("plan blob too short")
    if len(blob) > MAX_PLAN_BYTES:
        raise ValidationError(
            f"plan blob has {len(blob)} bytes; cap is {MAX_PLAN_BYTES}"
        )
    (
        magic,
        n_outputs,
        electrode_width,
        pitch,
        gain_levels,
        gain_min,
        gain_max,
        flow_levels,
        flow_min,
        flow_max,
        epoch_duration,
        n_epochs,
    ) = _HEADER.unpack_from(blob, 0)
    if magic != _MAGIC:
        raise ValidationError(f"bad magic {magic!r}; not a serialized plan")
    for name, value in (
        ("electrode_width", electrode_width),
        ("pitch", pitch),
        ("gain_min", gain_min),
        ("gain_max", gain_max),
        ("flow_min", flow_min),
        ("flow_max", flow_max),
        ("epoch_duration", epoch_duration),
    ):
        if not math.isfinite(value):
            raise ValidationError(f"plan field {name} is not finite: {value!r}")
    if n_outputs > 32:
        raise ValidationError("serialization supports at most 32 electrodes")

    offset = _HEADER.size
    epoch_size = _EPOCH_FIXED.size + n_outputs
    expected = offset + n_epochs * epoch_size
    if len(blob) != expected:
        raise ValidationError(
            f"plan blob has {len(blob)} bytes; expected {expected}"
        )

    try:
        array = ElectrodeArray(
            n_outputs=n_outputs, electrode_width_m=electrode_width, pitch_m=pitch
        )
        gain_table = GainTable(
            n_levels=gain_levels, min_gain=gain_min, max_gain=gain_max
        )
        flow_table = FlowSpeedTable(
            n_levels=flow_levels, min_rate_ul_min=flow_min, max_rate_ul_min=flow_max
        )
        epochs = []
        for _ in range(n_epochs):
            bitmask, flow_level = _EPOCH_FIXED.unpack_from(blob, offset)
            offset += _EPOCH_FIXED.size
            gains = tuple(blob[offset : offset + n_outputs])
            offset += n_outputs
            active = frozenset(
                electrode
                for electrode in range(1, n_outputs + 1)
                if bitmask & (1 << (electrode - 1))
            )
            epochs.append(
                EpochKey(
                    active_electrodes=active, gain_levels=gains, flow_level=flow_level
                )
            )
        schedule = KeySchedule(epoch_duration_s=epoch_duration, epochs=tuple(epochs))
        return EncryptionPlan(
            schedule=schedule, array=array, gain_table=gain_table, flow_table=flow_table
        )
    except ValidationError:
        raise
    except (MedSenError, ValueError, OverflowError, struct.error) as error:
        # A decoded field survived the structural checks but describes an
        # impossible component (e.g. gain_min > gain_max, a gain level
        # beyond the table).  Same contract as truncation: ValidationError.
        raise ValidationError(f"plan blob decodes to an invalid plan: {error}") from error
