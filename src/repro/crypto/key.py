"""Key material: epoch keys, key schedules, and length accounting.

Paper §IV-A defines the ideal per-peak key ``K_p = (E_p, G_p, S_p)``
(Eq. 1) and notes it is impractical (the sensor would need to track
every cell entering and leaving the channel, and simultaneous cells
break it), so the deployed scheme renews the key every time unit:
``K(t) = (E(t), G(t), S(t))``.  §VI-B sizes the ideal key with Eq. 2::

    L = N_cells * (N_elec + N_elec/2 * R_gain + R_flow)

and evaluates it at 20 000 cells, 16 electrodes, 4-bit gains and 4-bit
flow: 20 000 * (16 + 8*4 + 4) = 1 040 000 bits ≈ 0.12 MB.
"""

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro._util.errors import ConfigurationError, ValidationError
from repro._util.validation import check_positive


@dataclass(frozen=True)
class EpochKey:
    """One epoch's sensor configuration ``(E, G, S)``.

    Parameters
    ----------
    active_electrodes:
        Electrode numbers (1-based) routed to the lock-in this epoch.
        Must be non-empty: with no active electrode the sensor is blind.
    gain_levels:
        Gain-table level per electrode, indexed ``gain_levels[e-1]`` for
        electrode ``e``.  Levels for inactive electrodes are carried but
        unused (constant-size keys leak nothing about |E|).
    flow_level:
        Flow-speed-table level.
    """

    active_electrodes: FrozenSet[int]
    gain_levels: Tuple[int, ...]
    flow_level: int

    def __post_init__(self) -> None:
        active = frozenset(int(e) for e in self.active_electrodes)
        if not active:
            raise ValidationError("active_electrodes must be non-empty")
        levels = tuple(int(g) for g in self.gain_levels)
        n_electrodes = len(levels)
        for electrode in active:
            if not 1 <= electrode <= n_electrodes:
                raise ValidationError(
                    f"active electrode {electrode} out of range 1..{n_electrodes}"
                )
        if any(level < 0 for level in levels):
            raise ValidationError("gain levels must be non-negative")
        if self.flow_level < 0:
            raise ValidationError("flow_level must be non-negative")
        object.__setattr__(self, "active_electrodes", active)
        object.__setattr__(self, "gain_levels", levels)

    @property
    def n_electrodes(self) -> int:
        """Total electrodes the key covers (active or not)."""
        return len(self.gain_levels)

    def gain_level_for(self, electrode: int) -> int:
        """Gain level of electrode ``electrode`` (1-based)."""
        if not 1 <= electrode <= self.n_electrodes:
            raise ValidationError(
                f"electrode {electrode} out of range 1..{self.n_electrodes}"
            )
        return self.gain_levels[electrode - 1]

    def has_consecutive_electrodes(self) -> bool:
        """Whether ``E`` contains adjacent electrode numbers.

        §VII-A notes that selecting successive electrodes produces the
        recognisable merged/periodic signatures of Figure 11d; key
        generation can avoid such subsets.
        """
        ordered = sorted(self.active_electrodes)
        return any(b - a == 1 for a, b in zip(ordered, ordered[1:]))

    def electrodes_bitmask(self) -> int:
        """``E`` as an integer bitmask (bit e-1 = electrode e active)."""
        mask = 0
        for electrode in self.active_electrodes:
            mask |= 1 << (electrode - 1)
        return mask


@dataclass(frozen=True)
class KeySchedule:
    """The deployed periodic key ``K(t)``: one epoch per time unit.

    The schedule covers ``[0, epoch_duration_s * len(epochs))``; queries
    beyond the last epoch raise, because decrypting with a clipped
    schedule silently corrupts counts.
    """

    epoch_duration_s: float
    epochs: Tuple[EpochKey, ...]

    def __post_init__(self) -> None:
        check_positive("epoch_duration_s", self.epoch_duration_s)
        epochs = tuple(self.epochs)
        if not epochs:
            raise ValidationError("KeySchedule requires at least one epoch")
        n_electrodes = epochs[0].n_electrodes
        if any(epoch.n_electrodes != n_electrodes for epoch in epochs):
            raise ValidationError("all epochs must cover the same electrode count")
        object.__setattr__(self, "epochs", epochs)

    @property
    def n_epochs(self) -> int:
        """Number of epochs in the schedule."""
        return len(self.epochs)

    @property
    def n_electrodes(self) -> int:
        """Electrode count covered by every epoch."""
        return self.epochs[0].n_electrodes

    @property
    def duration_s(self) -> float:
        """Total time the schedule covers."""
        return self.epoch_duration_s * self.n_epochs

    def epoch_index_at(self, time_s: float) -> int:
        """Index of the epoch active at ``time_s``."""
        if time_s < 0:
            raise ValidationError(f"time_s must be >= 0, got {time_s}")
        index = int(time_s / self.epoch_duration_s)
        if index >= self.n_epochs:
            raise ConfigurationError(
                f"time {time_s:.3f}s is beyond the schedule "
                f"({self.duration_s:.3f}s, {self.n_epochs} epochs)"
            )
        return index

    def key_at(self, time_s: float) -> EpochKey:
        """Epoch key active at ``time_s``."""
        return self.epochs[self.epoch_index_at(time_s)]

    def epoch_bounds(self, index: int) -> Tuple[float, float]:
        """(start_s, end_s) of epoch ``index``."""
        if not 0 <= index < self.n_epochs:
            raise ValidationError(f"epoch index {index} out of range 0..{self.n_epochs - 1}")
        start = index * self.epoch_duration_s
        return start, start + self.epoch_duration_s

    def length_bits(self, gain_resolution_bits: int, flow_resolution_bits: int) -> int:
        """Stored size of this schedule under Eq. 2-style accounting.

        Per epoch: an ``N_elec``-bit electrode mask, ``N_elec/2`` gain
        values of ``R_gain`` bits (gains are shared per electrode pair in
        the paper's accounting), and one ``R_flow``-bit flow level.
        """
        per_epoch = eq2_bits_per_unit(
            self.n_electrodes, gain_resolution_bits, flow_resolution_bits
        )
        return self.n_epochs * per_epoch


def eq2_bits_per_unit(
    n_electrodes: int, gain_resolution_bits: int, flow_resolution_bits: int
) -> int:
    """Bits per key unit: ``N_elec + N_elec/2 * R_gain + R_flow``."""
    if n_electrodes < 1:
        raise ValidationError(f"n_electrodes must be >= 1, got {n_electrodes}")
    if gain_resolution_bits < 0 or flow_resolution_bits < 0:
        raise ValidationError("resolution bits must be non-negative")
    return n_electrodes + (n_electrodes // 2) * gain_resolution_bits + flow_resolution_bits


def eq1_ideal_key_length_bits(
    n_cells: int,
    n_electrodes: int,
    gain_resolution_bits: int,
    flow_resolution_bits: int,
) -> int:
    """Eq. 1/2 ideal key length: one fresh key unit per cell.

    ``eq1_ideal_key_length_bits(20_000, 16, 4, 4) == 1_040_000`` —
    the paper's "1M-bits key (0.12MB)".
    """
    if n_cells < 0:
        raise ValidationError(f"n_cells must be >= 0, got {n_cells}")
    return n_cells * eq2_bits_per_unit(n_electrodes, gain_resolution_bits, flow_resolution_bits)


#: Alias matching the paper's equation number for the evaluation harness.
eq2_key_length_bits = eq1_ideal_key_length_bits
