"""Controller-side decryption of cloud peak reports (paper §IV).

"Only the controller, which knows the input values applied to each
control parameter, is able to recover the real signal amplitude and
cell count associated to the ciphertext signal peaks."  Decryption is
"light computation (multiplications and divisions)".

Algorithm
---------
1. **Template matching.**  Within an epoch the active electrodes'
   sensing gaps form a known time template (gap positions divided by
   the keyed velocity).  Walking peaks in time order, each unassigned
   peak anchors a particle; the template slots then greedily claim the
   nearest unassigned peaks.  The anchor's timestamp selects the epoch
   key, so particles whose dip train straddles an epoch boundary are
   still decoded with the key that actually encrypted them.
2. **Merge recovery.**  Two dips closer than the sampling/separation
   limit merge into one detected peak.  The controller knows each
   slot's gain, so it can test whether a neighbouring matched peak's
   depth is better explained by the *sum* of the two slots' gains than
   by its own slot alone; if so, the missing slot is credited to that
   peak instead of being counted as lost.
3. **Count recovery.**  Per epoch, the claimed-peak total (including
   merge credits) is divided by the epoch's multiplication factor
   ``m(E)``.
4. **Amplitude/width recovery.**  Each cleanly attributed peak's
   amplitudes are divided by its electrode's keyed gain, and widths are
   rescaled by the keyed/reference velocity ratio, undoing ``G`` and
   ``S``.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro._util.errors import DecryptionError
from repro.crypto.encryptor import EncryptionPlan
from repro.crypto.key import EpochKey
from repro.dsp.peakdetect import DetectedPeak, PeakReport
from repro.microfluidics.channel import MicrofluidicChannel
from repro.microfluidics.flow import NOMINAL_FLOW_RATE_UL_MIN
from repro.obs import DECRYPTION_COMPLETED, NULL_OBSERVER


@dataclass(frozen=True)
class DecryptedParticle:
    """One particle reconstructed from ciphertext peaks.

    ``amplitudes`` are gain-corrected per-channel dip depths;
    ``width_s`` is velocity-normalised to the reference flow, so both
    are directly comparable across epochs with different keys.
    """

    time_s: float
    amplitudes: np.ndarray
    width_s: float
    n_peaks_matched: int
    epoch_index: int
    clean: bool

    def __post_init__(self) -> None:
        object.__setattr__(self, "amplitudes", np.asarray(self.amplitudes, dtype=float))


@dataclass(frozen=True)
class DecryptionResult:
    """Everything decryption recovers from one peak report."""

    particles: Tuple[DecryptedParticle, ...]
    epoch_counts: Tuple[int, ...]
    observed_peak_count: int
    merge_credits: int
    anomalous_groups: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "particles", tuple(self.particles))
        object.__setattr__(self, "epoch_counts", tuple(self.epoch_counts))

    @property
    def total_count(self) -> int:
        """Recovered true particle count (the diagnostic quantity)."""
        return int(sum(self.epoch_counts))

    @property
    def clean_particles(self) -> Tuple[DecryptedParticle, ...]:
        """Particles whose full template matched (trustworthy
        amplitude/width recovery)."""
        return tuple(p for p in self.particles if p.clean)


@dataclass(frozen=True)
class _Group:
    """Internal: one template match."""

    epoch_index: int
    matched: Tuple[Tuple[DetectedPeak, int], ...]  # (peak, electrode)
    credits: int
    template_size: int


@dataclass(frozen=True)
class SignalDecryptor:
    """Inverts an :class:`EncryptionPlan` on a cloud peak report."""

    plan: EncryptionPlan
    channel: MicrofluidicChannel = field(default_factory=MicrofluidicChannel)
    reference_flow_rate_ul_min: float = NOMINAL_FLOW_RATE_UL_MIN
    #: Slot-matching tolerance as a fraction of the gap transit time.
    tolerance_fraction: float = 0.45
    #: Maximum extra dips a single detected peak may absorb as merges.
    max_credits_per_peak: int = 2

    # ------------------------------------------------------------------
    def decrypt(self, report: PeakReport, observer=NULL_OBSERVER) -> DecryptionResult:
        """Recover true counts and particle features from a report."""
        schedule = self.plan.schedule
        # Sampling quantisation can stretch a report a fraction of a
        # sample past the nominal duration; tolerate that, but reject
        # genuinely longer reports (decrypting with a clipped schedule
        # silently corrupts counts).
        slack_s = max(0.01, 2.0 / report.sampling_rate_hz)
        if report.duration_s > schedule.duration_s + slack_s:
            raise DecryptionError(
                f"report covers {report.duration_s:.3f}s but the key schedule "
                f"only covers {schedule.duration_s:.3f}s"
            )
        with observer.span("signal_decrypt", peaks=report.count) as span:
            with observer.span("template_match"):
                groups, anomalies = self._match_groups(report)
            epoch_counts = self._counts_from_groups(groups)
            with observer.span("recover_particles", groups=len(groups)):
                particles = [
                    self._recover_particle(group) for group in groups if group.matched
                ]
            result = DecryptionResult(
                particles=tuple(particles),
                epoch_counts=tuple(epoch_counts),
                observed_peak_count=report.count,
                merge_credits=sum(group.credits for group in groups),
                anomalous_groups=anomalies,
            )
            span.set_attribute("recovered_count", result.total_count)
        observer.incr("decrypt.recovered_particles", result.total_count)
        observer.incr("decrypt.merge_credits", result.merge_credits)
        observer.incr("decrypt.anomalous_groups", result.anomalous_groups)
        observer.event(
            DECRYPTION_COMPLETED,
            observed_peaks=result.observed_peak_count,
            recovered_count=result.total_count,
            merge_credits=result.merge_credits,
            anomalous_groups=result.anomalous_groups,
        )
        return result

    # ------------------------------------------------------------------
    # Stage 1+2: template matching with merge recovery
    # ------------------------------------------------------------------
    def _match_groups(self, report: PeakReport) -> Tuple[List[_Group], int]:
        schedule = self.plan.schedule
        peaks = sorted(report.peaks, key=lambda p: p.time_s)
        unassigned: Set[int] = set(range(len(peaks)))
        groups: List[_Group] = []
        anomalies = 0

        while unassigned:
            anchor_index = min(unassigned, key=lambda i: peaks[i].time_s)
            anchor = peaks[anchor_index]
            epoch_time = min(anchor.time_s, schedule.duration_s * (1 - 1e-12))
            epoch_index = schedule.epoch_index_at(epoch_time)
            epoch = schedule.epochs[epoch_index]
            velocity = self._velocity_for_epoch(epoch)
            template = self._gap_template(epoch, velocity)
            tolerance_s = self.tolerance_fraction * self.plan.array.transit_time_s(velocity)

            matched: List[Tuple[DetectedPeak, int]] = []
            slot_of_peak: Dict[int, int] = {}
            unmatched_slots: List[int] = []
            for slot, (offset_s, electrode) in enumerate(template):
                expected = anchor.time_s + offset_s
                best, best_error = None, tolerance_s
                for i in unassigned:
                    if i in slot_of_peak:
                        continue
                    error = abs(peaks[i].time_s - expected)
                    if error <= best_error:
                        best, best_error = i, error
                if best is None:
                    unmatched_slots.append(slot)
                else:
                    slot_of_peak[best] = slot
                    matched.append((peaks[best], electrode))
            if not matched:
                unassigned.discard(anchor_index)
                anomalies += 1
                continue
            unassigned.difference_update(slot_of_peak)
            credits = self._credit_merges(
                peaks, anchor, template, slot_of_peak, unmatched_slots, epoch, tolerance_s
            )
            if len(matched) + credits != len(template):
                anomalies += 1
            groups.append(
                _Group(
                    epoch_index=epoch_index,
                    matched=tuple(matched),
                    credits=credits,
                    template_size=len(template),
                )
            )
        return groups, anomalies

    def _credit_merges(
        self,
        peaks: Sequence[DetectedPeak],
        anchor: DetectedPeak,
        template: List[Tuple[float, int]],
        slot_of_peak: Dict[int, int],
        unmatched_slots: List[int],
        epoch: EpochKey,
        tolerance_s: float,
    ) -> int:
        """Amplitude-accounting merge recovery.

        For every unmatched template slot, look at the nearest *matched*
        peak of this group within one transit time.  The controller
        knows both slots' gains; if the candidate's observed depth is
        closer to ``(g_missing + g_candidate) * A`` than to
        ``g_candidate * A`` (with ``A`` the particle's base amplitude
        estimated from the other matched slots), the missing dip merged
        into that peak and is credited rather than lost.
        """
        if not unmatched_slots or not slot_of_peak:
            return 0
        gain_table = self.plan.gain_table
        detection_channel = 0

        # Base amplitude estimate from matched slots (depth / gain).
        # The minimum is robust here: merged peaks can only be *deeper*
        # than a solo dip, so the smallest ratio is the least
        # merge-contaminated estimate of the particle's base amplitude.
        ratios = []
        for peak_index, slot in slot_of_peak.items():
            electrode = template[slot][1]
            gain = gain_table.gain_for_level(epoch.gain_level_for(electrode))
            ratios.append(peaks[peak_index].amplitudes[detection_channel] / gain)
        base_amplitude = float(np.min(ratios))
        if base_amplitude <= 0:
            return 0

        credits = 0
        absorbed: Dict[int, int] = {}
        for slot in unmatched_slots:
            offset_s, electrode = template[slot]
            expected = anchor.time_s + offset_s
            candidates = [
                (abs(peaks[i].time_s - expected), i)
                for i in slot_of_peak
                if abs(peaks[i].time_s - expected) <= 2.0 * tolerance_s
            ]
            if not candidates:
                continue
            _, candidate = min(candidates)
            if absorbed.get(candidate, 0) >= self.max_credits_per_peak:
                continue
            candidate_slot = slot_of_peak[candidate]
            candidate_gain = gain_table.gain_for_level(
                epoch.gain_level_for(template[candidate_slot][1])
            )
            missing_gain = gain_table.gain_for_level(epoch.gain_level_for(electrode))
            observed = peaks[candidate].amplitudes[detection_channel]
            solo = candidate_gain * base_amplitude
            merged = (candidate_gain + missing_gain) * base_amplitude
            if abs(observed - merged) < abs(observed - solo):
                credits += 1
                absorbed[candidate] = absorbed.get(candidate, 0) + 1
        return credits

    # ------------------------------------------------------------------
    # Stage 3: counts
    # ------------------------------------------------------------------
    def _counts_from_groups(self, groups: Sequence[_Group]) -> List[int]:
        schedule = self.plan.schedule
        totals = [0.0] * schedule.n_epochs
        for group in groups:
            totals[group.epoch_index] += len(group.matched) + group.credits
        counts = []
        for epoch_index, total in enumerate(totals):
            epoch = schedule.epochs[epoch_index]
            m = self.plan.array.multiplication_factor(epoch.active_electrodes)
            counts.append(int(round(total / m)))
        return counts

    # ------------------------------------------------------------------
    # Stage 4: amplitude/width recovery
    # ------------------------------------------------------------------
    def _recover_particle(self, group: _Group) -> DecryptedParticle:
        epoch = self.plan.schedule.epochs[group.epoch_index]
        gain_table = self.plan.gain_table
        velocity = self._velocity_for_epoch(epoch)
        reference_velocity = self.channel.velocity_for_flow_rate(
            self.reference_flow_rate_ul_min
        )
        amplitude_estimates = []
        width_estimates = []
        for peak, electrode in group.matched:
            gain = gain_table.gain_for_level(epoch.gain_level_for(electrode))
            amplitude_estimates.append(peak.amplitudes / gain)
            width_estimates.append(peak.width_s * velocity / reference_velocity)
        # Median across dips: robust to the occasional merged (double
        # depth) peak contaminating the mean.
        amplitudes = np.median(np.vstack(amplitude_estimates), axis=0)
        clean = len(group.matched) + group.credits == group.template_size
        return DecryptedParticle(
            time_s=group.matched[0][0].time_s,
            amplitudes=amplitudes,
            width_s=float(np.median(width_estimates)),
            n_peaks_matched=len(group.matched),
            epoch_index=group.epoch_index,
            clean=clean,
        )

    # ------------------------------------------------------------------
    def _velocity_for_epoch(self, epoch: EpochKey) -> float:
        return self.channel.velocity_for_flow_rate(
            self.plan.flow_table.rate_for_level(epoch.flow_level)
        )

    def _gap_template(self, epoch: EpochKey, velocity: float) -> List[Tuple[float, int]]:
        """Time offsets (relative to the first gap) of every active gap."""
        array = self.plan.array
        entries: List[Tuple[float, int]] = []
        for electrode in sorted(epoch.active_electrodes):
            for gap_m in array.gap_positions_m(electrode):
                entries.append((gap_m / velocity, electrode))
        entries.sort(key=lambda item: item[0])
        first = entries[0][0]
        return [(offset - first, electrode) for offset, electrode in entries]
