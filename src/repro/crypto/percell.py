"""The ideal per-cell cipher of Eq. 1 — implemented for the ablation.

§IV-A: "every signal peak is encrypted with its own randomly generated
key ... Such an encryption algorithm would ensure a perfectly secret
encryption."  And why it was not deployed: "applying a different set of
parameters per cell measurement is challenging as it increases the key
size, and would require MedSen to be aware of every cell entering and
leaving the channel.  Moreover ... two or more cells may appear among
the electrodes simultaneously; this complicates the signal encryption
and decryption procedures."

This module implements the scheme faithfully enough to measure those
exact failure modes: one key per successive particle (``E_p`` and
``G_p``; the flow component ``S_p`` stays at its nominal level because
fluid momentum cannot change per particle — the physical constraint the
paper alludes to), and a sequential decryptor that must assume peak
groups arrive in key order.  When particles overlap inside the array,
key-to-particle alignment slips and both counts and recovered
amplitudes degrade — which is why the deployed scheme is per-epoch.
"""

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro._util.errors import ConfigurationError
from repro.crypto.decryptor import DecryptedParticle, DecryptionResult
from repro.crypto.gains import GainTable
from repro.crypto.key import EpochKey, eq2_bits_per_unit
from repro.crypto.keygen import EntropySource, KeyGenerator
from repro.dsp.peakdetect import DetectedPeak, PeakReport
from repro.hardware.electrodes import ElectrodeArray
from repro.microfluidics.channel import MicrofluidicChannel
from repro.microfluidics.flow import NOMINAL_FLOW_RATE_UL_MIN, FlowSpeedTable
from repro.microfluidics.transport import ParticleArrival
from repro.physics.electrical import ElectrodePairCircuit
from repro.physics.peaks import PulseEvent


@dataclass(frozen=True)
class PerCellPlan:
    """One key per expected particle, bound to the hardware."""

    keys: Tuple[EpochKey, ...]
    array: ElectrodeArray
    gain_table: GainTable
    flow_table: FlowSpeedTable

    def __post_init__(self) -> None:
        if not self.keys:
            raise ConfigurationError("per-cell plan needs at least one key")
        for key in self.keys:
            if key.n_electrodes != self.array.n_outputs:
                raise ConfigurationError(
                    "per-cell key electrode count does not match the array"
                )

    @property
    def n_keys(self) -> int:
        """Number of particle keys provisioned."""
        return len(self.keys)

    def length_bits(self) -> int:
        """Eq. 2 accounting of this key material."""
        return self.n_keys * eq2_bits_per_unit(
            self.array.n_outputs,
            self.gain_table.resolution_bits,
            self.flow_table.resolution_bits,
        )


def generate_percell_plan(
    n_cells: int,
    array: ElectrodeArray,
    entropy: EntropySource,
    gain_table: GainTable = None,
    flow_table: FlowSpeedTable = None,
    avoid_consecutive: bool = True,
) -> PerCellPlan:
    """Draw ``n_cells`` independent keys (Eq. 1's key stream)."""
    if n_cells < 1:
        raise ConfigurationError(f"n_cells must be >= 1, got {n_cells}")
    gain_table = gain_table or GainTable()
    flow_table = flow_table or FlowSpeedTable()
    generator = KeyGenerator(
        n_electrodes=array.n_outputs,
        gain_table=gain_table,
        flow_table=flow_table,
        avoid_consecutive=avoid_consecutive,
        max_active=(array.n_outputs + 1) // 2 if avoid_consecutive else None,
        position_order=array.position_order if avoid_consecutive else None,
    )
    keys = tuple(generator.draw_epoch_key(entropy) for _ in range(n_cells))
    return PerCellPlan(
        keys=keys, array=array, gain_table=gain_table, flow_table=flow_table
    )


@dataclass(frozen=True)
class PerCellEncryptor:
    """Applies the i-th key to the i-th arriving particle."""

    carrier_frequencies_hz: Tuple[float, ...]
    circuit: ElectrodePairCircuit = ElectrodePairCircuit()

    def events_for_arrivals(
        self, arrivals: Sequence[ParticleArrival], plan: PerCellPlan
    ) -> List[PulseEvent]:
        """Keyed pulse events; raises if more particles than keys.

        This *is* the deployability problem the paper names: the sensor
        must know how many cells will pass, and in what order.
        """
        if len(arrivals) > plan.n_keys:
            raise ConfigurationError(
                f"{len(arrivals)} particles but only {plan.n_keys} per-cell keys"
            )
        carriers = np.asarray(self.carrier_frequencies_hz)
        events: List[PulseEvent] = []
        for index, arrival in enumerate(sorted(arrivals, key=lambda a: a.time_s)):
            key = plan.keys[index]
            width_s = plan.array.dip_fwhm_s(arrival.velocity_m_s)
            for electrode in sorted(key.active_electrodes):
                gain = plan.gain_table.gain_for_level(key.gain_level_for(electrode))
                drops = arrival.particle.relative_drop(carriers)
                amplitudes = gain * np.asarray(
                    self.circuit.measured_drop(carriers, drops), dtype=float
                )
                for gap_m in plan.array.gap_positions_m(electrode):
                    events.append(
                        PulseEvent(
                            center_s=arrival.time_s + gap_m / arrival.velocity_m_s,
                            width_s=width_s,
                            amplitudes=amplitudes,
                            electrode_index=electrode,
                            particle_index=index,
                        )
                    )
        events.sort(key=lambda event: event.center_s)
        return events


@dataclass(frozen=True)
class PerCellDecryptor:
    """Sequential inverse: group peaks in key order.

    The decryptor walks peaks in time and assumes the i-th anchored
    group used key i.  With well-separated particles this is exact;
    overlapping particles shift the alignment and corrupt everything
    downstream — the measurable cost of Eq. 1 in practice.
    """

    plan: PerCellPlan
    channel: MicrofluidicChannel = MicrofluidicChannel()
    tolerance_fraction: float = 0.45

    def decrypt(self, report: PeakReport) -> DecryptionResult:
        """Sequentially match peak groups to the per-cell key stream."""
        velocity = self.channel.velocity_for_flow_rate(NOMINAL_FLOW_RATE_UL_MIN)
        tolerance_s = self.tolerance_fraction * self.plan.array.transit_time_s(velocity)
        peaks = sorted(report.peaks, key=lambda p: p.time_s)
        unassigned = set(range(len(peaks)))
        particles: List[DecryptedParticle] = []
        anomalies = 0
        key_index = 0

        while unassigned and key_index < self.plan.n_keys:
            key = self.plan.keys[key_index]
            template = self._template(key, velocity)
            anchor_index = min(unassigned, key=lambda i: peaks[i].time_s)
            anchor = peaks[anchor_index]
            matched: List[Tuple[DetectedPeak, int]] = []
            used: List[int] = []
            for offset_s, electrode in template:
                expected = anchor.time_s + offset_s
                best, best_error = None, tolerance_s
                for i in unassigned:
                    if i in used:
                        continue
                    error = abs(peaks[i].time_s - expected)
                    if error <= best_error:
                        best, best_error = i, error
                if best is not None:
                    used.append(best)
                    matched.append((peaks[best], electrode))
            if not matched:
                unassigned.discard(anchor_index)
                anomalies += 1
                continue
            unassigned.difference_update(used)
            clean = len(matched) == len(template)
            if not clean:
                anomalies += 1
            particles.append(
                self._recover(matched, key, key_index, clean)
            )
            key_index += 1

        # Leftover peaks with exhausted keys: undecryptable residue.
        anomalies += 1 if unassigned else 0
        return DecryptionResult(
            particles=tuple(particles),
            epoch_counts=(len(particles),),
            observed_peak_count=report.count,
            merge_credits=0,
            anomalous_groups=anomalies,
        )

    # ------------------------------------------------------------------
    def _template(self, key: EpochKey, velocity: float) -> List[Tuple[float, int]]:
        entries = []
        for electrode in sorted(key.active_electrodes):
            for gap_m in self.plan.array.gap_positions_m(electrode):
                entries.append((gap_m / velocity, electrode))
        entries.sort(key=lambda item: item[0])
        first = entries[0][0]
        return [(offset - first, electrode) for offset, electrode in entries]

    def _recover(
        self,
        matched: List[Tuple[DetectedPeak, int]],
        key: EpochKey,
        key_index: int,
        clean: bool,
    ) -> DecryptedParticle:
        amplitudes = []
        widths = []
        for peak, electrode in matched:
            gain = self.plan.gain_table.gain_for_level(key.gain_level_for(electrode))
            amplitudes.append(peak.amplitudes / gain)
            widths.append(peak.width_s)
        return DecryptedParticle(
            time_s=matched[0][0].time_s,
            amplitudes=np.median(np.vstack(amplitudes), axis=0),
            width_s=float(np.median(widths)),
            n_peaks_matched=len(matched),
            epoch_index=key_index,
            clean=clean,
        )
