"""In-sensor analog signal encryption (paper §IV).

The cipher never touches digital samples: it *configures the sensor* so
that the acquired analog signal is already ciphertext.  A key epoch
``K(t) = (E(t), G(t), S(t))`` picks

* ``E`` — the active output-electrode subset (peak-count multiplication),
* ``G`` — per-electrode output gains (peak-amplitude masking),
* ``S`` — the channel flow-speed level (peak-width masking).

Modules
-------
* :mod:`~repro.crypto.gains` — the quantised gain table (§VI-B: 16
  levels, 4-bit resolution).
* :mod:`~repro.crypto.key` — :class:`EpochKey`, :class:`KeySchedule`,
  and the Eq. 1 / Eq. 2 key-length accounting.
* :mod:`~repro.crypto.keygen` — entropy source (/dev/random stand-in)
  and key-schedule generation, including the §VII-A mitigation that
  avoids consecutive-electrode patterns.
* :mod:`~repro.crypto.encryptor` — applies a schedule to particle
  arrivals, producing the multiplied/gain-scaled/width-scaled pulse
  events that the acquisition front-end renders.
* :mod:`~repro.crypto.decryptor` — the controller-side inverse: group
  ciphertext peaks into particles, divide by the multiplication factor,
  invert gains and width scaling.
* :mod:`~repro.crypto.analysis` — security accounting: key entropy,
  one-time-pad comparison, ciphertext leakage measures.
"""

from repro.crypto.analysis import (
    ciphertext_count_candidates,
    epoch_key_entropy_bits,
    keyspace_size,
)
from repro.crypto.decryptor import DecryptedParticle, DecryptionResult, SignalDecryptor
from repro.crypto.encryptor import EncryptionPlan, SignalEncryptor
from repro.crypto.gains import GainTable
from repro.crypto.key import (
    EpochKey,
    KeySchedule,
    eq1_ideal_key_length_bits,
    eq2_key_length_bits,
)
from repro.crypto.keygen import EntropySource, KeyGenerator
from repro.crypto.keyshare import PractitionerPortal, open_plan, seal_plan
from repro.crypto.percell import (
    PerCellDecryptor,
    PerCellEncryptor,
    PerCellPlan,
    generate_percell_plan,
)
from repro.crypto.serialization import plan_from_bytes, plan_to_bytes

__all__ = [
    "PractitionerPortal",
    "open_plan",
    "seal_plan",
    "PerCellDecryptor",
    "PerCellEncryptor",
    "PerCellPlan",
    "generate_percell_plan",
    "plan_from_bytes",
    "plan_to_bytes",
    "ciphertext_count_candidates",
    "epoch_key_entropy_bits",
    "keyspace_size",
    "DecryptedParticle",
    "DecryptionResult",
    "SignalDecryptor",
    "EncryptionPlan",
    "SignalEncryptor",
    "GainTable",
    "EpochKey",
    "KeySchedule",
    "eq1_ideal_key_length_bits",
    "eq2_key_length_bits",
    "EntropySource",
    "KeyGenerator",
]
