"""Applying a key schedule to the sensor: the encryption step.

Encryption costs nothing at run time (paper §IV: "the presented
encryption scheme do[es] not infer any noticeable encryption computation
overhead or delay since it is based only on hardware configuration") —
it is literally the sensor configuration.  This module translates an
epoch key into that configuration:

* ``E`` — for every particle arrival, a dip event is emitted at each
  sensing gap of each *active* electrode (lead: one gap, others: two);
* ``G`` — the per-electrode gain scales the dip amplitudes of that
  electrode's events;
* ``S`` — the flow controller is commanded to the epoch's flow level at
  each epoch boundary, which changes arrival velocities and therefore
  dip widths.

The flow must be planned *before* transport is simulated (the fluid
physically moves at the keyed speed), so the pipeline is:
``plan_flow`` -> transport schedules arrivals -> ``events_for_arrivals``.
"""

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro._util.errors import ConfigurationError
from repro.crypto.gains import GainTable
from repro.crypto.key import EpochKey, KeySchedule
from repro.hardware.electrodes import ElectrodeArray
from repro.microfluidics.channel import MicrofluidicChannel
from repro.microfluidics.flow import FlowController, FlowSpeedTable
from repro.microfluidics.transport import ParticleArrival
from repro.obs import NULL_OBSERVER
from repro.physics.electrical import ElectrodePairCircuit
from repro.physics.peaks import PulseEvent


@dataclass(frozen=True)
class EncryptionPlan:
    """A key schedule bound to the hardware it will drive."""

    schedule: KeySchedule
    array: ElectrodeArray
    gain_table: GainTable
    flow_table: FlowSpeedTable

    def __post_init__(self) -> None:
        if self.schedule.n_electrodes != self.array.n_outputs:
            raise ConfigurationError(
                f"schedule covers {self.schedule.n_electrodes} electrodes, "
                f"array has {self.array.n_outputs}"
            )
        max_gain_level = max(max(e.gain_levels) for e in self.schedule.epochs)
        if max_gain_level >= self.gain_table.n_levels:
            raise ConfigurationError(
                f"schedule uses gain level {max_gain_level}, table has "
                f"{self.gain_table.n_levels} levels"
            )
        max_flow_level = max(e.flow_level for e in self.schedule.epochs)
        if max_flow_level >= self.flow_table.n_levels:
            raise ConfigurationError(
                f"schedule uses flow level {max_flow_level}, table has "
                f"{self.flow_table.n_levels} levels"
            )

    def multiplication_factor_at(self, time_s: float) -> int:
        """m(E) of the epoch active at ``time_s``."""
        return self.array.multiplication_factor(self.schedule.key_at(time_s).active_electrodes)


@dataclass(frozen=True)
class SignalEncryptor:
    """Turns keyed arrivals into ciphertext pulse events.

    Parameters
    ----------
    carrier_frequencies_hz:
        The lock-in's carrier set; dip amplitudes are computed per
        carrier through the circuit's transduction model.
    circuit:
        Electrode-pair circuit used for the transduction efficiency.
    """

    carrier_frequencies_hz: Tuple[float, ...]
    circuit: ElectrodePairCircuit = field(default_factory=ElectrodePairCircuit)
    channel: MicrofluidicChannel = field(default_factory=MicrofluidicChannel)

    def __post_init__(self) -> None:
        carriers = tuple(float(f) for f in self.carrier_frequencies_hz)
        if not carriers:
            raise ConfigurationError("carrier_frequencies_hz must be non-empty")
        object.__setattr__(self, "carrier_frequencies_hz", carriers)

    # ------------------------------------------------------------------
    def plan_flow(self, plan: EncryptionPlan, flow: FlowController) -> None:
        """Command the epoch flow levels onto the flow controller."""
        for index, epoch in enumerate(plan.schedule.epochs):
            start_s, _ = plan.schedule.epoch_bounds(index)
            rate = plan.flow_table.rate_for_level(epoch.flow_level)
            flow.set_rate(start_s, rate)

    # ------------------------------------------------------------------
    def events_for_arrivals(
        self,
        arrivals: Sequence[ParticleArrival],
        plan: EncryptionPlan,
        observer=NULL_OBSERVER,
    ) -> List[PulseEvent]:
        """Ciphertext pulse events for keyed particle arrivals.

        The key applied to a particle is the one active at its arrival
        time; epoch durations are much longer than array transit times,
        so boundary straddling is negligible (the same approximation the
        paper makes by renewing keys "every time unit").
        """
        carriers = np.asarray(self.carrier_frequencies_hz)
        with observer.span("encrypt", arrivals=len(arrivals)) as span:
            events: List[PulseEvent] = []
            for particle_index, arrival in enumerate(arrivals):
                epoch = plan.schedule.key_at(arrival.time_s)
                events.extend(
                    self._events_for_particle(arrival, epoch, plan, carriers, particle_index)
                )
            events.sort(key=lambda event: event.center_s)
            span.set_attribute("pulse_events", len(events))
        observer.incr("encrypt.arrivals", len(arrivals))
        observer.incr("encrypt.pulse_events", len(events))
        return events

    def plaintext_events(
        self,
        arrivals: Sequence[ParticleArrival],
        array: ElectrodeArray,
    ) -> List[PulseEvent]:
        """Unencrypted acquisition: lead electrode only, unit gain.

        §V uses this mode to let the server read a cyto-coded identifier
        directly ("the bio-sensor level encryption turned off such that
        the server-side can recognize the actual number and types of the
        submitted beads").
        """
        carriers = np.asarray(self.carrier_frequencies_hz)
        events: List[PulseEvent] = []
        lead = array.lead_electrode
        for particle_index, arrival in enumerate(arrivals):
            width_s = array.dip_fwhm_s(arrival.velocity_m_s)
            amplitudes = self._dip_amplitudes(arrival, carriers, gain=1.0)
            for gap_m in array.gap_positions_m(lead):
                events.append(
                    PulseEvent(
                        center_s=arrival.time_s + gap_m / arrival.velocity_m_s,
                        width_s=width_s,
                        amplitudes=amplitudes,
                        electrode_index=lead,
                        particle_index=particle_index,
                    )
                )
        events.sort(key=lambda event: event.center_s)
        return events

    # ------------------------------------------------------------------
    def _events_for_particle(
        self,
        arrival: ParticleArrival,
        epoch: EpochKey,
        plan: EncryptionPlan,
        carriers: np.ndarray,
        particle_index: int,
    ) -> List[PulseEvent]:
        width_s = plan.array.dip_fwhm_s(arrival.velocity_m_s)
        events = []
        for electrode in sorted(epoch.active_electrodes):
            gain = plan.gain_table.gain_for_level(epoch.gain_level_for(electrode))
            amplitudes = self._dip_amplitudes(arrival, carriers, gain=gain)
            for gap_m in plan.array.gap_positions_m(electrode):
                events.append(
                    PulseEvent(
                        center_s=arrival.time_s + gap_m / arrival.velocity_m_s,
                        width_s=width_s,
                        amplitudes=amplitudes,
                        electrode_index=electrode,
                        particle_index=particle_index,
                    )
                )
        return events

    def _dip_amplitudes(
        self, arrival: ParticleArrival, carriers: np.ndarray, gain: float
    ) -> np.ndarray:
        drops = arrival.particle.relative_drop(carriers)
        measured = self.circuit.measured_drop(carriers, drops)
        return gain * np.asarray(measured, dtype=float)
