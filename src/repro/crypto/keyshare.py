"""Practitioner key sharing (§VII-B, implemented).

"MedSen's design also allows (not implemented) sharing of the generated
keys with trusted parties, e.g., the patient's practitioners, so that
they could also access the cloud-based analysis outcomes remotely."

This module implements that design point.  The controller seals the
serialized encryption plan under a secret shared out-of-band with the
practitioner (e.g. printed in the pipette box); the practitioner can
then fetch the patient's *encrypted* records from the cloud and decrypt
them independently, without the device in the loop.

The sealing is an authenticated stream cipher built from the standard
library: SHA-256 in counter mode for the keystream and HMAC-SHA256 in
encrypt-then-MAC order for integrity.  (Not a production AEAD — the
point here is the *system* property: key material moves only between
TCB-trusted parties and only confidentially+authenticated.)
"""

import hashlib
import hmac
import os
from dataclasses import dataclass
from typing import List, Optional

from repro._util.errors import DecryptionError, IntegrityError, ValidationError
from repro.cloud.storage import RecordStore, StoredRecord
from repro.crypto.decryptor import DecryptionResult, SignalDecryptor
from repro.crypto.encryptor import EncryptionPlan
from repro.crypto.serialization import MAX_PLAN_BYTES, plan_from_bytes, plan_to_bytes

_NONCE_BYTES = 16
_TAG_BYTES = 32
_ENC_LABEL = b"medsen-keyshare-enc"
_MAC_LABEL = b"medsen-keyshare-mac"


def derive_key(secret: bytes, label: bytes) -> bytes:
    """Domain-separated key derivation: SHA-256(label | secret).

    Public so other sealed formats (the :mod:`repro.guard.envelope`
    report envelopes, freshness tokens) reuse the exact construction —
    distinct labels keep every derived key independent.
    """
    return hashlib.sha256(label + b"|" + secret).digest()


def keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """SHA-256 counter-mode keystream of ``length`` bytes."""
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < length:
        blocks.append(
            hashlib.sha256(key + nonce + counter.to_bytes(8, "little")).digest()
        )
        counter += 1
    return b"".join(blocks)[:length]


# Backwards-compatible private aliases (pre-guard internal names).
_derive = derive_key
_keystream = keystream


def seal_plan(plan: EncryptionPlan, secret: bytes, nonce: Optional[bytes] = None) -> bytes:
    """Seal a plan for a trusted party: nonce || ciphertext || tag."""
    if not secret:
        raise ValidationError("secret must be non-empty")
    nonce = os.urandom(_NONCE_BYTES) if nonce is None else bytes(nonce)
    if len(nonce) != _NONCE_BYTES:
        raise ValidationError(f"nonce must be {_NONCE_BYTES} bytes")
    plaintext = plan_to_bytes(plan)
    stream = _keystream(_derive(secret, _ENC_LABEL), nonce, len(plaintext))
    ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
    tag = hmac.new(_derive(secret, _MAC_LABEL), nonce + ciphertext, hashlib.sha256).digest()
    return nonce + ciphertext + tag


def open_plan(blob: bytes, secret: bytes) -> EncryptionPlan:
    """Open a sealed plan; raises :class:`IntegrityError` on tampering."""
    if not secret:
        raise ValidationError("secret must be non-empty")
    try:
        blob = bytes(blob)
    except (TypeError, ValueError) as error:
        raise ValidationError(f"sealed blob is not bytes-like: {error}") from error
    if len(blob) < _NONCE_BYTES + _TAG_BYTES:
        raise ValidationError("sealed blob too short")
    if len(blob) > MAX_PLAN_BYTES + _NONCE_BYTES + _TAG_BYTES:
        raise ValidationError("sealed blob exceeds the plan size cap")
    nonce = blob[:_NONCE_BYTES]
    ciphertext = blob[_NONCE_BYTES:-_TAG_BYTES]
    tag = blob[-_TAG_BYTES:]
    expected = hmac.new(
        _derive(secret, _MAC_LABEL), nonce + ciphertext, hashlib.sha256
    ).digest()
    if not hmac.compare_digest(tag, expected):
        raise IntegrityError("sealed key blob failed authentication")
    stream = _keystream(_derive(secret, _ENC_LABEL), nonce, len(ciphertext))
    plaintext = bytes(c ^ s for c, s in zip(ciphertext, stream))
    return plan_from_bytes(plaintext)


@dataclass
class PractitionerPortal:
    """The practitioner's independent decryption endpoint.

    Receives sealed key blobs from the patient's controller and fetches
    encrypted records from the cloud store; decryption happens locally,
    so the cloud never learns anything new.
    """

    secret: bytes

    def __post_init__(self) -> None:
        if not self.secret:
            raise ValidationError("secret must be non-empty")
        self._plans: List[EncryptionPlan] = []

    def receive_sealed_plan(self, blob: bytes) -> EncryptionPlan:
        """Unseal and retain a key plan from the patient's device."""
        plan = open_plan(blob, self.secret)
        self._plans.append(plan)
        return plan

    @property
    def n_plans(self) -> int:
        """Plans received so far (one per capture, typically)."""
        return len(self._plans)

    def review_record(self, record: StoredRecord) -> DecryptionResult:
        """Decrypt one stored record with any held plan that fits.

        A plan fits when its schedule covers the record's duration; the
        newest fitting plan wins (schedules are per-capture).
        """
        errors = []
        for plan in reversed(self._plans):
            decryptor = SignalDecryptor(plan=plan)
            try:
                return decryptor.decrypt(record.report)
            except DecryptionError as error:
                errors.append(str(error))
        raise DecryptionError(
            "no held key plan decrypts this record"
            + (f" (tried {len(errors)}: {errors[-1]})" if errors else "")
        )

    def review_latest(self, store: RecordStore, identifier_key: str) -> DecryptionResult:
        """Fetch and decrypt the newest record for an identifier."""
        record = store.fetch_latest(identifier_key)
        return self.review_record(record)
