"""Quantised output-electrode gains (the ``G`` key component).

§VI-B: peak amplitudes of interest span about a 4x range (3.58 µm bead
= 1x, blood cell ~ 2x, 7.8 µm bead ~ 4x), and the paper picks 16 gain
levels (4-bit resolution) as "(more than) sufficient entropy and
flexibility to change peak characteristics in order to conceal cell
types".  The gain range therefore must cover at least that 4x spread so
any particle type can be masqueraded as any other.

Levels are geometrically spaced: each step multiplies the gain by a
constant ratio, giving uniform *relative* amplitude resolution.
"""

from dataclasses import dataclass
from typing import List

from repro._util.errors import ConfigurationError
from repro._util.validation import check_positive


@dataclass(frozen=True)
class GainTable:
    """Geometrically spaced analog gain levels.

    Parameters
    ----------
    n_levels:
        Number of selectable gains (paper: 16).
    min_gain, max_gain:
        Gain range.  The default [0.5, 4.0] spans an 8x ratio — enough
        to map the largest natural peak below the smallest and vice
        versa.
    """

    n_levels: int = 16
    min_gain: float = 0.5
    max_gain: float = 4.0

    def __post_init__(self) -> None:
        if self.n_levels < 1:
            raise ConfigurationError(f"n_levels must be >= 1, got {self.n_levels}")
        check_positive("min_gain", self.min_gain)
        check_positive("max_gain", self.max_gain)
        if self.max_gain < self.min_gain:
            raise ConfigurationError("max_gain must be >= min_gain")

    @property
    def resolution_bits(self) -> int:
        """Bits per gain value (the ``R_gain`` of Eq. 2)."""
        return max(1, (self.n_levels - 1).bit_length())

    def gain_for_level(self, level: int) -> float:
        """Gain multiplier for key level ``level`` in [0, n_levels)."""
        if not 0 <= level < self.n_levels:
            raise ConfigurationError(f"gain level {level} out of range [0, {self.n_levels})")
        if self.n_levels == 1:
            return self.min_gain
        ratio = self.max_gain / self.min_gain
        return self.min_gain * ratio ** (level / (self.n_levels - 1))

    def level_for_gain(self, gain: float) -> int:
        """Nearest level whose gain matches ``gain``."""
        check_positive("gain", gain)
        best_level, best_error = 0, float("inf")
        for level in range(self.n_levels):
            error = abs(self.gain_for_level(level) - gain)
            if error < best_error:
                best_level, best_error = level, error
        return best_level

    def all_gains(self) -> List[float]:
        """Every gain in level order."""
        return [self.gain_for_level(level) for level in range(self.n_levels)]

    @property
    def span_ratio(self) -> float:
        """max_gain / min_gain — must exceed the natural amplitude spread
        (~4x) for type masquerading to be possible."""
        return self.max_gain / self.min_gain
