"""Disconnection-tolerant streaming monitoring (the streaming lane).

A point-of-care monitor cannot hold a session's worth of trace in RAM
or trust a clinic's uplink to stay alive — this package lets the device
ship its trace as sealed chunks and still get the *exact* one-shot
answer:

* :mod:`~repro.stream.envelope` — MSS1, the per-chunk authenticated
  envelope (epoch + session + seq bound under the MAC).
* :mod:`~repro.stream.session` — resumable sessions: per-session
  cursor + acked-chunk journal (resume replays nothing), deadline
  watchdog (suspend → reap), mid-stream key-epoch rotation with a
  bounded overlap window, and adaptive rate control that degrades
  instead of failing under congestion.
* :mod:`~repro.stream.campaign` — the scripted streaming drill behind
  ``python -m repro stream`` and the CI gate.

The DSP core (chunked windowed detrend + carry-over peak detection,
bit-identical to the one-shot path) lives in
:mod:`repro.dsp.windowed`; this package is the protocol around it.
"""

from repro.stream.campaign import (
    StreamInvariant,
    StreamReport,
    run_stream,
    synthetic_stream_trace,
)
from repro.stream.envelope import (
    HEADER_BYTES,
    MAX_CHUNK_BYTES,
    MAX_CHUNK_CHANNELS,
    MAX_CHUNK_SAMPLES,
    StreamChunk,
    chunk_epoch,
    open_chunk,
    seal_chunk,
)
from repro.stream.session import (
    ChunkAck,
    DeviceStreamer,
    OpenedStream,
    RateController,
    ResumeInfo,
    StreamGateway,
    StreamOutcome,
    StreamSessionConfig,
    degraded_stream_diagnosis,
    report_digest,
)

__all__ = [
    "ChunkAck",
    "DeviceStreamer",
    "HEADER_BYTES",
    "MAX_CHUNK_BYTES",
    "MAX_CHUNK_CHANNELS",
    "MAX_CHUNK_SAMPLES",
    "OpenedStream",
    "RateController",
    "ResumeInfo",
    "StreamChunk",
    "StreamGateway",
    "StreamInvariant",
    "StreamOutcome",
    "StreamReport",
    "StreamSessionConfig",
    "chunk_epoch",
    "degraded_stream_diagnosis",
    "open_chunk",
    "report_digest",
    "run_stream",
    "seal_chunk",
    "synthetic_stream_trace",
]
