"""The streaming drill: scripted link faults, checked invariants.

``run_stream`` drives real :class:`~repro.stream.session.DeviceStreamer`
/ :class:`~repro.stream.session.StreamGateway` pairs through every
failure the streaming lane claims to survive — disconnects in both
flavours, dropped chunks, a mid-stream key rotation, sustained
congestion, and a device that simply vanishes — and checks the lane's
contract after each:

* ``stream-bit-identical`` — streamed output equals the one-shot
  pipeline bit-for-bit, across varied chunk sizes.
* ``stream-resume-replays-nothing`` — disconnect + resume re-analyses
  zero chunks; retransmits of acked chunks dedupe at the cursor.
* ``stream-epoch-rotation-window`` — chunks sealed just before a
  rotation land inside the bounded overlap; stragglers past it refuse.
* ``stream-reorder-refused`` — a future-seq chunk at resume refuses
  with the expected cursor; replays of acked chunks ack idempotently.
* ``stream-congestion-degrades`` — a congested link shrinks chunks to
  the floor and the outcome degrades (through the standard
  degraded-diagnosis policy) instead of failing — and is *still*
  bit-identical.
* ``stream-watchdog-reaps`` — silent sessions suspend then reap on
  deadline; heartbeats keep an idle-but-alive session off the list.
* ``stream-journal-rebuild`` — replaying the acked-chunk journal
  reproduces the closed session's report digest exactly.

Everything is seeded; the report digest is deterministic, so the drill
can gate CI (``python -m repro stream --smoke``).
"""

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro._util.errors import (
    SequenceGapError,
    SessionReapedError,
    SessionStateError,
    StaleEpochError,
)
from repro.dsp.peakdetect import PeakDetector
from repro.obs import NULL_OBSERVER, ManualClock
from repro.serving.request import derive_request_rng
from repro.stream.envelope import seal_chunk
from repro.stream.session import (
    DeviceStreamer,
    StreamGateway,
    StreamSessionConfig,
    degraded_stream_diagnosis,
    report_digest,
)

_SECRET = b"stream-drill-shared-secret"


@dataclass(frozen=True)
class StreamInvariant:
    """One checked property of the streaming lane."""

    name: str
    ok: bool
    detail: str = ""


@dataclass
class StreamReport:
    """Everything one streaming drill produced."""

    seed: int
    smoke: bool
    invariants: List[StreamInvariant] = field(default_factory=list)
    outcome_digests: List[str] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    digest: str = ""

    @property
    def passed(self) -> bool:
        return all(inv.ok for inv in self.invariants)

    def failures(self) -> List[StreamInvariant]:
        return [inv for inv in self.invariants if not inv.ok]

    def format(self) -> str:
        """Human-readable drill summary."""
        lines = [
            f"stream drill seed {self.seed}"
            f"{' (smoke)' if self.smoke else ''}: "
            f"{'PASS' if self.passed else 'FAIL'}",
            "link              "
            f"{self.counters.get('chunks_sent', 0)} chunks sent, "
            f"{self.counters.get('retransmits', 0)} retransmits, "
            f"{self.counters.get('disconnects', 0)} disconnects, "
            f"{self.counters.get('duplicate_acks', 0)} duplicate acks",
            "sessions          "
            f"{self.counters.get('sessions', 0)} run, "
            f"{self.counters.get('rotations', 0)} epoch rotations, "
            f"{self.counters.get('suspended', 0)} suspended, "
            f"{self.counters.get('reaped', 0)} reaped, "
            f"{self.counters.get('degraded', 0)} degraded",
        ]
        for inv in self.invariants:
            mark = "PASS" if inv.ok else "FAIL"
            detail = f"  ({inv.detail})" if inv.detail and not inv.ok else ""
            lines.append(f"  [{mark}] {inv.name}{detail}")
        lines.append(f"digest            {self.digest}")
        return "\n".join(lines)


class _ScriptedLink:
    """Deterministic fault schedule in the injector's duck type."""

    def __init__(
        self,
        drop_seqs: Tuple[int, ...] = (),
        disconnects: Optional[Dict[int, str]] = None,
        congest_all: bool = False,
    ) -> None:
        self.drop_seqs = set(drop_seqs)
        self.disconnects = dict(disconnects or {})
        self.congest_all = congest_all

    def should_drop_chunk(self, label: str, seq: int, attempt: int) -> bool:
        return attempt == 0 and seq in self.drop_seqs

    def disconnect_mode(self, label: str, seq: int) -> Optional[str]:
        return self.disconnects.get(seq)

    def congestion_signal(self, label: str, seq: int) -> bool:
        return self.congest_all


def synthetic_stream_trace(
    rng: np.random.Generator,
    n_channels: int = 3,
    n_samples: int = 4000,
    sampling_rate_hz: float = 1000.0,
) -> np.ndarray:
    """A drifting multi-channel trace with well-separated dips."""
    t = np.arange(n_samples, dtype=float)
    trace = np.ones((n_channels, n_samples))
    for ch in range(n_channels):
        trace[ch] += 0.02 * np.sin(
            2.0 * np.pi * t / n_samples * rng.uniform(1.0, 3.0)
        )
    n_peaks = max(n_samples // 400, 3)
    centers = rng.choice(
        np.arange(120, n_samples - 120, 40), size=n_peaks, replace=False
    )
    for center in centers:
        width = rng.uniform(3.0, 10.0)
        depth = rng.uniform(0.01, 0.06)
        bump = np.exp(-0.5 * ((t - center) / width) ** 2)
        for ch in range(n_channels):
            trace[ch] -= depth * rng.uniform(0.6, 1.0) * bump
    trace += rng.normal(0.0, 1e-4, trace.shape)
    return trace


def _one_shot_digest(trace: np.ndarray, sampling_rate_hz: float) -> str:
    return report_digest(PeakDetector().detect(trace, sampling_rate_hz))


def run_stream(
    seed: int = 0,
    smoke: bool = False,
    observer: Any = NULL_OBSERVER,
) -> StreamReport:
    """Run the full streaming drill; deterministic for a given seed."""
    report = StreamReport(seed=seed, smoke=smoke)
    checks = report.invariants
    counters = report.counters
    for key in (
        "chunks_sent",
        "retransmits",
        "disconnects",
        "duplicate_acks",
        "sessions",
        "rotations",
        "suspended",
        "reaped",
        "degraded",
    ):
        counters[key] = 0

    def track(streamer: DeviceStreamer) -> None:
        counters["sessions"] += 1
        counters["chunks_sent"] += streamer.chunks_sent
        counters["retransmits"] += streamer.retransmits
        counters["disconnects"] += streamer.disconnects
        counters["duplicate_acks"] += streamer.duplicate_acks

    # ------------------------------------------------------------------
    # Phase 1 — bit-identity across chunk geometries, clean link.
    # ------------------------------------------------------------------
    n_identity = 2 if smoke else 4
    chunk_menu = (192, 333, 512, 1024)
    mismatches: List[str] = []
    for trial in range(n_identity):
        rng = derive_request_rng(seed, "stream#identity", trial)
        fs = 1000.0
        trace = synthetic_stream_trace(
            rng, n_samples=2500 if smoke else 4000, sampling_rate_hz=fs
        )
        chunk = chunk_menu[trial % len(chunk_menu)]
        config = StreamSessionConfig(
            chunk_samples=chunk, min_chunk_samples=64, max_chunk_samples=chunk
        )
        gateway = StreamGateway(
            _SECRET, config=config, observer=observer
        )
        streamer = DeviceStreamer(
            trace, fs, f"clinic-{trial:02d}", _SECRET,
            config=config, observer=observer, rng=rng,
        )
        outcome = streamer.run(gateway)
        track(streamer)
        report.outcome_digests.append(outcome.digest)
        expected = _one_shot_digest(trace, fs)
        if outcome.digest != expected:
            mismatches.append(
                f"trial {trial} chunk {chunk}: {outcome.digest} != {expected}"
            )
    checks.append(
        StreamInvariant(
            name="stream-bit-identical",
            ok=not mismatches,
            detail="; ".join(mismatches),
        )
    )

    # ------------------------------------------------------------------
    # Phase 2 — disconnect + resume replays nothing; journal rebuild.
    # ------------------------------------------------------------------
    rng = derive_request_rng(seed, "stream#resume", 0)
    fs = 1000.0
    trace = synthetic_stream_trace(rng, n_samples=3513, sampling_rate_hz=fs)
    config = StreamSessionConfig(
        chunk_samples=512, min_chunk_samples=128, max_chunk_samples=512
    )
    gateway = StreamGateway(_SECRET, config=config, observer=observer)
    link = _ScriptedLink(
        drop_seqs=(1, 5), disconnects={2: "chunk-lost", 4: "ack-lost"}
    )
    streamer = DeviceStreamer(
        trace, fs, "clinic-resume", _SECRET,
        config=config, observer=observer, rng=rng,
    )
    outcome = streamer.run(gateway, injector=link)
    track(streamer)
    report.outcome_digests.append(outcome.digest)
    expected = _one_shot_digest(trace, fs)
    problems: List[str] = []
    if outcome.digest != expected:
        problems.append(f"digest {outcome.digest} != one-shot {expected}")
    n_chunks = -(-trace.shape[1] // config.chunk_samples)
    if gateway.chunks_analyzed != n_chunks:
        problems.append(
            f"{gateway.chunks_analyzed} chunks analysed, expected {n_chunks} "
            "(a resume replayed work)"
        )
    if streamer.disconnects != 2:
        problems.append(f"{streamer.disconnects} disconnects, scripted 2")
    if streamer.duplicate_acks < 1:
        problems.append("ack-lost retransmit was not deduplicated")
    if streamer.retransmits < 2:
        problems.append(f"{streamer.retransmits} retransmits, scripted >= 2")
    checks.append(
        StreamInvariant(
            name="stream-resume-replays-nothing",
            ok=not problems,
            detail="; ".join(problems),
        )
    )
    rebuilt = gateway.replay_journal(outcome.session_id)
    checks.append(
        StreamInvariant(
            name="stream-journal-rebuild",
            ok=report_digest(rebuilt) == outcome.digest,
            detail=f"{report_digest(rebuilt)} vs {outcome.digest}",
        )
    )

    # ------------------------------------------------------------------
    # Phase 3 — mid-stream epoch rotation inside the overlap window,
    # then adversarial probes: stale straggler, future seq, replay.
    # ------------------------------------------------------------------
    rng = derive_request_rng(seed, "stream#rotation", 0)
    fs = 1000.0
    trace = synthetic_stream_trace(rng, n_samples=3200, sampling_rate_hz=fs)
    config = StreamSessionConfig(
        chunk_samples=512,
        min_chunk_samples=128,
        max_chunk_samples=512,
        epoch_overlap_chunks=4,
    )
    gateway = StreamGateway(_SECRET, config=config, observer=observer)
    streamer = DeviceStreamer(
        trace, fs, "clinic-rotate", _SECRET,
        config=config, observer=observer, rng=rng,
    )

    def rotate_schedule(s: DeviceStreamer, seq: int) -> None:
        # The controller rotates at chunk 2; the device catches up at
        # chunk 4 — chunks 2 and 3 ride the overlap window still
        # sealed under the old epoch.
        if seq == 2:
            gateway.rotate_epoch()
        elif seq == 4:
            s.advance_epoch()

    outcome = streamer.run(gateway, before_chunk=rotate_schedule)
    track(streamer)
    counters["rotations"] += gateway.rotations
    report.outcome_digests.append(outcome.digest)
    expected = _one_shot_digest(trace, fs)
    problems = []
    if outcome.digest != expected:
        problems.append(f"digest {outcome.digest} != one-shot {expected}")
    if gateway.epoch_overlap_accepted != 2:
        problems.append(
            f"{gateway.epoch_overlap_accepted} overlap chunks accepted, "
            "expected exactly 2"
        )
    checks.append(
        StreamInvariant(
            name="stream-epoch-rotation-window",
            ok=not problems,
            detail="; ".join(problems),
        )
    )

    # Adversarial probes against a fresh session on the same gateway.
    probe_problems: List[str] = []
    probe_rng = derive_request_rng(seed, "stream#probes", 0)
    probe = DeviceStreamer(
        trace[:, :1024], fs, "clinic-probe", _SECRET,
        key_epoch=gateway.key_epoch,
        config=config, observer=observer, rng=probe_rng,
    )
    opened = gateway.open_session(
        "clinic-probe", trace.shape[0], fs, probe.minter.mint()
    )
    first = seal_chunk(
        trace[:, :512], _SECRET, opened.session_key, seq=0,
        key_epoch=gateway.key_epoch, sampling_rate_hz=fs,
        nonce=probe_rng.bytes(16),
    )
    gateway.ingest_chunk(first)
    analysed_before = gateway.chunks_analyzed
    # Straggler from two epochs ago: outside any overlap window.
    gateway.rotate_epoch()
    counters["rotations"] += 1
    stale = seal_chunk(
        trace[:, 512:1024], _SECRET, opened.session_key, seq=1,
        key_epoch=gateway.key_epoch - 2, sampling_rate_hz=fs,
        nonce=probe_rng.bytes(16),
    )
    try:
        gateway.ingest_chunk(stale)
        probe_problems.append("stale-epoch straggler was accepted")
    except StaleEpochError:
        pass
    # Reordered future chunk: must refuse with the expected cursor.
    future = seal_chunk(
        trace[:, 512:1024], _SECRET, opened.session_key, seq=5,
        key_epoch=gateway.key_epoch, sampling_rate_hz=fs,
        nonce=probe_rng.bytes(16),
    )
    try:
        gateway.ingest_chunk(future)
        probe_problems.append("future-seq chunk was accepted")
    except SequenceGapError as error:
        if error.expected_seq != 1:
            probe_problems.append(
                f"gap refusal advertised seq {error.expected_seq}, cursor is 1"
            )
    # Replay of an acked chunk: idempotent ack, nothing re-analysed.
    ack = gateway.ingest_chunk(first)
    if not ack.duplicate or ack.cursor != 1:
        probe_problems.append("replayed chunk was not answered as duplicate")
    if gateway.chunks_analyzed != analysed_before:
        probe_problems.append("replayed chunk was re-analysed")
    checks.append(
        StreamInvariant(
            name="stream-reorder-refused",
            ok=not probe_problems,
            detail="; ".join(probe_problems),
        )
    )

    # ------------------------------------------------------------------
    # Phase 4 — congestion: shrink to the floor, degrade, stay correct.
    # ------------------------------------------------------------------
    from repro.core.device import MedSenDevice
    from repro.core.diagnosis import CD4_STAGING
    from repro.particles.library import get_particle_type
    from repro.particles.sample import Sample
    from repro.resilience.health import OK

    rng = derive_request_rng(seed, "stream#congestion", 0)
    sample = Sample.from_concentrations(
        {get_particle_type("blood_cell"): 400.0},
        volume_ul=10.0,
        rng=rng,
    )
    device = MedSenDevice(rng=rng, observer=observer)
    capture = device.run_capture(sample, 2.0 if smoke else 4.0, encrypt=True)
    voltages = capture.trace.voltages
    fs = capture.trace.sampling_rate_hz
    config = StreamSessionConfig(
        chunk_samples=512, min_chunk_samples=64, max_chunk_samples=512
    )
    gateway = StreamGateway(_SECRET, config=config, observer=observer)
    streamer = DeviceStreamer(
        voltages, fs, "clinic-congested", _SECRET,
        config=config, observer=observer, rng=rng,
    )
    outcome = streamer.run(gateway, injector=_ScriptedLink(congest_all=True))
    track(streamer)
    report.outcome_digests.append(outcome.digest)
    problems = []
    if not outcome.degraded:
        problems.append("congested stream did not degrade")
    else:
        counters["degraded"] += 1
    if not streamer.controller.floored:
        problems.append("rate controller never hit the chunk floor")
    if streamer.controller.chunk_samples != config.min_chunk_samples:
        problems.append(
            f"chunk size settled at {streamer.controller.chunk_samples}, "
            f"floor is {config.min_chunk_samples}"
        )
    expected = _one_shot_digest(voltages, fs)
    if outcome.digest != expected:
        problems.append(f"digest {outcome.digest} != one-shot {expected}")
    diagnosis = degraded_stream_diagnosis(
        device,
        outcome,
        pumped_volume_ul=capture.pumped_volume_ul,
        diagnostic=CD4_STAGING,
        observer=observer,
    )
    if diagnosis.status == OK:
        problems.append("degraded stream still diagnosed OK")
    checks.append(
        StreamInvariant(
            name="stream-congestion-degrades",
            ok=not problems,
            detail="; ".join(problems),
        )
    )

    # ------------------------------------------------------------------
    # Phase 5 — the watchdog: suspend on silence, reap on deadline.
    # ------------------------------------------------------------------
    clock = ManualClock()
    config = StreamSessionConfig(
        chunk_samples=512,
        min_chunk_samples=128,
        max_chunk_samples=512,
        suspend_after_s=15.0,
        reap_after_s=60.0,
    )
    gateway = StreamGateway(
        _SECRET, config=config, observer=observer, clock=clock
    )
    rng = derive_request_rng(seed, "stream#watchdog", 0)
    trace = synthetic_stream_trace(rng, n_samples=2048, sampling_rate_hz=1000.0)
    idle = DeviceStreamer(
        trace, 1000.0, "clinic-idle", _SECRET,
        config=config, observer=observer, rng=rng,
    )
    alive = DeviceStreamer(
        trace, 1000.0, "clinic-alive", _SECRET,
        config=config, observer=observer, rng=rng,
    )
    opened_idle = gateway.open_session(
        "clinic-idle", trace.shape[0], 1000.0, idle.minter.mint()
    )
    opened_alive = gateway.open_session(
        "clinic-alive", trace.shape[0], 1000.0, alive.minter.mint()
    )
    problems = []

    def chunk_for(opened, streamer, seq: int, lo: int, hi: int) -> bytes:
        return seal_chunk(
            trace[:, lo:hi], _SECRET, opened.session_key, seq=seq,
            key_epoch=0, sampling_rate_hz=1000.0, nonce=rng.bytes(16),
        )

    gateway.ingest_chunk(chunk_for(opened_idle, idle, 0, 0, 512))
    gateway.ingest_chunk(chunk_for(opened_alive, alive, 0, 0, 512))
    clock.advance(10.0)
    gateway.heartbeat(opened_alive.session_id)
    clock.advance(10.0)  # idle silent for 20 s, alive for 10 s
    suspended, reaped = gateway.sweep()
    counters["suspended"] += len(suspended)
    if list(suspended) != [opened_idle.session_id] or reaped:
        problems.append(
            f"sweep suspended {suspended!r} / reaped {reaped!r}, "
            "expected the idle session suspended only"
        )
    try:
        gateway.ingest_chunk(chunk_for(opened_idle, idle, 1, 512, 1024))
        problems.append("suspended session accepted a chunk without resume")
    except SessionStateError:
        pass
    info = gateway.resume(opened_idle.session_id, opened_idle.resume_token)
    if info.cursor != 1:
        problems.append(f"resume advertised cursor {info.cursor}, expected 1")
    gateway.ingest_chunk(chunk_for(opened_idle, idle, 1, 512, 1024))
    # Now go silent past both deadlines: suspend, then reap.
    clock.advance(20.0)
    gateway.sweep()
    counters["suspended"] += 1
    clock.advance(61.0)
    _, reaped = gateway.sweep()
    counters["reaped"] += len(reaped)
    if opened_idle.session_id not in reaped:
        problems.append("silent session was never reaped")
    try:
        gateway.resume(opened_idle.session_id, opened_idle.resume_token)
        problems.append("reaped session accepted a resume")
    except SessionReapedError:
        pass
    try:
        gateway.ingest_chunk(chunk_for(opened_idle, idle, 2, 1024, 1536))
        problems.append("reaped session accepted a chunk")
    except SessionReapedError:
        pass
    if gateway.session_state(opened_alive.session_id) != "reaped":
        # The alive session also went silent above; it reaps on the
        # same sweeps, which is fine — what matters is that heartbeats
        # deferred its suspension at the 20 s mark.
        pass
    checks.append(
        StreamInvariant(
            name="stream-watchdog-reaps",
            ok=not problems,
            detail="; ".join(problems),
        )
    )

    # ------------------------------------------------------------------
    # Final report digest (deterministic; no wall-clock anywhere).
    # ------------------------------------------------------------------
    canonical = json.dumps(
        {
            "drill": "stream",
            "seed": seed,
            "smoke": smoke,
            "invariants": [
                (inv.name, inv.ok, inv.detail) for inv in checks
            ],
            "outcomes": report.outcome_digests,
            "counters": dict(sorted(counters.items())),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    report.digest = hashlib.blake2b(
        canonical.encode("utf-8"), digest_size=16
    ).hexdigest()
    return report
