"""Resumable streaming sessions: cursor, journal, watchdog, rotation.

The streaming protocol in one paragraph: a device opens a session with
an authenticated freshness token (MSF1/MSF2, replay-protected by the
gateway's :class:`~repro.guard.freshness.FreshnessGuard`), then sends
sealed MSS1 chunks (:mod:`repro.stream.envelope`) in sequence.  The
gateway keeps a **per-session cursor** (the next seq it will analyse)
and an **acked-chunk journal** (every sealed blob it accepted, in
order).  A chunk at ``seq == cursor`` is fed into the windowed
carry-over detector (:class:`~repro.dsp.windowed.WindowedPeakDetector`)
exactly once; ``seq < cursor`` is a duplicate delivery and is answered
from the cursor without re-analysis (*replays nothing*); ``seq >
cursor`` is a loss and refuses with a typed
:class:`~repro._util.errors.SequenceGapError` carrying the expected
seq.  A disconnected device resumes with its ``resume_token`` and
continues from the cursor; a device that never comes back is suspended
and then reaped by the deadline watchdog.  Mid-stream the key epoch can
rotate: the gateway accepts a bounded number of chunks still sealed
under the previous epoch (the rotation overlap window), then the old
epoch goes stale.

Session state machine (see docs/streaming.md)::

    open_session ──> ACTIVE ──close_session──> CLOSED
                      │  ▲
            idle > suspend_after_s
                      ▼  │ resume(resume_token)
                   SUSPENDED ──idle > reap_after_s──> REAPED

Every transition is an audit event; every refusal is typed.
"""

import hashlib
import hmac as hmac_mod
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro._util.errors import (
    ResumeAuthError,
    SequenceGapError,
    SessionReapedError,
    SessionStateError,
    StaleEpochError,
    StreamSessionError,
    UnknownSessionError,
    ValidationError,
)
from repro.dsp.peakdetect import PeakDetector, PeakReport
from repro.dsp.windowed import WindowedPeakDetector
from repro.guard.freshness import FreshnessGuard, TokenMinter
from repro.obs import (
    NULL_OBSERVER,
    STALE_EPOCH_REJECTED,
    STREAM_CHUNK_REFUSED,
    STREAM_DEGRADED,
    STREAM_EPOCH_ROTATED,
    STREAM_SESSION_CLOSED,
    STREAM_SESSION_OPENED,
    STREAM_SESSION_REAPED,
    STREAM_SESSION_RESUMED,
    STREAM_SESSION_SUSPENDED,
)
from repro.stream.envelope import (
    MAX_CHUNK_CHANNELS,
    open_chunk,
    seal_chunk,
)

#: Session states.
ACTIVE = "active"
SUSPENDED = "suspended"
CLOSED = "closed"
REAPED = "reaped"

_RESUME_LABEL = b"medsen-stream-resume"
_SESSION_KEY_LABEL = b"medsen-stream-session"


@dataclass(frozen=True)
class StreamSessionConfig:
    """Tuning knobs for one gateway's streaming lane."""

    chunk_samples: int = 2048
    min_chunk_samples: int = 128
    max_chunk_samples: int = 16384
    send_interval_s: float = 0.0
    heartbeat_interval_s: float = 5.0
    suspend_after_s: float = 15.0
    reap_after_s: float = 60.0
    epoch_overlap_chunks: int = 4
    congestion_backoff: float = 0.5
    clean_acks_to_grow: int = 4
    max_attempts: int = 8

    def __post_init__(self) -> None:
        if self.min_chunk_samples < 1:
            raise ValidationError("min_chunk_samples must be >= 1")
        if not (
            self.min_chunk_samples <= self.chunk_samples <= self.max_chunk_samples
        ):
            raise ValidationError(
                "chunk_samples must satisfy min <= chunk <= max, got "
                f"{self.min_chunk_samples}/{self.chunk_samples}/{self.max_chunk_samples}"
            )
        if self.send_interval_s < 0:
            raise ValidationError("send_interval_s must be >= 0")
        if self.suspend_after_s <= 0 or self.reap_after_s <= self.suspend_after_s:
            raise ValidationError(
                "deadlines must satisfy 0 < suspend_after_s < reap_after_s"
            )
        if self.epoch_overlap_chunks < 0:
            raise ValidationError("epoch_overlap_chunks must be >= 0")
        if not 0.0 < self.congestion_backoff < 1.0:
            raise ValidationError("congestion_backoff must be in (0, 1)")
        if self.clean_acks_to_grow < 1:
            raise ValidationError("clean_acks_to_grow must be >= 1")
        if self.max_attempts < 1:
            raise ValidationError("max_attempts must be >= 1")


@dataclass(frozen=True)
class OpenedStream:
    """The gateway's answer to ``open_session``."""

    session_id: str
    session_key: bytes
    resume_token: str
    chunk_samples: int
    key_epoch: int


@dataclass(frozen=True)
class ChunkAck:
    """The gateway's answer to one accepted (or duplicate) chunk."""

    session_id: str
    seq: int
    cursor: int
    duplicate: bool
    backpressure: bool
    peaks_so_far: int


@dataclass(frozen=True)
class ResumeInfo:
    """The gateway's answer to ``resume``: where to pick up."""

    session_id: str
    cursor: int
    chunk_samples: int
    key_epoch: int


@dataclass(frozen=True)
class StreamOutcome:
    """Terminal result of one closed streaming session."""

    session_id: str
    tenant_id: str
    n_chunks: int
    n_samples: int
    n_duplicates: int
    report: PeakReport
    digest: str
    degraded: bool = False
    degraded_reason: str = ""


def report_digest(report: PeakReport) -> str:
    """Canonical BLAKE2b digest of a peak report's full content.

    The streamed-vs-one-shot bit-identity guarantee is checked through
    this: identical float bits serialise to identical JSON (shortest
    round-trip repr), so equal digests mean equal reports field-for-field.
    """
    from repro.cloud.api import report_to_dict

    canonical = json.dumps(
        report_to_dict(report), sort_keys=True, separators=(",", ":")
    )
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=12).hexdigest()


class _Session:
    """Mutable gateway-side state of one stream (not exported)."""

    __slots__ = (
        "session_id",
        "tenant_id",
        "session_key",
        "resume_token",
        "n_channels",
        "sampling_rate_hz",
        "state",
        "cursor",
        "journal",
        "detector",
        "last_seen_s",
        "overlap_remaining",
        "n_samples",
        "n_duplicates",
        "heartbeats",
        "outcome",
    )

    def __init__(
        self,
        session_id: str,
        tenant_id: str,
        session_key: bytes,
        resume_token: str,
        n_channels: int,
        sampling_rate_hz: float,
        detector: WindowedPeakDetector,
        now_s: float,
    ) -> None:
        self.session_id = session_id
        self.tenant_id = tenant_id
        self.session_key = session_key
        self.resume_token = resume_token
        self.n_channels = n_channels
        self.sampling_rate_hz = sampling_rate_hz
        self.state = ACTIVE
        self.cursor = 0
        self.journal: List[bytes] = []
        self.detector: Optional[WindowedPeakDetector] = detector
        self.last_seen_s = now_s
        self.overlap_remaining = 0
        self.n_samples = 0
        self.n_duplicates = 0
        self.heartbeats = 0
        self.outcome: Optional[StreamOutcome] = None


class StreamGateway:
    """The cloud side of the streaming lane.

    One gateway serves many concurrent sessions; each session owns a
    windowed carry-over detector whose concatenated output is
    bit-identical to the one-shot pipeline on the full trace.

    Parameters
    ----------
    secret:
        Shared device/cloud secret: seals chunks, authenticates
        freshness tokens at open, and derives resume tokens.
    key_epoch:
        The epoch currently expected on inbound chunks.
    config:
        Protocol deadlines and rate-control hints.
    detector:
        Template :class:`~repro.dsp.peakdetect.PeakDetector` whose
        thresholds each session's windowed detector mirrors.
    clock:
        Monotonic-ish time source for the watchdog (injectable;
        :class:`~repro.obs.ManualClock` makes reaping deterministic).
    """

    def __init__(
        self,
        secret: bytes,
        key_epoch: int = 0,
        config: Optional[StreamSessionConfig] = None,
        detector: Optional[PeakDetector] = None,
        observer: Any = NULL_OBSERVER,
        clock: Any = None,
    ) -> None:
        if not secret:
            raise ValidationError("stream secret must be non-empty")
        self.secret = secret
        self.key_epoch = int(key_epoch)
        self.config = config or StreamSessionConfig()
        self.detector = detector or PeakDetector()
        self.observer = observer
        self._clock = clock
        self.freshness = FreshnessGuard(secret, key_epoch=key_epoch)
        self._sessions: Dict[str, _Session] = {}
        self._by_key: Dict[bytes, str] = {}
        self._opened = 0
        self.congested = False
        self.chunks_analyzed = 0
        self.epoch_overlap_accepted = 0
        self.rotations = 0

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return float(self._clock()) if self._clock is not None else 0.0

    def _refuse(self, session_id: str, reason: str, error: StreamSessionError):
        self.observer.incr("stream.refused")
        self.observer.event(
            STREAM_CHUNK_REFUSED, session=session_id, reason=reason
        )
        raise error

    def _derive_resume_token(self, session_id: str) -> str:
        from repro.crypto.keyshare import derive_key

        return hmac_mod.new(
            derive_key(self.secret, _RESUME_LABEL),
            session_id.encode("utf-8"),
            hashlib.sha256,
        ).hexdigest()[:32]

    def _derive_session_key(self, session_id: str) -> bytes:
        from repro.crypto.keyshare import derive_key

        return hmac_mod.new(
            derive_key(self.secret, _SESSION_KEY_LABEL),
            session_id.encode("utf-8"),
            hashlib.sha256,
        ).digest()[:16]

    def _lookup(self, session_id: str) -> _Session:
        session = self._sessions.get(session_id)
        if session is None:
            self._refuse(
                session_id,
                "unknown_session",
                UnknownSessionError(f"unknown stream session {session_id!r}"),
            )
        return session

    # ------------------------------------------------------------------
    def open_session(
        self,
        tenant_id: str,
        n_channels: int,
        sampling_rate_hz: float,
        token_blob: Any,
    ) -> OpenedStream:
        """Admit a freshness token and open one streaming session.

        The token rides the same :class:`FreshnessGuard` as one-shot
        ingest — forged, replayed, or stale-epoch opens are typed
        :class:`~repro._util.errors.AdmissionError` refusals before any
        session state is allocated.
        """
        if not tenant_id or not isinstance(tenant_id, str):
            raise ValidationError("tenant_id must be a non-empty string")
        if not 1 <= int(n_channels) <= MAX_CHUNK_CHANNELS:
            raise ValidationError(
                f"n_channels must be 1..{MAX_CHUNK_CHANNELS}, got {n_channels}"
            )
        if not np.isfinite(sampling_rate_hz) or sampling_rate_hz <= 0:
            raise ValidationError(
                f"sampling rate must be finite > 0, got {sampling_rate_hz}"
            )
        self.freshness.admit(token_blob, observer=self.observer, boundary="stream")
        session_id = f"{tenant_id}/s{self._opened}"
        self._opened += 1
        session = _Session(
            session_id=session_id,
            tenant_id=tenant_id,
            session_key=self._derive_session_key(session_id),
            resume_token=self._derive_resume_token(session_id),
            n_channels=int(n_channels),
            sampling_rate_hz=float(sampling_rate_hz),
            detector=WindowedPeakDetector(
                int(n_channels), float(sampling_rate_hz), detector=self.detector
            ),
            now_s=self._now(),
        )
        self._sessions[session_id] = session
        self._by_key[session.session_key] = session_id
        self.observer.incr("stream.sessions_opened")
        self.observer.event(
            STREAM_SESSION_OPENED, session=session_id, tenant=tenant_id
        )
        return OpenedStream(
            session_id=session_id,
            session_key=session.session_key,
            resume_token=session.resume_token,
            chunk_samples=self.config.chunk_samples,
            key_epoch=self.key_epoch,
        )

    # ------------------------------------------------------------------
    def ingest_chunk(self, blob: Any) -> ChunkAck:
        """Verify, order, epoch-check, and analyse one sealed chunk.

        The pipeline, in refusal order: envelope authentication
        (:class:`~repro._util.errors.EnvelopeError`), session lookup
        (:class:`~repro._util.errors.UnknownSessionError`), state check
        (SUSPENDED streams must resume first), cursor check (duplicates
        ack idempotently and are **not** re-analysed; gaps refuse with
        the expected seq), epoch window, then — exactly once per seq —
        the windowed detector feed.
        """
        chunk = open_chunk(
            blob, self.secret, observer=self.observer, boundary="stream"
        )
        session_id = self._by_key.get(chunk.session_key)
        if session_id is None:
            self._refuse(
                "?",
                "unknown_session_key",
                UnknownSessionError("chunk references no open session"),
            )
        session = self._sessions[session_id]
        if session.state == REAPED:
            self._refuse(
                session_id,
                "session_reaped",
                SessionReapedError(f"session {session_id} was reaped"),
            )
        if session.state == CLOSED:
            self._refuse(
                session_id,
                "session_closed",
                SessionStateError(f"session {session_id} is closed"),
            )
        if session.state == SUSPENDED:
            self._refuse(
                session_id,
                "session_suspended",
                SessionStateError(
                    f"session {session_id} is suspended; resume first"
                ),
            )
        session.last_seen_s = self._now()
        if chunk.seq < session.cursor:
            # Duplicate delivery (radio retransmit or attacker replay of
            # an acked chunk): answer from the cursor, analyse nothing.
            session.n_duplicates += 1
            self.observer.incr("stream.duplicates")
            return ChunkAck(
                session_id=session_id,
                seq=chunk.seq,
                cursor=session.cursor,
                duplicate=True,
                backpressure=self.congested,
                peaks_so_far=session.detector.peaks_emitted
                if session.detector is not None
                else 0,
            )
        if chunk.seq > session.cursor:
            self._refuse(
                session_id,
                "sequence_gap",
                SequenceGapError(
                    f"chunk seq {chunk.seq} ahead of cursor {session.cursor}; "
                    f"resume from {session.cursor}",
                    expected_seq=session.cursor,
                ),
            )
        # Epoch window: the current epoch always; the previous one only
        # inside the bounded per-session rotation overlap.
        if chunk.key_epoch != self.key_epoch:
            in_overlap = (
                chunk.key_epoch == self.key_epoch - 1
                and session.overlap_remaining > 0
            )
            if not in_overlap:
                self.observer.incr("stream.refused")
                self.observer.incr("guard.stale_epoch")
                self.observer.event(
                    STALE_EPOCH_REJECTED,
                    boundary="stream",
                    token_epoch=chunk.key_epoch,
                    expected_epoch=self.key_epoch,
                )
                raise StaleEpochError(
                    f"chunk epoch {chunk.key_epoch} outside the stream window "
                    f"(expected {self.key_epoch}, overlap "
                    f"{session.overlap_remaining} left)"
                )
            session.overlap_remaining -= 1
            self.epoch_overlap_accepted += 1
            self.observer.incr("stream.epoch_overlap_accepted")
        if chunk.n_channels != session.n_channels:
            self._refuse(
                session_id,
                "channel_mismatch",
                SessionStateError(
                    f"chunk has {chunk.n_channels} channels; session opened "
                    f"with {session.n_channels}"
                ),
            )
        if chunk.sampling_rate_hz != session.sampling_rate_hz:
            self._refuse(
                session_id,
                "rate_mismatch",
                SessionStateError(
                    f"chunk sampled at {chunk.sampling_rate_hz} Hz; session "
                    f"opened at {session.sampling_rate_hz} Hz"
                ),
            )
        with self.observer.span(
            "stream_chunk",
            service="stream",
            session=session_id,
            seq=chunk.seq,
            samples=chunk.n_samples,
        ) as span:
            session.detector.feed(chunk.samples)
        self.observer.observe("stream.chunk_s", span.duration_s)
        self.observer.observe("stream.chunk_samples", float(chunk.n_samples))
        self.observer.incr("stream.chunks")
        self.observer.incr("stream.samples", chunk.n_samples)
        session.journal.append(bytes(blob))
        session.cursor += 1
        session.n_samples += chunk.n_samples
        self.chunks_analyzed += 1
        return ChunkAck(
            session_id=session_id,
            seq=chunk.seq,
            cursor=session.cursor,
            duplicate=False,
            backpressure=self.congested,
            peaks_so_far=session.detector.peaks_emitted,
        )

    # ------------------------------------------------------------------
    def heartbeat(self, session_id: str) -> float:
        """Keep an idle-but-alive session off the watchdog's list.

        Returns the seconds of deadline headroom remaining.
        """
        session = self._lookup(session_id)
        if session.state not in (ACTIVE, SUSPENDED):
            self._refuse(
                session_id,
                "heartbeat_terminal",
                SessionStateError(
                    f"session {session_id} is {session.state}; no heartbeats"
                ),
            )
        session.last_seen_s = self._now()
        session.heartbeats += 1
        self.observer.incr("stream.heartbeats")
        deadline = (
            self.config.suspend_after_s
            if session.state == ACTIVE
            else self.config.reap_after_s
        )
        return deadline

    def sweep(self) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        """The watchdog pass: suspend the silent, reap the long-gone.

        Returns ``(suspended_ids, reaped_ids)`` for this pass.  Reaping
        drops the session's detector and journal — its carry-over state
        is unrecoverable by design (bounded memory beats immortal
        sessions), and later resume attempts refuse with
        :class:`~repro._util.errors.SessionReapedError`.
        """
        now = self._now()
        suspended: List[str] = []
        reaped: List[str] = []
        for session in list(self._sessions.values()):
            idle = now - session.last_seen_s
            if session.state == ACTIVE and idle > self.config.suspend_after_s:
                session.state = SUSPENDED
                suspended.append(session.session_id)
                self.observer.incr("stream.sessions_suspended")
                self.observer.event(
                    STREAM_SESSION_SUSPENDED,
                    session=session.session_id,
                    idle_s=idle,
                )
            elif session.state == SUSPENDED and idle > self.config.reap_after_s:
                session.state = REAPED
                session.detector = None
                session.journal = []
                reaped.append(session.session_id)
                self.observer.incr("stream.sessions_reaped")
                self.observer.event(
                    STREAM_SESSION_REAPED,
                    session=session.session_id,
                    idle_s=idle,
                )
        return tuple(suspended), tuple(reaped)

    def resume(self, session_id: str, resume_token: str) -> ResumeInfo:
        """Re-attach a device to its session after a disconnect.

        The token must match the one handed out at open; a wrong token
        is a typed :class:`~repro._util.errors.ResumeAuthError` (and
        counted), so session ids are not capabilities.  Resume is
        idempotent on ACTIVE sessions — a device that reconnected
        before the watchdog noticed just gets its cursor back.
        """
        session = self._lookup(session_id)
        if not hmac_mod.compare_digest(
            str(resume_token), session.resume_token
        ):
            self._refuse(
                session_id,
                "resume_auth",
                ResumeAuthError(f"bad resume token for session {session_id}"),
            )
        if session.state == REAPED:
            self._refuse(
                session_id,
                "resume_reaped",
                SessionReapedError(
                    f"session {session_id} was reaped; open a new session"
                ),
            )
        if session.state == CLOSED:
            self._refuse(
                session_id,
                "resume_closed",
                SessionStateError(f"session {session_id} is closed"),
            )
        session.state = ACTIVE
        session.last_seen_s = self._now()
        self.observer.incr("stream.sessions_resumed")
        self.observer.event(
            STREAM_SESSION_RESUMED, session=session_id, cursor=session.cursor
        )
        return ResumeInfo(
            session_id=session_id,
            cursor=session.cursor,
            chunk_samples=self.config.chunk_samples,
            key_epoch=self.key_epoch,
        )

    # ------------------------------------------------------------------
    def rotate_epoch(self) -> int:
        """Mid-stream key rotation: advance the expected epoch.

        Every open session gets a fresh overlap budget of
        ``epoch_overlap_chunks`` chunks still sealed under the previous
        epoch — in-flight data survives the rotation; stragglers beyond
        the budget go stale.  The freshness guard rotates in lockstep
        (which also prunes its nonce registry).
        """
        self.freshness.advance_epoch()
        self.key_epoch += 1
        self.rotations += 1
        for session in self._sessions.values():
            if session.state in (ACTIVE, SUSPENDED):
                session.overlap_remaining = self.config.epoch_overlap_chunks
        self.observer.incr("stream.epoch_rotations")
        self.observer.event(
            STREAM_EPOCH_ROTATED,
            key_epoch=self.key_epoch,
            overlap_chunks=self.config.epoch_overlap_chunks,
        )
        return self.key_epoch

    # ------------------------------------------------------------------
    def close_session(self, session_id: str) -> StreamOutcome:
        """Finish the windowed detector and emit the terminal outcome.

        The returned report is bit-identical to
        ``PeakDetector.detect`` over the concatenation of every
        analysed chunk — the streaming lane's core guarantee.
        """
        session = self._lookup(session_id)
        if session.state != ACTIVE:
            error: StreamSessionError = (
                SessionReapedError(f"session {session_id} was reaped")
                if session.state == REAPED
                else SessionStateError(
                    f"session {session_id} is {session.state}; "
                    "only ACTIVE sessions close"
                )
            )
            self._refuse(session_id, f"close_{session.state}", error)
        with self.observer.span(
            "stream_close", service="stream", session=session_id
        ):
            report = session.detector.finish()
        session.detector = None
        session.state = CLOSED
        outcome = StreamOutcome(
            session_id=session_id,
            tenant_id=session.tenant_id,
            n_chunks=session.cursor,
            n_samples=session.n_samples,
            n_duplicates=session.n_duplicates,
            report=report,
            digest=report_digest(report),
        )
        session.outcome = outcome
        self.observer.incr("stream.sessions_closed")
        self.observer.event(
            STREAM_SESSION_CLOSED,
            session=session_id,
            chunks=outcome.n_chunks,
            samples=outcome.n_samples,
            peaks=report.count,
            digest=outcome.digest,
        )
        return outcome

    # ------------------------------------------------------------------
    def journal_blobs(self, session_id: str) -> Tuple[bytes, ...]:
        """The session's acked-chunk journal, in analysis order."""
        session = self._sessions.get(session_id)
        if session is None:
            raise UnknownSessionError(f"unknown stream session {session_id!r}")
        return tuple(session.journal)

    def replay_journal(self, session_id: str) -> PeakReport:
        """Rebuild a session's outcome from its acked-chunk journal.

        A fresh windowed detector refed with the journaled blobs (each
        re-verified through :func:`~repro.stream.envelope.open_chunk`)
        reproduces the closed session's report bit-for-bit — the
        journal *is* the session, which is what makes a crashed gateway
        recoverable.  Epoch checks are deliberately skipped: the
        journal holds chunks legitimately accepted under past epochs.
        """
        blobs = self.journal_blobs(session_id)
        detector: Optional[WindowedPeakDetector] = None
        for blob in blobs:
            chunk = open_chunk(blob, self.secret, boundary="stream-replay")
            if detector is None:
                detector = WindowedPeakDetector(
                    chunk.n_channels,
                    chunk.sampling_rate_hz,
                    detector=self.detector,
                )
            detector.feed(chunk.samples)
        if detector is None:
            raise StreamSessionError(
                f"session {session_id} has an empty journal; nothing to replay"
            )
        return detector.finish()

    # ------------------------------------------------------------------
    def session_state(self, session_id: str) -> str:
        """Current protocol state of one session."""
        session = self._sessions.get(session_id)
        if session is None:
            raise UnknownSessionError(f"unknown stream session {session_id!r}")
        return session.state

    def session_cursor(self, session_id: str) -> int:
        """Next seq the gateway will analyse for one session."""
        session = self._sessions.get(session_id)
        if session is None:
            raise UnknownSessionError(f"unknown stream session {session_id!r}")
        return session.cursor

    @property
    def n_sessions(self) -> int:
        """Sessions in any state still tracked by the gateway."""
        return len(self._sessions)


# ---------------------------------------------------------------------------
# Device side
# ---------------------------------------------------------------------------
class RateController:
    """Adaptive chunking under congestion: shrink, widen, recover.

    On every backpressured ack the chunk size halves (down to the
    floor) and the advisory send interval doubles; after
    ``clean_acks_to_grow`` consecutive clean acks it recovers one step.
    Hitting the floor marks the stream **degraded** — the device keeps
    sending (smaller, slower) instead of failing the session, and the
    flag routes the outcome through the degraded-diagnosis path.
    """

    def __init__(self, config: StreamSessionConfig) -> None:
        self.config = config
        self.chunk_samples = config.chunk_samples
        self.interval_scale = 1.0
        self.backoffs = 0
        self.recoveries = 0
        self.floored = False
        self._clean = 0

    @property
    def send_interval_s(self) -> float:
        """Advisory inter-chunk spacing at the current backoff level."""
        return self.config.send_interval_s * self.interval_scale

    def on_backpressure(self) -> None:
        self._clean = 0
        self.backoffs += 1
        if self.chunk_samples <= self.config.min_chunk_samples:
            self.floored = True
            return
        self.chunk_samples = max(
            int(self.chunk_samples * self.config.congestion_backoff),
            self.config.min_chunk_samples,
        )
        self.interval_scale = min(self.interval_scale * 2.0, 64.0)
        if self.chunk_samples <= self.config.min_chunk_samples:
            self.floored = True

    def on_clean_ack(self) -> None:
        self._clean += 1
        if (
            self._clean >= self.config.clean_acks_to_grow
            and self.chunk_samples < self.config.max_chunk_samples
        ):
            self.chunk_samples = min(
                self.chunk_samples * 2, self.config.max_chunk_samples
            )
            self.interval_scale = max(self.interval_scale / 2.0, 1.0)
            self.recoveries += 1
            self._clean = 0


class DeviceStreamer:
    """The device side: chunk, seal, send, survive the link.

    Drives one trace through a :class:`StreamGateway` (or any object
    with the same ``open/ingest/resume/close`` surface, e.g. the fleet
    front door's synchronous shim), handling injected link faults:

    * **drop** — the chunk never arrives; the device retransmits the
      *same sealed bytes* (same nonce/seq), so the gateway sees it once.
    * **disconnect (chunk-lost)** — the link dies before the chunk
      lands; the device reconnects via ``resume(resume_token)`` and
      continues from the cursor.
    * **disconnect (ack-lost)** — the gateway analysed the chunk but
      the ack died with the link; after resume the retransmit is
      answered as a duplicate, *not* re-analysed.
    * **congestion** — backpressured acks shrink the chunk size via the
      :class:`RateController`; at the floor the stream degrades instead
      of failing.

    Fault decisions come from an optional duck-typed ``injector`` with
    ``should_drop_chunk(label, seq, attempt)``,
    ``disconnect_mode(label, seq)`` and
    ``congestion_signal(label, seq)`` (the resilience layer's
    :class:`~repro.resilience.faults.FaultInjector` grows exactly these).
    """

    def __init__(
        self,
        trace: np.ndarray,
        sampling_rate_hz: float,
        tenant_id: str,
        secret: bytes,
        key_epoch: int = 0,
        config: Optional[StreamSessionConfig] = None,
        observer: Any = NULL_OBSERVER,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.trace = np.ascontiguousarray(trace, dtype=np.float64)
        if self.trace.ndim != 2 or self.trace.shape[1] < 1:
            raise ValidationError(
                f"trace must be (n_channels, n_samples), got {self.trace.shape}"
            )
        self.sampling_rate_hz = float(sampling_rate_hz)
        self.tenant_id = tenant_id
        self.secret = secret
        self.key_epoch = int(key_epoch)
        self.config = config or StreamSessionConfig()
        self.observer = observer
        self._rng = rng
        self.minter = TokenMinter(secret, key_epoch=self.key_epoch)
        self.controller = RateController(self.config)
        self.chunks_sent = 0
        self.retransmits = 0
        self.disconnects = 0
        self.duplicate_acks = 0
        self.heartbeats_sent = 0

    def advance_epoch(self) -> int:
        """Device-side key rotation (mirrors the controller's ``K(t)``)."""
        self.key_epoch += 1
        self.minter.advance_epoch()
        return self.key_epoch

    def _nonce(self) -> Optional[bytes]:
        return bytes(self._rng.bytes(16)) if self._rng is not None else None

    def run(
        self,
        gateway: StreamGateway,
        injector: Any = None,
        label: str = "stream",
        before_chunk: Any = None,
    ) -> StreamOutcome:
        """Stream the whole trace; returns the closed session's outcome.

        ``before_chunk(streamer, seq)`` runs before each chunk is
        sealed — campaigns use it to schedule mid-stream epoch
        rotations or congestion windows at exact chunk indices.
        """
        token = self.minter.mint()
        opened = gateway.open_session(
            self.tenant_id,
            self.trace.shape[0],
            self.sampling_rate_hz,
            token,
        )
        session_id = opened.session_id
        n_total = self.trace.shape[1]
        pos = 0
        seq = 0
        while pos < n_total:
            if before_chunk is not None:
                before_chunk(self, seq)
            width = min(self.controller.chunk_samples, n_total - pos)
            blob = seal_chunk(
                self.trace[:, pos : pos + width],
                self.secret,
                session_key=opened.session_key,
                seq=seq,
                key_epoch=self.key_epoch,
                sampling_rate_hz=self.sampling_rate_hz,
                nonce=self._nonce(),
            )
            mode = (
                injector.disconnect_mode(label, seq)
                if injector is not None
                else None
            )
            if mode == "ack-lost":
                # The gateway analyses the chunk but the ack dies with
                # the link; the retransmit below must dedupe.
                gateway.ingest_chunk(blob)
                self.disconnects += 1
                self.observer.incr("stream.device_disconnects")
                gateway.resume(session_id, opened.resume_token)
            elif mode == "chunk-lost":
                self.disconnects += 1
                self.observer.incr("stream.device_disconnects")
                info = gateway.resume(session_id, opened.resume_token)
                assert info.cursor == seq  # nothing acked was lost
            ack = None
            for attempt in range(self.config.max_attempts):
                if injector is not None and injector.should_drop_chunk(
                    label, seq, attempt
                ):
                    self.retransmits += 1
                    self.observer.incr("stream.retransmits")
                    continue
                ack = gateway.ingest_chunk(blob)
                break
            if ack is None:
                raise StreamSessionError(
                    f"chunk {seq} exhausted its {self.config.max_attempts} "
                    "transmission attempts"
                )
            if ack.duplicate:
                self.duplicate_acks += 1
            congested = ack.backpressure or (
                injector is not None
                and injector.congestion_signal(label, seq)
            )
            if congested:
                self.controller.on_backpressure()
            else:
                self.controller.on_clean_ack()
            self.chunks_sent += 1
            pos += width
            seq += 1
        outcome = gateway.close_session(session_id)
        if self.controller.floored:
            reason = (
                f"congestion floor: chunk size pinned at "
                f"{self.controller.chunk_samples} samples after "
                f"{self.controller.backoffs} backoffs"
            )
            self.observer.incr("stream.degraded")
            self.observer.event(
                STREAM_DEGRADED, session=session_id, reason=reason
            )
            outcome = replace(
                outcome, degraded=True, degraded_reason=reason
            )
        return outcome


def degraded_stream_diagnosis(
    device,
    outcome: StreamOutcome,
    pumped_volume_ul: float,
    diagnostic,
    observer: Any = NULL_OBSERVER,
):
    """Route a congestion-degraded stream through the degraded path.

    Runs the standard :func:`~repro.resilience.degraded.evaluate_degraded`
    policy over the streamed report (electrode masking, widened CI),
    then overlays the link-level degradation: a stream that hit the
    congestion floor can never report OK even when the sensor self-test
    is clean — graceful degradation instead of silent confidence.
    """
    from repro.resilience.degraded import evaluate_degraded
    from repro.resilience.health import DEGRADED, OK

    diagnosis = evaluate_degraded(
        device,
        outcome.report,
        pumped_volume_ul=pumped_volume_ul,
        diagnostic=diagnostic,
        observer=observer,
    )
    if outcome.degraded and diagnosis.status == OK:
        diagnosis = replace(
            diagnosis, status=DEGRADED, reason=outcome.degraded_reason
        )
    return diagnosis
