"""MSS1: the sealed per-chunk envelope of the streaming lane.

A streaming device cannot wait for a full trace before sealing — every
chunk crosses the untrusted link on its own, so every chunk carries its
own authenticated envelope.  The construction reuses the
:mod:`repro.crypto.keyshare` primitives (derive/keystream/HMAC, distinct
labels) in the exact idiom of the MSE1 report envelope
(:mod:`repro.guard.envelope`), with a header that binds everything the
gateway needs to *order* and *epoch-check* the chunk before trusting it:

``chunk = MSS1 || nonce(16) || key_epoch(u32) || session_key(16)
          || seq(u32) || n_channels(u16) || n_samples(u32) || fs(f64)
          || ciphertext || HMAC``

The payload is the chunk's float64 little-endian samples XORed with the
keystream; the HMAC-SHA256 tag covers header + ciphertext and is
verified **before** any decryption.  Because ``session_key`` and ``seq``
sit inside the authenticated header, an attacker can neither splice a
chunk into another session nor reorder chunks within one — both fail
authentication or the gateway's cursor check with a typed refusal.

Mid-stream key-epoch rotation is first-class: ``key_epoch`` is the
paper's epoch index for ``K(t)``; the gateway accepts a bounded overlap
window around a rotation (see :class:`repro.stream.session.StreamGateway`)
so in-flight chunks sealed just before the rotation still land.
"""

import hmac as hmac_mod
import hashlib
import os
import struct
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro._util.errors import EnvelopeError, ValidationError
from repro.obs import ENVELOPE_REJECTED, NULL_OBSERVER

_MAGIC = b"MSS1"
_NONCE_BYTES = 16
_SESSION_KEY_BYTES = 16
_TAG_BYTES = 32
_FIXED = struct.Struct("<4s16sI16sIHId")
_ENC_LABEL = b"medsen-stream-enc"
_MAC_LABEL = b"medsen-stream-mac"

#: Admission caps: an honest chunk is a few thousand samples over a
#: handful of channels; anything past these is refused before the
#: payload is even sized.
MAX_CHUNK_CHANNELS = 64
MAX_CHUNK_SAMPLES = 1 << 20
MAX_CHUNK_BYTES = 1 << 26

#: Serialized size of the fixed header.
HEADER_BYTES = _FIXED.size


def _keys(secret: bytes):
    # Lazy import: keyshare pulls in cloud.storage, which sits below
    # packages that import this module at class-definition time.
    from repro.crypto.keyshare import derive_key, keystream

    return derive_key(secret, _ENC_LABEL), derive_key(secret, _MAC_LABEL), keystream


def _xor(data: bytes, stream: bytes) -> bytes:
    # Chunk payloads are tens of kilobytes; vectorised XOR keeps the
    # seal/open path off the per-byte Python loop.
    return (
        np.frombuffer(data, dtype=np.uint8) ^ np.frombuffer(stream, dtype=np.uint8)
    ).tobytes()


@dataclass(frozen=True)
class StreamChunk:
    """One verified, decrypted chunk as the gateway sees it."""

    session_key: bytes
    seq: int
    key_epoch: int
    sampling_rate_hz: float
    samples: np.ndarray  # (n_channels, n_samples) float64
    nonce: bytes

    @property
    def n_channels(self) -> int:
        return int(self.samples.shape[0])

    @property
    def n_samples(self) -> int:
        return int(self.samples.shape[1])


def seal_chunk(
    samples: np.ndarray,
    secret: bytes,
    session_key: bytes,
    seq: int,
    key_epoch: int = 0,
    sampling_rate_hz: float = 1.0,
    nonce: Optional[bytes] = None,
) -> bytes:
    """Seal one ``(n_channels, n_samples)`` chunk for transit."""
    if not secret:
        raise ValidationError("stream secret must be non-empty")
    session_key = bytes(session_key)
    if len(session_key) != _SESSION_KEY_BYTES:
        raise ValidationError(
            f"session key must be {_SESSION_KEY_BYTES} bytes, got {len(session_key)}"
        )
    if seq < 0 or seq > 0xFFFFFFFF:
        raise ValidationError(f"chunk seq {seq} out of u32 range")
    if key_epoch < 0 or key_epoch > 0xFFFFFFFF:
        raise ValidationError(f"key epoch {key_epoch} out of u32 range")
    if not np.isfinite(sampling_rate_hz) or sampling_rate_hz <= 0:
        raise ValidationError(f"sampling rate must be finite > 0, got {sampling_rate_hz}")
    nonce = os.urandom(_NONCE_BYTES) if nonce is None else bytes(nonce)
    if len(nonce) != _NONCE_BYTES:
        raise ValidationError(f"nonce must be {_NONCE_BYTES} bytes")
    samples = np.ascontiguousarray(samples, dtype=np.float64)
    if samples.ndim != 2:
        raise ValidationError(f"chunk must be 2-D, got shape {samples.shape}")
    n_channels, n_samples = samples.shape
    if not 1 <= n_channels <= MAX_CHUNK_CHANNELS:
        raise ValidationError(f"chunk has {n_channels} channels (cap {MAX_CHUNK_CHANNELS})")
    if not 1 <= n_samples <= MAX_CHUNK_SAMPLES:
        raise ValidationError(f"chunk has {n_samples} samples (cap {MAX_CHUNK_SAMPLES})")
    if not np.all(np.isfinite(samples)):
        raise ValidationError("chunk samples must be finite")
    header = _FIXED.pack(
        _MAGIC,
        nonce,
        int(key_epoch),
        session_key,
        int(seq),
        int(n_channels),
        int(n_samples),
        float(sampling_rate_hz),
    )
    enc_key, mac_key, keystream = _keys(secret)
    plaintext = samples.astype("<f8", copy=False).tobytes()
    ciphertext = _xor(plaintext, keystream(enc_key, nonce, len(plaintext)))
    tag = hmac_mod.new(mac_key, header + ciphertext, hashlib.sha256).digest()
    return header + ciphertext + tag


def open_chunk(
    blob: Any,
    secret: bytes,
    observer: Any = NULL_OBSERVER,
    boundary: str = "stream",
) -> StreamChunk:
    """Verify-then-decrypt one sealed chunk.

    HMAC verification runs before any decryption; every failure —
    truncation, bad magic, oversized claims, a flipped bit anywhere,
    or an authentic chunk whose shape disagrees with its payload —
    raises :class:`~repro._util.errors.EnvelopeError`, bumps
    ``guard.rejected`` / ``guard.envelope_rejected``, and emits the
    ``guard.envelope_rejected`` audit event (the same funnel as MSE1).
    """
    if not secret:
        raise ValidationError("stream secret must be non-empty")

    def refuse(reason: str) -> None:
        observer.incr("guard.rejected")
        observer.incr("guard.envelope_rejected")
        observer.event(ENVELOPE_REJECTED, boundary=boundary, reason=reason)
        raise EnvelopeError(f"[{boundary}] {reason}")

    try:
        blob = bytes(blob)
    except (TypeError, ValueError):
        refuse("chunk envelope is not bytes-like")
    if len(blob) < HEADER_BYTES + _TAG_BYTES:
        refuse("chunk envelope too short")
    if len(blob) > MAX_CHUNK_BYTES:
        refuse("chunk envelope exceeds size cap")
    header = blob[:HEADER_BYTES]
    ciphertext = blob[HEADER_BYTES:-_TAG_BYTES]
    tag = blob[-_TAG_BYTES:]
    magic, nonce, key_epoch, session_key, seq, n_channels, n_samples, fs = (
        _FIXED.unpack(header)
    )
    if magic != _MAGIC:
        refuse(f"bad chunk magic {magic!r}")
    enc_key, mac_key, keystream = _keys(secret)
    expected = hmac_mod.new(mac_key, header + ciphertext, hashlib.sha256).digest()
    if not hmac_mod.compare_digest(tag, expected):
        refuse("chunk envelope failed authentication")
    # Authenticated from here on: disagreements mean a broken peer, not
    # a network attacker — still refuse through the same typed funnel.
    if not 1 <= n_channels <= MAX_CHUNK_CHANNELS:
        refuse(f"authentic chunk claims {n_channels} channels")
    if not 1 <= n_samples <= MAX_CHUNK_SAMPLES:
        refuse(f"authentic chunk claims {n_samples} samples")
    if not np.isfinite(fs) or fs <= 0:
        refuse(f"authentic chunk claims sampling rate {fs}")
    if len(ciphertext) != n_channels * n_samples * 8:
        refuse(
            f"authentic chunk payload is {len(ciphertext)} bytes; header "
            f"claims {n_channels}x{n_samples} float64"
        )
    plaintext = _xor(ciphertext, keystream(enc_key, nonce, len(ciphertext)))
    samples = np.frombuffer(plaintext, dtype="<f8").reshape(n_channels, n_samples)
    if not np.all(np.isfinite(samples)):
        refuse("authentic chunk decodes to non-finite samples")
    return StreamChunk(
        session_key=session_key,
        seq=int(seq),
        key_epoch=int(key_epoch),
        sampling_rate_hz=float(fs),
        samples=samples,
        nonce=nonce,
    )


def chunk_epoch(blob: Any) -> int:
    """The key epoch claimed by a chunk header (unauthenticated — use
    only for routing/diagnostics, never for trust decisions)."""
    try:
        blob = bytes(blob)
        if len(blob) < HEADER_BYTES:
            raise EnvelopeError("chunk too short for a header")
        fields = _FIXED.unpack(blob[:HEADER_BYTES])
        if fields[0] != _MAGIC:
            raise EnvelopeError(f"bad chunk magic {fields[0]!r}")
        return int(fields[2])
    except EnvelopeError:
        raise
    except (TypeError, ValueError, struct.error) as error:
        raise EnvelopeError(f"unreadable chunk header: {error}") from error
