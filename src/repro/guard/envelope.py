"""Tamper-evident transit envelopes for ciphertext peak reports.

The §IV network attacker can rewrite the cloud's answer in flight; an
unsealed :class:`~repro.dsp.peakdetect.PeakReport` that was bit-flipped
would be silently decrypted by the TCB into *wrong cell counts* — the
exact "no silent wrong answers" failure the paper's trusted-sensing
argument exists to prevent.  This module reuses the
:mod:`repro.crypto.keyshare` primitives (same derive/keystream/HMAC
construction, distinct labels) to seal the report for transit:

``envelope = MSE1 || nonce(16) || key_epoch(u32) || ciphertext || HMAC``

The phone verifies the HMAC *before* handing anything to the
controller, so a forged or corrupted envelope is rejected with
:class:`~repro._util.errors.EnvelopeError` — never decrypted.  The
sealed payload is the JSON report encoding from :mod:`repro.cloud.api`,
so the envelope composes with the existing message protocol.

A second, versioned header carries a distributed-trace context
(:mod:`repro.obs.context`) inside the authenticated region:

``envelope = MSE2 || nonce(16) || key_epoch(u32) || trace_context(29)
             || ciphertext || HMAC``

The opener dispatches on the magic; both layouts remain admissible and
every malformed variant of either is a typed refusal.  Because the
context sits in the HMAC-covered header, in-flight re-routing of a
trace is detected exactly like payload tampering.

Note the trust statement is deliberately modest: the transport secret
is shared with the *cloud* (which produced the report), so the envelope
authenticates the phone↔cloud link against third parties — it does not,
and cannot, make the curious cloud honest.  The report contents are
ciphertext-domain anyway; what the envelope adds is that nobody *else*
can substitute results in flight.
"""

import hmac as hmac_mod
import hashlib
import json
import os
import struct
from typing import Any, Optional, Tuple

from repro._util.errors import EnvelopeError, ValidationError
from repro.dsp.peakdetect import PeakReport
from repro.guard.freshness import FreshnessGuard, TokenMinter
from repro.obs import CONTEXT_BYTES, ENVELOPE_REJECTED, NULL_OBSERVER, TraceContext


def _keys(secret: bytes):
    # Lazy import: keyshare pulls in cloud.storage (below the cloud
    # package whose server lazily uses this module).
    from repro.crypto.keyshare import derive_key, keystream

    return derive_key(secret, _ENC_LABEL), derive_key(secret, _MAC_LABEL), keystream

_MAGIC = b"MSE1"
_MAGIC_V2 = b"MSE2"
_NONCE_BYTES = 16
_TAG_BYTES = 32
_FIXED = struct.Struct("<4s16sI")
_FIXED_V2 = struct.Struct(f"<4s16sI{CONTEXT_BYTES}s")
_ENC_LABEL = b"medsen-envelope-enc"
_MAC_LABEL = b"medsen-envelope-mac"

#: Cap on an admissible sealed report (a million-peak report is ~100 MB
#: of JSON; honest reports are kilobytes).
MAX_ENVELOPE_BYTES = 1 << 27


def seal_report(
    report: PeakReport,
    secret: bytes,
    key_epoch: int = 0,
    nonce: Optional[bytes] = None,
    trace_context: Optional[TraceContext] = None,
) -> bytes:
    """Seal a peak report for transit: authenticated stream cipher.

    Without ``trace_context`` this emits the legacy ``MSE1`` header;
    with one, the ``MSE2`` header whose authenticated region carries
    the 29-byte trace context.
    """
    if not secret:
        raise ValidationError("envelope secret must be non-empty")
    if key_epoch < 0 or key_epoch > 0xFFFFFFFF:
        raise ValidationError(f"key epoch {key_epoch} out of u32 range")
    nonce = os.urandom(_NONCE_BYTES) if nonce is None else bytes(nonce)
    if len(nonce) != _NONCE_BYTES:
        raise ValidationError(f"nonce must be {_NONCE_BYTES} bytes")
    from repro.cloud.api import report_to_dict

    enc_key, mac_key, keystream = _keys(secret)
    plaintext = json.dumps(report_to_dict(report)).encode("utf-8")
    if trace_context is None:
        header = _FIXED.pack(_MAGIC, nonce, key_epoch)
    else:
        header = _FIXED_V2.pack(
            _MAGIC_V2, nonce, key_epoch, trace_context.to_bytes()
        )
    stream = keystream(enc_key, nonce, len(plaintext))
    ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
    tag = hmac_mod.new(mac_key, header + ciphertext, hashlib.sha256).digest()
    return header + ciphertext + tag


def open_report_with_context(
    blob: Any,
    secret: bytes,
    observer: Any = NULL_OBSERVER,
    boundary: str = "phone",
) -> Tuple[PeakReport, Optional[TraceContext]]:
    """Verify and open a sealed report, returning its trace context.

    HMAC verification runs before any decryption or parsing; every
    failure — truncation, bad magic, a single flipped bit anywhere —
    raises :class:`EnvelopeError`, bumps ``guard.rejected`` /
    ``guard.envelope_rejected``, and emits a ``guard.envelope_rejected``
    audit event.  Only an authentic envelope is decrypted.  The second
    element is the ``MSE2`` trace context, or ``None`` for ``MSE1``.
    """
    if not secret:
        raise ValidationError("envelope secret must be non-empty")

    def refuse(reason: str) -> None:
        observer.incr("guard.rejected")
        observer.incr("guard.envelope_rejected")
        observer.event(ENVELOPE_REJECTED, boundary=boundary, reason=reason)
        raise EnvelopeError(f"[{boundary}] {reason}")

    try:
        blob = bytes(blob)
    except (TypeError, ValueError):
        refuse("envelope is not bytes-like")
    if len(blob) < _FIXED.size + _TAG_BYTES:
        refuse("envelope too short")
    if len(blob) > MAX_ENVELOPE_BYTES:
        refuse("envelope exceeds size cap")
    if blob[:4] == _MAGIC_V2:
        layout = _FIXED_V2
        if len(blob) < layout.size + _TAG_BYTES:
            refuse("v2 envelope too short for its header")
    else:
        layout = _FIXED
    header = blob[: layout.size]
    ciphertext = blob[layout.size : -_TAG_BYTES]
    tag = blob[-_TAG_BYTES:]
    fields = layout.unpack(header)
    magic, nonce = fields[0], fields[1]
    if magic not in (_MAGIC, _MAGIC_V2):
        refuse(f"bad envelope magic {magic!r}")
    enc_key, mac_key, keystream = _keys(secret)
    expected = hmac_mod.new(mac_key, header + ciphertext, hashlib.sha256).digest()
    if not hmac_mod.compare_digest(tag, expected):
        refuse("envelope failed authentication")
    context: Optional[TraceContext] = None
    if layout is _FIXED_V2:
        try:
            context = TraceContext.from_bytes(fields[3])
        except ValidationError as error:
            refuse(f"authentic envelope carries a bad trace context: {error}")
    stream = keystream(enc_key, nonce, len(ciphertext))
    plaintext = bytes(c ^ s for c, s in zip(ciphertext, stream))
    from repro.cloud.api import report_from_dict

    try:
        payload = json.loads(plaintext.decode("utf-8"))
        return report_from_dict(payload), context
    except (ValidationError, ValueError, UnicodeDecodeError) as error:
        # Authenticated but undecodable: the *peer* is broken, not the
        # network — still refuse through the same typed funnel.
        refuse(f"authentic envelope decodes to garbage: {error}")
    raise AssertionError("unreachable")  # refuse() always raises


def open_report(
    blob: Any,
    secret: bytes,
    observer: Any = NULL_OBSERVER,
    boundary: str = "phone",
) -> PeakReport:
    """Verify and open a sealed report (either header version).

    See :func:`open_report_with_context` for the refusal contract; this
    form discards the trace context for callers that only want data.
    """
    report, _context = open_report_with_context(
        blob, secret, observer=observer, boundary=boundary
    )
    return report


def envelope_epoch(blob: Any) -> int:
    """The key epoch claimed by an envelope header (unauthenticated —
    use only for routing/diagnostics, never for trust decisions)."""
    try:
        blob = bytes(blob)
        if len(blob) < _FIXED.size:
            raise EnvelopeError("envelope too short for a header")
        magic, _nonce, key_epoch = _FIXED.unpack(blob[: _FIXED.size])
        if magic not in (_MAGIC, _MAGIC_V2):
            raise EnvelopeError(f"bad envelope magic {magic!r}")
        return int(key_epoch)
    except EnvelopeError:
        raise
    except (TypeError, ValueError, struct.error) as error:
        raise EnvelopeError(f"unreadable envelope header: {error}") from error


class SecureChannel:
    """One phone↔cloud pairing: freshness tokens out, sealed reports in.

    The phone holds the channel; the cloud holds the matching
    :class:`~repro.guard.freshness.FreshnessGuard` and the same secret.
    ``new_token()`` mints the freshness token to attach to an upload;
    ``receive(blob)`` verifies and opens the sealed report that comes
    back.  Key epochs advance in lockstep with controller key rotation
    via :meth:`advance_epoch`.
    """

    def __init__(
        self,
        secret: bytes,
        key_epoch: int = 0,
        observer: Any = NULL_OBSERVER,
        clock: Any = None,
    ) -> None:
        if not secret:
            raise ValidationError("channel secret must be non-empty")
        self.secret = secret
        self.observer = observer
        self.minter = TokenMinter(secret, key_epoch=key_epoch, clock=clock)
        self.opened = 0
        self.refused = 0
        self.last_context: Optional[TraceContext] = None

    @property
    def key_epoch(self) -> int:
        """The epoch new tokens and seals are minted under."""
        return self.minter.key_epoch

    def advance_epoch(self) -> int:
        """Rotate the channel's key epoch (with controller rotation)."""
        return self.minter.advance_epoch()

    def new_token(self, trace_context: Optional[TraceContext] = None) -> bytes:
        """A fresh token for one upload attempt.

        When the caller is inside a live span, passing its context (or
        ``observer.current_context()``) mints an MSF2 token so the
        cloud's spans stitch to the phone's trace.
        """
        return self.minter.mint(trace_context=trace_context)

    def seal(
        self, report: PeakReport, trace_context: Optional[TraceContext] = None
    ) -> bytes:
        """Cloud side: seal an outbound report under this channel."""
        return seal_report(
            report, self.secret, key_epoch=self.key_epoch, trace_context=trace_context
        )

    def receive(self, blob: Any, boundary: str = "phone") -> PeakReport:
        """Phone side: verify-then-open one sealed report.

        The sender's trace context (if the envelope carried one) is
        kept on :attr:`last_context` for the caller to link against.
        """
        try:
            report, context = open_report_with_context(
                blob, self.secret, observer=self.observer, boundary=boundary
            )
        except EnvelopeError:
            self.refused += 1
            raise
        self.opened += 1
        self.last_context = context
        return report

    def guard(self, **kwargs: Any) -> FreshnessGuard:
        """A cloud-side freshness guard paired with this channel."""
        return FreshnessGuard(self.secret, key_epoch=self.key_epoch, **kwargs)
