"""Tamper-evident transit envelopes for ciphertext peak reports.

The §IV network attacker can rewrite the cloud's answer in flight; an
unsealed :class:`~repro.dsp.peakdetect.PeakReport` that was bit-flipped
would be silently decrypted by the TCB into *wrong cell counts* — the
exact "no silent wrong answers" failure the paper's trusted-sensing
argument exists to prevent.  This module reuses the
:mod:`repro.crypto.keyshare` primitives (same derive/keystream/HMAC
construction, distinct labels) to seal the report for transit:

``envelope = MSE1 || nonce(16) || key_epoch(u32) || ciphertext || HMAC``

The phone verifies the HMAC *before* handing anything to the
controller, so a forged or corrupted envelope is rejected with
:class:`~repro._util.errors.EnvelopeError` — never decrypted.  The
sealed payload is the JSON report encoding from :mod:`repro.cloud.api`,
so the envelope composes with the existing message protocol.

Note the trust statement is deliberately modest: the transport secret
is shared with the *cloud* (which produced the report), so the envelope
authenticates the phone↔cloud link against third parties — it does not,
and cannot, make the curious cloud honest.  The report contents are
ciphertext-domain anyway; what the envelope adds is that nobody *else*
can substitute results in flight.
"""

import hmac as hmac_mod
import hashlib
import json
import os
import struct
from typing import Any, Optional

from repro._util.errors import EnvelopeError, ValidationError
from repro.dsp.peakdetect import PeakReport
from repro.guard.freshness import FreshnessGuard, TokenMinter
from repro.obs import ENVELOPE_REJECTED, NULL_OBSERVER


def _keys(secret: bytes):
    # Lazy import: keyshare pulls in cloud.storage (below the cloud
    # package whose server lazily uses this module).
    from repro.crypto.keyshare import derive_key, keystream

    return derive_key(secret, _ENC_LABEL), derive_key(secret, _MAC_LABEL), keystream

_MAGIC = b"MSE1"
_NONCE_BYTES = 16
_TAG_BYTES = 32
_FIXED = struct.Struct("<4s16sI")
_ENC_LABEL = b"medsen-envelope-enc"
_MAC_LABEL = b"medsen-envelope-mac"

#: Cap on an admissible sealed report (a million-peak report is ~100 MB
#: of JSON; honest reports are kilobytes).
MAX_ENVELOPE_BYTES = 1 << 27


def seal_report(
    report: PeakReport,
    secret: bytes,
    key_epoch: int = 0,
    nonce: Optional[bytes] = None,
) -> bytes:
    """Seal a peak report for transit: authenticated stream cipher."""
    if not secret:
        raise ValidationError("envelope secret must be non-empty")
    if key_epoch < 0 or key_epoch > 0xFFFFFFFF:
        raise ValidationError(f"key epoch {key_epoch} out of u32 range")
    nonce = os.urandom(_NONCE_BYTES) if nonce is None else bytes(nonce)
    if len(nonce) != _NONCE_BYTES:
        raise ValidationError(f"nonce must be {_NONCE_BYTES} bytes")
    from repro.cloud.api import report_to_dict

    enc_key, mac_key, keystream = _keys(secret)
    plaintext = json.dumps(report_to_dict(report)).encode("utf-8")
    header = _FIXED.pack(_MAGIC, nonce, key_epoch)
    stream = keystream(enc_key, nonce, len(plaintext))
    ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
    tag = hmac_mod.new(mac_key, header + ciphertext, hashlib.sha256).digest()
    return header + ciphertext + tag


def open_report(
    blob: Any,
    secret: bytes,
    observer: Any = NULL_OBSERVER,
    boundary: str = "phone",
) -> PeakReport:
    """Verify and open a sealed report.

    HMAC verification runs before any decryption or parsing; every
    failure — truncation, bad magic, a single flipped bit anywhere —
    raises :class:`EnvelopeError`, bumps ``guard.rejected`` /
    ``guard.envelope_rejected``, and emits a ``guard.envelope_rejected``
    audit event.  Only an authentic envelope is decrypted.
    """
    if not secret:
        raise ValidationError("envelope secret must be non-empty")

    def refuse(reason: str) -> None:
        observer.incr("guard.rejected")
        observer.incr("guard.envelope_rejected")
        observer.event(ENVELOPE_REJECTED, boundary=boundary, reason=reason)
        raise EnvelopeError(f"[{boundary}] {reason}")

    try:
        blob = bytes(blob)
    except (TypeError, ValueError):
        refuse("envelope is not bytes-like")
    if len(blob) < _FIXED.size + _TAG_BYTES:
        refuse("envelope too short")
    if len(blob) > MAX_ENVELOPE_BYTES:
        refuse("envelope exceeds size cap")
    header = blob[: _FIXED.size]
    ciphertext = blob[_FIXED.size : -_TAG_BYTES]
    tag = blob[-_TAG_BYTES:]
    magic, nonce, _key_epoch = _FIXED.unpack(header)
    if magic != _MAGIC:
        refuse(f"bad envelope magic {magic!r}")
    enc_key, mac_key, keystream = _keys(secret)
    expected = hmac_mod.new(mac_key, header + ciphertext, hashlib.sha256).digest()
    if not hmac_mod.compare_digest(tag, expected):
        refuse("envelope failed authentication")
    stream = keystream(enc_key, nonce, len(ciphertext))
    plaintext = bytes(c ^ s for c, s in zip(ciphertext, stream))
    from repro.cloud.api import report_from_dict

    try:
        payload = json.loads(plaintext.decode("utf-8"))
        return report_from_dict(payload)
    except (ValidationError, ValueError, UnicodeDecodeError) as error:
        # Authenticated but undecodable: the *peer* is broken, not the
        # network — still refuse through the same typed funnel.
        refuse(f"authentic envelope decodes to garbage: {error}")
    raise AssertionError("unreachable")  # refuse() always raises


def envelope_epoch(blob: Any) -> int:
    """The key epoch claimed by an envelope header (unauthenticated —
    use only for routing/diagnostics, never for trust decisions)."""
    try:
        blob = bytes(blob)
        if len(blob) < _FIXED.size:
            raise EnvelopeError("envelope too short for a header")
        magic, _nonce, key_epoch = _FIXED.unpack(blob[: _FIXED.size])
        if magic != _MAGIC:
            raise EnvelopeError(f"bad envelope magic {magic!r}")
        return int(key_epoch)
    except EnvelopeError:
        raise
    except (TypeError, ValueError, struct.error) as error:
        raise EnvelopeError(f"unreadable envelope header: {error}") from error


class SecureChannel:
    """One phone↔cloud pairing: freshness tokens out, sealed reports in.

    The phone holds the channel; the cloud holds the matching
    :class:`~repro.guard.freshness.FreshnessGuard` and the same secret.
    ``new_token()`` mints the freshness token to attach to an upload;
    ``receive(blob)`` verifies and opens the sealed report that comes
    back.  Key epochs advance in lockstep with controller key rotation
    via :meth:`advance_epoch`.
    """

    def __init__(
        self,
        secret: bytes,
        key_epoch: int = 0,
        observer: Any = NULL_OBSERVER,
        clock: Any = None,
    ) -> None:
        if not secret:
            raise ValidationError("channel secret must be non-empty")
        self.secret = secret
        self.observer = observer
        self.minter = TokenMinter(secret, key_epoch=key_epoch, clock=clock)
        self.opened = 0
        self.refused = 0

    @property
    def key_epoch(self) -> int:
        """The epoch new tokens and seals are minted under."""
        return self.minter.key_epoch

    def advance_epoch(self) -> int:
        """Rotate the channel's key epoch (with controller rotation)."""
        return self.minter.advance_epoch()

    def new_token(self) -> bytes:
        """A fresh token for one upload attempt."""
        return self.minter.mint()

    def seal(self, report: PeakReport) -> bytes:
        """Cloud side: seal an outbound report under this channel."""
        return seal_report(report, self.secret, key_epoch=self.key_epoch)

    def receive(self, blob: Any, boundary: str = "phone") -> PeakReport:
        """Phone side: verify-then-open one sealed report."""
        try:
            report = open_report(
                blob, self.secret, observer=self.observer, boundary=boundary
            )
        except EnvelopeError:
            self.refused += 1
            raise
        self.opened += 1
        return report

    def guard(self, **kwargs: Any) -> FreshnessGuard:
        """A cloud-side freshness guard paired with this channel."""
        return FreshnessGuard(self.secret, key_epoch=self.key_epoch, **kwargs)
