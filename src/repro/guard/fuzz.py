"""Seeded protocol fuzzer: every parser rejects garbage *typedly*.

The admission contract (:mod:`repro.guard.admission`) is only as
strong as the parsers behind it.  This module deterministically mutates
honest serialized artifacts — key plans, sealed plans, freshness
tokens, report envelopes, journal lines, protocol messages, CSV trace
payloads, sealed stream chunks — with the classic corruption operators
(truncate, bit-flip,
splice, resize) and asserts the corresponding parser either accepts
the payload or raises inside its *declared* error hierarchy.  Anything
else — a raw ``struct.error``, ``IndexError``, ``KeyError``,
``RecursionError`` — is an **escape**: a crash an attacker can trigger
from outside the trust boundary.

Everything is seeded: the same ``seed`` reproduces the same mutation
stream bit-for-bit, so an escape found in CI replays locally with
``python -m repro harden --seed N``.
"""

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro._util.errors import AdmissionError, IntegrityError, ValidationError
from repro.obs import NULL_OBSERVER

# ---------------------------------------------------------------------------
# Mutation operators
# ---------------------------------------------------------------------------
MUTATION_OPS = ("truncate", "bitflip", "splice", "resize")


def mutate(data: bytes, rng: np.random.Generator, n_ops: Optional[int] = None) -> bytes:
    """Apply 1..3 random corruption operators to ``data``."""
    out = bytearray(data)
    for _ in range(int(n_ops) if n_ops is not None else int(rng.integers(1, 4))):
        if not out:
            out = bytearray(rng.integers(0, 256, size=8, dtype=np.uint8).tobytes())
            continue
        op = MUTATION_OPS[int(rng.integers(0, len(MUTATION_OPS)))]
        if op == "truncate":
            cut = int(rng.integers(0, len(out)))
            out = out[cut:] if rng.integers(0, 2) else out[:cut]
        elif op == "bitflip":
            for _ in range(int(rng.integers(1, 9))):
                if not out:
                    break
                index = int(rng.integers(0, len(out)))
                out[index] ^= 1 << int(rng.integers(0, 8))
        elif op == "splice":
            length = int(rng.integers(1, max(2, len(out) // 2)))
            src = int(rng.integers(0, max(1, len(out) - length + 1)))
            dst = int(rng.integers(0, max(1, len(out) - length + 1)))
            out[dst : dst + length] = out[src : src + length]
        elif op == "resize":
            if rng.integers(0, 2):
                at = int(rng.integers(0, len(out) + 1))
                insert = rng.integers(
                    0, 256, size=int(rng.integers(1, 64)), dtype=np.uint8
                ).tobytes()
                out[at:at] = insert
            else:
                length = int(rng.integers(1, max(2, len(out) // 2)))
                src = int(rng.integers(0, max(1, len(out) - length + 1)))
                out.extend(out[src : src + length])
    return bytes(out)


# ---------------------------------------------------------------------------
# Targets
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ParserTarget:
    """One parser under fuzz, with its declared error hierarchy."""

    name: str
    seeds: Tuple[bytes, ...]
    parse: Callable[[bytes], Any]
    allowed_errors: Tuple[type, ...]

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ValidationError(f"target {self.name} needs a seed corpus")


@dataclass(frozen=True)
class Escape:
    """One untyped exception that crossed the boundary."""

    target: str
    mutation_index: int
    exception_type: str
    detail: str


@dataclass(frozen=True)
class TargetResult:
    """Containment stats for one parser."""

    name: str
    n_mutations: int
    n_accepted: int
    n_rejected: int
    escapes: Tuple[Escape, ...]

    @property
    def contained(self) -> bool:
        return not self.escapes


def fuzz_parser(
    target: ParserTarget,
    seed: int = 0,
    n_mutations: int = 10_000,
    observer: Any = NULL_OBSERVER,
) -> TargetResult:
    """Drive ``n_mutations`` corrupted payloads through one parser.

    Every declared rejection counts toward ``n_rejected``; a clean
    parse (the mutation happened to stay valid) counts toward
    ``n_accepted``; anything else is an :class:`Escape`.
    """
    name_key = int.from_bytes(
        hashlib.blake2b(target.name.encode("utf-8"), digest_size=4).digest(), "little"
    )
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(name_key,))
    )
    n_accepted = 0
    n_rejected = 0
    escapes: List[Escape] = []
    for index in range(n_mutations):
        base = target.seeds[int(rng.integers(0, len(target.seeds)))]
        payload = mutate(base, rng)
        try:
            target.parse(payload)
            n_accepted += 1
        except target.allowed_errors:
            n_rejected += 1
        except Exception as error:  # the whole point: catch *everything*
            if len(escapes) < 32:
                escapes.append(
                    Escape(
                        target=target.name,
                        mutation_index=index,
                        exception_type=type(error).__name__,
                        detail=str(error)[:200],
                    )
                )
            observer.incr("fuzz.escapes")
    observer.incr("fuzz.mutations", n_mutations)
    return TargetResult(
        name=target.name,
        n_mutations=n_mutations,
        n_accepted=n_accepted,
        n_rejected=n_rejected,
        escapes=tuple(escapes),
    )


# ---------------------------------------------------------------------------
# The default corpus: one honest artifact per wire format
# ---------------------------------------------------------------------------
def _make_plans():
    from repro.crypto.encryptor import EncryptionPlan
    from repro.crypto.gains import GainTable
    from repro.crypto.keygen import EntropySource, KeyGenerator
    from repro.hardware.electrodes import standard_array
    from repro.microfluidics.flow import FlowSpeedTable

    plans = []
    for seed, n_outputs, n_epochs in ((0, 9, 10), (1, 5, 4)):
        array = standard_array(n_outputs)
        schedule = KeyGenerator(n_electrodes=n_outputs).generate_schedule(
            float(n_epochs), 1.0, EntropySource(rng=seed)
        )
        plans.append(
            EncryptionPlan(schedule, array, GainTable(), FlowSpeedTable())
        )
    return plans


def _make_report():
    from repro.dsp.peakdetect import DetectedPeak, PeakReport

    peaks = tuple(
        DetectedPeak(
            time_s=0.5 * i + 0.25,
            depth=0.01 * (i + 1),
            width_s=0.02,
            amplitudes=np.asarray([0.01, 0.02, 0.03]),
            sample_index=100 * i,
        )
        for i in range(5)
    )
    return PeakReport(
        peaks=peaks, duration_s=10.0, sampling_rate_hz=450.0, detection_channel=0
    )


def _make_journal_lines(report) -> Tuple[bytes, ...]:
    from repro.cloud.storage import StoredRecord, payload_checksum, record_payload_dict
    from repro.resilience.journal import encode_entry

    lines = []
    for sequence in (1, 2):
        key = f"bead_3.58um:{sequence}|bead_7.8um:0"
        metadata = (("capture_id", f"cap-{sequence}"),)
        payload = record_payload_dict(key, report, sequence, 12.5 * sequence, metadata)
        record = StoredRecord(
            identifier_key=key,
            report=report,
            sequence_number=sequence,
            stored_at_s=12.5 * sequence,
            metadata=metadata,
            checksum=payload_checksum(payload),
        )
        lines.append(encode_entry(record).encode("utf-8"))
    return tuple(lines)


def default_targets(secret: bytes = b"fuzz-shared-secret") -> Tuple[ParserTarget, ...]:
    """The nine wire formats an attacker can reach, with honest seeds."""
    from repro.cloud.api import AnalysisRequest, AnalysisResponse, StoreRequest
    from repro.crypto.keyshare import open_plan, seal_plan
    from repro.crypto.serialization import plan_from_bytes, plan_to_bytes
    from repro.dsp.recording import CsvRecordingModel
    from repro.guard.envelope import open_report, seal_report
    from repro.guard.freshness import mint_token, parse_token
    from repro.obs.context import TraceContext, derive_trace_context
    from repro.resilience.journal import decode_entry
    from repro.stream.envelope import seal_chunk

    plans = _make_plans()
    report = _make_report()
    nonce = bytes(range(16))
    contexts = (
        derive_trace_context(0, "fuzz-tenant", 0),
        derive_trace_context(1, "fuzz-tenant", 7),
    )
    recorder = CsvRecordingModel()
    trace = np.linspace(0.0, 1.0, 64).reshape(2, 32)
    csv_payload = recorder.encode(trace, sampling_rate_hz=450.0)
    messages = (
        AnalysisRequest(
            capture_id="cap-1",
            n_channels=3,
            n_samples=4500,
            sampling_rate_hz=450.0,
            compressed_bytes=1024,
        ).to_json(),
        AnalysisResponse(capture_id="cap-1", report=report).to_json(),
        StoreRequest(
            identifier_key="bead_3.58um:2|bead_7.8um:0",
            capture_id="cap-1",
            metadata=(("site", "clinic-7"),),
        ).to_json(),
    )
    return (
        ParserTarget(
            name="plan_from_bytes",
            seeds=tuple(plan_to_bytes(plan) for plan in plans),
            parse=plan_from_bytes,
            allowed_errors=(ValidationError,),
        ),
        ParserTarget(
            name="open_plan",
            seeds=tuple(seal_plan(plan, secret, nonce=nonce) for plan in plans),
            parse=lambda blob: open_plan(blob, secret),
            allowed_errors=(ValidationError, IntegrityError),
        ),
        ParserTarget(
            name="parse_token",
            seeds=(
                mint_token(secret, key_epoch=0, nonce=nonce),
                mint_token(secret, key_epoch=7, nonce=nonce[::-1]),
                # MSF2: context-carrying layout under the same parser.
                mint_token(
                    secret, key_epoch=2, nonce=nonce, trace_context=contexts[0]
                ),
            ),
            parse=lambda blob: parse_token(blob, secret),
            allowed_errors=(AdmissionError,),
        ),
        ParserTarget(
            name="open_report",
            seeds=(
                seal_report(report, secret, key_epoch=0, nonce=nonce),
                seal_report(report, secret, key_epoch=3, nonce=nonce[::-1]),
                # MSE2: context-carrying header under the same opener.
                seal_report(
                    report,
                    secret,
                    key_epoch=1,
                    nonce=nonce,
                    trace_context=contexts[1],
                ),
            ),
            parse=lambda blob: open_report(blob, secret),
            allowed_errors=(AdmissionError,),
        ),
        ParserTarget(
            name="trace_context",
            seeds=tuple(context.to_bytes() for context in contexts),
            parse=TraceContext.from_bytes,
            allowed_errors=(ValidationError,),
        ),
        ParserTarget(
            name="journal_decode_entry",
            seeds=_make_journal_lines(report),
            parse=lambda blob: decode_entry(blob.decode("utf-8", errors="replace")),
            allowed_errors=(ValueError,),
        ),
        ParserTarget(
            name="api_from_json",
            seeds=tuple(message.encode("utf-8") for message in messages),
            parse=lambda blob: _parse_any_message(
                blob.decode("utf-8", errors="replace")
            ),
            allowed_errors=(ValidationError,),
        ),
        ParserTarget(
            name="csv_trace_decode",
            seeds=(csv_payload,),
            parse=recorder.decode,
            allowed_errors=(ValidationError,),
        ),
        ParserTarget(
            name="open_chunk",
            seeds=(
                seal_chunk(
                    trace,
                    secret,
                    session_key=nonce,
                    seq=0,
                    key_epoch=0,
                    sampling_rate_hz=450.0,
                    nonce=nonce,
                ),
                seal_chunk(
                    trace,
                    secret,
                    session_key=nonce[::-1],
                    seq=7,
                    key_epoch=3,
                    sampling_rate_hz=1000.0,
                    nonce=nonce[::-1],
                ),
            ),
            parse=lambda blob: _parse_chunk(blob, secret),
            allowed_errors=(AdmissionError,),
        ),
    )


def _parse_chunk(blob: bytes, secret: bytes):
    from repro.stream.envelope import open_chunk

    return open_chunk(blob, secret)


def _parse_any_message(text: str):
    """Dispatch a protocol message to whichever parser claims its type."""
    from repro.cloud.api import AnalysisRequest, AnalysisResponse, StoreRequest, _parse_json

    payload = _parse_json(text)
    kind = payload.get("type")
    if kind == "analysis_request":
        return AnalysisRequest.from_json(text)
    if kind == "analysis_response":
        return AnalysisResponse.from_json(text)
    if kind == "store_request":
        return StoreRequest.from_json(text)
    raise ValidationError(f"unknown message type {kind!r}")


# ---------------------------------------------------------------------------
# The run
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FuzzReport:
    """Aggregate containment report across all targets."""

    seed: int
    results: Tuple[TargetResult, ...]

    @property
    def contained(self) -> bool:
        """True when no parser leaked an untyped exception."""
        return all(result.contained for result in self.results)

    @property
    def n_mutations(self) -> int:
        return sum(result.n_mutations for result in self.results)

    @property
    def n_escapes(self) -> int:
        return sum(len(result.escapes) for result in self.results)

    def digest(self) -> str:
        """Deterministic digest of the full outcome (CI comparison)."""
        h = hashlib.blake2b(digest_size=16)
        h.update(str(self.seed).encode())
        for result in self.results:
            h.update(
                f"{result.name}:{result.n_mutations}:{result.n_accepted}:"
                f"{result.n_rejected}:{len(result.escapes)}".encode()
            )
        return h.hexdigest()

    def format(self) -> str:
        lines = [
            f"protocol fuzz · seed={self.seed} · "
            f"{self.n_mutations} mutations · digest {self.digest()}"
        ]
        for result in self.results:
            status = "ok" if result.contained else "ESCAPED"
            lines.append(
                f"  [{status:>7}] {result.name:<22} "
                f"{result.n_mutations:>6} mutated  "
                f"{result.n_rejected:>6} rejected  "
                f"{result.n_accepted:>4} still-valid"
            )
            for escape in result.escapes[:3]:
                lines.append(
                    f"            escape @{escape.mutation_index}: "
                    f"{escape.exception_type}: {escape.detail}"
                )
        return "\n".join(lines)


def run_fuzz(
    seed: int = 0,
    n_per_parser: int = 10_000,
    targets: Optional[Sequence[ParserTarget]] = None,
    observer: Any = NULL_OBSERVER,
) -> FuzzReport:
    """Fuzz every default target ``n_per_parser`` times."""
    if n_per_parser < 1:
        raise ValidationError("n_per_parser must be >= 1")
    chosen = tuple(targets) if targets is not None else default_targets()
    results = tuple(
        fuzz_parser(target, seed=seed, n_mutations=n_per_parser, observer=observer)
        for target in chosen
    )
    return FuzzReport(seed=seed, results=results)
