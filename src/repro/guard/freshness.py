"""Replay and freshness protection for phone↔cloud exchanges.

PR 3's request dedup is *honest-sender* infrastructure: it trusts the
``request_id`` a client attaches.  A network attacker replaying a
captured exchange simply rewrites that id and sails through.  This
module closes the gap the way PoK-style medical-link protocols do —
with an *authenticated* freshness token the attacker cannot mint:

``token = MSF1 || nonce(16) || key_epoch(u32) || minted_at(f64) || HMAC``

The HMAC key derives from a secret shared between phone and cloud (via
:func:`repro.crypto.keyshare.derive_key`, distinct label), so a forged
or bit-flipped token fails authentication; the nonce makes every honest
token unique, so a *replayed* token — identical bytes, any claimed
``request_id`` — hits the server's seen-nonce registry and raises
:class:`~repro._util.errors.ReplayError`; the key-epoch field lets the
server refuse exchanges minted under retired epochs
(:class:`~repro._util.errors.StaleEpochError`) without any clock
agreement between the parties.

A second, versioned format carries a distributed-trace context inside
the authenticated body (see :mod:`repro.obs.context`):

``token = MSF2 || nonce(16) || key_epoch(u32) || minted_at(f64)
          || trace_context(29) || HMAC``

Both formats stay admissible — the parser dispatches on the exact
serialized length, so a truncated/extended blob of either shape is
still a typed refusal.  The context rides *inside* the HMAC'd body, so
an attacker cannot re-route a trace without failing authentication.
"""

import hmac as hmac_mod
import hashlib
import os
import struct
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional

from repro._util.errors import (
    MalformedPayloadError,
    ReplayError,
    StaleEpochError,
    ValidationError,
)
from repro.obs import (
    CONTEXT_BYTES,
    GUARD_REJECTED,
    NULL_OBSERVER,
    REPLAY_DETECTED,
    STALE_EPOCH_REJECTED,
    TraceContext,
)

_MAGIC = b"MSF1"
_MAGIC_V2 = b"MSF2"
_NONCE_BYTES = 16
_TAG_BYTES = 32
_FIXED = struct.Struct("<4s16sId")
_FIXED_V2 = struct.Struct(f"<4s16sId{CONTEXT_BYTES}s")
_MAC_LABEL = b"medsen-freshness-mac"

#: Serialized v1 token size: fixed fields + HMAC-SHA256 tag.
TOKEN_BYTES = _FIXED.size + _TAG_BYTES

#: Serialized v2 (context-carrying) token size.
TOKEN_V2_BYTES = _FIXED_V2.size + _TAG_BYTES


@dataclass(frozen=True)
class FreshnessToken:
    """A parsed, authenticated freshness token."""

    nonce: bytes
    key_epoch: int
    minted_at_s: float
    context: Optional[TraceContext] = None


def _tag(secret: bytes, body: bytes) -> bytes:
    # Lazy import: keyshare pulls in cloud.storage, which sits below the
    # cloud package whose server imports this module.
    from repro.crypto.keyshare import derive_key

    return hmac_mod.new(derive_key(secret, _MAC_LABEL), body, hashlib.sha256).digest()


def mint_token(
    secret: bytes,
    key_epoch: int,
    nonce: Optional[bytes] = None,
    minted_at_s: float = 0.0,
    trace_context: Optional[TraceContext] = None,
) -> bytes:
    """Mint one authenticated freshness token.

    Without ``trace_context`` this emits the legacy ``MSF1`` layout;
    with one, the ``MSF2`` layout whose authenticated body carries the
    29-byte trace context.
    """
    if not secret:
        raise ValidationError("freshness secret must be non-empty")
    if key_epoch < 0 or key_epoch > 0xFFFFFFFF:
        raise ValidationError(f"key epoch {key_epoch} out of u32 range")
    nonce = os.urandom(_NONCE_BYTES) if nonce is None else bytes(nonce)
    if len(nonce) != _NONCE_BYTES:
        raise ValidationError(f"nonce must be {_NONCE_BYTES} bytes")
    if trace_context is None:
        body = _FIXED.pack(_MAGIC, nonce, key_epoch, float(minted_at_s))
    else:
        body = _FIXED_V2.pack(
            _MAGIC_V2,
            nonce,
            key_epoch,
            float(minted_at_s),
            trace_context.to_bytes(),
        )
    return body + _tag(secret, body)


def parse_token(blob: Any, secret: bytes) -> FreshnessToken:
    """Authenticate and decode a token.

    Raises :class:`MalformedPayloadError` on anything that is not an
    intact token minted under ``secret`` — truncation, bad magic,
    bit-flips anywhere (body or tag), wrong type.
    """
    if not secret:
        raise ValidationError("freshness secret must be non-empty")
    try:
        blob = bytes(blob)
    except (TypeError, ValueError) as error:
        raise MalformedPayloadError(
            f"freshness token is not bytes-like: {error}"
        ) from error
    if len(blob) == TOKEN_BYTES:
        layout, expected_magic = _FIXED, _MAGIC
    elif len(blob) == TOKEN_V2_BYTES:
        layout, expected_magic = _FIXED_V2, _MAGIC_V2
    else:
        raise MalformedPayloadError(
            f"freshness token has {len(blob)} bytes; expected "
            f"{TOKEN_BYTES} (MSF1) or {TOKEN_V2_BYTES} (MSF2)"
        )
    body, tag = blob[: layout.size], blob[layout.size :]
    fields = layout.unpack(body)
    if fields[0] != expected_magic:
        raise MalformedPayloadError(f"bad freshness magic {fields[0]!r}")
    if not hmac_mod.compare_digest(tag, _tag(secret, body)):
        raise MalformedPayloadError("freshness token failed authentication")
    context: Optional[TraceContext] = None
    if layout is _FIXED_V2:
        try:
            context = TraceContext.from_bytes(fields[4])
        except ValidationError as error:
            # Authenticated but garbled context: the peer is broken —
            # refuse through the same typed funnel as forgery.
            raise MalformedPayloadError(
                f"authentic token carries a bad trace context: {error}"
            ) from error
    return FreshnessToken(
        nonce=fields[1],
        key_epoch=fields[2],
        minted_at_s=fields[3],
        context=context,
    )


class TokenMinter:
    """The phone side: mints one fresh token per transmission attempt.

    Every *attempt* gets a new nonce — retries after a timeout are new
    exchanges, but a radio-duplicated delivery of one attempt carries
    the *same* token bytes, which is exactly what lets the server tell
    a duplicate (or an attacker's replay) from a legitimate retry.
    """

    def __init__(self, secret: bytes, key_epoch: int = 0, clock: Any = None) -> None:
        if not secret:
            raise ValidationError("freshness secret must be non-empty")
        self._secret = secret
        self.key_epoch = int(key_epoch)
        self._clock = clock
        self.minted = 0

    def mint(self, trace_context: Optional[TraceContext] = None) -> bytes:
        """A new token for one transmission attempt.

        Passing ``trace_context`` mints the MSF2 layout so the caller's
        trace identity rides inside the authenticated body.
        """
        self.minted += 1
        now = float(self._clock()) if self._clock is not None else 0.0
        return mint_token(
            self._secret, self.key_epoch, minted_at_s=now, trace_context=trace_context
        )

    def advance_epoch(self) -> int:
        """Move to the next key epoch (mirrors controller key rotation)."""
        self.key_epoch += 1
        return self.key_epoch


class FreshnessGuard:
    """The cloud side: refuses replayed and stale-epoch exchanges.

    Parameters
    ----------
    secret:
        Shared with the phone's :class:`TokenMinter`.
    key_epoch:
        The epoch the server currently expects.
    epoch_window:
        How many *past* epochs remain admissible after a rotation (so
        in-flight exchanges survive a resync).  Future epochs are never
        admissible.
    max_age_s:
        When set (and a ``clock`` is given), tokens minted more than
        this many seconds ago are stale even within the epoch window.
    capacity:
        Bound on the seen-nonce registry; oldest nonces are evicted
        first.  Sized so eviction only recycles nonces far older than
        any plausible replay window.
    """

    def __init__(
        self,
        secret: bytes,
        key_epoch: int = 0,
        epoch_window: int = 1,
        max_age_s: Optional[float] = None,
        capacity: int = 65536,
        clock: Any = None,
    ) -> None:
        if not secret:
            raise ValidationError("freshness secret must be non-empty")
        if epoch_window < 0:
            raise ValidationError("epoch window must be >= 0")
        if capacity < 1:
            raise ValidationError("nonce capacity must be >= 1")
        self._secret = secret
        self.key_epoch = int(key_epoch)
        self.epoch_window = int(epoch_window)
        self.max_age_s = max_age_s
        self.capacity = int(capacity)
        self._clock = clock
        self._seen: "OrderedDict[bytes, int]" = OrderedDict()
        self.admitted = 0
        self.replays_refused = 0
        self.stale_refused = 0
        self.pruned = 0

    # ------------------------------------------------------------------
    def advance_epoch(self) -> int:
        """Rotate to the next expected key epoch.

        Rolling over also prunes the seen-nonce registry: a nonce whose
        recorded epoch just fell outside the admissible window can
        never be replayed successfully (the epoch check refuses it
        first), so retaining it only burns registry capacity that live
        epochs need for genuine replay protection.
        """
        self.key_epoch += 1
        floor = self.key_epoch - self.epoch_window
        stale = [
            nonce for nonce, epoch in self._seen.items() if epoch < floor
        ]
        for nonce in stale:
            del self._seen[nonce]
        self.pruned += len(stale)
        return self.key_epoch

    def minter(self, clock: Any = None) -> TokenMinter:
        """A phone-side minter paired with this guard's secret/epoch."""
        return TokenMinter(self._secret, key_epoch=self.key_epoch, clock=clock)

    # ------------------------------------------------------------------
    def admit(
        self,
        token_blob: Any,
        observer: Any = NULL_OBSERVER,
        boundary: str = "ingest",
    ) -> FreshnessToken:
        """Authenticate, freshness-check, and consume one token.

        Raises :class:`MalformedPayloadError` (forged/garbled),
        :class:`StaleEpochError` (outside the epoch window or too old),
        or :class:`ReplayError` (nonce already consumed).  Every
        refusal bumps ``guard.rejected`` plus its specific counter and
        emits the matching audit event.
        """
        try:
            token = parse_token(token_blob, self._secret)
        except MalformedPayloadError:
            observer.incr("guard.rejected")
            observer.event(GUARD_REJECTED, boundary=boundary, reason="bad_token")
            raise
        if (
            token.key_epoch > self.key_epoch
            or token.key_epoch < self.key_epoch - self.epoch_window
        ):
            self.stale_refused += 1
            observer.incr("guard.rejected")
            observer.incr("guard.stale_epoch")
            observer.event(
                STALE_EPOCH_REJECTED,
                boundary=boundary,
                token_epoch=token.key_epoch,
                expected_epoch=self.key_epoch,
            )
            raise StaleEpochError(
                f"token epoch {token.key_epoch} outside window "
                f"[{self.key_epoch - self.epoch_window}, {self.key_epoch}]"
            )
        if self.max_age_s is not None and self._clock is not None:
            age = float(self._clock()) - token.minted_at_s
            if age > self.max_age_s:
                self.stale_refused += 1
                observer.incr("guard.rejected")
                observer.incr("guard.stale_epoch")
                observer.event(
                    STALE_EPOCH_REJECTED, boundary=boundary, age_s=age
                )
                raise StaleEpochError(
                    f"token is {age:.3f}s old; max age is {self.max_age_s}s"
                )
        if token.nonce in self._seen:
            self.replays_refused += 1
            observer.incr("guard.rejected")
            observer.incr("guard.replay_detected")
            observer.event(
                REPLAY_DETECTED, boundary=boundary, token_epoch=token.key_epoch
            )
            raise ReplayError("freshness nonce already consumed: replay refused")
        self._seen[token.nonce] = token.key_epoch
        while len(self._seen) > self.capacity:
            self._seen.popitem(last=False)
        self.admitted += 1
        return token

    @property
    def n_seen(self) -> int:
        """Nonces currently retained in the registry."""
        return len(self._seen)
