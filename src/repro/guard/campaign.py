"""The hardening campaign: ``python -m repro harden``.

The fourth adversarial campaign (after the eavesdropper suite, the
serving smoke, and the chaos campaigns): a seeded, end-to-end check
that the §IV trust boundaries actually refuse what they claim to
refuse.  Five phases, each pinned by invariants the CLI and CI render:

* **Phase A — protocol fuzz.**  Every reachable parser survives
  ``n_mutations`` seeded corruptions (:mod:`repro.guard.fuzz`) without
  leaking an untyped exception.
* **Phase B — garbage admission.**  Malformed, oversized, and
  NaN-poisoned payloads are refused with typed
  :class:`~repro._util.errors.AdmissionError`\\ s at all four
  boundaries — cloud ingest, phone relay, record store, and the fleet
  scheduler's submit — with exact ``guard.rejected`` accounting, while
  an honest capture sails through untouched.
* **Phase C — replay & freshness.**  A captured exchange replayed with
  a rewritten ``request_id`` is refused (``guard.replay_detected``);
  stale- and future-epoch tokens are refused (``guard.stale_epoch``);
  forged tokens fail authentication.
* **Phase D — envelope tamper-evidence.**  A sealed report opens
  verbatim; the same envelope with one flipped bit is refused
  (``guard.envelope_rejected``) without ever being decrypted.
* **Phase E — lockout.**  A failure streak locks its source out on the
  exact exponential schedule, an innocent source stays unaffected, and
  the :mod:`repro.attacks.bruteforce` lockout model agrees with the
  throttle's actual behaviour.

Determinism: the same ``(seed, n_mutations)`` produces the same fuzz
stream, counters, and hence the same :attr:`HardeningReport.digest`.

This module deliberately sits outside ``repro.guard``'s public
``__init__`` — it pulls in the serving stack; import it explicitly or
run it via the CLI.
"""

import hashlib
import json
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Any, List, Optional, Tuple

import numpy as np

from repro._util.errors import (
    AdmissionError,
    EnvelopeError,
    LockoutError,
    MalformedPayloadError,
    ReplayError,
    StaleEpochError,
)
from repro.guard.envelope import SecureChannel
from repro.guard.freshness import FreshnessGuard, mint_token
from repro.guard.fuzz import FuzzReport, run_fuzz
from repro.guard.lockout import AttemptThrottle, LockoutPolicy
from repro.obs import NULL_OBSERVER, EventLog, ManualClock, MetricsRegistry, Observer

_SECRET = b"hardening-campaign-secret"


@dataclass(frozen=True)
class InvariantResult:
    """One checked hardening invariant."""

    name: str
    ok: bool
    detail: str = ""


@dataclass
class HardeningReport:
    """Everything one hardening run produced."""

    seed: int
    n_mutations: int
    invariants: List[InvariantResult] = field(default_factory=list)
    fuzz: Optional[FuzzReport] = None
    n_rejected: int = 0
    n_replays_refused: int = 0
    n_stale_refused: int = 0
    n_envelopes_refused: int = 0
    n_lockout_refusals: int = 0
    digest: str = ""

    @property
    def passed(self) -> bool:
        return all(inv.ok for inv in self.invariants)

    def failures(self) -> List[InvariantResult]:
        return [inv for inv in self.invariants if not inv.ok]

    def format(self) -> str:
        """Human-readable hardening summary."""
        lines = [
            f"hardening campaign seed {self.seed}: "
            f"{'PASS' if self.passed else 'FAIL'}",
            f"guard accounting  {self.n_rejected} payloads rejected, "
            f"{self.n_replays_refused} replays, {self.n_stale_refused} stale, "
            f"{self.n_envelopes_refused} envelopes, "
            f"{self.n_lockout_refusals} lockout refusals",
            f"digest            {self.digest}",
        ]
        if self.fuzz is not None:
            lines.append(self.fuzz.format())
        for inv in self.invariants:
            mark = "ok " if inv.ok else "FAIL"
            lines.append(
                f"invariant [{mark}]   {inv.name}"
                + (f" — {inv.detail}" if inv.detail else "")
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------
def _honest_capture(seed: int):
    """One honest encrypted capture (device + trace), seeded."""
    from repro.core.device import MedSenDevice
    from repro.particles.library import get_particle_type
    from repro.particles.sample import Sample
    from repro.serving.request import derive_request_rng

    rng = derive_request_rng(seed, "__hardening__", 0)
    sample = Sample.from_concentrations(
        {get_particle_type("blood_cell"): 400.0}, volume_ul=10.0, rng=rng
    )
    device = MedSenDevice(rng=rng)
    capture = device.run_capture(sample, 4.0, encrypt=True)
    return device, capture


def _garbage_traces() -> Tuple[Any, ...]:
    """The malformed-payload corpus; each must refuse typedly."""
    good = np.zeros((2, 16))
    carriers = (1000.0, 2000.0)

    def fake(**overrides: Any) -> SimpleNamespace:
        fields = {
            "voltages": good,
            "sampling_rate_hz": 450.0,
            "carrier_frequencies_hz": carriers,
        }
        fields.update(overrides)
        return SimpleNamespace(**fields)

    nan_poisoned = good.copy()
    nan_poisoned[1, 3] = np.nan
    return (
        object(),  # not a trace at all
        fake(voltages=[[0.0, 1.0]]),  # not an ndarray
        fake(voltages=np.zeros(16)),  # wrong rank
        fake(voltages=np.zeros((2, 16), dtype=object)),  # non-numeric
        fake(voltages=np.zeros((0, 16))),  # empty axis
        fake(voltages=np.zeros((65, 4))),  # channel cap
        fake(voltages=nan_poisoned),  # NaN-poisoned
        fake(sampling_rate_hz=float("inf")),  # absurd rate
        fake(carrier_frequencies_hz=(1000.0,)),  # carrier mismatch
        fake(voltages=np.full((2, 16), 1e9)),  # voltage ceiling
    )


def _refuses(check_name: str, fn, *errors: type) -> Optional[str]:
    """Run ``fn``; return None when it raises one of ``errors``, else a
    failure detail string."""
    try:
        fn()
    except errors:
        return None
    except Exception as error:  # wrong exception type: an escape
        return f"{check_name}: escaped with {type(error).__name__}: {error}"
    return f"{check_name}: accepted instead of refusing"


def _counter(observer: Any, name: str) -> float:
    return observer.metrics.counter(name).value


# ---------------------------------------------------------------------------
# The campaign
# ---------------------------------------------------------------------------
def run_hardening(
    seed: int = 0,
    n_mutations: int = 10_000,
    smoke: bool = False,
    observer: Any = NULL_OBSERVER,
) -> HardeningReport:
    """Execute the hardening campaign and check its invariants.

    ``smoke`` shrinks the fuzz budget to a CI-friendly size.  Never
    raises on an invariant violation — the report carries the verdicts
    (``report.passed``) for the CLI/CI to render.
    """
    if observer is NULL_OBSERVER:
        # The campaign *verifies* guard accounting, so it always needs
        # readable counters even when the caller doesn't care.
        observer = Observer(metrics=MetricsRegistry(), events=EventLog())
    n_per_parser = min(n_mutations, 400) if smoke else n_mutations
    report = HardeningReport(seed=int(seed), n_mutations=n_per_parser)
    checks = report.invariants

    # ------------------------------------------------------------------
    # Phase A — protocol fuzz
    # ------------------------------------------------------------------
    fuzz = run_fuzz(seed=seed, n_per_parser=n_per_parser, observer=observer)
    report.fuzz = fuzz
    escapes = [
        f"{e.target}@{e.mutation_index}: {e.exception_type}"
        for result in fuzz.results
        for e in result.escapes[:2]
    ]
    checks.append(
        InvariantResult(
            name="fuzz-contained",
            ok=fuzz.contained,
            detail=(
                f"{fuzz.n_mutations} mutations across {len(fuzz.results)} parsers"
                if fuzz.contained
                else "; ".join(escapes)
            ),
        )
    )

    # ------------------------------------------------------------------
    # Phase B — garbage admission at the four boundaries
    # ------------------------------------------------------------------
    from repro.cloud.server import AnalysisServer
    from repro.cloud.storage import RecordStore
    from repro.mobile.phone import Smartphone

    device, capture = _honest_capture(seed)
    server = AnalysisServer(observer=observer)
    phone = Smartphone(observer=observer)
    store = RecordStore(clock=ManualClock(), observer=observer)
    garbage = _garbage_traces()

    failures: List[str] = []
    before = _counter(observer, "guard.rejected")
    for index, trace in enumerate(garbage):
        detail = _refuses(f"ingest[{index}]", lambda t=trace: server.analyze(t), AdmissionError)
        if detail:
            failures.append(detail)
    for index, trace in enumerate(garbage[:3]):
        detail = _refuses(
            f"relay[{index}]", lambda t=trace: phone.relay(t, server), AdmissionError
        )
        if detail:
            failures.append(detail)
    honest_report = server.analyze(capture.trace)
    for name, call in (
        ("store-key", lambda: store.store(123, honest_report)),
        ("store-report", lambda: store.store("key-1", object())),
        (
            "store-metadata",
            lambda: store.store("key-1", honest_report, metadata={"x": object()}),
        ),
    ):
        detail = _refuses(name, call, AdmissionError)
        if detail:
            failures.append(detail)
    n_garbage = len(garbage) + 3 + 3
    rejected = _counter(observer, "guard.rejected") - before
    checks.append(
        InvariantResult(
            name="garbage-refused-typed",
            ok=not failures,
            detail="; ".join(failures[:4])
            or f"{n_garbage} garbage payloads refused at ingest/relay/store",
        )
    )
    checks.append(
        InvariantResult(
            name="guard-rejected-accounting",
            ok=rejected == n_garbage,
            detail=f"guard.rejected grew {rejected:.0f}, expected {n_garbage}",
        )
    )
    # Honest traffic is untouched by the guard.
    honest_failures: List[str] = []
    try:
        stored = store.store(
            "bead_3.58um:2|bead_7.8um:0", honest_report, metadata={"site": "clinic"}
        )
        if not stored.verify():
            honest_failures.append("stored honest record fails verification")
    except Exception as error:
        honest_failures.append(f"honest store refused: {type(error).__name__}")
    try:
        outcome = phone.relay(capture.trace, server)
        if outcome.report.count != honest_report.count:
            honest_failures.append("honest relay changed the report")
    except Exception as error:
        honest_failures.append(f"honest relay refused: {type(error).__name__}")
    checks.append(
        InvariantResult(
            name="honest-traffic-admitted",
            ok=not honest_failures,
            detail="; ".join(honest_failures),
        )
    )

    # The fleet front door (scheduler.submit) refuses garbage too.
    from repro.serving.scheduler import FleetConfig, FleetScheduler

    submit_failures: List[str] = []
    config = FleetConfig(seed=seed, n_workers=1, queue_capacity=4)
    with FleetScheduler(config, observer=observer) as scheduler:
        blood = SimpleNamespace()  # never reaches the queue
        for name, call in (
            ("submit-tenant", lambda: scheduler.submit(
                "bad\ntenant", blood, None)),
            ("submit-duration", lambda: scheduler.submit(
                "clinic-1", blood, None, duration_s=float("nan"))),
            ("submit-duration-cap", lambda: scheduler.submit(
                "clinic-1", blood, None, duration_s=1e9)),
            ("submit-volume", lambda: scheduler.submit(
                "clinic-1", blood, None, pipette_volume_ul=-2.0)),
        ):
            detail = _refuses(name, call, AdmissionError)
            if detail:
                submit_failures.append(detail)
    checks.append(
        InvariantResult(
            name="submit-refuses-garbage",
            ok=not submit_failures,
            detail="; ".join(submit_failures),
        )
    )

    # ------------------------------------------------------------------
    # Phase C — replay & freshness
    # ------------------------------------------------------------------
    guard = FreshnessGuard(_SECRET, key_epoch=2, epoch_window=1)
    guarded = AnalysisServer(
        observer=observer, freshness=guard, transit_secret=_SECRET
    )
    minter = guard.minter()
    replay_failures: List[str] = []
    replays_before = _counter(observer, "guard.replay_detected")
    stale_before = _counter(observer, "guard.stale_epoch")
    token = minter.mint()
    try:
        first = guarded.analyze(capture.trace, request_id="req-A", freshness_token=token)
    except Exception as error:
        first = None
        replay_failures.append(f"honest tokened exchange refused: {error}")
    # The §IV attacker replays the captured exchange, rewriting the
    # request id so honest dedup cannot help.
    detail = _refuses(
        "replay",
        lambda: guarded.analyze(
            capture.trace, request_id="req-B", freshness_token=token
        ),
        ReplayError,
    )
    if detail:
        replay_failures.append(detail)
    for name, bad_token, expected in (
        ("stale-epoch", mint_token(_SECRET, key_epoch=0), StaleEpochError),
        ("future-epoch", mint_token(_SECRET, key_epoch=3), StaleEpochError),
        ("forged-token", bytes(64), MalformedPayloadError),
        ("missing-token", None, MalformedPayloadError),
    ):
        detail = _refuses(
            name,
            lambda t=bad_token: guarded.analyze(capture.trace, freshness_token=t),
            expected,
        )
        if detail:
            replay_failures.append(detail)
    tampered_token = bytearray(minter.mint())
    tampered_token[7] ^= 0x20
    detail = _refuses(
        "bitflipped-token",
        lambda: guarded.analyze(
            capture.trace, freshness_token=bytes(tampered_token)
        ),
        MalformedPayloadError,
    )
    if detail:
        replay_failures.append(detail)
    report.n_replays_refused = int(
        _counter(observer, "guard.replay_detected") - replays_before
    )
    report.n_stale_refused = int(_counter(observer, "guard.stale_epoch") - stale_before)
    checks.append(
        InvariantResult(
            name="replay-and-freshness-refused",
            ok=not replay_failures
            and report.n_replays_refused >= 1
            and report.n_stale_refused >= 2,
            detail="; ".join(replay_failures)
            or (
                f"{report.n_replays_refused} replays, "
                f"{report.n_stale_refused} stale-epoch refusals"
            ),
        )
    )

    # ------------------------------------------------------------------
    # Phase D — tamper-evident envelopes
    # ------------------------------------------------------------------
    channel = SecureChannel(_SECRET, key_epoch=2, observer=observer)
    envelope_failures: List[str] = []
    envelopes_before = _counter(observer, "guard.envelope_rejected")
    sealed = guarded.analyze_sealed(
        capture.trace, freshness_token=channel.new_token()
    )
    try:
        opened = channel.receive(sealed)
        if first is not None and opened.count != first.count:
            envelope_failures.append("sealed report decodes to different counts")
    except Exception as error:
        envelope_failures.append(f"genuine envelope refused: {error}")
    for index in (0, len(sealed) // 2, len(sealed) - 1):
        tampered = bytearray(sealed)
        tampered[index] ^= 0x01
        detail = _refuses(
            f"envelope-bitflip@{index}",
            lambda blob=bytes(tampered): channel.receive(blob),
            EnvelopeError,
        )
        if detail:
            envelope_failures.append(detail)
    detail = _refuses(
        "envelope-truncated", lambda: channel.receive(sealed[:10]), EnvelopeError
    )
    if detail:
        envelope_failures.append(detail)
    report.n_envelopes_refused = int(
        _counter(observer, "guard.envelope_rejected") - envelopes_before
    )
    checks.append(
        InvariantResult(
            name="forged-envelopes-refused",
            ok=not envelope_failures and report.n_envelopes_refused >= 4,
            detail="; ".join(envelope_failures)
            or f"{report.n_envelopes_refused} tampered envelopes refused, "
            "genuine envelope opened",
        )
    )

    # ------------------------------------------------------------------
    # Phase E — lockout schedule and the bruteforce model
    # ------------------------------------------------------------------
    from repro.attacks.bruteforce import (
        bruteforce_expected_time_s,
        lockout_delay_s,
    )
    from repro.auth.alphabet import DEFAULT_ALPHABET

    clock = ManualClock()
    policy = LockoutPolicy(
        max_failures=3, base_lockout_s=8.0, backoff_factor=2.0, max_lockout_s=64.0
    )
    throttle = AttemptThrottle(policy, clock=clock, observer=observer)
    lockout_failures: List[str] = []
    lockouts_before = _counter(observer, "auth.lockout_refusals")
    # Burn the budget; the trip must match the schedule exactly.
    for _ in range(policy.max_failures):
        throttle.check("mallory")
        throttle.record_failure("mallory")
    if not throttle.is_locked("mallory"):
        lockout_failures.append("streak did not trip a lockout")
    if throttle.retry_after_s("mallory") != policy.lockout_duration_s(1):
        lockout_failures.append(
            f"first window {throttle.retry_after_s('mallory')} != "
            f"{policy.lockout_duration_s(1)}"
        )
    detail = _refuses(
        "locked-out-check", lambda: throttle.check("mallory"), LockoutError
    )
    if detail:
        lockout_failures.append(detail)
    # An innocent source is untouched (no victim-lockout DoS).
    try:
        throttle.check("alice")
    except Exception as error:
        lockout_failures.append(f"innocent source refused: {error}")
    # After the window the source may try again — and one more failure
    # escalates to the doubled window, no fresh free budget.
    clock.advance(policy.lockout_duration_s(1) + 0.5)
    try:
        throttle.check("mallory")
    except LockoutError:
        lockout_failures.append("lockout did not expire with the clock")
    throttle.record_failure("mallory")
    if throttle.retry_after_s("mallory") != policy.lockout_duration_s(2):
        lockout_failures.append("second window did not escalate to 2x")
    report.n_lockout_refusals = int(
        _counter(observer, "auth.lockout_refusals") - lockouts_before
    )
    checks.append(
        InvariantResult(
            name="lockout-schedule-exact",
            ok=not lockout_failures and report.n_lockout_refusals >= 1,
            detail="; ".join(lockout_failures)
            or f"{report.n_lockout_refusals} refusals on the exact schedule",
        )
    )

    # The analytical model must agree with the throttle it describes:
    # drive a fresh throttle through n failures, waiting out each
    # window, and compare the waited total with lockout_delay_s(n).
    model_failures: List[str] = []
    for n_failures in (2, 3, 5, 9):
        sim_clock = ManualClock()
        sim = AttemptThrottle(policy, clock=sim_clock)
        waited = 0.0
        for _ in range(n_failures):
            wait = sim.retry_after_s("eve")
            if wait > 0:
                sim_clock.advance(wait)
                waited += wait
            sim.check("eve")
            sim.record_failure("eve")
        # The wait incurred by the final failure is served before the
        # *next* attempt, so include the pending window too.
        waited += sim.retry_after_s("eve")
        predicted = lockout_delay_s(n_failures, policy)
        if abs(waited - predicted) > 1e-9:
            model_failures.append(
                f"{n_failures} failures: simulated {waited}s vs model {predicted}s"
            )
    time_plain = bruteforce_expected_time_s(DEFAULT_ALPHABET, attempt_s=60.0)
    time_locked = bruteforce_expected_time_s(
        DEFAULT_ALPHABET, policy=policy, attempt_s=60.0
    )
    if not time_locked > time_plain:
        model_failures.append(
            f"lockout did not increase expected time ({time_locked} <= {time_plain})"
        )
    checks.append(
        InvariantResult(
            name="bruteforce-model-matches-throttle",
            ok=not model_failures,
            detail="; ".join(model_failures)
            or (
                f"model exact for 2/3/5/9 failures; expected brute-force time "
                f"{time_plain:.0f}s -> {time_locked:.0f}s under lockout"
            ),
        )
    )

    # ------------------------------------------------------------------
    # Final accounting + deterministic digest
    # ------------------------------------------------------------------
    report.n_rejected = int(_counter(observer, "guard.rejected"))
    report.digest = hashlib.blake2b(
        json.dumps(
            {
                "seed": report.seed,
                "n_mutations": report.n_mutations,
                "fuzz": fuzz.digest(),
                "invariants": [[inv.name, inv.ok] for inv in report.invariants],
                "counts": [
                    report.n_replays_refused,
                    report.n_stale_refused,
                    report.n_envelopes_refused,
                    report.n_lockout_refusals,
                ],
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8"),
        digest_size=16,
    ).hexdigest()
    return report
