"""Admission validation at every trust boundary.

The paper's §IV threat model gives the adversary the phone↔cloud link:
anything crossing it may be malformed, oversized, NaN-poisoned, or not
even the right Python type.  This module is the single place that turns
that firehose into a typed, non-crashing contract — every boundary
(:meth:`AnalysisServer.analyze <repro.cloud.server.AnalysisServer>`,
:meth:`Smartphone.relay <repro.mobile.phone.Smartphone.relay>`,
:meth:`RecordStore.store <repro.cloud.storage.RecordStore.store>`, the
serving scheduler's ``submit``) calls an ``admit_*`` function, and a
refused payload raises an :class:`~repro._util.errors.AdmissionError`
subclass, increments the ``guard.rejected`` counter, and emits a
``guard.rejected`` audit event naming the boundary.  Nothing else ever
escapes.

The default :data:`DEFAULT_TRACE_POLICY` is deliberately generous — a
20-hour capture at the lock-in's 450 Hz output rate still admits — so
turning admission on changes nothing for honest traffic, including the
chaos campaigns' *corrupted-but-finite* traces.
"""

import math
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro._util.errors import (
    AdmissionError,
    MalformedPayloadError,
    OversizedPayloadError,
)
from repro.obs import GUARD_REJECTED, NULL_OBSERVER

#: Counter bumped once per refused payload, labelled only by total.
REJECTED_METRIC = "guard.rejected"


def _refuse(
    observer: Any,
    boundary: str,
    reason: str,
    error: type = MalformedPayloadError,
) -> None:
    """Account for one rejection, then raise the typed error."""
    observer.incr(REJECTED_METRIC)
    observer.incr(f"{REJECTED_METRIC}.{boundary}")
    observer.event(GUARD_REJECTED, boundary=boundary, reason=reason)
    raise error(f"[{boundary}] {reason}")


@dataclass(frozen=True)
class TraceAdmissionPolicy:
    """Resource and sanity budget for one inbound trace.

    Defaults bound memory at roughly 16 GiB of float64 in the worst
    case while admitting every trace the honest pipeline produces; the
    voltage ceiling is far above any lock-in output (fractional dips
    around a ~1 V carrier) but catches numerically absurd payloads.
    """

    max_channels: int = 64
    max_samples: int = 1 << 25
    max_sampling_rate_hz: float = 1e9
    max_abs_voltage: float = 1e6
    require_finite: bool = True


#: The generous default attached to every boundary unless overridden.
DEFAULT_TRACE_POLICY = TraceAdmissionPolicy()


def admit_trace(
    trace: Any,
    policy: Optional[TraceAdmissionPolicy] = None,
    observer: Any = NULL_OBSERVER,
    boundary: str = "ingest",
) -> None:
    """Refuse ``trace`` unless it is a well-formed, in-budget capture.

    Raises :class:`MalformedPayloadError` /
    :class:`OversizedPayloadError`; returns ``None`` on admission.
    """
    policy = policy or DEFAULT_TRACE_POLICY
    try:
        voltages = getattr(trace, "voltages", None)
        rate = getattr(trace, "sampling_rate_hz", None)
        carriers = getattr(trace, "carrier_frequencies_hz", None)
        if voltages is None or rate is None or carriers is None:
            _refuse(observer, boundary, f"not a trace: {type(trace).__name__}")
        if not isinstance(voltages, np.ndarray) or voltages.ndim != 2:
            _refuse(observer, boundary, "trace voltages are not a 2-D array")
        if voltages.dtype.kind not in "fiu":
            _refuse(
                observer, boundary, f"non-numeric voltage dtype {voltages.dtype}"
            )
        n_channels, n_samples = voltages.shape
        if n_channels < 1 or n_samples < 1:
            _refuse(observer, boundary, "trace has an empty axis")
        if n_channels > policy.max_channels:
            _refuse(
                observer,
                boundary,
                f"{n_channels} channels exceeds cap {policy.max_channels}",
                OversizedPayloadError,
            )
        if n_samples > policy.max_samples:
            _refuse(
                observer,
                boundary,
                f"{n_samples} samples exceeds cap {policy.max_samples}",
                OversizedPayloadError,
            )
        rate = float(rate)
        if not math.isfinite(rate) or rate <= 0:
            _refuse(observer, boundary, f"sampling rate {rate!r} is not positive")
        if rate > policy.max_sampling_rate_hz:
            _refuse(
                observer,
                boundary,
                f"sampling rate {rate} exceeds cap",
                OversizedPayloadError,
            )
        if len(carriers) != n_channels:
            _refuse(
                observer,
                boundary,
                f"{n_channels} channels but {len(carriers)} carriers",
            )
        if policy.require_finite and not np.isfinite(voltages).all():
            _refuse(observer, boundary, "trace contains non-finite samples")
        peak = float(np.max(np.abs(voltages)))
        if peak > policy.max_abs_voltage:
            _refuse(
                observer,
                boundary,
                f"|voltage| {peak:.3g} exceeds cap {policy.max_abs_voltage:.3g}",
            )
    except AdmissionError:
        raise
    except Exception as error:  # garbage that broke a check itself
        _refuse(
            observer,
            boundary,
            f"unreadable trace ({type(error).__name__}: {error})",
        )


def admit_report(
    report: Any,
    observer: Any = NULL_OBSERVER,
    boundary: str = "report",
    max_peaks: int = 1_000_000,
) -> None:
    """Refuse a :class:`~repro.dsp.peakdetect.PeakReport` look-alike
    whose fields are missing, non-finite, or out of budget."""
    try:
        peaks = getattr(report, "peaks", None)
        duration = getattr(report, "duration_s", None)
        rate = getattr(report, "sampling_rate_hz", None)
        if peaks is None or duration is None or rate is None:
            _refuse(observer, boundary, f"not a report: {type(report).__name__}")
        duration = float(duration)
        rate = float(rate)
        if not math.isfinite(duration) or duration <= 0:
            _refuse(observer, boundary, f"report duration {duration!r} invalid")
        if not math.isfinite(rate) or rate <= 0:
            _refuse(observer, boundary, f"report sampling rate {rate!r} invalid")
        if len(peaks) > max_peaks:
            _refuse(
                observer,
                boundary,
                f"{len(peaks)} peaks exceeds cap {max_peaks}",
                OversizedPayloadError,
            )
        for peak in peaks:
            time_s = float(peak.time_s)
            depth = float(peak.depth)
            width = float(peak.width_s)
            if not (
                math.isfinite(time_s)
                and math.isfinite(depth)
                and math.isfinite(width)
            ):
                _refuse(observer, boundary, "peak has non-finite fields")
            if not np.isfinite(np.asarray(peak.amplitudes, dtype=float)).all():
                _refuse(observer, boundary, "peak amplitudes non-finite")
    except AdmissionError:
        raise
    except Exception as error:
        _refuse(
            observer,
            boundary,
            f"unreadable report ({type(error).__name__}: {error})",
        )


def admit_identifier_key(
    key: Any,
    observer: Any = NULL_OBSERVER,
    boundary: str = "store",
    max_length: int = 512,
) -> str:
    """Refuse a record-store key that is not a sane short string."""
    if not isinstance(key, str):
        _refuse(observer, boundary, f"identifier key is {type(key).__name__}")
    if not key or key != key.strip() or "\n" in key or "\r" in key:
        _refuse(observer, boundary, "identifier key empty or has edge whitespace")
    if len(key) > max_length:
        _refuse(
            observer,
            boundary,
            f"identifier key length {len(key)} exceeds {max_length}",
            OversizedPayloadError,
        )
    return key


def admit_session_params(
    tenant_id: Any,
    duration_s: Any,
    pipette_volume_ul: Any,
    max_duration_s: float = 3600.0,
    max_pipette_volume_ul: float = 1000.0,
    observer: Any = NULL_OBSERVER,
    boundary: str = "submit",
) -> str:
    """Refuse a diagnostic-session submission with garbage parameters.

    The single admission path shared by the thread-pool scheduler's
    ``submit`` and the sharded tier's asyncio front door: a malformed
    tenant id, a non-finite or non-positive capture duration, or an
    absurd pipette volume is refused with a typed
    :class:`~repro._util.errors.AdmissionError` (and ``guard.rejected``
    accounting) before the request can occupy a queue slot on either
    tier.  Returns the validated tenant id.
    """
    key = admit_identifier_key(tenant_id, observer=observer, boundary=boundary)
    for name, value in (
        ("duration_s", duration_s),
        ("pipette_volume_ul", pipette_volume_ul),
    ):
        try:
            value = float(value)
        except (TypeError, ValueError):
            _refuse(observer, boundary, f"{name} is not a number")
        if not math.isfinite(value) or value <= 0:
            _refuse(
                observer,
                boundary,
                f"{name} must be finite and positive, got {value!r}",
            )
    if float(duration_s) > max_duration_s:
        _refuse(
            observer,
            boundary,
            f"duration_s {float(duration_s)} exceeds the {max_duration_s} s cap",
            OversizedPayloadError,
        )
    if float(pipette_volume_ul) > max_pipette_volume_ul:
        _refuse(
            observer,
            boundary,
            f"pipette_volume_ul {float(pipette_volume_ul)} exceeds the "
            f"{max_pipette_volume_ul} µL cap",
            OversizedPayloadError,
        )
    return key


def admit_metadata(
    metadata: Any,
    observer: Any = NULL_OBSERVER,
    boundary: str = "store",
    max_entries: int = 64,
    max_value_bytes: int = 4096,
) -> None:
    """Refuse record metadata unless it is a small, flat, JSON-safe dict."""
    if metadata is None:
        return
    if not isinstance(metadata, dict):
        _refuse(observer, boundary, f"metadata is {type(metadata).__name__}")
    if len(metadata) > max_entries:
        _refuse(
            observer,
            boundary,
            f"metadata has {len(metadata)} entries; cap is {max_entries}",
            OversizedPayloadError,
        )
    for key, value in metadata.items():
        if not isinstance(key, str):
            _refuse(observer, boundary, "metadata key is not a string")
        if isinstance(value, float) and not math.isfinite(value):
            _refuse(observer, boundary, f"metadata value {key}={value!r} non-finite")
        if not isinstance(value, (str, int, float, bool)) and value is not None:
            _refuse(
                observer,
                boundary,
                f"metadata value {key} has type {type(value).__name__}",
            )
        if isinstance(value, str) and len(value) > max_value_bytes:
            _refuse(
                observer,
                boundary,
                f"metadata value {key} exceeds {max_value_bytes} chars",
                OversizedPayloadError,
            )
