"""Trust-boundary hardening (the §IV adversary, taken seriously).

PR 3's resilience layer survives *random* faults; this package defends
against a *malicious* network peer and an online password guesser:

* :mod:`~repro.guard.admission` — typed, non-crashing rejection of
  malformed/oversized/NaN-poisoned payloads at every boundary;
* :mod:`~repro.guard.freshness` — authenticated nonce + key-epoch
  tokens that refuse replayed and stale exchanges even when the
  attacker rewrites ``request_id``;
* :mod:`~repro.guard.envelope` — HMAC-sealed report transit, verified
  on the phone *before* anything reaches the TCB's decryptor;
* :mod:`~repro.guard.lockout` — per-source attempt budgets with
  exponential backoff, quantified against the §V password space by
  :mod:`repro.attacks.bruteforce`;
* :mod:`~repro.guard.fuzz` — the seeded protocol fuzzer that holds the
  whole contract: every parser round-trips or raises its typed error.

The adversarial campaign wiring lives in :mod:`repro.guard.campaign`
(import it explicitly; it pulls in the serving stack) and runs as
``python -m repro harden --smoke``.  See ``docs/security.md``.
"""

from repro._util.errors import (
    AdmissionError,
    EnvelopeError,
    LockoutError,
    MalformedPayloadError,
    OversizedPayloadError,
    ReplayError,
    StaleEpochError,
)
from repro.guard.admission import (
    DEFAULT_TRACE_POLICY,
    REJECTED_METRIC,
    TraceAdmissionPolicy,
    admit_identifier_key,
    admit_metadata,
    admit_report,
    admit_trace,
)
from repro.guard.envelope import (
    MAX_ENVELOPE_BYTES,
    SecureChannel,
    envelope_epoch,
    open_report,
    open_report_with_context,
    seal_report,
)
from repro.guard.freshness import (
    TOKEN_BYTES,
    TOKEN_V2_BYTES,
    FreshnessGuard,
    FreshnessToken,
    TokenMinter,
    mint_token,
    parse_token,
)
from repro.guard.fuzz import (
    MUTATION_OPS,
    Escape,
    FuzzReport,
    ParserTarget,
    TargetResult,
    default_targets,
    fuzz_parser,
    mutate,
    run_fuzz,
)
from repro.guard.lockout import (
    DEFAULT_LOCKOUT_POLICY,
    AttemptThrottle,
    LockoutPolicy,
)

__all__ = [
    "AdmissionError",
    "MalformedPayloadError",
    "OversizedPayloadError",
    "ReplayError",
    "StaleEpochError",
    "EnvelopeError",
    "LockoutError",
    "TraceAdmissionPolicy",
    "DEFAULT_TRACE_POLICY",
    "REJECTED_METRIC",
    "admit_trace",
    "admit_report",
    "admit_identifier_key",
    "admit_metadata",
    "FreshnessToken",
    "FreshnessGuard",
    "TokenMinter",
    "mint_token",
    "parse_token",
    "TOKEN_BYTES",
    "TOKEN_V2_BYTES",
    "SecureChannel",
    "seal_report",
    "open_report",
    "open_report_with_context",
    "envelope_epoch",
    "MAX_ENVELOPE_BYTES",
    "LockoutPolicy",
    "DEFAULT_LOCKOUT_POLICY",
    "AttemptThrottle",
    "ParserTarget",
    "TargetResult",
    "Escape",
    "FuzzReport",
    "MUTATION_OPS",
    "mutate",
    "fuzz_parser",
    "default_targets",
    "run_fuzz",
]
