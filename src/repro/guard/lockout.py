"""Per-source attempt budgets with exponential lockout.

The paper sizes the cyto-coded password space (§V, Eq. 2 companion
analysis in :mod:`repro.attacks.bruteforce`) but the prototype lets an
online attacker guess forever at full speed.  This module is the
standard countermeasure: after ``max_failures`` consecutive failures
from one source, authentication is refused outright for a lockout
window that doubles (by ``backoff_factor``) with each subsequent
failure streak, capped at ``max_lockout_s``.  A success clears the
streak.

The throttle is deliberately *source*-keyed (tenant, device, or remote
endpoint — whatever the caller uses as its blast-radius unit), not
user-keyed: keying on the claimed user would let an attacker lock a
victim out of their own diagnostics (a denial-of-service the related
e-SAFE work warns about for implantables).

:func:`repro.attacks.bruteforce.bruteforce_expected_time_s` consumes
:class:`LockoutPolicy` to quantify what the throttle buys: the expected
*time* to brute-force the password space under lockout, versus the raw
expected-attempts count.
"""

import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro._util.errors import LockoutError, ValidationError
from repro.obs import AUTH_LOCKED_OUT, NULL_OBSERVER


@dataclass(frozen=True)
class LockoutPolicy:
    """The lockout schedule.

    ``max_failures`` free failures are allowed per streak; the first
    lockout lasts ``base_lockout_s``, and each further failure while a
    streak is active multiplies the next window by ``backoff_factor``
    up to ``max_lockout_s``.
    """

    max_failures: int = 5
    base_lockout_s: float = 30.0
    backoff_factor: float = 2.0
    max_lockout_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.max_failures < 1:
            raise ValidationError("max_failures must be >= 1")
        if self.base_lockout_s <= 0:
            raise ValidationError("base_lockout_s must be positive")
        if self.backoff_factor < 1.0:
            raise ValidationError("backoff_factor must be >= 1")
        if self.max_lockout_s < self.base_lockout_s:
            raise ValidationError("max_lockout_s must be >= base_lockout_s")

    def lockout_duration_s(self, n_lockouts: int) -> float:
        """Window length for the ``n_lockouts``-th lockout (1-based)."""
        if n_lockouts < 1:
            return 0.0
        duration = self.base_lockout_s * self.backoff_factor ** (n_lockouts - 1)
        return min(duration, self.max_lockout_s)


#: The default schedule: 5 free failures, then 30 s doubling to 1 h.
DEFAULT_LOCKOUT_POLICY = LockoutPolicy()


@dataclass
class _SourceState:
    failures: int = 0
    lockouts: int = 0
    locked_until_s: float = 0.0


class AttemptThrottle:
    """Tracks failure streaks per source and enforces the policy.

    Thread-safe (fleet workers share the authenticator).  The clock is
    injectable; tests drive it with a
    :class:`~repro.obs.clock.ManualClock`.
    """

    def __init__(
        self,
        policy: LockoutPolicy = DEFAULT_LOCKOUT_POLICY,
        clock: Any = None,
        observer: Any = NULL_OBSERVER,
    ) -> None:
        import time

        self.policy = policy
        self._clock = clock if clock is not None else time.monotonic
        self.observer = observer
        self._states: Dict[str, _SourceState] = {}
        self._lock = threading.Lock()
        self.refusals = 0

    # ------------------------------------------------------------------
    def _state(self, source: str) -> _SourceState:
        state = self._states.get(source)
        if state is None:
            state = self._states[source] = _SourceState()
        return state

    def check(self, source: str) -> None:
        """Raise :class:`LockoutError` if ``source`` is locked out."""
        now = float(self._clock())
        with self._lock:
            state = self._state(source)
            remaining = state.locked_until_s - now
            if remaining > 0:
                self.refusals += 1
                self.observer.incr("guard.rejected")
                self.observer.incr("auth.lockout_refusals")
                self.observer.event(
                    AUTH_LOCKED_OUT, source=source, retry_after_s=remaining
                )
                raise LockoutError(
                    f"source {source!r} locked out for {remaining:.1f}s more"
                )

    def record_failure(self, source: str) -> Optional[float]:
        """Count one failed attempt; returns the new lockout window (s)
        when this failure tripped or extended a lockout, else None."""
        now = float(self._clock())
        with self._lock:
            state = self._state(source)
            state.failures += 1
            if state.failures >= self.policy.max_failures:
                state.lockouts += 1
                duration = self.policy.lockout_duration_s(state.lockouts)
                state.locked_until_s = now + duration
                # Once a streak has tripped, a single further failure
                # re-trips and escalates — the attacker does not get
                # another max_failures of free guesses per window.
                state.failures = self.policy.max_failures - 1
                return duration
        return None

    def record_success(self, source: str) -> None:
        """A successful authentication clears the streak entirely."""
        with self._lock:
            self._states.pop(source, None)

    # ------------------------------------------------------------------
    def is_locked(self, source: str) -> bool:
        """Whether ``source`` is currently inside a lockout window."""
        with self._lock:
            state = self._states.get(source)
            return bool(state) and state.locked_until_s > float(self._clock())

    def retry_after_s(self, source: str) -> float:
        """Seconds until ``source`` may try again (0 when unlocked)."""
        with self._lock:
            state = self._states.get(source)
            if state is None:
                return 0.0
            return max(0.0, state.locked_until_s - float(self._clock()))

    def n_lockouts(self, source: str) -> int:
        """How many lockout windows ``source`` has accumulated."""
        with self._lock:
            state = self._states.get(source)
            return state.lockouts if state else 0
