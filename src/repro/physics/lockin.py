"""Multi-carrier lock-in amplifier (HF2IS + HF2TA stand-in).

Paper §VI-D: the input electrode is excited with a combination of eight
carrier frequencies (500 kHz - 4 MHz) at 1 V; the recovered signal is
demodulated per carrier, low-pass filtered at 120 Hz and sampled at
450 Hz.

We do not simulate the MHz carriers sample-by-sample (that would need a
GHz-rate solver for zero scientific gain); the demodulated *baseband*
signal is synthesized directly from the per-carrier fractional dips, and
this module applies the parts of the chain that shape the recorded data:
excitation scaling, the 120 Hz anti-alias low-pass, and decimation from
the internal oversampled rate to the 450 Hz output rate.
"""

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import signal as sp_signal

from repro._util.units import khz
from repro._util.validation import check_positive

#: The paper's §VI-D excitation carrier set.
DEFAULT_CARRIERS_HZ: Tuple[float, ...] = tuple(
    khz(f) for f in (500, 800, 1000, 1200, 1400, 2000, 3000, 4000)
)


@dataclass(frozen=True)
class LockInAmplifier:
    """Demodulation chain from fractional dips to recorded volts.

    Parameters
    ----------
    carrier_frequencies_hz:
        Excitation carriers; one output channel per carrier.
    excitation_volts:
        Per-carrier excitation amplitude (paper: 1 V).
    output_rate_hz:
        Recorded sampling rate (paper: 450 Hz).
    lowpass_cutoff_hz:
        Recovery filter cutoff (paper: 120 Hz).
    oversample_factor:
        Internal synthesis rate multiplier; the filter runs at the
        oversampled rate and the output is decimated back down.
    """

    carrier_frequencies_hz: Tuple[float, ...] = DEFAULT_CARRIERS_HZ
    excitation_volts: float = 1.0
    output_rate_hz: float = 450.0
    lowpass_cutoff_hz: float = 120.0
    oversample_factor: int = 4
    filter_order: int = 4

    def __post_init__(self) -> None:
        if not self.carrier_frequencies_hz:
            raise ValueError("at least one carrier frequency is required")
        frequencies = tuple(float(f) for f in self.carrier_frequencies_hz)
        if any(f <= 0 for f in frequencies):
            raise ValueError("carrier frequencies must be > 0")
        if len(set(frequencies)) != len(frequencies):
            raise ValueError("carrier frequencies must be distinct")
        object.__setattr__(self, "carrier_frequencies_hz", frequencies)
        check_positive("excitation_volts", self.excitation_volts)
        check_positive("output_rate_hz", self.output_rate_hz)
        check_positive("lowpass_cutoff_hz", self.lowpass_cutoff_hz)
        if self.oversample_factor < 1:
            raise ValueError("oversample_factor must be >= 1")
        if self.lowpass_cutoff_hz >= self.output_rate_hz / 2.0:
            raise ValueError(
                "lowpass_cutoff_hz must be below the output Nyquist frequency "
                f"({self.output_rate_hz / 2.0} Hz)"
            )

    # ------------------------------------------------------------------
    @property
    def n_channels(self) -> int:
        """Number of demodulated output channels (= carriers)."""
        return len(self.carrier_frequencies_hz)

    @property
    def internal_rate_hz(self) -> float:
        """Oversampled synthesis rate the filter runs at."""
        return self.output_rate_hz * self.oversample_factor

    def channel_index(self, frequency_hz: float) -> int:
        """Index of the output channel for a given carrier."""
        for index, carrier in enumerate(self.carrier_frequencies_hz):
            if abs(carrier - frequency_hz) < 0.5:
                return index
        raise ValueError(f"{frequency_hz} Hz is not one of the configured carriers")

    # ------------------------------------------------------------------
    def demodulate(self, fractional_trace: np.ndarray) -> np.ndarray:
        """Convert an oversampled fractional trace to recorded volts.

        ``fractional_trace`` has shape ``(n_channels, n_internal)`` and
        holds the unit-baseline dip signal at the internal rate.  The
        returned array has shape ``(n_channels, n_output)`` in volts at
        the output rate, after the recovery low-pass.
        """
        trace = np.asarray(fractional_trace, dtype=float)
        if trace.ndim != 2 or trace.shape[0] != self.n_channels:
            raise ValueError(
                f"expected trace of shape ({self.n_channels}, n), got {trace.shape}"
            )
        volts = self.excitation_volts * trace
        if trace.shape[1] == 0:
            return volts[:, :0]
        sos = sp_signal.butter(
            self.filter_order,
            self.lowpass_cutoff_hz,
            btype="low",
            fs=self.internal_rate_hz,
            output="sos",
        )
        filtered = sp_signal.sosfiltfilt(sos, volts, axis=1)
        return filtered[:, :: self.oversample_factor]

    def output_sample_count(self, duration_s: float) -> int:
        """Number of recorded samples for a run of ``duration_s``."""
        check_positive("duration_s", duration_s)
        internal = int(round(duration_s * self.internal_rate_hz))
        return len(range(0, internal, self.oversample_factor))
