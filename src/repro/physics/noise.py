"""Measurement noise and baseline drift.

§VI-C of the paper: "in the long succession of data acquisition, the
measured signal changes in the baseline measurement ... caused by many
conditions such as the change in fluid concentration over long
acquisition time and the temperature drift of the fluid."

:class:`BaselineDriftModel` produces that slow multiplicative drift
(deterministic trend + slow sinusoid + integrated random walk);
:class:`NoiseModel` adds white measurement noise on top.  The cloud-side
detrending pipeline (:mod:`repro.dsp.detrend`) exists to undo exactly
this drift.
"""

from dataclasses import dataclass

import numpy as np

from repro._util.rng import RngLike, ensure_rng
from repro._util.validation import check_positive


@dataclass(frozen=True)
class BaselineDriftModel:
    """Slow multiplicative baseline drift.

    The generated drift multiplies the unit baseline, so a value of
    1.002 means the baseline sits 0.2 % high at that sample.

    Parameters
    ----------
    linear_per_hour:
        Deterministic linear trend (fraction per hour) — e.g. fluid
        evaporation slowly concentrating the buffer.
    sinusoid_amplitude:
        Amplitude of a slow thermal oscillation (fraction).
    sinusoid_period_s:
        Period of the thermal oscillation.
    random_walk_sigma_per_sqrt_s:
        Standard deviation growth rate of the integrated random walk.
    """

    linear_per_hour: float = 0.004
    sinusoid_amplitude: float = 0.0015
    sinusoid_period_s: float = 120.0
    random_walk_sigma_per_sqrt_s: float = 1e-4

    def __post_init__(self) -> None:
        check_positive("sinusoid_period_s", self.sinusoid_period_s)
        if self.sinusoid_amplitude < 0 or self.random_walk_sigma_per_sqrt_s < 0:
            raise ValueError("drift amplitudes must be non-negative")

    def generate(
        self,
        n_samples: int,
        sampling_rate_hz: float,
        rng: RngLike = None,
        phase: float = 0.0,
    ) -> np.ndarray:
        """Drift multiplier for ``n_samples`` at ``sampling_rate_hz``."""
        check_positive("sampling_rate_hz", sampling_rate_hz)
        if n_samples < 0:
            raise ValueError(f"n_samples must be >= 0, got {n_samples}")
        generator = ensure_rng(rng)
        t = np.arange(n_samples) / sampling_rate_hz
        drift = 1.0 + self.linear_per_hour * t / 3600.0
        drift += self.sinusoid_amplitude * np.sin(
            2.0 * np.pi * t / self.sinusoid_period_s + phase
        )
        if self.random_walk_sigma_per_sqrt_s > 0 and n_samples > 0:
            step_sigma = self.random_walk_sigma_per_sqrt_s / np.sqrt(sampling_rate_hz)
            walk = np.cumsum(generator.normal(0.0, step_sigma, size=n_samples))
            drift += walk
        return drift


@dataclass(frozen=True)
class NoiseModel:
    """Additive white measurement noise plus baseline drift.

    ``white_sigma`` is expressed as a fraction of the baseline (the
    paper's traces show dips of 0.3-1.5 % over noise of a few 0.01 %).
    """

    white_sigma: float = 1.5e-4
    drift: BaselineDriftModel = BaselineDriftModel()

    def __post_init__(self) -> None:
        if self.white_sigma < 0:
            raise ValueError("white_sigma must be non-negative")

    def apply(
        self,
        trace: np.ndarray,
        sampling_rate_hz: float,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Return ``trace`` with drift and noise applied.

        ``trace`` has shape ``(n_channels, n_samples)``; each channel
        gets an independent noise realisation but shares the drift (the
        drift is a property of the fluid, common to all carriers).
        """
        trace = np.asarray(trace, dtype=float)
        if trace.ndim != 2:
            raise ValueError(f"trace must be 2-D (channels, samples), got shape {trace.shape}")
        generator = ensure_rng(rng)
        n_channels, n_samples = trace.shape
        drift = self.drift.generate(n_samples, sampling_rate_hz, rng=generator)
        noisy = trace * drift[None, :]
        if self.white_sigma > 0:
            noisy = noisy + generator.normal(0.0, self.white_sigma, size=trace.shape)
        return noisy


#: Noise-free configuration, useful for exact unit tests.
QUIET = NoiseModel(
    white_sigma=0.0,
    drift=BaselineDriftModel(
        linear_per_hour=0.0,
        sinusoid_amplitude=0.0,
        random_walk_sigma_per_sqrt_s=0.0,
    ),
)
