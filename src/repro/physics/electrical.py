"""Series-RC model of a co-planar electrode pair (paper Figure 3).

The electrode-electrolyte interface forms a double-layer capacitance at
each electrode; the fluid (and any particle occluding it) contributes an
ionic resistance.  The paper's §III-A describes the two regimes:

* below ~10 kHz the double-layer capacitance dominates and the measured
  impedance is in the MΩ range;
* above ~100 kHz the capacitors are effectively short-circuited and the
  ionic resistance dominates — this is the useful operating band, since
  a particle changes the *resistance*.

:class:`ElectrodePairCircuit` exposes the complex impedance, the regime
classification, and the transduction efficiency (what fraction of a
relative resistance change survives into the measured current) at any
frequency.
"""

import enum
from dataclasses import dataclass

import numpy as np

from repro._util.validation import check_positive


class Regime(enum.Enum):
    """Which element dominates the pair impedance at a given frequency."""

    CAPACITIVE = "capacitive"
    TRANSITION = "transition"
    RESISTIVE = "resistive"


@dataclass(frozen=True)
class ElectrodePairCircuit:
    """Double-layer capacitance + solution resistance in series.

    Parameters
    ----------
    solution_resistance_ohm:
        Ionic resistance of the fluid between the electrodes.  Defaults
        to a typical PBS-filled 30x20 µm pore (~150 kΩ).
    double_layer_capacitance_f:
        Double-layer capacitance of *one* electrode; the pair contributes
        two such capacitors in series.
    """

    solution_resistance_ohm: float = 150e3
    double_layer_capacitance_f: float = 50e-12

    #: Regime boundaries: capacitive when |X_c| > ``dominance_ratio`` * R,
    #: resistive when |X_c| < R / ``dominance_ratio``.
    dominance_ratio: float = 3.0

    def __post_init__(self) -> None:
        check_positive("solution_resistance_ohm", self.solution_resistance_ohm)
        check_positive("double_layer_capacitance_f", self.double_layer_capacitance_f)
        check_positive("dominance_ratio", self.dominance_ratio)

    # ------------------------------------------------------------------
    def capacitive_reactance_ohm(self, frequency_hz) -> np.ndarray:
        """|X_c| of the two series double-layer capacitors at ``frequency_hz``."""
        f = np.asarray(frequency_hz, dtype=float)
        if np.any(f <= 0):
            raise ValueError("frequency_hz must be > 0")
        # Two capacitors C in series -> C/2 -> reactance 2 / (2 pi f C).
        return 2.0 / (2.0 * np.pi * f * self.double_layer_capacitance_f)

    def impedance(self, frequency_hz, relative_resistance_change: float = 0.0) -> np.ndarray:
        """Complex pair impedance, optionally with a particle present.

        ``relative_resistance_change`` is the fractional increase of the
        ionic resistance caused by a particle partially occluding the
        pore (``ParticleType.relative_drop`` provides it).
        """
        f = np.asarray(frequency_hz, dtype=float)
        resistance = self.solution_resistance_ohm * (1.0 + relative_resistance_change)
        return resistance - 1j * self.capacitive_reactance_ohm(f)

    def impedance_magnitude(self, frequency_hz, relative_resistance_change: float = 0.0):
        """|Z| at ``frequency_hz``."""
        return np.abs(self.impedance(frequency_hz, relative_resistance_change))

    # ------------------------------------------------------------------
    def regime(self, frequency_hz: float) -> Regime:
        """Classify which element dominates at ``frequency_hz``."""
        xc = float(self.capacitive_reactance_ohm(frequency_hz))
        r = self.solution_resistance_ohm
        if xc > self.dominance_ratio * r:
            return Regime.CAPACITIVE
        if xc < r / self.dominance_ratio:
            return Regime.RESISTIVE
        return Regime.TRANSITION

    def corner_frequency_hz(self) -> float:
        """Frequency where |X_c| equals the solution resistance."""
        return 2.0 / (2.0 * np.pi * self.solution_resistance_ohm * self.double_layer_capacitance_f)

    def minimum_resistive_frequency_hz(self) -> float:
        """Lowest frequency at which the pair is resistance-dominated."""
        return self.corner_frequency_hz() * self.dominance_ratio

    # ------------------------------------------------------------------
    def transduction_efficiency(self, frequency_hz) -> np.ndarray:
        """Fraction of a small relative resistance change visible in |Z|.

        For a series RC, d|Z|/|Z| = (R^2 / |Z|^2) * dR/R, so the
        efficiency is R^2 / (R^2 + X_c^2): ~1 deep in the resistive
        regime, ~0 in the capacitive regime.  This is why the paper
        operates above 100 kHz.
        """
        xc = self.capacitive_reactance_ohm(frequency_hz)
        r2 = self.solution_resistance_ohm**2
        return r2 / (r2 + xc**2)

    def measured_drop(self, frequency_hz, relative_resistance_change) -> np.ndarray:
        """Relative dip in lock-in output voltage for a particle.

        The lock-in measures current through the pair at fixed excitation
        voltage, so the measured relative drop equals the relative |Z|
        increase (small-signal): ``transduction_efficiency * dR/R``.
        """
        change = np.asarray(relative_resistance_change, dtype=float)
        return self.transduction_efficiency(frequency_hz) * change
