"""Impedance spectroscopy: sweeps and circuit-parameter fitting.

The paper's Figure 3 presents the electrode pair as a double-layer
capacitance in series with the fluid resistance, and §III-A picks the
operating band from the measured regimes.  A real deployment needs the
instrument-calibration counterpart: sweep the excitation frequency,
record |Z| (and phase), and fit R and C_dl so the operating band and
transduction model are grounded in measurement rather than assumed.

:func:`sweep_impedance` produces the (noisy) Bode data and
:func:`fit_circuit` recovers the circuit parameters with a
log-log least-squares fit — reproducing Figure 3's model from
synthetic measurements closes the loop on the §III-A analysis.
"""

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro._util.errors import ValidationError
from repro._util.rng import RngLike, ensure_rng
from repro._util.validation import check_in_range, check_positive
from repro.physics.electrical import ElectrodePairCircuit


@dataclass(frozen=True)
class ImpedanceSweep:
    """One recorded Bode sweep."""

    frequencies_hz: np.ndarray
    magnitude_ohm: np.ndarray
    phase_rad: np.ndarray

    def __post_init__(self) -> None:
        frequencies = np.asarray(self.frequencies_hz, dtype=float)
        magnitude = np.asarray(self.magnitude_ohm, dtype=float)
        phase = np.asarray(self.phase_rad, dtype=float)
        if frequencies.shape != magnitude.shape or frequencies.shape != phase.shape:
            raise ValidationError("sweep arrays must have matching shapes")
        object.__setattr__(self, "frequencies_hz", frequencies)
        object.__setattr__(self, "magnitude_ohm", magnitude)
        object.__setattr__(self, "phase_rad", phase)

    @property
    def n_points(self) -> int:
        """Number of sweep points."""
        return self.frequencies_hz.shape[0]


def sweep_impedance(
    circuit: ElectrodePairCircuit,
    f_min_hz: float = 100.0,
    f_max_hz: float = 10e6,
    n_points: int = 60,
    relative_noise: float = 0.01,
    rng: RngLike = None,
) -> ImpedanceSweep:
    """Measure |Z| and phase across a log-spaced frequency sweep."""
    check_positive("f_min_hz", f_min_hz)
    check_positive("f_max_hz", f_max_hz)
    if f_max_hz <= f_min_hz:
        raise ValidationError("f_max_hz must exceed f_min_hz")
    if n_points < 2:
        raise ValidationError("n_points must be >= 2")
    check_in_range("relative_noise", relative_noise, 0.0, 0.5)
    generator = ensure_rng(rng)
    frequencies = np.logspace(np.log10(f_min_hz), np.log10(f_max_hz), n_points)
    impedance = circuit.impedance(frequencies)
    magnitude = np.abs(impedance)
    phase = np.angle(impedance)
    if relative_noise > 0:
        magnitude = magnitude * (
            1.0 + generator.normal(0.0, relative_noise, size=n_points)
        )
        phase = phase + generator.normal(0.0, relative_noise * 0.1, size=n_points)
    return ImpedanceSweep(frequencies, magnitude, phase)


@dataclass(frozen=True)
class CircuitFit:
    """Fitted series-RC parameters and fit quality."""

    solution_resistance_ohm: float
    double_layer_capacitance_f: float
    relative_rms_error: float

    def as_circuit(self) -> ElectrodePairCircuit:
        """The fitted parameters as a circuit model."""
        return ElectrodePairCircuit(
            solution_resistance_ohm=self.solution_resistance_ohm,
            double_layer_capacitance_f=self.double_layer_capacitance_f,
        )


def fit_circuit(sweep: ImpedanceSweep) -> CircuitFit:
    """Recover R and C_dl from a Bode magnitude sweep.

    Least squares on log|Z|: the high-frequency plateau pins R, the
    low-frequency slope pins C.  Initial guesses come directly from the
    sweep endpoints, so the fit converges for any physical series-RC.
    """
    if sweep.n_points < 4:
        raise ValidationError("need at least 4 sweep points to fit")
    frequencies = sweep.frequencies_hz
    magnitude = sweep.magnitude_ohm
    if np.any(magnitude <= 0):
        raise ValidationError("sweep magnitudes must be positive")

    r_guess = float(magnitude[-1])
    # |Z|(f_min) ~ 2/(2 pi f C) when capacitive-dominated.
    c_guess = 2.0 / (2.0 * np.pi * frequencies[0] * magnitude[0])

    def model(log_params):
        """log|Z| of a series RC at the sweep frequencies."""
        r, c = np.exp(log_params)
        xc = 2.0 / (2.0 * np.pi * frequencies * c)
        return np.log(np.sqrt(r**2 + xc**2))

    target = np.log(magnitude)
    result = optimize.least_squares(
        lambda p: model(p) - target,
        x0=np.log([r_guess, c_guess]),
    )
    r_fit, c_fit = np.exp(result.x)
    residual = model(result.x) - target
    rms = float(np.sqrt(np.mean(residual**2)))
    return CircuitFit(
        solution_resistance_ohm=float(r_fit),
        double_layer_capacitance_f=float(c_fit),
        relative_rms_error=rms,
    )
