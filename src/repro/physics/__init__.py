"""Electrical physics of the impedance cytometer.

This package turns particle transits into sampled multi-carrier voltage
traces, reproducing the paper's measurement chain (Figure 3 + §VI-D):

* :mod:`~repro.physics.electrical` — the co-planar electrode pair as a
  series RC circuit (double-layer capacitance + solution resistance),
  with the capacitive-vs-resistive regime analysis of §III-A.
* :mod:`~repro.physics.peaks` — pulse events and Gaussian-dip waveform
  synthesis (each particle transit is a transient impedance increase,
  i.e. a voltage dip at the lock-in output, Figure 7).
* :mod:`~repro.physics.noise` — measurement noise and the slow baseline
  drift (fluid concentration / temperature) that §VI-C's detrending
  exists to remove.
* :mod:`~repro.physics.lockin` — the multi-carrier lock-in amplifier
  (HF2IS stand-in): excitation scaling, 120 Hz low-pass, 450 Hz output
  sampling.
"""

from repro.physics.electrical import ElectrodePairCircuit, Regime
from repro.physics.lockin import LockInAmplifier
from repro.physics.noise import BaselineDriftModel, NoiseModel
from repro.physics.peaks import PulseEvent, pulse_width_fwhm_s, synthesize_pulse_train
from repro.physics.spectroscopy import CircuitFit, ImpedanceSweep, fit_circuit, sweep_impedance

__all__ = [
    "ElectrodePairCircuit",
    "Regime",
    "LockInAmplifier",
    "BaselineDriftModel",
    "NoiseModel",
    "PulseEvent",
    "CircuitFit",
    "ImpedanceSweep",
    "fit_circuit",
    "sweep_impedance",
    "pulse_width_fwhm_s",
    "synthesize_pulse_train",
]
