"""Pulse events and waveform synthesis.

A particle crossing an active electrode gap produces a transient dip in
the lock-in output voltage (paper Figure 7).  We represent each dip as a
:class:`PulseEvent` — a centre time, a width set by the transit speed,
and a per-carrier amplitude vector — and synthesize sampled traces by
summing Gaussian dips on a unit baseline.

The Gaussian is the standard approximation for co-planar electrode
point-spread responses; the paper's ~20 ms dips at 0.08 µL/min emerge
from the transit-time geometry in :mod:`repro.microfluidics.flow`.
"""

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro._util.validation import check_positive

#: sigma -> FWHM conversion for a Gaussian.
_FWHM_PER_SIGMA = 2.0 * np.sqrt(2.0 * np.log(2.0))


@dataclass(frozen=True)
class PulseEvent:
    """One voltage dip caused by one particle at one electrode gap.

    Parameters
    ----------
    center_s:
        Time of the dip minimum.
    width_s:
        Full width at half maximum of the dip.
    amplitudes:
        Fractional dip depth per acquisition channel (carrier), e.g.
        0.003 for a 0.3 % dip.  Length = number of carriers.
    electrode_index:
        Which output electrode produced the dip (-1 if not applicable).
    particle_index:
        Index of the particle in the feed order (-1 if unknown).  Ground
        truth only — never visible to the untrusted analysis side.
    """

    center_s: float
    width_s: float
    amplitudes: np.ndarray
    electrode_index: int = -1
    particle_index: int = -1

    def __post_init__(self) -> None:
        check_positive("width_s", self.width_s)
        amplitudes = np.atleast_1d(np.asarray(self.amplitudes, dtype=float))
        if np.any(amplitudes < 0):
            raise ValueError("amplitudes must be non-negative")
        object.__setattr__(self, "amplitudes", amplitudes)

    @property
    def sigma_s(self) -> float:
        """Gaussian sigma corresponding to the FWHM."""
        return self.width_s / _FWHM_PER_SIGMA


def pulse_width_fwhm_s(transit_length_m: float, velocity_m_s: float) -> float:
    """Dip width from sensing-gap geometry and particle velocity.

    ``transit_length_m`` is the distance over which the particle
    modulates the gap (the paper quotes 45 µm: a 25 µm pitch plus two
    20 µm electrode halves); the dip FWHM is the time spent in it.
    """
    check_positive("transit_length_m", transit_length_m)
    check_positive("velocity_m_s", velocity_m_s)
    return transit_length_m / velocity_m_s


def synthesize_pulse_train(
    events: Sequence[PulseEvent],
    n_channels: int,
    sampling_rate_hz: float,
    duration_s: float,
    baseline: float = 1.0,
) -> np.ndarray:
    """Render events into a sampled multi-channel trace.

    Returns an array of shape ``(n_channels, n_samples)`` holding the
    *fractional* signal (unit baseline with dips); the lock-in applies
    excitation scaling and filtering afterwards.  Dips from overlapping
    events add, which is what merges adjacent-electrode responses the
    way the paper observes in Figure 11b.
    """
    check_positive("sampling_rate_hz", sampling_rate_hz)
    check_positive("duration_s", duration_s)
    if n_channels < 1:
        raise ValueError(f"n_channels must be >= 1, got {n_channels}")
    n_samples = int(round(duration_s * sampling_rate_hz))
    trace = np.full((n_channels, n_samples), float(baseline))
    if n_samples == 0:
        return trace
    times = np.arange(n_samples) / sampling_rate_hz
    for event in events:
        if event.amplitudes.shape[0] != n_channels:
            raise ValueError(
                f"event has {event.amplitudes.shape[0]} channel amplitudes, "
                f"trace has {n_channels} channels"
            )
        sigma = event.sigma_s
        # Only touch samples within 5 sigma of the centre.
        lo = int(np.searchsorted(times, event.center_s - 5.0 * sigma))
        hi = int(np.searchsorted(times, event.center_s + 5.0 * sigma))
        if hi <= lo:
            continue
        window = times[lo:hi]
        shape = np.exp(-0.5 * ((window - event.center_s) / sigma) ** 2)
        trace[:, lo:hi] -= baseline * event.amplitudes[:, None] * shape[None, :]
    return trace


def total_event_count(events: Iterable[PulseEvent]) -> int:
    """Number of dip events (the 'peak count' ground truth)."""
    return sum(1 for _ in events)


def events_per_particle(events: Iterable[PulseEvent]) -> dict:
    """Group events by originating particle (ground truth helper)."""
    groups: dict = {}
    for event in events:
        groups.setdefault(event.particle_index, []).append(event)
    for group in groups.values():
        group.sort(key=lambda e: e.center_s)
    return groups
