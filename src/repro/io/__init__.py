"""Capture file I/O: writing and reading the prototype's CSV format.

§VII-B: measurements are "captured in csv files".  This package makes
the library's captures durable: CSV (plus a JSON metadata sidecar) on
the way out, parsed :class:`~repro.hardware.acquisition.AcquiredTrace`
objects on the way back, with optional DEFLATE compression matching the
phone's zip step.
"""

from repro.io.capture_files import (
    CaptureMetadata,
    read_capture,
    write_capture,
)

__all__ = [
    "CaptureMetadata",
    "read_capture",
    "write_capture",
]
