"""Writing and reading capture files (CSV + JSON sidecar).

Layout on disk for a capture named ``run1``::

    run1.csv        timestamp,ch0,ch1,...   (or run1.csv.zz, DEFLATE)
    run1.meta.json  sampling rate, carriers, flags

The CSV body is exactly the phone's upload format
(:class:`repro.dsp.recording.CsvRecordingModel`), so measured sizes and
compression ratios carry over to the §VII-B accounting.
"""

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro._util.errors import ValidationError
from repro.dsp.recording import CsvRecordingModel
from repro.hardware.acquisition import AcquiredTrace

_COMPRESSED_SUFFIX = ".csv.zz"
_PLAIN_SUFFIX = ".csv"
_META_SUFFIX = ".meta.json"


@dataclass(frozen=True)
class CaptureMetadata:
    """Sidecar metadata of one stored capture."""

    sampling_rate_hz: float
    carrier_frequencies_hz: Tuple[float, ...]
    encrypted: bool
    compressed: bool

    def to_dict(self) -> dict:
        """JSON-safe dict form of the metadata."""
        return {
            "sampling_rate_hz": self.sampling_rate_hz,
            "carrier_frequencies_hz": list(self.carrier_frequencies_hz),
            "encrypted": self.encrypted,
            "compressed": self.compressed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CaptureMetadata":
        """Parse metadata, raising on missing fields."""
        try:
            return cls(
                sampling_rate_hz=float(payload["sampling_rate_hz"]),
                carrier_frequencies_hz=tuple(
                    float(f) for f in payload["carrier_frequencies_hz"]
                ),
                encrypted=bool(payload["encrypted"]),
                compressed=bool(payload["compressed"]),
            )
        except KeyError as missing:
            raise ValidationError(f"capture metadata missing {missing}") from None


def write_capture(
    directory: Union[str, Path],
    name: str,
    trace: AcquiredTrace,
    encrypted: bool = True,
    compress: bool = False,
    recording: Optional[CsvRecordingModel] = None,
) -> Path:
    """Write ``trace`` as ``<name>.csv[.zz]`` + sidecar; returns the data path."""
    if not name or "/" in name:
        raise ValidationError(f"invalid capture name {name!r}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    recording = recording or CsvRecordingModel()
    payload = recording.encode(trace.voltages, trace.sampling_rate_hz)
    if compress:
        data_path = directory / f"{name}{_COMPRESSED_SUFFIX}"
        data_path.write_bytes(zlib.compress(payload, 6))
    else:
        data_path = directory / f"{name}{_PLAIN_SUFFIX}"
        data_path.write_bytes(payload)
    metadata = CaptureMetadata(
        sampling_rate_hz=trace.sampling_rate_hz,
        carrier_frequencies_hz=trace.carrier_frequencies_hz,
        encrypted=encrypted,
        compressed=compress,
    )
    (directory / f"{name}{_META_SUFFIX}").write_text(
        json.dumps(metadata.to_dict(), indent=2)
    )
    return data_path


def read_capture(
    directory: Union[str, Path], name: str
) -> Tuple[AcquiredTrace, CaptureMetadata]:
    """Read a capture written by :func:`write_capture`."""
    directory = Path(directory)
    meta_path = directory / f"{name}{_META_SUFFIX}"
    if not meta_path.exists():
        raise ValidationError(f"no capture named {name!r} in {directory}")
    metadata = CaptureMetadata.from_dict(json.loads(meta_path.read_text()))

    if metadata.compressed:
        payload = zlib.decompress((directory / f"{name}{_COMPRESSED_SUFFIX}").read_bytes())
    else:
        payload = (directory / f"{name}{_PLAIN_SUFFIX}").read_bytes()

    rows = payload.decode("ascii").strip().split("\n")
    if not rows or rows == [""]:
        raise ValidationError(f"capture {name!r} is empty")
    parsed = np.array(
        [[float(cell) for cell in row.split(",")] for row in rows]
    )
    voltages = parsed[:, 1:].T  # drop the timestamp column
    if voltages.shape[0] != len(metadata.carrier_frequencies_hz):
        raise ValidationError(
            f"capture has {voltages.shape[0]} channels but metadata lists "
            f"{len(metadata.carrier_frequencies_hz)} carriers"
        )
    trace = AcquiredTrace(
        voltages=voltages,
        sampling_rate_hz=metadata.sampling_rate_hz,
        carrier_frequencies_hz=metadata.carrier_frequencies_hz,
    )
    return trace, metadata
