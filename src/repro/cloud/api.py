"""Phone-to-cloud message protocol.

The prototype ships captures and results as opaque payloads over the
phone's connection; this module gives those exchanges a typed,
serializable shape so the relay path can be tested message-by-message:

* :class:`AnalysisRequest` — a compressed capture upload;
* :class:`AnalysisResponse` — the ciphertext peak report coming back;
* :class:`StoreRequest` — filing a result under a cyto-coded
  identifier key.

Serialization is JSON (stdlib) — the payloads are small except the
capture itself, which travels as opaque bytes alongside the metadata.
Everything in these messages is ciphertext-domain by construction.
"""

import json
from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro._util.errors import ValidationError
from repro.dsp.peakdetect import DetectedPeak, PeakReport

PROTOCOL_VERSION = 1


def _require(payload: Dict, key: str):
    if not isinstance(payload, dict):
        raise ValidationError(
            f"message payload is {type(payload).__name__}, not an object"
        )
    if key not in payload:
        raise ValidationError(f"message missing required field {key!r}")
    return payload[key]


def _parse_json(text) -> Dict:
    """Decode untrusted JSON; the only failure mode is ValidationError."""
    try:
        payload = json.loads(text)
    except (json.JSONDecodeError, TypeError, UnicodeDecodeError) as error:
        raise ValidationError(f"message is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise ValidationError(
            f"message decodes to {type(payload).__name__}, not an object"
        )
    return payload


@dataclass(frozen=True)
class AnalysisRequest:
    """Upload metadata for one capture (the bytes travel separately)."""

    capture_id: str
    n_channels: int
    n_samples: int
    sampling_rate_hz: float
    compressed_bytes: int

    def __post_init__(self) -> None:
        if not self.capture_id:
            raise ValidationError("capture_id must be non-empty")
        if self.n_channels < 1 or self.n_samples < 0 or self.compressed_bytes < 0:
            raise ValidationError("invalid capture dimensions")

    def to_json(self) -> str:
        """Serialize this message to a JSON string."""
        return json.dumps(
            {
                "v": PROTOCOL_VERSION,
                "type": "analysis_request",
                "capture_id": self.capture_id,
                "n_channels": self.n_channels,
                "n_samples": self.n_samples,
                "sampling_rate_hz": self.sampling_rate_hz,
                "compressed_bytes": self.compressed_bytes,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "AnalysisRequest":
        """Parse a JSON analysis_request message.

        Raises :class:`ValidationError` on *any* malformed input —
        non-JSON bytes, wrong shapes, or unconvertible field values.
        """
        payload = _parse_json(text)
        if _require(payload, "type") != "analysis_request":
            raise ValidationError("not an analysis_request message")
        try:
            return cls(
                capture_id=_require(payload, "capture_id"),
                n_channels=int(_require(payload, "n_channels")),
                n_samples=int(_require(payload, "n_samples")),
                sampling_rate_hz=float(_require(payload, "sampling_rate_hz")),
                compressed_bytes=int(_require(payload, "compressed_bytes")),
            )
        except ValidationError:
            raise
        except (TypeError, ValueError, OverflowError) as error:
            raise ValidationError(f"invalid analysis_request fields: {error}") from error


def report_to_dict(report: PeakReport) -> Dict:
    """Ciphertext peak report as a JSON-safe dict."""
    return {
        "duration_s": report.duration_s,
        "sampling_rate_hz": report.sampling_rate_hz,
        "detection_channel": report.detection_channel,
        "peaks": [
            {
                "time_s": peak.time_s,
                "depth": peak.depth,
                "width_s": peak.width_s,
                "amplitudes": [float(a) for a in peak.amplitudes],
                "sample_index": peak.sample_index,
            }
            for peak in report.peaks
        ],
    }


def report_from_dict(payload: Dict) -> PeakReport:
    """Inverse of :func:`report_to_dict`.

    Raises :class:`ValidationError` when the dict does not decode to a
    structurally valid report.
    """
    try:
        peaks = tuple(
            DetectedPeak(
                time_s=float(_require(entry, "time_s")),
                depth=float(_require(entry, "depth")),
                width_s=float(_require(entry, "width_s")),
                amplitudes=np.asarray(_require(entry, "amplitudes"), dtype=float),
                sample_index=int(_require(entry, "sample_index")),
            )
            for entry in _require(payload, "peaks")
        )
        return PeakReport(
            peaks=peaks,
            duration_s=float(_require(payload, "duration_s")),
            sampling_rate_hz=float(_require(payload, "sampling_rate_hz")),
            detection_channel=int(_require(payload, "detection_channel")),
        )
    except ValidationError:
        raise
    except (TypeError, ValueError, OverflowError) as error:
        raise ValidationError(f"invalid peak report payload: {error}") from error


@dataclass(frozen=True)
class AnalysisResponse:
    """The cloud's answer: the encoded peak report."""

    capture_id: str
    report: PeakReport

    def __post_init__(self) -> None:
        if not self.capture_id:
            raise ValidationError("capture_id must be non-empty")

    def to_json(self) -> str:
        """Serialize this message to a JSON string."""
        return json.dumps(
            {
                "v": PROTOCOL_VERSION,
                "type": "analysis_response",
                "capture_id": self.capture_id,
                "report": report_to_dict(self.report),
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "AnalysisResponse":
        """Parse a JSON analysis_response message (ValidationError only)."""
        payload = _parse_json(text)
        if _require(payload, "type") != "analysis_response":
            raise ValidationError("not an analysis_response message")
        try:
            return cls(
                capture_id=_require(payload, "capture_id"),
                report=report_from_dict(_require(payload, "report")),
            )
        except ValidationError:
            raise
        except (TypeError, ValueError) as error:
            raise ValidationError(f"invalid analysis_response fields: {error}") from error


@dataclass(frozen=True)
class StoreRequest:
    """File an analysed result under a cyto-coded identifier key."""

    identifier_key: str
    capture_id: str
    metadata: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if not self.identifier_key or not self.capture_id:
            raise ValidationError("identifier_key and capture_id must be non-empty")

    def to_json(self) -> str:
        """Serialize this message to a JSON string."""
        return json.dumps(
            {
                "v": PROTOCOL_VERSION,
                "type": "store_request",
                "identifier_key": self.identifier_key,
                "capture_id": self.capture_id,
                "metadata": dict(self.metadata),
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "StoreRequest":
        """Parse a JSON store_request message (ValidationError only)."""
        payload = _parse_json(text)
        if _require(payload, "type") != "store_request":
            raise ValidationError("not a store_request message")
        try:
            return cls(
                identifier_key=_require(payload, "identifier_key"),
                capture_id=_require(payload, "capture_id"),
                metadata=tuple(sorted(dict(_require(payload, "metadata")).items())),
            )
        except ValidationError:
            raise
        except (TypeError, ValueError) as error:
            raise ValidationError(f"invalid store_request fields: {error}") from error
