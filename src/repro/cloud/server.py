"""Cloud analysis server (paper §VI-C).

The server performs the heavyweight signal processing on encrypted
traces: detrend, threshold, and return the encoded peak report.  It is
*outside* the trusted computing base: it never receives key material,
and — being curious — it keeps a log of every trace and report it
handled, which the attack benchmarks mine.

Analysis timing flows through the observability layer: each job runs
inside a ``cloud_analysis`` span whose duration backs the
``processing_time_s`` accounting (real even with the default no-op
observer, which measures but records nothing).
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dsp.peakdetect import PeakDetector, PeakReport
from repro.hardware.acquisition import AcquiredTrace
from repro.obs import NULL_OBSERVER, PEAKS_REPORTED


@dataclass(frozen=True)
class AnalysisJob:
    """One completed analysis: what the curious server remembers."""

    trace: AcquiredTrace
    report: PeakReport
    processing_time_s: float


class AnalysisServer:
    """Untrusted peak-analysis service.

    Parameters
    ----------
    detector:
        The peak detection pipeline to run; defaults to the paper's
        detrend-and-threshold configuration.
    keep_history:
        Whether to retain analysed traces (the curious-but-honest
        behaviour).  Disable for long benchmark runs to bound memory.
    observer:
        Observability sink for spans / metrics / audit events; the
        default records nothing.
    """

    def __init__(
        self,
        detector: Optional[PeakDetector] = None,
        keep_history: bool = True,
        observer=NULL_OBSERVER,
    ) -> None:
        self.detector = detector or PeakDetector()
        self.keep_history = keep_history
        self.observer = observer
        self._history: List[AnalysisJob] = []
        self._jobs_processed = 0
        self._total_processing_time_s = 0.0

    # ------------------------------------------------------------------
    def analyze(self, trace: AcquiredTrace) -> PeakReport:
        """Run peak analysis on an encrypted trace.

        Returns only ciphertext-domain facts (peak count, timestamps,
        amplitudes, widths); the server cannot do better without the
        key — that is the point of the cipher.
        """
        with self.observer.span(
            "cloud_analysis", samples=trace.n_samples, channels=trace.n_channels
        ) as span:
            report = self.detector.detect(trace.voltages, trace.sampling_rate_hz)
        self._account(trace, report, span.duration_s, streaming=False)
        return report

    def analyze_streaming(
        self, trace: AcquiredTrace, chunk_s: float = 20.0, window_s: float = 30.0
    ) -> PeakReport:
        """Analyse a long capture in streaming chunks.

        Functionally equivalent to :meth:`analyze` (same detector, same
        peaks) but bounded-memory: the §VII-B multi-hour captures never
        need to be resident at once.  Accounting (history, timing)
        matches the batch path.
        """
        from repro.dsp.streaming import StreamingPeakDetector

        with self.observer.span(
            "cloud_analysis", samples=trace.n_samples, channels=trace.n_channels,
            mode="streaming",
        ) as span:
            streaming = StreamingPeakDetector(
                trace.sampling_rate_hz,
                detector=self.detector,
                window_s=window_s,
                observer=self.observer,
            )
            chunk = max(int(chunk_s * trace.sampling_rate_hz), 1)
            for offset in range(0, trace.n_samples, chunk):
                streaming.feed(trace.voltages[:, offset : offset + chunk])
            report = streaming.finish()
        self._account(trace, report, span.duration_s, streaming=True)
        return report

    # ------------------------------------------------------------------
    def _account(
        self, trace: AcquiredTrace, report: PeakReport, elapsed: float, streaming: bool
    ) -> None:
        self._jobs_processed += 1
        self._total_processing_time_s += elapsed
        self.observer.incr("cloud.jobs")
        self.observer.incr("cloud.peaks_reported", report.count)
        self.observer.observe("cloud.analysis_s", elapsed)
        self.observer.event(
            PEAKS_REPORTED,
            peaks=report.count,
            duration_s=report.duration_s,
            streaming=streaming,
        )
        if self.keep_history:
            self._history.append(
                AnalysisJob(trace=trace, report=report, processing_time_s=elapsed)
            )

    # ------------------------------------------------------------------
    @property
    def jobs_processed(self) -> int:
        """Number of analyses performed."""
        return self._jobs_processed

    @property
    def total_processing_time_s(self) -> float:
        """Cumulative wall-clock analysis time."""
        return self._total_processing_time_s

    @property
    def history(self) -> Tuple[AnalysisJob, ...]:
        """Everything the curious server has seen."""
        return tuple(self._history)

    def last_job(self) -> AnalysisJob:
        """Most recent analysis (raises if none or history disabled)."""
        if not self._history:
            raise LookupError("no analysis history available")
        return self._history[-1]
