"""Cloud analysis server (paper §VI-C).

The server performs the heavyweight signal processing on encrypted
traces: detrend, threshold, and return the encoded peak report.  It is
*outside* the trusted computing base: it never receives key material,
and — being curious — it keeps a log of every trace and report it
handled, which the attack benchmarks mine.  Under sustained load that
log is bounded: at most ``max_history`` recent jobs are retained and
evictions are counted (``cloud.history_dropped``), so a long-running
deployment cannot grow without limit.

The server is thread-safe: the fleet scheduler's workers share one
instance, and accounting happens under a lock.  ``analyze_batch``
processes several traces in one vectorised detrend+threshold pass —
the serving stack's dynamic batcher coalesces queued traces into such
batches — and is numerically identical to per-trace :meth:`analyze`.

Analysis timing flows through the observability layer: each job runs
inside a ``cloud_analysis`` span whose duration backs the
``processing_time_s`` accounting (real even with the default no-op
observer, which measures but records nothing).
"""

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

from repro._util.errors import ConfigurationError, MalformedPayloadError
from repro.dsp.peakdetect import PeakDetector, PeakReport
from repro.guard.admission import DEFAULT_TRACE_POLICY, TraceAdmissionPolicy, admit_trace
from repro.guard.freshness import FreshnessGuard, FreshnessToken
from repro.hardware.acquisition import AcquiredTrace
from repro.obs import GUARD_REJECTED, NULL_OBSERVER, PEAKS_REPORTED


@dataclass(frozen=True)
class AnalysisJob:
    """One completed analysis: what the curious server remembers."""

    trace: AcquiredTrace
    report: PeakReport
    processing_time_s: float


class AnalysisServer:
    """Untrusted peak-analysis service.

    Parameters
    ----------
    detector:
        The peak detection pipeline to run; defaults to the paper's
        detrend-and-threshold configuration.
    keep_history:
        Whether to retain analysed traces (the curious-but-honest
        behaviour).  Disable for long benchmark runs to bound memory.
    max_history:
        Cap on retained jobs; the oldest are evicted once the log is
        full and the eviction count is exposed as ``history_dropped``
        (and the ``cloud.history_dropped`` counter).
    observer:
        Observability sink for spans / metrics / audit events; the
        default records nothing.
    dedup_capacity:
        How many recent request ids to remember for idempotent ingest;
        a re-delivered request id within this window returns the cached
        report instead of re-running (and re-logging) the job.
    admission:
        Trace admission policy (:mod:`repro.guard.admission`), applied
        to every inbound trace before any processing.  The default is
        generous enough to admit all honest traffic; pass ``None`` to
        disable admission entirely (pre-guard behaviour).
    freshness:
        Optional :class:`~repro.guard.freshness.FreshnessGuard`.  When
        set, :meth:`analyze` demands an authenticated freshness token
        with every exchange and refuses replays and stale epochs — this
        is *authenticated* anti-replay, independent of the honest
        ``request_id`` dedup above it.
    transit_secret:
        Optional shared secret enabling :meth:`analyze_sealed`, which
        returns the report inside a tamper-evident HMAC envelope.
    """

    def __init__(
        self,
        detector: Optional[PeakDetector] = None,
        keep_history: bool = True,
        max_history: int = 4096,
        observer=NULL_OBSERVER,
        dedup_capacity: int = 4096,
        admission: Optional[TraceAdmissionPolicy] = DEFAULT_TRACE_POLICY,
        freshness: Optional[FreshnessGuard] = None,
        transit_secret: Optional[bytes] = None,
    ) -> None:
        if max_history < 1:
            raise ConfigurationError("max_history must be >= 1")
        if dedup_capacity < 1:
            raise ConfigurationError("dedup_capacity must be >= 1")
        self.detector = detector or PeakDetector()
        self.keep_history = keep_history
        self.max_history = max_history
        self.observer = observer
        self.dedup_capacity = dedup_capacity
        self.admission = admission
        self.freshness = freshness
        self.transit_secret = transit_secret
        self._history: Deque[AnalysisJob] = deque(maxlen=max_history)
        self._history_dropped = 0
        self._jobs_processed = 0
        self._total_processing_time_s = 0.0
        self._seen_requests: "OrderedDict[str, PeakReport]" = OrderedDict()
        self._duplicates_dropped = 0
        self._dedup_evicted = 0
        self._lock = threading.Lock()
        self._thread = threading.local()

    # ------------------------------------------------------------------
    def admit_ingress(
        self,
        trace: AcquiredTrace,
        freshness_token: Optional[bytes] = None,
        boundary: str = "ingest",
    ) -> Optional[FreshnessToken]:
        """Run the full trust-boundary check for one inbound exchange.

        Admission (shape/size/finiteness) first, then — when this
        server carries a :class:`FreshnessGuard` — authenticated
        freshness: a missing, forged, replayed, or stale-epoch token
        refuses the exchange with a typed
        :class:`~repro._util.errors.AdmissionError` *before* any
        analysis or dedup lookup, so an attacker rewriting
        ``request_id`` gains nothing.
        """
        if self.admission is not None:
            admit_trace(
                trace, self.admission, observer=self.observer, boundary=boundary
            )
        if self.freshness is None:
            return None
        if freshness_token is None:
            self.observer.incr("guard.rejected")
            self.observer.event(
                GUARD_REJECTED, boundary=boundary, reason="missing_token"
            )
            raise MalformedPayloadError(
                f"[{boundary}] this server requires a freshness token"
            )
        return self.freshness.admit(
            freshness_token, observer=self.observer, boundary=boundary
        )

    def analyze(
        self,
        trace: AcquiredTrace,
        request_id: Optional[str] = None,
        freshness_token: Optional[bytes] = None,
    ) -> PeakReport:
        """Run peak analysis on an encrypted trace.

        Returns only ciphertext-domain facts (peak count, timestamps,
        amplitudes, widths); the server cannot do better without the
        key — that is the point of the cipher.

        Pass a ``request_id`` to make ingest **idempotent**: a network
        duplicate re-delivering the same id gets the cached report back
        and is *not* re-analysed, re-billed, or re-logged (the
        ``serve.duplicates_dropped`` counter records the drop).  With
        no id (the default), every call is a fresh job — preserving the
        curious-server behaviour the attack suite mines.

        When the server carries a freshness guard, ``freshness_token``
        is mandatory and is consumed *before* the dedup lookup (see
        :meth:`admit_ingress`).
        """
        admitted = self.admit_ingress(trace, freshness_token, boundary="ingest")
        self._thread.last_span_context = None
        if request_id is not None:
            cached = self._check_duplicate(request_id)
            if cached is not None:
                return cached
        # An MSF2 token carries the caller's trace context inside its
        # authenticated body; adopting it as remote parent stitches the
        # cloud span into the device/phone trace.
        remote = admitted.context if admitted is not None else None
        with self.observer.span(
            "cloud_analysis",
            remote_parent=remote,
            service="cloud",
            samples=trace.n_samples,
            channels=trace.n_channels,
        ) as span:
            report = self.detector.detect(trace.voltages, trace.sampling_rate_hz)
        self._thread.last_span_context = span.context()
        self._account(trace, report, span.duration_s, streaming=False)
        if request_id is not None:
            self._remember_request(request_id, report)
        return report

    def _check_duplicate(self, request_id: str) -> Optional[PeakReport]:
        with self._lock:
            cached = self._seen_requests.get(request_id)
            if cached is None:
                return None
            # True LRU: a hit refreshes the entry, so a request id that
            # keeps being retried is not evicted by colder traffic.
            self._seen_requests.move_to_end(request_id)
            self._duplicates_dropped += 1
        self.observer.incr("serve.duplicates_dropped")
        return cached

    def _remember_request(self, request_id: str, report: PeakReport) -> None:
        evicted = 0
        with self._lock:
            self._seen_requests[request_id] = report
            self._seen_requests.move_to_end(request_id)
            while len(self._seen_requests) > self.dedup_capacity:
                self._seen_requests.popitem(last=False)
                evicted += 1
                self._dedup_evicted += 1
        for _ in range(evicted):
            self.observer.incr("dedup.evicted")

    def analyze_sealed(
        self,
        trace: AcquiredTrace,
        request_id: Optional[str] = None,
        freshness_token: Optional[bytes] = None,
    ) -> bytes:
        """Like :meth:`analyze`, but the report returns sealed.

        The report travels as a tamper-evident HMAC envelope
        (:mod:`repro.guard.envelope`) under the server's
        ``transit_secret``; the phone verifies it before anything
        reaches the TCB.  Requires ``transit_secret``.
        """
        from repro.guard.envelope import seal_report

        if self.transit_secret is None:
            raise ConfigurationError(
                "analyze_sealed requires a transit_secret; none configured"
            )
        report = self.analyze(
            trace, request_id=request_id, freshness_token=freshness_token
        )
        key_epoch = self.freshness.key_epoch if self.freshness is not None else 0
        # The response envelope carries the cloud span's context (MSE2)
        # so the phone can link its receive to the server-side work.
        return seal_report(
            report,
            self.transit_secret,
            key_epoch=key_epoch,
            trace_context=getattr(self._thread, "last_span_context", None),
        )

    def analyze_batch(self, traces: Sequence[AcquiredTrace]) -> List[PeakReport]:
        """Analyse several traces in one fused columnar pass.

        Same-shape traces are stacked into a columnar
        :class:`~repro.dsp.fused.TraceBatch` and carried through
        detrend → invert → threshold → measure in one pass
        (:meth:`PeakDetector.detect_batch`), amortising the window
        bookkeeping across the whole batch; reports are bit-identical
        to calling :meth:`analyze` per trace.  Per-job accounting
        divides the batch's wall-clock evenly — the batch is the unit
        of work, so each rider's share is the amortised cost.
        """
        if not traces:
            return []
        if self.admission is not None:
            for trace in traces:
                admit_trace(
                    trace, self.admission, observer=self.observer, boundary="batch"
                )
        with self.observer.span(
            "cloud_analysis_batch", batch_size=len(traces)
        ) as span:
            reports = self.detector.detect_batch(
                [trace.voltages for trace in traces],
                [trace.sampling_rate_hz for trace in traces],
            )
        share = span.duration_s / len(traces)
        for trace, report in zip(traces, reports):
            self._account(trace, report, share, streaming=False)
        self.observer.observe("cloud.batch_size", len(traces))
        return reports

    def analyze_streaming(
        self, trace: AcquiredTrace, chunk_s: float = 20.0, window_s: float = 30.0
    ) -> PeakReport:
        """Analyse a long capture in streaming chunks.

        Functionally equivalent to :meth:`analyze` (same detector, same
        peaks) but bounded-memory: the §VII-B multi-hour captures never
        need to be resident at once.  Accounting (history, timing)
        matches the batch path.
        """
        from repro.dsp.streaming import StreamingPeakDetector

        if self.admission is not None:
            admit_trace(
                trace, self.admission, observer=self.observer, boundary="ingest"
            )
        with self.observer.span(
            "cloud_analysis", samples=trace.n_samples, channels=trace.n_channels,
            mode="streaming",
        ) as span:
            streaming = StreamingPeakDetector(
                trace.sampling_rate_hz,
                detector=self.detector,
                window_s=window_s,
                observer=self.observer,
            )
            chunk = max(int(chunk_s * trace.sampling_rate_hz), 1)
            for offset in range(0, trace.n_samples, chunk):
                streaming.feed(trace.voltages[:, offset : offset + chunk])
            report = streaming.finish()
        self._account(trace, report, span.duration_s, streaming=True)
        return report

    # ------------------------------------------------------------------
    def _account(
        self, trace: AcquiredTrace, report: PeakReport, elapsed: float, streaming: bool
    ) -> None:
        with self._lock:
            self._jobs_processed += 1
            self._total_processing_time_s += elapsed
            if self.keep_history:
                if len(self._history) == self._history.maxlen:
                    self._history_dropped += 1
                    self.observer.incr("cloud.history_dropped")
                self._history.append(
                    AnalysisJob(trace=trace, report=report, processing_time_s=elapsed)
                )
        self._thread.last_elapsed_s = elapsed
        self.observer.incr("cloud.jobs")
        self.observer.incr("cloud.peaks_reported", report.count)
        self.observer.observe("cloud.analysis_s", elapsed)
        self.observer.event(
            PEAKS_REPORTED,
            peaks=report.count,
            duration_s=report.duration_s,
            streaming=streaming,
        )

    # ------------------------------------------------------------------
    @property
    def jobs_processed(self) -> int:
        """Number of analyses performed."""
        return self._jobs_processed

    @property
    def total_processing_time_s(self) -> float:
        """Cumulative wall-clock analysis time."""
        return self._total_processing_time_s

    @property
    def history(self) -> Tuple[AnalysisJob, ...]:
        """Everything the curious server still retains (oldest first)."""
        with self._lock:
            return tuple(self._history)

    @property
    def history_dropped(self) -> int:
        """Jobs evicted from the bounded history so far."""
        return self._history_dropped

    @property
    def duplicates_dropped(self) -> int:
        """Re-delivered request ids answered from the dedup cache."""
        return self._duplicates_dropped

    @property
    def dedup_evicted(self) -> int:
        """Entries pushed out of the LRU-bounded dedup cache so far."""
        return self._dedup_evicted

    @property
    def last_processing_time_s(self) -> Optional[float]:
        """Processing time of the calling thread's most recent job.

        Thread-local, so concurrent relays each read the time of *their
        own* analysis rather than whichever job finished last globally.
        ``None`` before this thread has completed a job.
        """
        return getattr(self._thread, "last_elapsed_s", None)

    def last_job(self) -> AnalysisJob:
        """Most recent analysis (raises if none or history disabled)."""
        with self._lock:
            if not self._history:
                raise LookupError("no analysis history available")
            return self._history[-1]
