"""Cloud analysis server (paper §VI-C).

The server performs the heavyweight signal processing on encrypted
traces: detrend, threshold, and return the encoded peak report.  It is
*outside* the trusted computing base: it never receives key material,
and — being curious — it keeps a log of every trace and report it
handled, which the attack benchmarks mine.
"""

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dsp.peakdetect import PeakDetector, PeakReport
from repro.hardware.acquisition import AcquiredTrace


@dataclass(frozen=True)
class AnalysisJob:
    """One completed analysis: what the curious server remembers."""

    trace: AcquiredTrace
    report: PeakReport
    processing_time_s: float


class AnalysisServer:
    """Untrusted peak-analysis service.

    Parameters
    ----------
    detector:
        The peak detection pipeline to run; defaults to the paper's
        detrend-and-threshold configuration.
    keep_history:
        Whether to retain analysed traces (the curious-but-honest
        behaviour).  Disable for long benchmark runs to bound memory.
    """

    def __init__(
        self,
        detector: Optional[PeakDetector] = None,
        keep_history: bool = True,
    ) -> None:
        self.detector = detector or PeakDetector()
        self.keep_history = keep_history
        self._history: List[AnalysisJob] = []
        self._jobs_processed = 0
        self._total_processing_time_s = 0.0

    # ------------------------------------------------------------------
    def analyze(self, trace: AcquiredTrace) -> PeakReport:
        """Run peak analysis on an encrypted trace.

        Returns only ciphertext-domain facts (peak count, timestamps,
        amplitudes, widths); the server cannot do better without the
        key — that is the point of the cipher.
        """
        start = time.perf_counter()
        report = self.detector.detect(trace.voltages, trace.sampling_rate_hz)
        elapsed = time.perf_counter() - start
        self._jobs_processed += 1
        self._total_processing_time_s += elapsed
        if self.keep_history:
            self._history.append(
                AnalysisJob(trace=trace, report=report, processing_time_s=elapsed)
            )
        return report

    def analyze_streaming(
        self, trace: AcquiredTrace, chunk_s: float = 20.0, window_s: float = 30.0
    ) -> PeakReport:
        """Analyse a long capture in streaming chunks.

        Functionally equivalent to :meth:`analyze` (same detector, same
        peaks) but bounded-memory: the §VII-B multi-hour captures never
        need to be resident at once.  Accounting (history, timing)
        matches the batch path.
        """
        from repro.dsp.streaming import StreamingPeakDetector

        start = time.perf_counter()
        streaming = StreamingPeakDetector(
            trace.sampling_rate_hz, detector=self.detector, window_s=window_s
        )
        chunk = max(int(chunk_s * trace.sampling_rate_hz), 1)
        for offset in range(0, trace.n_samples, chunk):
            streaming.feed(trace.voltages[:, offset : offset + chunk])
        report = streaming.finish()
        elapsed = time.perf_counter() - start
        self._jobs_processed += 1
        self._total_processing_time_s += elapsed
        if self.keep_history:
            self._history.append(
                AnalysisJob(trace=trace, report=report, processing_time_s=elapsed)
            )
        return report

    # ------------------------------------------------------------------
    @property
    def jobs_processed(self) -> int:
        """Number of analyses performed."""
        return self._jobs_processed

    @property
    def total_processing_time_s(self) -> float:
        """Cumulative wall-clock analysis time."""
        return self._total_processing_time_s

    @property
    def history(self) -> Tuple[AnalysisJob, ...]:
        """Everything the curious server has seen."""
        return tuple(self._history)

    def last_job(self) -> AnalysisJob:
        """Most recent analysis (raises if none or history disabled)."""
        if not self._history:
            raise LookupError("no analysis history available")
        return self._history[-1]
