"""Network transfer model (paper §VI-D / §VII-B).

The prototype uploads compressed captures over the phone's 4G
connection; §VII-B motivates zip compression with "a more adaptable
solution to smartphone data plans".  The model is a classic
latency+bandwidth pipe with separate up/down rates, enough to account
for the transfer share of the ~0.2 s end-to-end budget and the 3-hour
240 MB upload.

Real clinic uplinks are not lossless: :class:`UnreliableNetworkModel`
decorates the pipe with the three failure modes a mobile relay
actually sees — the exchange is *dropped*, it *times out*, or the
payload is *delivered twice* (radio-layer retransmission after a lost
ACK).  Outcomes are drawn from an injected RNG, so a serving run's
failure pattern is a pure function of its seed; the retry/backoff
policy that copes with them lives in :mod:`repro.serving.retry`.
"""

from dataclasses import dataclass, field

from repro._util.errors import MedSenError
from repro._util.rng import RngLike, ensure_rng
from repro._util.validation import check_in_range, check_positive
from repro.obs import NULL_OBSERVER


class TransferError(MedSenError):
    """A cloud exchange failed at the network layer."""


class TransferDropped(TransferError):
    """The exchange was lost in flight (no response will ever come)."""


class TransferTimeout(TransferError):
    """No response within the attempt's timeout budget.

    Carries the time the caller burned waiting, so retry layers can
    charge it against the request deadline.
    """

    def __init__(self, message: str, waited_s: float = 0.0) -> None:
        super().__init__(message)
        self.waited_s = waited_s


@dataclass(frozen=True)
class TransferEstimate:
    """Breakdown of one transfer."""

    payload_bytes: float
    latency_s: float
    transmission_s: float

    @property
    def total_s(self) -> float:
        """Latency plus transmission time."""
        return self.latency_s + self.transmission_s


@dataclass(frozen=True)
class NetworkModel:
    """Latency + bandwidth model of the phone's uplink.

    Defaults approximate a 2015-era 4G connection (the paper's LG
    Nexus 5): ~50 ms RTT, ~8 Mbit/s up, ~20 Mbit/s down.
    """

    round_trip_latency_s: float = 0.05
    uplink_bytes_per_s: float = 1e6
    downlink_bytes_per_s: float = 2.5e6

    def __post_init__(self) -> None:
        check_positive("round_trip_latency_s", self.round_trip_latency_s, allow_zero=True)
        check_positive("uplink_bytes_per_s", self.uplink_bytes_per_s)
        check_positive("downlink_bytes_per_s", self.downlink_bytes_per_s)

    def upload(self, payload_bytes: float, observer=NULL_OBSERVER) -> TransferEstimate:
        """Time to push ``payload_bytes`` to the cloud."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be >= 0")
        estimate = TransferEstimate(
            payload_bytes=payload_bytes,
            latency_s=self.round_trip_latency_s / 2.0,
            transmission_s=payload_bytes / self.uplink_bytes_per_s,
        )
        observer.incr("network.uploaded_bytes", payload_bytes)
        observer.observe("network.upload_s", estimate.total_s)
        return estimate

    def download(self, payload_bytes: float, observer=NULL_OBSERVER) -> TransferEstimate:
        """Time to pull ``payload_bytes`` from the cloud."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be >= 0")
        estimate = TransferEstimate(
            payload_bytes=payload_bytes,
            latency_s=self.round_trip_latency_s / 2.0,
            transmission_s=payload_bytes / self.downlink_bytes_per_s,
        )
        observer.incr("network.downloaded_bytes", payload_bytes)
        observer.observe("network.download_s", estimate.total_s)
        return estimate

    def round_trip(
        self, upload_bytes: float, download_bytes: float, observer=NULL_OBSERVER
    ) -> float:
        """Total time for a request/response exchange."""
        return (
            self.upload(upload_bytes, observer=observer).total_s
            + self.download(download_bytes, observer=observer).total_s
        )


# ---------------------------------------------------------------------------
# Failure modes
# ---------------------------------------------------------------------------

#: Delivery outcomes of one :meth:`UnreliableNetworkModel.attempt`.
DELIVERED = "delivered"
DROPPED = "dropped"
TIMED_OUT = "timed_out"
DUPLICATED = "duplicated"


@dataclass(frozen=True)
class DeliveryAttempt:
    """What one attempted exchange did.

    ``n_deliveries`` is how many copies of the payload reached the
    server (2 models a radio-layer retransmission after a lost ACK);
    ``elapsed_s`` is the wall-clock the sender spent on the attempt,
    whether it succeeded or burned its timeout budget.
    """

    outcome: str
    elapsed_s: float
    n_deliveries: int = 1


@dataclass
class UnreliableNetworkModel:
    """A lossy wrapper over the latency+bandwidth pipe.

    Each :meth:`attempt` draws one outcome from the injected RNG:

    * **delivered** — the exchange completes in the modelled round-trip
      time (``n_deliveries = 1``);
    * **duplicated** — delivered, but the payload arrives twice; the
      receiver must deduplicate or tolerate the double-count;
    * **dropped** — the uplink loses the request; the sender learns of
      it quickly (one RTT of silence) and :class:`TransferDropped` is
      raised;
    * **timed out** — the request vanishes without diagnosis; the
      sender waits its full ``timeout_s`` budget before
      :class:`TransferTimeout` is raised.

    Probabilities are per-attempt and must sum to at most 1; the
    remainder is the delivery probability (duplicates count as
    deliveries).  All draws come from the ``rng`` handed to
    :meth:`attempt`, keeping fleet runs reproducible per request.
    """

    base: NetworkModel = field(default_factory=NetworkModel)
    drop_probability: float = 0.0
    timeout_probability: float = 0.0
    duplicate_probability: float = 0.0
    timeout_s: float = 2.0

    def __post_init__(self) -> None:
        for name in ("drop_probability", "timeout_probability", "duplicate_probability"):
            check_in_range(name, getattr(self, name), 0.0, 1.0)
        check_positive("timeout_s", self.timeout_s)
        total = self.drop_probability + self.timeout_probability + self.duplicate_probability
        if total > 1.0:
            raise ValueError(
                f"failure probabilities sum to {total}; must be <= 1"
            )

    @property
    def is_reliable(self) -> bool:
        """True when no failure mode is enabled."""
        return (
            self.drop_probability == 0.0
            and self.timeout_probability == 0.0
            and self.duplicate_probability == 0.0
        )

    def attempt(
        self,
        upload_bytes: float,
        download_bytes: float,
        rng: RngLike = None,
        observer=NULL_OBSERVER,
    ) -> DeliveryAttempt:
        """Try one request/response exchange over the lossy link.

        Returns a :class:`DeliveryAttempt` on (possibly duplicated)
        delivery; raises :class:`TransferDropped` / :class:`TransferTimeout`
        otherwise.  The modelled time of the failed attempt rides on the
        exception so retry layers can charge it to the deadline.
        """
        roll = float(ensure_rng(rng).random())
        if roll < self.drop_probability:
            elapsed = self.base.round_trip_latency_s
            observer.incr("network.dropped")
            raise TransferDropped(
                f"exchange dropped after {elapsed:.3f} s of silence"
            )
        if roll < self.drop_probability + self.timeout_probability:
            observer.incr("network.timeouts")
            raise TransferTimeout(
                f"no response within {self.timeout_s:.3f} s",
                waited_s=self.timeout_s,
            )
        elapsed = self.base.round_trip(upload_bytes, download_bytes, observer=observer)
        duplicated = roll < (
            self.drop_probability + self.timeout_probability + self.duplicate_probability
        )
        if duplicated:
            observer.incr("network.duplicates")
            return DeliveryAttempt(outcome=DUPLICATED, elapsed_s=elapsed, n_deliveries=2)
        return DeliveryAttempt(outcome=DELIVERED, elapsed_s=elapsed, n_deliveries=1)
