"""Network transfer model (paper §VI-D / §VII-B).

The prototype uploads compressed captures over the phone's 4G
connection; §VII-B motivates zip compression with "a more adaptable
solution to smartphone data plans".  The model is a classic
latency+bandwidth pipe with separate up/down rates, enough to account
for the transfer share of the ~0.2 s end-to-end budget and the 3-hour
240 MB upload.
"""

from dataclasses import dataclass

from repro._util.validation import check_positive
from repro.obs import NULL_OBSERVER


@dataclass(frozen=True)
class TransferEstimate:
    """Breakdown of one transfer."""

    payload_bytes: float
    latency_s: float
    transmission_s: float

    @property
    def total_s(self) -> float:
        """Latency plus transmission time."""
        return self.latency_s + self.transmission_s


@dataclass(frozen=True)
class NetworkModel:
    """Latency + bandwidth model of the phone's uplink.

    Defaults approximate a 2015-era 4G connection (the paper's LG
    Nexus 5): ~50 ms RTT, ~8 Mbit/s up, ~20 Mbit/s down.
    """

    round_trip_latency_s: float = 0.05
    uplink_bytes_per_s: float = 1e6
    downlink_bytes_per_s: float = 2.5e6

    def __post_init__(self) -> None:
        check_positive("round_trip_latency_s", self.round_trip_latency_s, allow_zero=True)
        check_positive("uplink_bytes_per_s", self.uplink_bytes_per_s)
        check_positive("downlink_bytes_per_s", self.downlink_bytes_per_s)

    def upload(self, payload_bytes: float, observer=NULL_OBSERVER) -> TransferEstimate:
        """Time to push ``payload_bytes`` to the cloud."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be >= 0")
        estimate = TransferEstimate(
            payload_bytes=payload_bytes,
            latency_s=self.round_trip_latency_s / 2.0,
            transmission_s=payload_bytes / self.uplink_bytes_per_s,
        )
        observer.incr("network.uploaded_bytes", payload_bytes)
        observer.observe("network.upload_s", estimate.total_s)
        return estimate

    def download(self, payload_bytes: float, observer=NULL_OBSERVER) -> TransferEstimate:
        """Time to pull ``payload_bytes`` from the cloud."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be >= 0")
        estimate = TransferEstimate(
            payload_bytes=payload_bytes,
            latency_s=self.round_trip_latency_s / 2.0,
            transmission_s=payload_bytes / self.downlink_bytes_per_s,
        )
        observer.incr("network.downloaded_bytes", payload_bytes)
        observer.observe("network.download_s", estimate.total_s)
        return estimate

    def round_trip(
        self, upload_bytes: float, download_bytes: float, observer=NULL_OBSERVER
    ) -> float:
        """Total time for a request/response exchange."""
        return (
            self.upload(upload_bytes, observer=observer).total_s
            + self.download(download_bytes, observer=observer).total_s
        )
