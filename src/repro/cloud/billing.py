"""Usage metering and billing (paper §V's stated reason for auth).

"Cloud-based medical services often require user authentication for
various reasons such as billing and/or data storage."  The ledger
meters analyses per cyto-coded identifier — the server never needs a
name, only the identifier key — and produces per-period invoices.

Pricing follows the cost structure the evaluation exposes: a per-test
base fee plus a data-volume component (the §VII-B uploads are the
cloud's real cost driver).
"""

from dataclasses import dataclass
from typing import List, Optional

from repro._util.errors import ConfigurationError, ValidationError


@dataclass(frozen=True)
class PriceSheet:
    """Tariff of the analysis service."""

    per_test: float = 0.50
    per_megabyte_uploaded: float = 0.02
    currency: str = "USD"

    def __post_init__(self) -> None:
        if self.per_test < 0 or self.per_megabyte_uploaded < 0:
            raise ConfigurationError("prices must be non-negative")
        if not self.currency:
            raise ConfigurationError("currency must be non-empty")

    def cost_of(self, uploaded_bytes: float) -> float:
        """Cost of one analysed test."""
        if uploaded_bytes < 0:
            raise ValidationError("uploaded_bytes must be >= 0")
        return self.per_test + self.per_megabyte_uploaded * uploaded_bytes / 1e6


@dataclass(frozen=True)
class UsageEntry:
    """One metered analysis."""

    identifier_key: str
    period: int
    uploaded_bytes: float
    cost: float


@dataclass(frozen=True)
class Invoice:
    """Per-identifier charges for one billing period."""

    identifier_key: str
    period: int
    n_tests: int
    total_uploaded_bytes: float
    total_cost: float
    currency: str

    def summary(self) -> str:
        """Human-readable single line."""
        return (
            f"{self.identifier_key}: period {self.period}, {self.n_tests} tests, "
            f"{self.total_uploaded_bytes / 1e6:.1f} MB, "
            f"{self.total_cost:.2f} {self.currency}"
        )


class UsageLedger:
    """Append-only usage metering keyed by identifier.

    The ledger knows identifiers, not people — billing resolution to a
    person happens wherever the pipettes were sold, outside the cloud's
    view, which is precisely the privacy split §V designs for.
    """

    def __init__(self, prices: Optional[PriceSheet] = None) -> None:
        self.prices = prices or PriceSheet()
        self._entries: List[UsageEntry] = []

    # ------------------------------------------------------------------
    def meter(
        self, identifier_key: str, uploaded_bytes: float, period: int
    ) -> UsageEntry:
        """Record one analysed test."""
        if not identifier_key:
            raise ConfigurationError("identifier_key must be non-empty")
        if period < 0:
            raise ValidationError("period must be >= 0")
        entry = UsageEntry(
            identifier_key=identifier_key,
            period=period,
            uploaded_bytes=float(uploaded_bytes),
            cost=self.prices.cost_of(uploaded_bytes),
        )
        self._entries.append(entry)
        return entry

    @property
    def n_entries(self) -> int:
        """Total metered tests."""
        return len(self._entries)

    # ------------------------------------------------------------------
    def invoice(self, identifier_key: str, period: int) -> Invoice:
        """Aggregate one identifier's charges for one period."""
        entries = [
            entry
            for entry in self._entries
            if entry.identifier_key == identifier_key and entry.period == period
        ]
        return Invoice(
            identifier_key=identifier_key,
            period=period,
            n_tests=len(entries),
            total_uploaded_bytes=sum(entry.uploaded_bytes for entry in entries),
            total_cost=sum(entry.cost for entry in entries),
            currency=self.prices.currency,
        )

    def invoices_for_period(self, period: int) -> List[Invoice]:
        """Invoices for every identifier active in a period."""
        keys = sorted(
            {entry.identifier_key for entry in self._entries if entry.period == period}
        )
        return [self.invoice(key, period) for key in keys]

    def revenue(self, period: Optional[int] = None) -> float:
        """Service revenue, optionally restricted to one period."""
        return sum(
            entry.cost
            for entry in self._entries
            if period is None or entry.period == period
        )
