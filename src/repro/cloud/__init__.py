"""The untrusted cloud side: analysis service, storage, network.

The threat model (paper §II) makes the cloud *curious but honest*: it
runs the requested peak analysis faithfully, but it records everything
it sees — so the attack suite (:mod:`repro.attacks`) can be pointed at
exactly the information a compromised or nosy server would hold.
"""

from repro.cloud.billing import Invoice, PriceSheet, UsageLedger
from repro.cloud.api import (
    AnalysisRequest,
    AnalysisResponse,
    StoreRequest,
    report_from_dict,
    report_to_dict,
)
from repro.cloud.network import NetworkModel, TransferEstimate
from repro.cloud.server import AnalysisServer
from repro.cloud.storage import (
    RecordCorrupted,
    RecordNotFound,
    RecordStore,
    StoredRecord,
)

__all__ = [
    "Invoice",
    "PriceSheet",
    "UsageLedger",
    "AnalysisRequest",
    "AnalysisResponse",
    "StoreRequest",
    "report_from_dict",
    "report_to_dict",
    "NetworkModel",
    "TransferEstimate",
    "AnalysisServer",
    "RecordCorrupted",
    "RecordNotFound",
    "RecordStore",
    "StoredRecord",
]
