"""Cloud record storage keyed by cyto-coded identifiers (paper §V).

"The diagnostic information can be returned to a patient or stored in
cloud for a later access by the patient's practitioner."  Records are
keyed by the identifier string — which "carries no biometric
information" — so the store itself learns nothing about the patient
beyond linkability of their own records (by design: the same pipettes
link the same patient's tests, §V).

Durability and integrity (repro.resilience):

* every :class:`StoredRecord` carries a CRC32 **checksum** over its
  canonical payload, verified on every fetch — a tampered or
  bit-rotted record raises :class:`RecordCorrupted` instead of
  returning garbage;
* a missing identifier raises the typed :class:`RecordNotFound`
  (still a ``LookupError`` for backwards compatibility);
* an optional **journal** (see :mod:`repro.resilience.journal`) makes
  the store crash-recoverable: every committed record is appended to
  an append-only checksummed log that replay reconstructs
  bit-identically.
"""

import json
import threading
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro._util.errors import ConfigurationError, MedSenError
from repro.dsp.peakdetect import PeakReport
from repro.guard.admission import admit_identifier_key, admit_metadata, admit_report
from repro.obs import NULL_OBSERVER, RECORD_CORRUPTED, RECORD_STORED, WALL_CLOCK, Clock


class RecordNotFound(MedSenError, LookupError):
    """No record is stored under the requested identifier."""


class RecordCorrupted(MedSenError):
    """A stored record failed its checksum — do not trust its contents."""


# ---------------------------------------------------------------------------
# Canonical payload (shared with the resilience journal)
# ---------------------------------------------------------------------------
def record_payload_dict(
    identifier_key: str,
    report: PeakReport,
    sequence_number: int,
    stored_at_s: float,
    metadata: Tuple[Tuple[str, str], ...],
) -> Dict[str, Any]:
    """The canonical (checksummable, journalable) record payload.

    Floats survive a JSON round trip bit-identically (Python serialises
    the shortest round-tripping repr), so journal replay reconstructs
    the exact record.
    """
    from repro.cloud.api import report_to_dict

    return {
        "identifier": identifier_key,
        "sequence_number": int(sequence_number),
        "stored_at_s": float(stored_at_s),
        "metadata": [[k, v] for k, v in metadata],
        "report": report_to_dict(report),
    }


def payload_checksum(payload: Dict[str, Any]) -> int:
    """CRC32 over the canonical payload encoding."""
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(encoded.encode("utf-8")) & 0xFFFFFFFF


@dataclass(frozen=True)
class StoredRecord:
    """One stored (encrypted) diagnostic outcome.

    ``checksum`` is the CRC32 of the record's canonical payload,
    computed at store time and verified on fetch; 0 marks a legacy
    record stored before checksums existed (never verified).
    """

    identifier_key: str
    report: PeakReport
    sequence_number: int
    stored_at_s: float
    metadata: Tuple[Tuple[str, str], ...] = ()
    checksum: int = 0

    def metadata_dict(self) -> Dict[str, str]:
        """Metadata as a plain dict."""
        return dict(self.metadata)

    def payload(self) -> Dict[str, Any]:
        """Canonical payload (what the checksum covers)."""
        return record_payload_dict(
            self.identifier_key,
            self.report,
            self.sequence_number,
            self.stored_at_s,
            self.metadata,
        )

    def verify(self) -> bool:
        """Whether the record's contents still match its checksum."""
        if self.checksum == 0:
            return True  # legacy record without a checksum
        return payload_checksum(self.payload()) == self.checksum


class RecordStore:
    """Append-only per-identifier record log.

    Thread-safe: the serving fleet's concurrent workers store into one
    shared instance, so sequencing and the per-identifier logs mutate
    under a lock.

    Parameters
    ----------
    clock:
        Wall-clock source for ``stored_at_s`` stamps; injectable so
        tests and replays are deterministic and the audit event log can
        correlate storage writes with spans.
    observer:
        Observability sink (``record.stored`` audit events, counters).
    journal:
        Optional durable sink (anything with ``append(record)``, e.g.
        :class:`repro.resilience.journal.RecordJournal`); every
        committed record is appended so a crashed process can replay
        its way back to the exact pre-crash state.
    """

    def __init__(
        self,
        clock: Clock = WALL_CLOCK,
        observer=NULL_OBSERVER,
        journal=None,
    ) -> None:
        self.clock = clock
        self.observer = observer
        self.journal = journal
        self._records: Dict[str, List[StoredRecord]] = {}
        self._sequence = 0
        self._lock = threading.Lock()

    def store(
        self,
        identifier_key: str,
        report: PeakReport,
        metadata: Optional[Dict[str, str]] = None,
    ) -> StoredRecord:
        """Store an encrypted analysis outcome under an identifier.

        The store sits on the untrusted side of the §IV boundary, so
        everything inbound is admission-checked first: a malformed key,
        a non-report payload, or oversized/ill-typed metadata raises a
        typed :class:`~repro._util.errors.AdmissionError` (with the
        ``guard.rejected`` accounting) before touching the log.
        """
        if not identifier_key:
            raise ConfigurationError("identifier_key must be non-empty")
        admit_identifier_key(identifier_key, observer=self.observer, boundary="store")
        admit_report(report, observer=self.observer, boundary="store")
        admit_metadata(metadata, observer=self.observer, boundary="store")
        with self._lock:
            self._sequence += 1
            meta = tuple(sorted((metadata or {}).items()))
            stored_at_s = self.clock()
            checksum = payload_checksum(
                record_payload_dict(
                    identifier_key, report, self._sequence, stored_at_s, meta
                )
            )
            record = StoredRecord(
                identifier_key=identifier_key,
                report=report,
                sequence_number=self._sequence,
                stored_at_s=stored_at_s,
                metadata=meta,
                checksum=checksum,
            )
            self._records.setdefault(identifier_key, []).append(record)
            if self.journal is not None:
                self.journal.append(record)
        self.observer.incr("store.records")
        self.observer.event(
            RECORD_STORED,
            identifier=identifier_key,
            sequence_number=record.sequence_number,
            stored_at_s=record.stored_at_s,
        )
        return record

    # ------------------------------------------------------------------
    def _restore(self, record: StoredRecord) -> None:
        """Re-insert a journaled record during crash recovery.

        Preserves the record's original sequence number and timestamp;
        only the resilience journal's replay should call this.
        """
        with self._lock:
            self._records.setdefault(record.identifier_key, []).append(record)
            self._sequence = max(self._sequence, record.sequence_number)

    def _verify_record(self, record: StoredRecord) -> StoredRecord:
        if not record.verify():
            self.observer.incr("store.corrupted")
            self.observer.event(
                RECORD_CORRUPTED,
                identifier=record.identifier_key,
                sequence_number=record.sequence_number,
            )
            raise RecordCorrupted(
                f"record {record.sequence_number} under identifier "
                f"{record.identifier_key!r} failed its checksum"
            )
        return record

    # ------------------------------------------------------------------
    def fetch(self, identifier_key: str) -> Tuple[StoredRecord, ...]:
        """All records stored under an identifier (oldest first).

        Raises :class:`RecordCorrupted` if any stored record fails its
        checksum — corruption is surfaced, never silently returned.
        """
        with self._lock:
            records = tuple(self._records.get(identifier_key, ()))
        return tuple(self._verify_record(record) for record in records)

    def fetch_latest(self, identifier_key: str) -> StoredRecord:
        """Most recent record for an identifier.

        Raises the typed :class:`RecordNotFound` for an unknown
        identifier and :class:`RecordCorrupted` for a record whose
        checksum no longer matches its contents.
        """
        with self._lock:
            records = self._records.get(identifier_key)
            if not records:
                raise RecordNotFound(
                    f"no records stored for identifier {identifier_key!r}"
                )
            record = records[-1]
        return self._verify_record(record)

    def delete_identifier(self, identifier_key: str) -> int:
        """Erase every record stored under an identifier.

        The §V privacy design makes per-identifier erasure the natural
        unit of a right-to-erasure request: the store never knew who
        the patient was, so deleting the identifier's records removes
        the entire linkable trail.  Returns the number of records
        erased (0 if the identifier was unknown).
        """
        if not identifier_key:
            raise ConfigurationError("identifier_key must be non-empty")
        with self._lock:
            records = self._records.pop(identifier_key, [])
        return len(records)

    @property
    def n_identifiers(self) -> int:
        """Distinct identifiers with stored records."""
        with self._lock:
            return len(self._records)

    @property
    def n_records(self) -> int:
        """Total records stored."""
        with self._lock:
            return sum(len(records) for records in self._records.values())

    def identifiers(self) -> Tuple[str, ...]:
        """All identifiers with stored records, sorted."""
        with self._lock:
            return tuple(sorted(self._records))
