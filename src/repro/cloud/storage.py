"""Cloud record storage keyed by cyto-coded identifiers (paper §V).

"The diagnostic information can be returned to a patient or stored in
cloud for a later access by the patient's practitioner."  Records are
keyed by the identifier string — which "carries no biometric
information" — so the store itself learns nothing about the patient
beyond linkability of their own records (by design: the same pipettes
link the same patient's tests, §V).
"""

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro._util.errors import ConfigurationError
from repro.dsp.peakdetect import PeakReport
from repro.obs import NULL_OBSERVER, RECORD_STORED, WALL_CLOCK, Clock


@dataclass(frozen=True)
class StoredRecord:
    """One stored (encrypted) diagnostic outcome."""

    identifier_key: str
    report: PeakReport
    sequence_number: int
    stored_at_s: float
    metadata: Tuple[Tuple[str, str], ...] = ()

    def metadata_dict(self) -> Dict[str, str]:
        """Metadata as a plain dict."""
        return dict(self.metadata)


class RecordStore:
    """Append-only per-identifier record log.

    Thread-safe: the serving fleet's concurrent workers store into one
    shared instance, so sequencing and the per-identifier logs mutate
    under a lock.

    Parameters
    ----------
    clock:
        Wall-clock source for ``stored_at_s`` stamps; injectable so
        tests and replays are deterministic and the audit event log can
        correlate storage writes with spans.
    observer:
        Observability sink (``record.stored`` audit events, counters).
    """

    def __init__(self, clock: Clock = WALL_CLOCK, observer=NULL_OBSERVER) -> None:
        self.clock = clock
        self.observer = observer
        self._records: Dict[str, List[StoredRecord]] = {}
        self._sequence = 0
        self._lock = threading.Lock()

    def store(
        self,
        identifier_key: str,
        report: PeakReport,
        metadata: Optional[Dict[str, str]] = None,
    ) -> StoredRecord:
        """Store an encrypted analysis outcome under an identifier."""
        if not identifier_key:
            raise ConfigurationError("identifier_key must be non-empty")
        with self._lock:
            self._sequence += 1
            record = StoredRecord(
                identifier_key=identifier_key,
                report=report,
                sequence_number=self._sequence,
                stored_at_s=self.clock(),
                metadata=tuple(sorted((metadata or {}).items())),
            )
            self._records.setdefault(identifier_key, []).append(record)
        self.observer.incr("store.records")
        self.observer.event(
            RECORD_STORED,
            identifier=identifier_key,
            sequence_number=record.sequence_number,
            stored_at_s=record.stored_at_s,
        )
        return record

    def fetch(self, identifier_key: str) -> Tuple[StoredRecord, ...]:
        """All records stored under an identifier (oldest first)."""
        with self._lock:
            return tuple(self._records.get(identifier_key, ()))

    def fetch_latest(self, identifier_key: str) -> StoredRecord:
        """Most recent record for an identifier."""
        with self._lock:
            records = self._records.get(identifier_key)
            if not records:
                raise LookupError(f"no records stored for identifier {identifier_key!r}")
            return records[-1]

    def delete_identifier(self, identifier_key: str) -> int:
        """Erase every record stored under an identifier.

        The §V privacy design makes per-identifier erasure the natural
        unit of a right-to-erasure request: the store never knew who
        the patient was, so deleting the identifier's records removes
        the entire linkable trail.  Returns the number of records
        erased (0 if the identifier was unknown).
        """
        if not identifier_key:
            raise ConfigurationError("identifier_key must be non-empty")
        with self._lock:
            records = self._records.pop(identifier_key, [])
        return len(records)

    @property
    def n_identifiers(self) -> int:
        """Distinct identifiers with stored records."""
        with self._lock:
            return len(self._records)

    @property
    def n_records(self) -> int:
        """Total records stored."""
        with self._lock:
            return sum(len(records) for records in self._records.values())
