"""Baseline count attacks: count peaks, or divide by the mean factor.

The naive attack treats every ciphertext peak as a particle — "the
server analyzes the signals and counts the number of peaks, which does
not necessarily correspond to the true number of cells" (§II).  The
smarter baseline knows the hardware and divides by the *expected*
multiplication factor over uniform keys; it still fails per-capture
because the realised factors are random and epoch-dependent.
"""

import numpy as np

from repro.attacks.base import AttackKnowledge, CountAttack
from repro.dsp.peakdetect import PeakReport


class NaivePeakCountAttack(CountAttack):
    """Report the ciphertext peak count as the particle count."""

    name = "naive-peak-count"

    def estimate_count(self, report: PeakReport, knowledge: AttackKnowledge) -> float:
        """The ciphertext peak count, taken at face value."""
        return float(report.count)


class DivideByExpectationAttack(CountAttack):
    """Divide the peak count by the mean multiplication factor.

    The attacker assumes uniform keys over all admissible subsets and
    divides by E[m].  This is the best *keyless* constant-divisor
    strategy, and its per-capture error stays large because the actual
    epoch factors vary around the mean.
    """

    name = "divide-by-expectation"

    def __init__(self, assume_avoid_consecutive: bool = False) -> None:
        self.assume_avoid_consecutive = assume_avoid_consecutive

    def expected_factor(self, knowledge: AttackKnowledge) -> float:
        """E[m] over uniformly drawn admissible subsets.

        Subset sizes are uniform over 1..max, electrodes uniform within
        a size; E[m | k] = 2k - k/n (the lead is active with
        probability k/n and contributes one dip instead of two).
        """
        n = knowledge.array.n_outputs
        max_active = (n + 1) // 2 if self.assume_avoid_consecutive else n
        factors = []
        for k in range(1, max_active + 1):
            factors.append(2.0 * k - k / n)
        return float(np.mean(factors))

    def estimate_count(self, report: PeakReport, knowledge: AttackKnowledge) -> float:
        """Peak count divided by the expected multiplication factor."""
        return report.count / self.expected_factor(knowledge)
