"""Amplitude-matching attack (paper §IV-A).

"Considering that each cell has a specific signature in term of voltage
drop when passing through a set of electrodes, the attacker would try
to detect consecutive peaks of the exact same amplitude and then infer
the number of electrodes on."

The attack scans each epoch for runs of near-equal-amplitude peaks,
takes the modal run length as the estimated per-particle dip count, and
divides.  Against a gain-less cipher this works well (every dip of a
particle has the same amplitude); with the random per-electrode gains
``G`` enabled, amplitudes within a particle's train differ and the run
statistics collapse.
"""

from typing import List

import numpy as np

from repro.attacks.base import AttackKnowledge, CountAttack
from repro.dsp.peakdetect import PeakReport


class AmplitudeClusteringAttack(CountAttack):
    """Infer the multiplication factor from equal-amplitude runs.

    Parameters
    ----------
    amplitude_tolerance:
        Two consecutive peaks are "the same particle" when their depths
        agree within this relative tolerance.
    """

    name = "amplitude-runs"

    def __init__(self, amplitude_tolerance: float = 0.15) -> None:
        if amplitude_tolerance <= 0:
            raise ValueError("amplitude_tolerance must be > 0")
        self.amplitude_tolerance = amplitude_tolerance

    # ------------------------------------------------------------------
    def run_lengths(self, report: PeakReport, start_s: float, end_s: float) -> List[int]:
        """Lengths of equal-amplitude runs among peaks in a window."""
        peaks = report.peaks_between(start_s, end_s)
        if not peaks:
            return []
        runs: List[int] = []
        current = 1
        for previous, peak in zip(peaks, peaks[1:]):
            same = abs(peak.depth - previous.depth) <= self.amplitude_tolerance * max(
                previous.depth, 1e-12
            )
            if same:
                current += 1
            else:
                runs.append(current)
                current = 1
        runs.append(current)
        return runs

    def estimate_count(self, report: PeakReport, knowledge: AttackKnowledge) -> float:
        """Per epoch: modal run length -> factor estimate -> division."""
        total = 0.0
        n_epochs = max(int(np.ceil(report.duration_s / knowledge.epoch_duration_s)), 1)
        for index in range(n_epochs):
            start = index * knowledge.epoch_duration_s
            end = min(start + knowledge.epoch_duration_s, report.duration_s)
            peaks = report.peaks_between(start, end)
            if not peaks:
                continue
            runs = self.run_lengths(report, start, end)
            # The attacker reads the modal run length as dips-per-particle.
            values, counts = np.unique(runs, return_counts=True)
            modal = float(values[np.argmax(counts)])
            total += len(peaks) / max(modal, 1.0)
        return total
