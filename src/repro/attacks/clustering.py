"""Joint clustering attack: the strongest keyless adversary here.

The single-feature attacks (§IV-A's amplitude runs and width grouping)
each fail against one masking dimension.  A determined adversary would
combine features: cluster every ciphertext peak in (depth, width)
space, hypothesise that each cluster is "one electrode configuration",
and estimate counts per cluster.  Implemented with a small k-means
(numpy only) so the defence-in-depth claim is tested against something
smarter than run-length heuristics.

Result (see ``bench_attacks``/tests): against the full cipher the
cluster structure mixes particles and electrodes arbitrarily — gains
randomise depth per *electrode* and flow randomises width per *epoch*,
so clusters do not correspond to per-particle structure and the count
estimate stays badly off.
"""

from dataclasses import dataclass

import numpy as np

from repro._util.errors import ValidationError
from repro.attacks.base import AttackKnowledge, CountAttack
from repro.dsp.peakdetect import PeakReport


def _kmeans(points: np.ndarray, k: int, n_iterations: int = 30, seed: int = 0):
    """Tiny deterministic k-means (numpy only)."""
    rng = np.random.default_rng(seed)
    n = points.shape[0]
    k = min(k, n)
    centers = points[rng.choice(n, size=k, replace=False)]
    labels = np.zeros(n, dtype=int)
    for _ in range(n_iterations):
        distances = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
        new_labels = np.argmin(distances, axis=1)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
        for j in range(k):
            members = points[labels == j]
            if members.size:
                centers[j] = members.mean(axis=0)
    return labels, centers


@dataclass
class FeatureClusteringAttack(CountAttack):
    """k-means over (log depth, log width) ciphertext features.

    The attacker assumes each cluster collects the dips of one
    electrode configuration and sizes the configuration by the modal
    inter-dip spacing inside the cluster; the count estimate sums
    cluster populations divided by the inferred per-particle dip
    counts.
    """

    name = "feature-clustering"
    n_clusters: int = 6
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_clusters < 1:
            raise ValidationError("n_clusters must be >= 1")

    def estimate_count(self, report: PeakReport, knowledge: AttackKnowledge) -> float:
        """Cluster peaks in feature space and count temporal bursts."""
        peaks = sorted(report.peaks, key=lambda p: p.time_s)
        if not peaks:
            return 0.0
        if len(peaks) <= self.n_clusters:
            return float(len(peaks))
        features = np.array(
            [[np.log(max(p.depth, 1e-9)), np.log(max(p.width_s, 1e-9))] for p in peaks]
        )
        # Standardise so depth and width weigh equally.
        features = (features - features.mean(axis=0)) / (features.std(axis=0) + 1e-12)
        labels, _ = _kmeans(features, self.n_clusters, seed=self.seed)

        total = 0.0
        times = np.array([p.time_s for p in peaks])
        for cluster in range(labels.max() + 1):
            member_times = np.sort(times[labels == cluster])
            size = member_times.shape[0]
            if size == 0:
                continue
            if size == 1:
                total += 1.0
                continue
            gaps = np.diff(member_times)
            # Dips of one particle are spaced by roughly one pitch of
            # travel; the attacker splits the cluster into particles at
            # gaps much larger than the modal gap.
            modal_gap = np.median(gaps)
            particles = 1 + int(np.sum(gaps > 5.0 * max(modal_gap, 1e-6)))
            total += particles
        return total
