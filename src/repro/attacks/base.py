"""Attack framing: what the adversary knows and how attacks are scored.

The threat model gives the eavesdropper the full ciphertext peak report
(what a curious cloud or a network sniffer holds) and *public* hardware
knowledge — the sensor model line, so the electrode count and geometry —
but no key material and no flow telemetry.
"""

import abc
from dataclasses import dataclass

from repro._util.errors import ValidationError
from repro.dsp.peakdetect import PeakReport
from repro.hardware.electrodes import ElectrodeArray


@dataclass(frozen=True)
class AttackKnowledge:
    """Public knowledge available to every attack.

    Parameters
    ----------
    array:
        The sensor's electrode geometry (printed on the datasheet; the
        cipher's security must not depend on hiding it).
    epoch_duration_s:
        Key renewal period.  Treated as public: an attacker can learn
        it by observing configuration-change artefacts.
    nominal_flow_rate_ul_min:
        The advertised operating flow rate (public spec).
    """

    array: ElectrodeArray
    epoch_duration_s: float
    nominal_flow_rate_ul_min: float = 0.08


class CountAttack(abc.ABC):
    """An attack that tries to recover the true particle count."""

    name: str = "abstract"

    @abc.abstractmethod
    def estimate_count(self, report: PeakReport, knowledge: AttackKnowledge) -> float:
        """The attacker's best estimate of the true particle count."""


def score_count_attack(estimate: float, true_count: int) -> float:
    """Relative count error of an attack estimate: |est - true| / true.

    0 means perfect disclosure; >= ~0.5 means the diagnostic quantity
    (e.g. a CD4 count against a threshold) is effectively concealed.
    """
    if true_count <= 0:
        raise ValidationError(f"true_count must be > 0, got {true_count}")
    return abs(float(estimate) - true_count) / true_count
