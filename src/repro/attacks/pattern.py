"""Periodic-train attack: the Figure 11d leak (paper §VII-A).

"If we consider multiple beads passing through the channel ... the
resulting signature is a relatively flat periodic train of 17 peaks,
which is dissimilar from randomly passing cells.  This information
could be leveraged by a domain knowledgeable attacker to recover the
true number of cells in the sample."

When a key activates *consecutive* electrodes, every particle stamps a
regular train: peaks at a constant inter-peak interval (one pitch of
travel).  The attack scans for maximal trains of near-constant spacing
and counts each train as one particle.  The §VII-A mitigation —
non-consecutive key patterns — breaks the constant spacing, and the
attack collapses back to peak-level confusion.
"""

from typing import List

import numpy as np

from repro.attacks.base import AttackKnowledge, CountAttack
from repro.dsp.peakdetect import PeakReport


class PeriodicTrainAttack(CountAttack):
    """Count maximal constant-interval peak trains as particles.

    Parameters
    ----------
    interval_tolerance:
        Relative tolerance on spacing constancy within a train.
    min_train_length:
        Minimum peaks for a run to count as a train (a lone peak or a
        pair is ambiguous); shorter runs are counted as one particle
        each, which is the attacker's fallback.
    """

    name = "periodic-train"

    def __init__(self, interval_tolerance: float = 0.25, min_train_length: int = 3) -> None:
        if interval_tolerance <= 0:
            raise ValueError("interval_tolerance must be > 0")
        if min_train_length < 2:
            raise ValueError("min_train_length must be >= 2")
        self.interval_tolerance = interval_tolerance
        self.min_train_length = min_train_length

    # ------------------------------------------------------------------
    def trains(self, report: PeakReport) -> List[int]:
        """Lengths of maximal constant-spacing runs."""
        times = np.sort(report.times())
        if times.size == 0:
            return []
        if times.size == 1:
            return [1]
        gaps = np.diff(times)
        runs: List[int] = []
        current = 2  # first two peaks form the seed spacing
        for previous_gap, gap in zip(gaps, gaps[1:]):
            constant = abs(gap - previous_gap) <= self.interval_tolerance * max(
                previous_gap, 1e-12
            )
            if constant:
                current += 1
            else:
                runs.append(current)
                current = 2
        runs.append(current)
        return runs

    def estimate_count(self, report: PeakReport, knowledge: AttackKnowledge) -> float:
        """Count periodic trains as particles; stragglers counted raw."""
        count = 0.0
        for length in self.trains(report):
            if length >= self.min_train_length:
                count += 1.0  # one periodic train = one particle
            else:
                count += length  # ambiguous stragglers counted raw
        return count

    # ------------------------------------------------------------------
    def train_fraction(self, report: PeakReport) -> float:
        """Fraction of peaks inside recognisable trains — an observable
        leakage indicator (high with consecutive keys, low without)."""
        runs = self.trains(report)
        if not runs:
            return 0.0
        in_trains = sum(length for length in runs if length >= self.min_train_length)
        return in_trains / sum(runs)
