"""Ready-made encrypted-capture scenarios for attack evaluation.

Builds the full encrypt-acquire-detect chain with selectable cipher
weakenings so benchmarks, tests and examples can share one definition
of "what the eavesdropper attacks":

* ``constant_gains`` — disable the ``G`` masking (every electrode at
  unit gain);
* ``constant_flow`` — disable the ``S`` masking (nominal flow always);
* ``avoid_consecutive=False`` — allow the §VII-A consecutive-electrode
  key patterns (the Figure 11d leak).
"""

from typing import Tuple

import numpy as np

from repro.attacks.base import AttackKnowledge
from repro.crypto.encryptor import EncryptionPlan, SignalEncryptor
from repro.crypto.gains import GainTable
from repro.crypto.keygen import EntropySource, KeyGenerator
from repro.dsp.peakdetect import PeakDetector, PeakReport
from repro.hardware.acquisition import AcquisitionFrontEnd
from repro.hardware.electrodes import standard_array
from repro.microfluidics.flow import FlowController, FlowSpeedTable
from repro.microfluidics.transport import TransportModel
from repro.particles import BLOOD_CELL, Sample
from repro.physics.lockin import LockInAmplifier

DEFAULT_EPOCH_S = 2.0
DEFAULT_DURATION_S = 60.0
DEFAULT_CARRIERS = (500e3, 2500e3)


def encrypted_capture(
    seed: int,
    constant_gains: bool = False,
    constant_flow: bool = False,
    avoid_consecutive: bool = True,
    n_cells: int = 600,
    duration_s: float = DEFAULT_DURATION_S,
    epoch_s: float = DEFAULT_EPOCH_S,
    carriers: Tuple[float, ...] = DEFAULT_CARRIERS,
) -> Tuple[int, PeakReport, AttackKnowledge]:
    """One keyed capture; returns (true_count, report, knowledge)."""
    array = standard_array(9)
    rng = np.random.default_rng(seed)
    gain_table = (
        GainTable(n_levels=1, min_gain=1.0, max_gain=1.0)
        if constant_gains
        else GainTable()
    )
    flow_table = (
        FlowSpeedTable(n_levels=1, min_rate_ul_min=0.08, max_rate_ul_min=0.08)
        if constant_flow
        else FlowSpeedTable()
    )
    keygen = KeyGenerator(
        n_electrodes=array.n_outputs,
        gain_table=gain_table,
        flow_table=flow_table,
        avoid_consecutive=avoid_consecutive,
        max_active=(array.n_outputs + 1) // 2 if avoid_consecutive else None,
        position_order=array.position_order if avoid_consecutive else None,
    )
    schedule = keygen.generate_schedule(duration_s, epoch_s, EntropySource(rng=seed))
    plan = EncryptionPlan(schedule, array, gain_table, flow_table)
    encryptor = SignalEncryptor(carrier_frequencies_hz=carriers)
    flow = FlowController()
    encryptor.plan_flow(plan, flow)
    sample = Sample.from_concentrations({BLOOD_CELL: n_cells}, volume_ul=5)
    arrivals = TransportModel().schedule_arrivals(sample, flow, duration_s, rng=rng)
    events = encryptor.events_for_arrivals(arrivals, plan)
    lockin = LockInAmplifier(carrier_frequencies_hz=carriers)
    trace = AcquisitionFrontEnd(lockin=lockin).acquire(events, duration_s, rng=rng)
    report = PeakDetector().detect(trace.voltages, trace.sampling_rate_hz)
    knowledge = AttackKnowledge(array=array, epoch_duration_s=epoch_s)
    return len(arrivals), report, knowledge
