"""Brute-force analysis of the cyto-coded password space (paper §VII-C).

"This increases the password space size and entropy, and hence improves
the design's overall security against bruteforce intrusions."

Unlike an online password form, each guess here costs a *physical*
sample submission (a pipette with a candidate bead mixture), so even a
modest password space is expensive to search.  These helpers quantify
the expected number of attempts and the success probability of a
bounded-attempt adversary, for alphabet-engineering benchmarks.
"""

from repro._util.errors import ValidationError
from repro.auth.alphabet import BeadAlphabet
from repro.auth.collision import password_space_size


def bruteforce_expected_attempts(alphabet: BeadAlphabet) -> float:
    """Expected guesses to hit one uniformly chosen identifier.

    Sampling without replacement over a space of size N: (N + 1) / 2.
    """
    size = password_space_size(alphabet)
    return (size + 1) / 2.0


def bruteforce_success_probability(alphabet: BeadAlphabet, attempts: int) -> float:
    """P(success) for an adversary limited to ``attempts`` guesses."""
    if attempts < 0:
        raise ValidationError(f"attempts must be >= 0, got {attempts}")
    size = password_space_size(alphabet)
    return min(attempts / size, 1.0)


def attempts_for_success_probability(alphabet: BeadAlphabet, probability: float) -> int:
    """Guesses needed to reach a target success probability."""
    if not 0.0 < probability <= 1.0:
        raise ValidationError("probability must be in (0, 1]")
    size = password_space_size(alphabet)
    import math

    return int(math.ceil(probability * size))
