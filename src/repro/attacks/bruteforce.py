"""Brute-force analysis of the cyto-coded password space (paper §VII-C).

"This increases the password space size and entropy, and hence improves
the design's overall security against bruteforce intrusions."

Unlike an online password form, each guess here costs a *physical*
sample submission (a pipette with a candidate bead mixture), so even a
modest password space is expensive to search.  These helpers quantify
the expected number of attempts and the success probability of a
bounded-attempt adversary, for alphabet-engineering benchmarks.

With the server-side throttle of :mod:`repro.guard.lockout` deployed,
attempts are no longer free even in *time*: after the policy's failure
budget every further guess pays an exponentially growing lockout
window.  The ``*_time_s`` / ``*_within_horizon`` helpers extend the
§VII-C analysis to that regime — expected wall-clock to exhaust the
space, and the success probability of an adversary with a bounded
campaign duration.
"""

from typing import Optional

from repro._util.errors import ValidationError
from repro.auth.alphabet import BeadAlphabet
from repro.auth.collision import password_space_size
from repro.guard.lockout import LockoutPolicy


def bruteforce_expected_attempts(alphabet: BeadAlphabet) -> float:
    """Expected guesses to hit one uniformly chosen identifier.

    Sampling without replacement over a space of size N: (N + 1) / 2.
    """
    size = password_space_size(alphabet)
    return (size + 1) / 2.0


def bruteforce_success_probability(alphabet: BeadAlphabet, attempts: int) -> float:
    """P(success) for an adversary limited to ``attempts`` guesses."""
    if attempts < 0:
        raise ValidationError(f"attempts must be >= 0, got {attempts}")
    size = password_space_size(alphabet)
    return min(attempts / size, 1.0)


def attempts_for_success_probability(alphabet: BeadAlphabet, probability: float) -> int:
    """Guesses needed to reach a target success probability."""
    if not 0.0 < probability <= 1.0:
        raise ValidationError("probability must be in (0, 1]")
    size = password_space_size(alphabet)
    import math

    return int(math.ceil(probability * size))


# ---------------------------------------------------------------------------
# Lockout-aware timing (repro.guard.lockout deployed server-side)
# ---------------------------------------------------------------------------
def lockout_delay_s(failures: int, policy: LockoutPolicy) -> float:
    """Total lockout wait an adversary serves across ``failures``
    consecutive failed guesses from one source.

    Mirrors :class:`~repro.guard.lockout.AttemptThrottle` exactly: the
    first ``max_failures`` failures are free; that streak trips lockout
    #1, and *every* further failure re-trips the next (escalated)
    window, so ``failures`` failures serve
    ``failures - max_failures + 1`` lockouts.  Windows grow
    geometrically until they saturate at ``max_lockout_s``; the capped
    tail is summed arithmetically so the helper stays O(log) even for
    password-space-sized inputs.
    """
    if failures < 0:
        raise ValidationError(f"failures must be >= 0, got {failures}")
    n_lockouts = max(0, int(failures) - policy.max_failures + 1)
    total = 0.0
    for k in range(1, n_lockouts + 1):
        duration = policy.lockout_duration_s(k)
        if duration >= policy.max_lockout_s:
            total += (n_lockouts - k + 1) * policy.max_lockout_s
            break
        total += duration
    return total


def bruteforce_expected_time_s(
    alphabet: BeadAlphabet,
    policy: Optional[LockoutPolicy] = None,
    attempt_s: float = 0.0,
) -> float:
    """Expected wall-clock seconds to brute-force one identifier.

    ``attempt_s`` is the cost of a single guess (pipette manufacture +
    sample run, minutes in practice); ``policy`` adds the server-side
    lockout waits.  With neither, the expected *time* is zero even
    though the expected *attempts* are not — which is precisely the
    exposure the throttle closes.
    """
    if attempt_s < 0:
        raise ValidationError(f"attempt_s must be >= 0, got {attempt_s}")
    expected = bruteforce_expected_attempts(alphabet)
    total = expected * attempt_s
    if policy is not None:
        # Every guess before the final (successful) one fails.
        total += lockout_delay_s(int(expected) - 1, policy)
    return total


def attempts_within_horizon(
    horizon_s: float,
    policy: Optional[LockoutPolicy] = None,
    attempt_s: float = 0.0,
) -> int:
    """Guesses an adversary completes within ``horizon_s`` seconds.

    Attempt ``n`` lands after ``n * attempt_s`` of guessing work plus
    the lockout waits accrued by the ``n - 1`` failures before it.
    Without a policy the count is ``horizon // attempt_s``; without an
    attempt cost either, guessing is free and unbounded — that
    configuration is rejected rather than silently returning infinity.
    """
    if horizon_s < 0:
        raise ValidationError(f"horizon_s must be >= 0, got {horizon_s}")
    if policy is None:
        if attempt_s <= 0:
            raise ValidationError(
                "free, unthrottled guessing is unbounded; give a policy "
                "and/or a positive attempt_s"
            )
        return int(horizon_s // attempt_s)
    n = 0
    while True:
        if (n + 1) * attempt_s + lockout_delay_s(n, policy) > horizon_s:
            return n
        n += 1
        # Once windows saturate at the cap, every further attempt costs
        # exactly attempt_s + max_lockout_s: finish arithmetically.
        n_lockouts = n - policy.max_failures + 1
        if (
            n_lockouts >= 1
            and policy.lockout_duration_s(n_lockouts) >= policy.max_lockout_s
        ):
            spent = n * attempt_s + lockout_delay_s(n - 1, policy)
            per_attempt = attempt_s + policy.max_lockout_s
            return n + int(max(0.0, horizon_s - spent) // per_attempt)


def bruteforce_success_within_horizon(
    alphabet: BeadAlphabet,
    horizon_s: float,
    policy: Optional[LockoutPolicy] = None,
    attempt_s: float = 0.0,
) -> float:
    """P(success) for a campaign bounded by wall-clock, not attempts."""
    attempts = attempts_within_horizon(horizon_s, policy=policy, attempt_s=attempt_s)
    return bruteforce_success_probability(alphabet, attempts)
