"""Width-matching attack (paper §IV-A).

"Similarly, an attacker could try to recognize peaks that correspond to
a single cell by observing the width of the curve that would remain
unchanged by modifying the amplitude.  By modifying the fluid flow
speed through the channel, MedSen can alter the width of the resulting
signal and thus protect this information as well."

The attack assumes the advertised nominal flow rate: it derives the
expected dip width from public geometry, buckets observed widths, and
infers how many *distinct particles* passed from the count of peaks at
the expected width.  With ``S`` masking enabled, epochs run at keyed
speeds and the width histogram no longer concentrates at the public
nominal value, so the inference degrades.
"""

import numpy as np

from repro.attacks.base import AttackKnowledge, CountAttack
from repro.dsp.peakdetect import PeakReport
from repro.microfluidics.channel import MicrofluidicChannel


class WidthClusteringAttack(CountAttack):
    """Count particles via the expected nominal-flow dip width.

    The attacker estimates the per-particle dip count as the ratio of
    total peaks to width-consistent *groups*: consecutive peaks whose
    widths agree within tolerance are assumed to belong to one
    particle (same particle -> same transit speed -> same width).
    """

    name = "width-grouping"

    def __init__(self, width_tolerance: float = 0.2) -> None:
        if width_tolerance <= 0:
            raise ValueError("width_tolerance must be > 0")
        self.width_tolerance = width_tolerance
        self._channel = MicrofluidicChannel()

    def expected_width_s(self, knowledge: AttackKnowledge) -> float:
        """Public-spec dip FWHM at the advertised flow rate."""
        velocity = self._channel.velocity_for_flow_rate(
            knowledge.nominal_flow_rate_ul_min
        )
        return knowledge.array.dip_fwhm_s(velocity)

    def estimate_count(self, report: PeakReport, knowledge: AttackKnowledge) -> float:
        """Count width-consistent peak groups as particles."""
        peaks = sorted(report.peaks, key=lambda p: p.time_s)
        if not peaks:
            return 0.0
        # Group consecutive same-width peaks; each group ~ one particle
        # under the attacker's (nominal-flow) hypothesis.
        groups = 1
        for previous, peak in zip(peaks, peaks[1:]):
            same = abs(peak.width_s - previous.width_s) <= self.width_tolerance * max(
                previous.width_s, 1e-12
            )
            close = peak.time_s - previous.time_s <= 10.0 * self.expected_width_s(knowledge)
            if not (same and close):
                groups += 1
        return float(groups)

    def width_dispersion(self, report: PeakReport, knowledge: AttackKnowledge) -> float:
        """Relative spread of observed widths around the attacker's
        expectation — the observable ``S`` masking degrades."""
        if not report.peaks:
            return 0.0
        widths = np.asarray([p.width_s for p in report.peaks])
        expected = self.expected_width_s(knowledge)
        return float(np.std(widths / expected))
