"""Eavesdropper attacks on the analog cipher (paper §IV-A).

§IV-A walks through what "a determined attacker" would try against the
ciphertext, and which cipher component defeats each attempt:

* count the peaks directly (defeated by peak multiplication ``E``) —
  :class:`~repro.attacks.peak_count.NaivePeakCountAttack`;
* recover the multiplication factor from runs of equal-amplitude peaks
  (defeated by the random gains ``G``) —
  :class:`~repro.attacks.amplitude.AmplitudeClusteringAttack`;
* recognise a particle's peaks by their common width (defeated by the
  flow-speed masking ``S``) —
  :class:`~repro.attacks.width.WidthClusteringAttack`;
* exploit the Figure 11d leak: with consecutive electrodes active, each
  particle yields a recognisable periodic train of peaks (defeated by
  the §VII-A non-consecutive key patterns) —
  :class:`~repro.attacks.pattern.PeriodicTrainAttack`;
* brute-force the cyto-coded password space —
  :mod:`~repro.attacks.bruteforce`.

Every attack sees exactly what the curious-but-honest cloud sees (the
peak report, plus public hardware knowledge) and never the key.
"""

from repro.attacks.amplitude import AmplitudeClusteringAttack
from repro.attacks.base import AttackKnowledge, CountAttack, score_count_attack
from repro.attacks.clustering import FeatureClusteringAttack
from repro.attacks.bruteforce import (
    attempts_within_horizon,
    bruteforce_expected_attempts,
    bruteforce_expected_time_s,
    bruteforce_success_probability,
    bruteforce_success_within_horizon,
    lockout_delay_s,
)
from repro.attacks.pattern import PeriodicTrainAttack
from repro.attacks.peak_count import DivideByExpectationAttack, NaivePeakCountAttack
from repro.attacks.scenarios import encrypted_capture
from repro.attacks.width import WidthClusteringAttack

__all__ = [
    "AmplitudeClusteringAttack",
    "AttackKnowledge",
    "FeatureClusteringAttack",
    "CountAttack",
    "score_count_attack",
    "attempts_within_horizon",
    "bruteforce_expected_attempts",
    "bruteforce_expected_time_s",
    "bruteforce_success_probability",
    "bruteforce_success_within_horizon",
    "lockout_delay_s",
    "PeriodicTrainAttack",
    "DivideByExpectationAttack",
    "encrypted_capture",
    "NaivePeakCountAttack",
    "WidthClusteringAttack",
]
