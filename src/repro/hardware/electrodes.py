"""Multi-output electrode array geometry (paper Figure 5).

The sensing region interleaves output electrodes with common excitation
electrodes along the channel::

    [Out_L] [In] [Out_1] [In] [Out_2] [In] ... [Out_{n-1}] [In]

``Out_L`` is the *lead* electrode: it has an excitation neighbour on one
side only, so a passing particle modulates one gap and produces **one**
dip.  Every other output electrode sits between two excitation
electrodes and produces **two** dips.  Hence an active subset ``E``
multiplies each particle into

    m(E) = sum_{e in E} (1 if e is the lead else 2)

peaks — with all 9 electrodes of the paper's 9-output design active,
m = 1 + 8*2 = 17, the "train of 17 peaks" of Figure 11d.

Electrodes are numbered 1..n the way the paper labels them, with the
lead electrode carrying the highest number (the paper's "electrode 9").
"""

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro._util.errors import ConfigurationError
from repro._util.units import micrometer
from repro._util.validation import check_positive

#: Output counts of the fabricated designs (Fig 5) plus the 16-output
#: variant used for the Eq. 2 key-size analysis.
ELECTRODE_DESIGNS: Tuple[int, ...] = (2, 3, 5, 9, 16)


@dataclass(frozen=True)
class ElectrodeArray:
    """Geometry of one sensing region.

    Parameters
    ----------
    n_outputs:
        Number of independently switchable output electrodes.
    electrode_width_m:
        Width of each electrode finger (paper: 20 µm).
    pitch_m:
        Centre-to-centre distance of adjacent electrodes (paper: 25 µm).
    """

    n_outputs: int
    electrode_width_m: float = micrometer(20.0)
    pitch_m: float = micrometer(25.0)

    def __post_init__(self) -> None:
        if self.n_outputs < 1:
            raise ConfigurationError(f"n_outputs must be >= 1, got {self.n_outputs}")
        check_positive("electrode_width_m", self.electrode_width_m)
        check_positive("pitch_m", self.pitch_m)
        if self.pitch_m < self.electrode_width_m:
            raise ConfigurationError("pitch_m must be >= electrode_width_m")

    # ------------------------------------------------------------------
    # Numbering and roles
    # ------------------------------------------------------------------
    @property
    def lead_electrode(self) -> int:
        """Number of the lead (single-dip) electrode — the highest."""
        return self.n_outputs

    @property
    def electrode_numbers(self) -> Tuple[int, ...]:
        """All output electrode numbers, 1..n_outputs."""
        return tuple(range(1, self.n_outputs + 1))

    def is_lead(self, electrode: int) -> bool:
        """Whether ``electrode`` is the lead electrode."""
        self._check_electrode(electrode)
        return electrode == self.lead_electrode

    def dips_per_particle(self, electrode: int) -> int:
        """Dips one particle causes at ``electrode`` when it is active."""
        return 1 if self.is_lead(electrode) else 2

    def multiplication_factor(self, active: Iterable[int]) -> int:
        """Peak multiplication m(E) for an active subset.

        This is the quantity the decryptor divides observed peak counts
        by, and the quantity an eavesdropper must guess.
        """
        active_set = self._check_subset(active)
        return sum(self.dips_per_particle(e) for e in active_set)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def gap_positions_m(self, electrode: int) -> List[float]:
        """Centre positions (m along the channel) of the sensing gap(s).

        The physical layout places the lead output first, then
        alternating excitation/output fingers.  Gap k (between fingers k
        and k+1) is centred at ``(k + 0.5) * pitch``.  The lead electrode
        owns gap 0; output electrode ``e`` (numbered from 1, laid out in
        increasing position) owns the two gaps flanking its finger.
        """
        self._check_electrode(electrode)
        if self.is_lead(electrode):
            return [0.5 * self.pitch_m]
        # Output e sits at finger index 2e (lead=0, In=1, Out_1=2, In=3,
        # Out_2=4, ...), flanked by gaps 2e-1 and 2e.
        finger = 2 * electrode
        return [
            (finger - 0.5) * self.pitch_m,
            (finger + 0.5) * self.pitch_m,
        ]

    @property
    def position_order(self) -> Tuple[int, ...]:
        """Electrode numbers in physical (along-channel) order.

        The lead electrode is the *first* finger, followed by outputs
        1..n-1, so the lead is physically adjacent to electrode 1 even
        though their numbers differ by n-1.
        """
        return (self.lead_electrode,) + tuple(range(1, self.n_outputs))

    def physically_adjacent(self, electrode_a: int, electrode_b: int) -> bool:
        """Whether two outputs have sensing gaps one pitch apart.

        Adjacent active electrodes produce dip chains that merge or
        swallow each other (the Figure 11b/11d effect); §VII-A suggests
        key patterns avoid them.
        """
        self._check_electrode(electrode_a)
        self._check_electrode(electrode_b)
        order = self.position_order
        return abs(order.index(electrode_a) - order.index(electrode_b)) == 1

    def has_adjacent_active(self, active: Iterable[int]) -> bool:
        """Whether an active subset contains physically adjacent pairs."""
        active_set = sorted(self._check_subset(active))
        return any(
            self.physically_adjacent(a, b)
            for i, a in enumerate(active_set)
            for b in active_set[i + 1 :]
        )

    @property
    def span_m(self) -> float:
        """Distance from the first to the last sensing gap."""
        first = self.gap_positions_m(self.lead_electrode)[0]
        if self.n_outputs == 1:
            return 0.0
        last = self.gap_positions_m(self.n_outputs - 1)[-1]
        return last - first

    @property
    def sensing_length_m(self) -> float:
        """Length over which one gap sees a particle.

        Paper Figure 11 analysis: 45 µm = one 25 µm pitch plus two
        20 µm electrode halves... i.e. pitch + electrode width.
        """
        return self.pitch_m + self.electrode_width_m

    def transit_time_s(self, velocity_m_s: float) -> float:
        """Dip duration (s) of one gap at a given particle velocity.

        The paper's "response time for each peak is approximately 20 ms"
        at the nominal 0.08 µL/min flow is this quantity.
        """
        check_positive("velocity_m_s", velocity_m_s)
        return self.sensing_length_m / velocity_m_s

    def dip_fwhm_s(self, velocity_m_s: float) -> float:
        """Full width at half maximum of one dip.

        The total response lasts one transit time; the half-maximum
        width of the bell-shaped response is about half of that, which
        is what keeps the double dips of a non-lead electrode (gaps one
        25 µm pitch apart) resolvable, as they visibly are in Fig 11.
        """
        return 0.5 * self.transit_time_s(velocity_m_s)

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def _check_electrode(self, electrode: int) -> None:
        if not 1 <= electrode <= self.n_outputs:
            raise ConfigurationError(
                f"electrode {electrode} out of range 1..{self.n_outputs}"
            )

    def _check_subset(self, active: Iterable[int]) -> FrozenSet[int]:
        active_set = frozenset(int(e) for e in active)
        for electrode in active_set:
            self._check_electrode(electrode)
        return active_set


_STANDARD_ARRAYS: Dict[int, ElectrodeArray] = {}


def standard_array(n_outputs: int) -> ElectrodeArray:
    """Return the standard array for one of the fabricated designs."""
    if n_outputs not in ELECTRODE_DESIGNS:
        raise ConfigurationError(
            f"no standard design with {n_outputs} outputs; available: {ELECTRODE_DESIGNS}"
        )
    if n_outputs not in _STANDARD_ARRAYS:
        _STANDARD_ARRAYS[n_outputs] = ElectrodeArray(n_outputs=n_outputs)
    return _STANDARD_ARRAYS[n_outputs]
