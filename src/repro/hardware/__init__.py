"""Sensor hardware: electrode arrays, multiplexer, controller, front-end.

These classes model the fabricated device of paper §III/§VI:

* :class:`~repro.hardware.electrodes.ElectrodeArray` — the multi-output
  sensing region (Figure 5 designs with 2/3/5/9 outputs, plus the
  16-output variant §VI-B sizes keys for).  The *lead* electrode has an
  excitation neighbour on one side only and yields a single dip per
  particle; every other output yields a double dip.  This geometry is
  what turns electrode selection into peak-count multiplication.
* :class:`~repro.hardware.multiplexer.Multiplexer` — the MAX14661-style
  16:2 switch matrix routing selected outputs to the lock-in and the
  rest to ground.
* :class:`~repro.hardware.controller.MicroController` — the Raspberry-Pi
  stand-in and the system's trusted computing base: it generates keys,
  drives the multiplexer/pump, and refuses to export key material to
  untrusted parties.
* :class:`~repro.hardware.acquisition.AcquisitionFrontEnd` — renders
  pulse events through noise and the lock-in into the recorded trace.
"""

from repro.hardware.acquisition import AcquiredTrace, AcquisitionFrontEnd
from repro.hardware.electrodes import (
    ELECTRODE_DESIGNS,
    ElectrodeArray,
    standard_array,
)
from repro.hardware.multiplexer import Multiplexer


def __getattr__(name):
    # MicroController pulls in repro.crypto, which itself imports the
    # electrode geometry from this package; loading it lazily keeps the
    # import graph acyclic while preserving `repro.hardware.MicroController`.
    if name == "MicroController":
        from repro.hardware.controller import MicroController

        return MicroController
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AcquiredTrace",
    "AcquisitionFrontEnd",
    "MicroController",
    "ELECTRODE_DESIGNS",
    "ElectrodeArray",
    "standard_array",
    "Multiplexer",
]
