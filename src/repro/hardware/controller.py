"""The micro-controller: MedSen's trusted computing base.

Paper §II (threat model): "Aside from the sensor ... and the combination
of a small controller and a multiplexer responsible for managing the
diagnostic experiment settings ... no other component has access to the
true cytometry information.  MedSen neither trusts the smartphone nor
the remote server."  And §VI-B: "The encryption keys always remain on
the controller and never get sent out to the phone or cloud."

:class:`MicroController` enforces that boundary in the object model: it
generates key schedules from its entropy source, drives the multiplexer
per epoch, decrypts peak reports — and raises
:class:`~repro._util.errors.TrustBoundaryError` if an untrusted party
asks for key material.  Key sharing with the patient's practitioner is
explicitly allowed (§VII-B: "MedSen's design also allows ... sharing of
the generated keys with trusted parties, e.g., the patient's
practitioners").
"""

from collections import OrderedDict
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional

from repro._util.errors import ConfigurationError, TrustBoundaryError
from repro._util.rng import RngLike
from repro.crypto.decryptor import DecryptionResult, SignalDecryptor
from repro.crypto.encryptor import EncryptionPlan
from repro.crypto.gains import GainTable
from repro.crypto.key import EpochKey, KeySchedule
from repro.crypto.keygen import EntropySource, KeyGenerator
from repro.dsp.peakdetect import PeakReport
from repro.hardware.electrodes import ElectrodeArray
from repro.hardware.multiplexer import Multiplexer
from repro.microfluidics.channel import MicrofluidicChannel
from repro.microfluidics.flow import FlowSpeedTable
from repro.obs import EPOCH_RESYNCED, EPOCH_ROTATED, KEY_DERIVED, NULL_OBSERVER

#: Parties inside (or trusted by) the TCB.
TRUSTED_PARTIES: FrozenSet[str] = frozenset({"sensor", "controller", "practitioner"})

#: Parties the threat model declares curious-but-honest and untrusted.
UNTRUSTED_PARTIES: FrozenSet[str] = frozenset({"smartphone", "cloud", "network"})


class MicroController:
    """Raspberry-Pi stand-in holding the key material.

    Parameters
    ----------
    array, multiplexer:
        The sensing hardware the controller drives.  The array must fit
        the multiplexer.
    gain_table, flow_table:
        Cipher quantisation tables.
    entropy:
        The /dev/random stand-in; defaults to a fresh metered source.
    avoid_consecutive:
        Enable the §VII-A consecutive-electrode mitigation in key
        generation.
    """

    def __init__(
        self,
        array: ElectrodeArray,
        multiplexer: Optional[Multiplexer] = None,
        gain_table: Optional[GainTable] = None,
        flow_table: Optional[FlowSpeedTable] = None,
        entropy: Optional[EntropySource] = None,
        channel: Optional[MicrofluidicChannel] = None,
        avoid_consecutive: bool = True,
        rng: RngLike = None,
        observer=NULL_OBSERVER,
    ) -> None:
        self.observer = observer
        self.array = array
        self.multiplexer = multiplexer or Multiplexer()
        if not self.multiplexer.supports_array(array.n_outputs):
            raise ConfigurationError(
                f"{array.n_outputs}-output array does not fit a "
                f"{self.multiplexer.n_inputs}-input multiplexer"
            )
        self.gain_table = gain_table or GainTable()
        self.flow_table = flow_table or FlowSpeedTable()
        self.channel = channel or MicrofluidicChannel()
        self._entropy = entropy or EntropySource(rng)
        max_active = None
        if avoid_consecutive:
            max_active = (array.n_outputs + 1) // 2
        self._keygen = KeyGenerator(
            n_electrodes=array.n_outputs,
            gain_table=self.gain_table,
            flow_table=self.flow_table,
            avoid_consecutive=avoid_consecutive,
            max_active=max_active,
            position_order=array.position_order if avoid_consecutive else None,
        )
        self._plan: Optional[EncryptionPlan] = None
        # Bounded fingerprint -> plan history, so a controller/server
        # key-epoch desync (a report analysed under an older schedule)
        # can be resolved by resyncing to the capture's fingerprint.
        self._plan_history: "OrderedDict[str, EncryptionPlan]" = OrderedDict()
        self._plan_history_limit = 8

    # ------------------------------------------------------------------
    # Key management (TCB-internal)
    # ------------------------------------------------------------------
    def provision(self, duration_s: float, epoch_duration_s: float = 1.0) -> EncryptionPlan:
        """Generate and hold a key schedule covering ``duration_s``.

        Returns the bound :class:`EncryptionPlan`.  The plan object *is*
        key material; the device layer keeps it inside the TCB.
        """
        with self.observer.span("provision_keys", duration_s=duration_s) as span:
            bits_before = self._entropy.bits_consumed
            schedule = self._keygen.generate_schedule(
                duration_s, epoch_duration_s, self._entropy
            )
            self._plan = EncryptionPlan(
                schedule=schedule,
                array=self.array,
                gain_table=self.gain_table,
                flow_table=self.flow_table,
            )
            span.set_attribute("n_epochs", schedule.n_epochs)
            self._remember_plan(self._plan)
        self.observer.incr("crypto.keys_derived")
        self.observer.gauge("crypto.entropy_bits_consumed", self._entropy.bits_consumed)
        self.observer.event(
            KEY_DERIVED,
            n_epochs=schedule.n_epochs,
            duration_s=duration_s,
            epoch_duration_s=epoch_duration_s,
            entropy_bits=self._entropy.bits_consumed - bits_before,
        )
        return self._plan

    def _remember_plan(self, plan: EncryptionPlan) -> None:
        from repro.crypto.serialization import plan_fingerprint

        fingerprint = plan_fingerprint(plan)
        self._plan_history[fingerprint] = plan
        self._plan_history.move_to_end(fingerprint)
        while len(self._plan_history) > self._plan_history_limit:
            self._plan_history.popitem(last=False)

    def fingerprint(self) -> str:
        """Key-leakage-free digest of the *current* plan.

        Safe to attach to captures and travel with the trace: equal
        plans share a fingerprint, but the digest reveals nothing about
        the schedule (see :func:`~repro.crypto.serialization.plan_fingerprint`).
        """
        if self._plan is None:
            raise ConfigurationError("no key schedule provisioned")
        from repro.crypto.serialization import plan_fingerprint

        return plan_fingerprint(self._plan)

    def resync(self, fingerprint: str) -> bool:
        """Re-bind to the (historic) plan matching ``fingerprint``.

        Recovers from a key-epoch desync: when a peak report comes back
        for a capture taken under an earlier schedule (the controller
        re-provisioned meanwhile), resyncing restores that schedule
        from the bounded plan history so decryption uses the keys the
        capture was actually encrypted with.  Returns True on success;
        False when the fingerprint has aged out of history (the caller
        must treat the report as undecryptable and alarm).  Emits an
        ``epoch.resynced`` audit event on an actual switch.
        """
        plan = self._plan_history.get(fingerprint)
        if plan is None:
            return False
        if self._plan is not plan:
            self._plan = plan
            self.observer.incr("crypto.epoch_resyncs")
            self.observer.event(EPOCH_RESYNCED, fingerprint=fingerprint)
        return True

    @property
    def has_keys(self) -> bool:
        """Whether a schedule is currently provisioned."""
        return self._plan is not None

    @property
    def entropy_bits_consumed(self) -> int:
        """Entropy drawn from the /dev/random stand-in so far."""
        return self._entropy.bits_consumed

    def export_schedule(self, audience: str) -> KeySchedule:
        """Release the key schedule to a *trusted* party only.

        Raises :class:`TrustBoundaryError` for the smartphone, the cloud
        or any unknown audience — keys never leave the TCB towards the
        curious-but-honest parties.
        """
        if audience not in TRUSTED_PARTIES:
            raise TrustBoundaryError(
                f"refusing to export key material to {audience!r}; "
                f"trusted parties: {sorted(TRUSTED_PARTIES)}"
            )
        if self._plan is None:
            raise ConfigurationError("no key schedule provisioned")
        return self._plan.schedule

    # ------------------------------------------------------------------
    # Hardware driving
    # ------------------------------------------------------------------
    def apply_epoch(self, time_s: float) -> None:
        """Route the epoch's active electrodes through the multiplexer."""
        if self._plan is None:
            raise ConfigurationError("no key schedule provisioned")
        key = self._plan.schedule.key_at(time_s)
        self.multiplexer.select(key.active_electrodes)
        self.observer.incr("crypto.epoch_rotations")
        self.observer.event(
            EPOCH_ROTATED,
            epoch_index=self._plan.schedule.epoch_index_at(time_s),
            n_active_electrodes=len(key.active_electrodes),
            flow_level=key.flow_level,
        )

    def drive_schedule(self) -> int:
        """Walk the whole schedule through the multiplexer.

        Returns the number of mux reconfigurations performed; used by
        tests to confirm unselected electrodes are always grounded.
        """
        if self._plan is None:
            raise ConfigurationError("no key schedule provisioned")
        for index in range(self._plan.schedule.n_epochs):
            start_s, _ = self._plan.schedule.epoch_bounds(index)
            self.apply_epoch(start_s)
        return self.multiplexer.switch_count

    # ------------------------------------------------------------------
    # Decryption (TCB-internal, "multiplications and divisions")
    # ------------------------------------------------------------------
    def decrypt(self, report: PeakReport) -> DecryptionResult:
        """Decrypt a cloud peak report with the held schedule."""
        if self._plan is None:
            raise ConfigurationError("no key schedule provisioned")
        decryptor = SignalDecryptor(plan=self._plan, channel=self.channel)
        return decryptor.decrypt(report, observer=self.observer)

    def decrypt_degraded(
        self, report: PeakReport, exclude_electrodes: Iterable[int]
    ) -> DecryptionResult:
        """Decrypt with *dead* electrodes masked out of the template.

        A dead electrode produces no dips, so decrypting against the
        full schedule under-matches every particle signature.  Masking
        removes the dead electrodes from each epoch's active set — the
        template then expects exactly the dips a degraded array still
        produces, and the per-epoch multiplication factor ``m(E)``
        re-derives from the surviving electrodes.

        Only mask electrodes the self-test reports **dead**: a weak
        electrode's dips are still detected, and masking it would leave
        real peaks unmatched.  Raises :class:`ConfigurationError` when
        an epoch would lose *all* its electrodes (nothing left to
        decode — the caller must declare the capture unrecoverable).
        """
        if self._plan is None:
            raise ConfigurationError("no key schedule provisioned")
        excluded = frozenset(int(e) for e in exclude_electrodes)
        if not excluded:
            return self.decrypt(report)
        schedule = self._plan.schedule
        masked_epochs = []
        for index, epoch in enumerate(schedule.epochs):
            remaining = epoch.active_electrodes - excluded
            if not remaining:
                raise ConfigurationError(
                    f"epoch {index} has no live active electrodes left "
                    f"after masking {sorted(excluded)}"
                )
            masked_epochs.append(
                EpochKey(
                    active_electrodes=remaining,
                    gain_levels=epoch.gain_levels,
                    flow_level=epoch.flow_level,
                )
            )
        masked_plan = EncryptionPlan(
            schedule=KeySchedule(
                epoch_duration_s=schedule.epoch_duration_s,
                epochs=tuple(masked_epochs),
            ),
            array=self._plan.array,
            gain_table=self._plan.gain_table,
            flow_table=self._plan.flow_table,
        )
        decryptor = SignalDecryptor(plan=masked_plan, channel=self.channel)
        self.observer.incr("crypto.degraded_decrypts")
        return decryptor.decrypt(report, observer=self.observer)
