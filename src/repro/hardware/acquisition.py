"""Acquisition front-end: pulse events -> recorded voltage trace.

Chains the physics substrate: synthesize the fractional dip signal at
the lock-in's internal oversampled rate, apply baseline drift and
measurement noise, then demodulate/filter/decimate to the recorded
450 Hz multi-channel trace the cloud side analyses.
"""

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from repro._util.rng import RngLike, ensure_rng
from repro._util.validation import check_positive
from repro.physics.lockin import LockInAmplifier
from repro.physics.noise import NoiseModel
from repro.physics.peaks import PulseEvent, synthesize_pulse_train


@dataclass(frozen=True)
class AcquiredTrace:
    """A recorded multi-carrier capture.

    ``voltages`` has shape ``(n_channels, n_samples)``; channel order
    matches ``carrier_frequencies_hz``.
    """

    voltages: np.ndarray
    sampling_rate_hz: float
    carrier_frequencies_hz: Tuple[float, ...]

    def __post_init__(self) -> None:
        voltages = np.asarray(self.voltages, dtype=float)
        if voltages.ndim != 2:
            raise ValueError(f"voltages must be 2-D, got shape {voltages.shape}")
        if voltages.shape[0] != len(self.carrier_frequencies_hz):
            raise ValueError(
                f"{voltages.shape[0]} channels but "
                f"{len(self.carrier_frequencies_hz)} carriers"
            )
        object.__setattr__(self, "voltages", voltages)
        object.__setattr__(
            self,
            "carrier_frequencies_hz",
            tuple(float(f) for f in self.carrier_frequencies_hz),
        )

    @property
    def n_channels(self) -> int:
        """Number of carrier channels."""
        return self.voltages.shape[0]

    @property
    def n_samples(self) -> int:
        """Samples per channel."""
        return self.voltages.shape[1]

    @property
    def duration_s(self) -> float:
        """Capture duration."""
        return self.n_samples / self.sampling_rate_hz


@dataclass(frozen=True)
class AcquisitionFrontEnd:
    """Renders pulse events through noise and the lock-in chain."""

    lockin: LockInAmplifier = field(default_factory=LockInAmplifier)
    noise: NoiseModel = field(default_factory=NoiseModel)

    def acquire(
        self,
        events: Sequence[PulseEvent],
        duration_s: float,
        rng: RngLike = None,
    ) -> AcquiredTrace:
        """Record ``duration_s`` of signal containing ``events``."""
        check_positive("duration_s", duration_s)
        generator = ensure_rng(rng)
        internal_rate = self.lockin.internal_rate_hz
        fractional = synthesize_pulse_train(
            events,
            n_channels=self.lockin.n_channels,
            sampling_rate_hz=internal_rate,
            duration_s=duration_s,
        )
        noisy = self.noise.apply(fractional, internal_rate, rng=generator)
        voltages = self.lockin.demodulate(noisy)
        return AcquiredTrace(
            voltages=voltages,
            sampling_rate_hz=self.lockin.output_rate_hz,
            carrier_frequencies_hz=self.lockin.carrier_frequencies_hz,
        )
