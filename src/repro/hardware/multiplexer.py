"""Switch-matrix model of the MAX14661-style 16:2 multiplexer.

Paper §VII-A: the selected output electrodes are routed to the first
output channel (towards the lock-in); the remaining electrodes are
routed to the second channel, which is tied to ground to prevent
interference from floating electrodes.
"""

from dataclasses import dataclass
from typing import FrozenSet, Iterable

from repro._util.errors import ConfigurationError


@dataclass
class Multiplexer:
    """A ``n_inputs``:2 analog switch matrix.

    Channel 0 is the measurement bus (to the lock-in); channel 1 is the
    ground bus.  Every input is always routed to exactly one of the two
    buses — the device never leaves electrodes floating.
    """

    n_inputs: int = 16
    switch_time_s: float = 1e-6

    def __post_init__(self) -> None:
        if self.n_inputs < 1:
            raise ConfigurationError(f"n_inputs must be >= 1, got {self.n_inputs}")
        if self.switch_time_s < 0:
            raise ConfigurationError("switch_time_s must be >= 0")
        self._measured: FrozenSet[int] = frozenset()
        self._switch_count = 0

    # ------------------------------------------------------------------
    def select(self, inputs: Iterable[int]) -> None:
        """Route ``inputs`` to the measurement bus, the rest to ground.

        Inputs are numbered 1..n_inputs to match electrode numbering.
        """
        selected = frozenset(int(i) for i in inputs)
        for i in selected:
            if not 1 <= i <= self.n_inputs:
                raise ConfigurationError(
                    f"multiplexer input {i} out of range 1..{self.n_inputs}"
                )
        if selected != self._measured:
            self._switch_count += 1
        self._measured = selected

    @property
    def measured_inputs(self) -> FrozenSet[int]:
        """Inputs currently routed to the measurement bus."""
        return self._measured

    @property
    def grounded_inputs(self) -> FrozenSet[int]:
        """Inputs currently routed to the ground bus."""
        return frozenset(range(1, self.n_inputs + 1)) - self._measured

    @property
    def switch_count(self) -> int:
        """How many reconfigurations have been commanded (wear metric)."""
        return self._switch_count

    def is_measured(self, input_number: int) -> bool:
        """Whether ``input_number`` currently reaches the lock-in."""
        if not 1 <= input_number <= self.n_inputs:
            raise ConfigurationError(
                f"multiplexer input {input_number} out of range 1..{self.n_inputs}"
            )
        return input_number in self._measured

    def supports_array(self, n_outputs: int) -> bool:
        """Whether an array with ``n_outputs`` electrodes fits this mux."""
        return 1 <= n_outputs <= self.n_inputs
