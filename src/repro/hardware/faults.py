"""Hardware fault models and the device self-test.

The paper's own prototype shipped with a fabrication flaw ("the ninth
electrode ... only generates one peak ... a minor fabrication flaw of
the sensor", §VII-A), which is exactly why a deployable device needs
fault models and a self-test:

* :class:`FaultySensor` — wraps the event stream with injectable
  faults: dead output electrodes (no dips), weak electrodes
  (attenuated dips), a stuck multiplexer input (an electrode that is
  always measured regardless of the key).
* :func:`self_test` — the §VI-style calibration procedure: run a known
  bead stream with each electrode activated alone and compare the dip
  counts/amplitudes against expectation, reporting which electrodes
  are dead, weak, or stuck.

A stuck-on electrode is also a *security* fault: it adds key-independent
peaks, which both corrupts decryption arithmetic and leaks a constant
component an attacker could subtract — the self-test exists so the
device refuses to operate in that state.
"""

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from repro._util.errors import ConfigurationError, MedSenError
from repro._util.rng import RngLike, ensure_rng
from repro._util.validation import check_in_range
from repro.dsp.peakdetect import PeakDetector
from repro.hardware.acquisition import AcquisitionFrontEnd
from repro.hardware.electrodes import ElectrodeArray
from repro.microfluidics.channel import MicrofluidicChannel
from repro.microfluidics.transport import ParticleArrival
from repro.particles.library import BEAD_7P8
from repro.particles.sample import Particle
from repro.physics.electrical import ElectrodePairCircuit
from repro.physics.lockin import LockInAmplifier
from repro.physics.peaks import PulseEvent


class UnsafeHardwareError(MedSenError):
    """The self-test found faults that make encrypted operation unsafe.

    Raised by :meth:`SelfTestReport.require_operational` for a stuck-on
    array (key-independent dips corrupt decryption *and* leak a
    constant signal component) or an array with no live electrode left.
    """


@dataclass(frozen=True)
class FaultModel:
    """Injectable electrode faults.

    Parameters
    ----------
    dead_electrodes:
        Outputs that produce no signal at all (broken trace/bond).
    weak_electrodes:
        Outputs whose dips are attenuated by ``weak_attenuation``
        (degraded metallisation).
    stuck_on_electrodes:
        Outputs hard-wired to the measurement bus: they fire for every
        particle regardless of the key.
    """

    dead_electrodes: FrozenSet[int] = frozenset()
    weak_electrodes: FrozenSet[int] = frozenset()
    stuck_on_electrodes: FrozenSet[int] = frozenset()
    weak_attenuation: float = 0.3

    def __post_init__(self) -> None:
        object.__setattr__(self, "dead_electrodes", frozenset(self.dead_electrodes))
        object.__setattr__(self, "weak_electrodes", frozenset(self.weak_electrodes))
        object.__setattr__(
            self, "stuck_on_electrodes", frozenset(self.stuck_on_electrodes)
        )
        check_in_range("weak_attenuation", self.weak_attenuation, 0.0, 1.0)
        overlap = self.dead_electrodes & self.stuck_on_electrodes
        if overlap:
            raise ConfigurationError(
                f"electrodes {sorted(overlap)} cannot be both dead and stuck on"
            )

    @property
    def is_healthy(self) -> bool:
        """True when no fault is configured."""
        return not (
            self.dead_electrodes or self.weak_electrodes or self.stuck_on_electrodes
        )

    # ------------------------------------------------------------------
    def apply_to_events(
        self,
        events: Sequence[PulseEvent],
        array: ElectrodeArray,
        arrivals: Sequence[ParticleArrival] = (),
        circuit: ElectrodePairCircuit = None,
        carriers: Sequence[float] = (),
    ) -> List[PulseEvent]:
        """Transform a keyed event stream through the fault model.

        Dead electrodes drop their events; weak electrodes attenuate
        them; stuck-on electrodes add events for *every* arrival (the
        extra dips a hard-wired input contributes).
        """
        out: List[PulseEvent] = []
        for event in events:
            electrode = event.electrode_index
            if electrode in self.dead_electrodes:
                continue
            if electrode in self.weak_electrodes:
                out.append(
                    PulseEvent(
                        center_s=event.center_s,
                        width_s=event.width_s,
                        amplitudes=event.amplitudes * self.weak_attenuation,
                        electrode_index=electrode,
                        particle_index=event.particle_index,
                    )
                )
            else:
                out.append(event)

        if self.stuck_on_electrodes and arrivals:
            circuit = circuit or ElectrodePairCircuit()
            carrier_array = np.asarray(list(carriers) or [500e3])
            # Which (particle, electrode) pairs already have events?
            covered = {
                (event.particle_index, event.electrode_index) for event in events
            }
            for particle_index, arrival in enumerate(arrivals):
                for electrode in sorted(self.stuck_on_electrodes):
                    if (particle_index, electrode) in covered:
                        continue
                    drops = arrival.particle.relative_drop(carrier_array)
                    amplitudes = np.asarray(
                        circuit.measured_drop(carrier_array, drops), dtype=float
                    )
                    width_s = array.dip_fwhm_s(arrival.velocity_m_s)
                    for gap_m in array.gap_positions_m(electrode):
                        out.append(
                            PulseEvent(
                                center_s=arrival.time_s + gap_m / arrival.velocity_m_s,
                                width_s=width_s,
                                amplitudes=amplitudes,
                                electrode_index=electrode,
                                particle_index=particle_index,
                            )
                        )
        out.sort(key=lambda event: event.center_s)
        return out


@dataclass(frozen=True)
class ElectrodeHealth:
    """Self-test verdict for one output electrode."""

    electrode: int
    expected_dips: int
    observed_dips: int
    mean_depth: float
    verdict: str  # "ok" | "dead" | "weak" | "stuck"


@dataclass(frozen=True)
class SelfTestReport:
    """Result of a full array self-test."""

    electrodes: Tuple[ElectrodeHealth, ...]

    @property
    def healthy(self) -> bool:
        """True when every electrode reports ok."""
        return all(entry.verdict == "ok" for entry in self.electrodes)

    def faulty_electrodes(self) -> Dict[str, List[int]]:
        """Faults grouped by verdict."""
        out: Dict[str, List[int]] = {}
        for entry in self.electrodes:
            if entry.verdict != "ok":
                out.setdefault(entry.verdict, []).append(entry.electrode)
        return out

    def electrodes_with_verdict(self, verdict: str) -> List[int]:
        """Electrode numbers whose verdict matches, ascending."""
        return sorted(
            entry.electrode for entry in self.electrodes if entry.verdict == verdict
        )

    @property
    def operational(self) -> bool:
        """Whether *encrypted* operation is still safe.

        Degraded-mode analysis can mask dead electrodes and tolerate
        weak ones (:mod:`repro.resilience.degraded`), but a stuck
        verdict anywhere means some electrode fires regardless of the
        key — the cipher's security argument is void and the arithmetic
        uncorrectable — and an array with *no* live electrode has
        nothing left to sense with.  Both must refuse to operate.
        """
        if any(entry.verdict == "stuck" for entry in self.electrodes):
            return False
        return any(entry.verdict in ("ok", "weak") for entry in self.electrodes)

    def require_operational(self) -> None:
        """Raise :class:`UnsafeHardwareError` unless encrypted operation
        is safe (possibly degraded)."""
        if self.operational:
            return
        stuck = self.electrodes_with_verdict("stuck")
        if stuck:
            raise UnsafeHardwareError(
                f"stuck-on contamination detected (electrodes {stuck}): "
                "key-independent dips corrupt decryption; refusing to operate"
            )
        raise UnsafeHardwareError(
            "no live electrodes: every output is dead; refusing to operate"
        )


def self_test(
    array: ElectrodeArray,
    fault_model: FaultModel,
    n_test_beads: int = 5,
    carriers: Tuple[float, ...] = (500e3,),
    rng: RngLike = None,
) -> SelfTestReport:
    """Calibration self-test: activate each electrode alone.

    For each output electrode, a known bead stream passes with only
    that electrode selected; the detected dip count and depth expose
    dead (no dips), weak (shallow dips) and stuck (dips appear while a
    *different* electrode is selected) outputs.
    """
    if n_test_beads < 1:
        raise ConfigurationError("n_test_beads must be >= 1")
    generator = ensure_rng(rng)
    channel = MicrofluidicChannel()
    velocity = channel.velocity_for_flow_rate(0.08)
    circuit = ElectrodePairCircuit()
    lockin = LockInAmplifier(carrier_frequencies_hz=carriers)
    front_end = AcquisitionFrontEnd(lockin=lockin)
    detector = PeakDetector()
    reference_depth = float(
        circuit.measured_drop(carriers[0], BEAD_7P8.relative_drop(carriers[0]))
    )

    # Stuck detection pass: select ONLY the lead electrode and look for
    # dips attributable to others.  (Done per-electrode below instead:
    # when testing electrode e, stuck electrodes also fire.)
    results: List[ElectrodeHealth] = []
    spacing_s = 1.0
    duration_s = n_test_beads * spacing_s + 1.0
    arrivals = [
        ParticleArrival(0.5 + i * spacing_s, Particle(BEAD_7P8, BEAD_7P8.diameter_m), velocity)
        for i in range(n_test_beads)
    ]

    for electrode in array.electrode_numbers:
        expected_per_bead = array.dips_per_particle(electrode)
        events = []
        width_s = array.dip_fwhm_s(velocity)
        for particle_index, arrival in enumerate(arrivals):
            drops = arrival.particle.relative_drop(np.asarray(carriers))
            amplitudes = np.asarray(
                circuit.measured_drop(np.asarray(carriers), drops), dtype=float
            )
            for gap_m in array.gap_positions_m(electrode):
                events.append(
                    PulseEvent(
                        center_s=arrival.time_s + gap_m / arrival.velocity_m_s,
                        width_s=width_s,
                        amplitudes=amplitudes,
                        electrode_index=electrode,
                        particle_index=particle_index,
                    )
                )
        faulted = fault_model.apply_to_events(
            events, array, arrivals=arrivals, circuit=circuit, carriers=carriers
        )
        trace = front_end.acquire(faulted, duration_s, rng=generator)
        report = detector.detect(trace.voltages, trace.sampling_rate_hz)

        expected_total = expected_per_bead * n_test_beads
        observed = report.count
        mean_depth = (
            float(np.mean([p.depth for p in report.peaks])) if report.peaks else 0.0
        )

        stuck_extras = sum(
            array.dips_per_particle(e)
            for e in fault_model.stuck_on_electrodes
            if e != electrode
        ) * n_test_beads
        if observed == 0:
            verdict = "dead"
        elif observed > expected_total and stuck_extras > 0:
            verdict = "stuck"
        elif mean_depth < 0.6 * reference_depth:
            verdict = "weak"
        else:
            verdict = "ok"
        results.append(
            ElectrodeHealth(
                electrode=electrode,
                expected_dips=expected_total,
                observed_dips=observed,
                mean_depth=mean_depth,
                verdict=verdict,
            )
        )
    return SelfTestReport(electrodes=tuple(results))
