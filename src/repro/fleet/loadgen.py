"""Heavy-tailed, million-user load generation in bounded memory.

The sharded tier exists for population scale, so its load generator
must model *population-scale arrival statistics* without holding a
population in memory:

* **arrivals** — a nonhomogeneous Poisson process thinned from its
  peak rate (Lewis & Shedler): a diurnal sinusoid (clinic hours) plus
  Gaussian *flash crowds* (an outbreak screening day).  Thinning keeps
  generation O(1) per event and exactly seeded.
* **tenants** — a Zipf-like draw over ``population`` ranks via the
  log-uniform trick: ``rank = int(population ** U)`` for uniform ``U``
  has density ∝ 1/rank, so a handful of tenants dominate while the
  long tail keeps producing first-time visitors.  Memory is bounded by
  the tenants actually *seen*, never by the population.
* **heavy hitters** — a Space-Saving sketch tracks the top-K tenants
  with bounded counters and a per-key error bound, so the report can
  name the whales without a full frequency table.
* **slow tenants** — a deterministic hash of the tenant id marks a
  fraction of the population as slow (longer capture durations), the
  classic head-of-line-blocking stressor for the shard worker pools.

Every draw derives from the profile seed, so a load run is replayable:
the same profile produces the identical arrival tape, tenant sequence,
and therefore — by the fleet determinism contract — the identical
session outcomes.
"""

import asyncio
import hashlib
import math
from dataclasses import dataclass, field
from time import monotonic as _monotonic
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro._util.errors import AdmissionError, MedSenError
from repro.auth.identifier import CytoIdentifier
from repro.core.config import MedSenConfig
from repro.fleet.frontdoor import AsyncFrontDoor, FleetSaturatedError
from repro.particles.library import get_particle_type
from repro.particles.sample import Sample
from repro.serving.request import derive_request_rng

#: Disease-stage baselines cycled over tenant ranks (same staging
#: spread the clinic workload uses).
MARKER_BASELINES_PER_UL = (700.0, 450.0, 300.0, 150.0)


@dataclass(frozen=True)
class LoadProfile:
    """Shape of one synthetic arrival tape.

    Parameters
    ----------
    population:
        Addressable tenant universe (ranks ``1..population``); memory
        use scales with tenants *seen*, not with this number.
    duration_s:
        Virtual length of the tape.
    base_rate_per_s, diurnal_amplitude, diurnal_period_s:
        Sinusoidal arrival intensity (amplitude in ``[0, 1)``).
    flash_crowds:
        ``(center_s, width_s, rate_per_s)`` Gaussian intensity bumps.
    slow_tenant_fraction, slow_duration_s:
        A deterministic slice of tenants always submits long captures.
    session_duration_s:
        Capture duration for everyone else.
    seed:
        Drives arrivals, ranks, and per-session sample draws.
    """

    population: int = 1_000_000
    duration_s: float = 60.0
    base_rate_per_s: float = 4.0
    diurnal_amplitude: float = 0.6
    diurnal_period_s: float = 240.0
    flash_crowds: Tuple[Tuple[float, float, float], ...] = ()
    slow_tenant_fraction: float = 0.05
    slow_duration_s: float = 12.0
    session_duration_s: float = 6.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population < 1:
            raise MedSenError(f"population must be >= 1, got {self.population}")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise MedSenError(
                f"diurnal_amplitude must be in [0, 1), got {self.diurnal_amplitude}"
            )

    # ------------------------------------------------------------------
    def rate(self, t_s: float) -> float:
        """Arrival intensity (events/s) at virtual time ``t_s``."""
        value = self.base_rate_per_s * (
            1.0
            + self.diurnal_amplitude
            * math.sin(2.0 * math.pi * t_s / self.diurnal_period_s)
        )
        for center_s, width_s, rate_per_s in self.flash_crowds:
            value += rate_per_s * math.exp(
                -0.5 * ((t_s - center_s) / max(width_s, 1e-9)) ** 2
            )
        return max(value, 0.0)

    @property
    def peak_rate(self) -> float:
        """Analytic upper bound on :meth:`rate` (the thinning envelope)."""
        return self.base_rate_per_s * (1.0 + self.diurnal_amplitude) + sum(
            rate for _, _, rate in self.flash_crowds
        )

    # ------------------------------------------------------------------
    def is_slow_tenant(self, tenant_id: str) -> bool:
        """Stable per-tenant attribute (hash slice, not a draw)."""
        digest = hashlib.blake2b(
            b"medsen-slow:" + tenant_id.encode("utf-8"), digest_size=8
        ).digest()
        u = int.from_bytes(digest, "big") / float(1 << 64)
        return u < self.slow_tenant_fraction


@dataclass(frozen=True)
class Arrival:
    """One event on the arrival tape."""

    at_s: float
    tenant_id: str
    rank: int
    duration_s: float


def generate_arrivals(profile: LoadProfile) -> Iterator[Arrival]:
    """Seeded lazy arrival tape (Lewis–Shedler thinning).

    Candidate events come from a homogeneous Poisson process at the
    peak rate; each is kept with probability ``rate(t)/peak``, which
    yields exactly the nonhomogeneous intensity without discretising
    time.  O(1) memory, O(1) work per candidate.
    """
    rng = np.random.default_rng([profile.seed, 0xF1EE7])
    peak = profile.peak_rate
    if peak <= 0.0:
        return
    t = 0.0
    log_pop = math.log(profile.population) if profile.population > 1 else 0.0
    while True:
        t += float(rng.exponential(1.0 / peak))
        if t >= profile.duration_s:
            return
        if float(rng.random()) * peak > profile.rate(t):
            continue  # thinned away
        # Log-uniform rank: P(rank = r) ∝ 1/r over 1..population.
        rank = int(math.exp(float(rng.random()) * log_pop)) if log_pop else 1
        rank = min(max(rank, 1), profile.population)
        tenant_id = f"user-{rank:07d}"
        duration_s = (
            profile.slow_duration_s
            if profile.is_slow_tenant(tenant_id)
            else profile.session_duration_s
        )
        yield Arrival(at_s=t, tenant_id=tenant_id, rank=rank, duration_s=duration_s)


class SpaceSaving:
    """Bounded-memory heavy-hitter counters (Metwally et al.).

    At most ``capacity`` keys are tracked; a new key evicts the current
    minimum and inherits its count as the key's *error bound*, so
    reported counts overestimate by at most that bound.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise MedSenError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._counts: Dict[str, int] = {}
        self._errors: Dict[str, int] = {}

    def offer(self, key: str) -> None:
        if key in self._counts:
            self._counts[key] += 1
            return
        if len(self._counts) < self.capacity:
            self._counts[key] = 1
            self._errors[key] = 0
            return
        victim = min(self._counts, key=self._counts.__getitem__)
        floor = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[key] = floor + 1
        self._errors[key] = floor

    def top(self, n: int = 10) -> List[Tuple[str, int, int]]:
        """``(key, count, error)`` triples, heaviest first."""
        ranked = sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return [(key, count, self._errors[key]) for key, count in ranked[:n]]


#: Enrolment attempts per tenant before giving up: the demo alphabet's
#: password space is tiny (two bead characters), so duplicate draws are
#: common and the enrolment station refuses them; alternate draws let a
#: tenant claim any password still free.
ENROLL_ATTEMPTS = 9


def tenant_identifier(seed: int, tenant_id: str, attempt: int = 0) -> CytoIdentifier:
    """Deterministic cyto-coded password for a synthetic tenant.

    ``attempt`` selects an alternate draw for enrolment retries after a
    duplicate-password refusal.
    """
    config = MedSenConfig()
    rng = derive_request_rng(seed, tenant_id + "#identifier", attempt)
    while True:
        identifier = CytoIdentifier.random(config.alphabet, rng=rng)
        # Every bead type present: fragile passwords (a missing level)
        # fail decoding on short captures; a real enrolment station
        # would reject them, so the load generator does too.
        if min(identifier.levels) >= 1:
            return identifier


def tenant_blood(seed: int, tenant_id: str, rank: int, sequence: int) -> Sample:
    """The tenant's blood draw for one visit (deterministic)."""
    baseline = MARKER_BASELINES_PER_UL[rank % len(MARKER_BASELINES_PER_UL)]
    rng = derive_request_rng(seed, tenant_id + "#blood", sequence)
    concentration = baseline * float(rng.uniform(0.9, 1.1))
    return Sample.from_concentrations(
        {get_particle_type("blood_cell"): concentration},
        volume_ul=10.0,
        rng=rng,
    )


@dataclass
class LoadReport:
    """What one load replay achieved."""

    n_arrivals: int = 0
    n_distinct_tenants: int = 0
    n_slow_sessions: int = 0
    n_completed: int = 0
    n_shed: int = 0
    n_rejected: int = 0
    n_failed: int = 0
    peak_rate_per_s: float = 0.0
    wall_time_s: float = 0.0
    heavy_hitters: List[Tuple[str, int, int]] = field(default_factory=list)
    failures_by_type: Dict[str, int] = field(default_factory=dict)

    @property
    def sessions_per_second(self) -> float:
        if self.wall_time_s <= 0:
            return 0.0
        return self.n_completed / self.wall_time_s

    def format(self) -> str:
        lines = [
            f"arrivals      {self.n_arrivals} over {self.n_distinct_tenants} tenants "
            f"({self.n_slow_sessions} slow sessions, peak {self.peak_rate_per_s:.1f}/s)",
            f"sessions      {self.n_completed} completed, {self.n_shed} shed, "
            f"{self.n_rejected} rejected, {self.n_failed} failed",
            f"throughput    {self.sessions_per_second:.2f} sessions/s "
            f"({self.wall_time_s:.2f} s wall)",
        ]
        if self.heavy_hitters:
            hitters = ", ".join(
                f"{key}×{count}" for key, count, _ in self.heavy_hitters[:5]
            )
            lines.append(f"heavy hitters {hitters}")
        if self.failures_by_type:
            summary = ", ".join(
                f"{name}×{count}"
                for name, count in sorted(self.failures_by_type.items())
            )
            lines.append(f"failures      {summary}")
        return "\n".join(lines)


async def replay(
    door: AsyncFrontDoor,
    profile: LoadProfile,
    time_scale: float = 0.0,
    heavy_hitter_capacity: int = 64,
    max_arrivals: Optional[int] = None,
) -> LoadReport:
    """Replay the profile's arrival tape through a front door.

    ``time_scale=0`` runs closed-loop: the generator waits for an
    inflight slot before each submit, measuring sustained throughput
    with zero shedding.  ``time_scale>0`` runs open-loop at scaled
    arrival times — a flash crowd then genuinely saturates the front
    door, and the typed sheds show up in the report.

    Memory stays bounded by (tenants seen) + (inflight sessions); the
    tape itself is never materialised.
    """
    report = LoadReport(peak_rate_per_s=profile.peak_rate)
    hitters = SpaceSaving(heavy_hitter_capacity)
    sequences: Dict[str, int] = {}
    enrolled: Dict[str, CytoIdentifier] = {}
    refused: set = set()
    tasks: set = set()
    started = _monotonic()

    async def run_one(arrival: Arrival, sequence: int) -> None:
        try:
            await door.submit(
                arrival.tenant_id,
                tenant_blood(profile.seed, arrival.tenant_id, arrival.rank, sequence),
                enrolled[arrival.tenant_id],
                duration_s=arrival.duration_s,
            )
            report.n_completed += 1
        except FleetSaturatedError:
            report.n_shed += 1
        except AdmissionError:
            report.n_rejected += 1
        except Exception as error:  # typed fleet/shard failures
            report.n_failed += 1
            name = type(error).__name__
            report.failures_by_type[name] = report.failures_by_type.get(name, 0) + 1

    for arrival in generate_arrivals(profile):
        if max_arrivals is not None and report.n_arrivals >= max_arrivals:
            break
        report.n_arrivals += 1
        hitters.offer(arrival.tenant_id)
        if arrival.duration_s > profile.session_duration_s:
            report.n_slow_sessions += 1
        if arrival.tenant_id in refused:
            report.n_rejected += 1
            continue
        if arrival.tenant_id not in sequences:
            for attempt in range(ENROLL_ATTEMPTS):
                identifier = tenant_identifier(
                    profile.seed, arrival.tenant_id, attempt
                )
                try:
                    await door.register_tenant(arrival.tenant_id, identifier)
                except MedSenError:
                    # Password already enrolled to someone else — the
                    # station refuses it; try an alternate draw.
                    continue
                enrolled[arrival.tenant_id] = identifier
                sequences[arrival.tenant_id] = 0
                break
            else:
                # Password space exhausted for this tenant: a typed,
                # counted rejection (the demo alphabet's capacity cap).
                refused.add(arrival.tenant_id)
                report.n_rejected += 1
                continue
        sequence = sequences[arrival.tenant_id]
        sequences[arrival.tenant_id] = sequence + 1
        if time_scale > 0.0:
            target = started + arrival.at_s * time_scale
            delay = target - _monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
        else:
            while door.inflight >= door.max_inflight:
                await asyncio.sleep(0.002)
        task = asyncio.ensure_future(run_one(arrival, sequence))
        tasks.add(task)
        task.add_done_callback(tasks.discard)

    if tasks:
        await asyncio.gather(*tasks)
    report.n_distinct_tenants = len(sequences)
    report.heavy_hitters = hitters.top(10)
    report.wall_time_s = _monotonic() - started
    return report
