"""Replicated partitions: primary/standby pairs under epoch leases.

The single-copy fleet (:class:`~repro.fleet.cluster.FleetCluster`)
treats a dead shard as an outage for its key range until a restart
replays the journal.  This module upgrades each hash-ring partition to
a **primary + synchronous standby** pair:

* every committed record's checksummed journal line (the exact
  :func:`~repro.resilience.journal.encode_entry` bytes the primary
  journaled) is **shipped** to the standby — and applied, CRC-verified,
  through the same quarantine gate crash recovery uses — *before* the
  front door acknowledges the client;
* failover is **lease-based**: the cluster supervisor is the only
  epoch authority (:class:`LeaseTable`).  A standby promotes only
  after the primary's lease has *lapsed*, and every promotion bumps the
  partition epoch.  Renewal is the heartbeat, not a change of
  authority: it refreshes the sitting holder's TTL at the *same*
  epoch, so a primary's own heartbeat never fences replies it already
  computed.  Failovers of one partition never block another — the
  promote/rejoin critical section is a per-partition lock — and
  concurrent or straggling failover calls coalesce on the epoch the
  caller observed at crash time;
* stale primaries are **fenced**, not trusted: a shard tags every
  reply with the epoch it holds, and the front door refuses replies
  carrying a superseded epoch — a partitioned old primary can keep
  computing, but nothing it says after promotion is ever acknowledged
  (no split-brain double-acks);
* **anti-entropy**: the supervisor keeps a per-partition **on-disk**
  replication log of every shipped line (append-only, same policy as
  the shards' own journals, so supervisor memory stays O(1) under
  sustained load).  A dead or fenced shard rejoins by having its
  journal overwritten with that log and recovering from it —
  divergent post-fence commits are discarded, and the rejoined standby
  is bit-identical to the shipped history.

Determinism is what makes fencing safe: a fenced reply's session is
re-run on the promoted primary with the *same* ``(seed, tenant,
tenant_sequence)`` RNG coordinates, so the client-visible outcome is
bit-identical to what the stale primary computed and the honest-output
fingerprint matches a no-fault run (``docs/replication.md``).
"""

import os
import shutil
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro._util.errors import ConfigurationError, MedSenError
from repro.fleet.cluster import (
    FleetCluster,
    FleetTierConfig,
    ShardHandle,
)
from repro.fleet.messages import Ack, JournalShip, LeaseGrant
from repro.fleet.shard import ShardSpec
from repro.obs import (
    LEASE_EXPIRED,
    LEASE_GRANTED,
    LEASE_RENEWED,
    MONOTONIC_CLOCK,
    NULL_OBSERVER,
    REPLICA_PROMOTED,
    REPLICA_REJOINED,
    SHARD_SPAWNED,
    Clock,
)


@dataclass(frozen=True)
class ReplicationConfig:
    """Knobs of the primary/standby lane.

    Parameters
    ----------
    lease_ttl_s:
        How long a primary's lease lasts without renewal.  Failover
        waits out the *remaining* TTL before promoting, so the window
        bounds both split-brain exposure and MTTR.
    handoff_capacity:
        How many requests may queue (per partition) for the promoted
        standby during a failover; one more is shed with a typed
        refusal rather than buffered without bound.
    handoff_window_s:
        Ceiling on how long a queued request waits for promotion.
    """

    lease_ttl_s: float = 0.75
    handoff_capacity: int = 16
    handoff_window_s: float = 15.0

    def __post_init__(self) -> None:
        if not self.lease_ttl_s > 0:
            raise ConfigurationError(
                f"lease_ttl_s must be > 0, got {self.lease_ttl_s}"
            )
        if self.handoff_capacity < 1:
            raise ConfigurationError(
                f"handoff_capacity must be >= 1, got {self.handoff_capacity}"
            )
        if not self.handoff_window_s > 0:
            raise ConfigurationError(
                f"handoff_window_s must be > 0, got {self.handoff_window_s}"
            )


@dataclass(frozen=True)
class Lease:
    """One epoch-numbered primary lease over a partition."""

    partition: str
    holder: str
    epoch: int
    granted_at_s: float
    ttl_s: float

    @property
    def expires_at_s(self) -> float:
        return self.granted_at_s + self.ttl_s

    def expired(self, now_s: float) -> bool:
        return now_s >= self.expires_at_s

    def remaining_s(self, now_s: float) -> float:
        return max(0.0, self.expires_at_s - now_s)


class LeaseTable:
    """The supervisor's lease ledger: the only source of epochs.

    Epochs are monotone per partition — every **grant** bumps them —
    and a shard never invents one; it only adopts what a
    :class:`~repro.fleet.messages.LeaseGrant` message delivers.  A
    :meth:`renew` is *not* a grant: it refreshes the sitting holder's
    TTL window at the same epoch, because an epoch that changed hands
    is what fencing means and a heartbeat must never fence the
    heartbeater's own in-flight replies.  The table is thread-safe:
    the asyncio front door reads epochs for fencing while a failover
    thread grants the next one.
    """

    def __init__(
        self,
        default_ttl_s: float = 0.75,
        clock: Clock = MONOTONIC_CLOCK,
        observer=NULL_OBSERVER,
    ) -> None:
        if not default_ttl_s > 0:
            raise ConfigurationError(
                f"default_ttl_s must be > 0, got {default_ttl_s}"
            )
        self.default_ttl_s = default_ttl_s
        self.clock = clock
        self.observer = observer
        self._leases: Dict[str, Lease] = {}
        self._epochs: Dict[str, int] = {}
        self._lock = threading.Lock()

    def grant(
        self, partition: str, holder: str, ttl_s: Optional[float] = None
    ) -> Lease:
        """Grant the partition's next-epoch primary lease to ``holder``."""
        if not partition or not holder:
            raise ConfigurationError("partition and holder must be non-empty")
        ttl_s = ttl_s if ttl_s is not None else self.default_ttl_s
        if not ttl_s > 0:
            raise ConfigurationError(f"ttl_s must be > 0, got {ttl_s}")
        with self._lock:
            epoch = self._epochs.get(partition, 0) + 1
            self._epochs[partition] = epoch
            lease = Lease(
                partition=partition,
                holder=holder,
                epoch=epoch,
                granted_at_s=self.clock(),
                ttl_s=ttl_s,
            )
            self._leases[partition] = lease
        self.observer.event(
            LEASE_GRANTED,
            partition=partition,
            holder=holder,
            epoch=epoch,
            ttl_s=ttl_s,
        )
        self.observer.incr("fleet.leases_granted")
        return lease

    def renew(self, partition: str, ttl_s: Optional[float] = None) -> Lease:
        """Refresh the sitting holder's lease TTL at the *same* epoch.

        Renewal is the primary's heartbeat, not a change of authority:
        the epoch moves only when the holder does (a grant), so
        responses the sitting primary computed under its current epoch
        are never fenced as stale by its own heartbeat.
        """
        ttl_s = ttl_s if ttl_s is not None else self.default_ttl_s
        if not ttl_s > 0:
            raise ConfigurationError(f"ttl_s must be > 0, got {ttl_s}")
        with self._lock:
            lease = self._leases.get(partition)
            if lease is None:
                raise MedSenError(
                    f"partition {partition!r} has no lease to renew"
                )
            lease = replace(lease, granted_at_s=self.clock(), ttl_s=ttl_s)
            self._leases[partition] = lease
        self.observer.event(
            LEASE_RENEWED,
            partition=partition,
            holder=lease.holder,
            epoch=lease.epoch,
            ttl_s=ttl_s,
        )
        self.observer.incr("fleet.leases_renewed")
        return lease

    def current(self, partition: str) -> Optional[Lease]:
        with self._lock:
            return self._leases.get(partition)

    def epoch(self, partition: str) -> int:
        """The partition's current epoch (0 = never leased)."""
        with self._lock:
            return self._epochs.get(partition, 0)

    def is_stale(self, partition: str, epoch: int) -> bool:
        """Whether a reply tagged ``epoch`` must be fenced."""
        return epoch < self.epoch(partition)

    def expired(self, partition: str) -> bool:
        lease = self.current(partition)
        return lease is None or lease.expired(self.clock())

    def wait_lapse(self, partition: str, poll_s: float = 0.01) -> float:
        """Block until the partition's lease has lapsed.

        This is the safety delay that makes promotion single-writer:
        the standby takes over only once the old primary *cannot*
        believe it still holds the lease.  Returns the seconds waited.
        """
        start = self.clock()
        lease = self.current(partition)
        if lease is not None:
            while not lease.expired(self.clock()):
                time.sleep(min(poll_s, max(1e-4, lease.remaining_s(self.clock()))))
            self.observer.event(
                LEASE_EXPIRED,
                partition=partition,
                holder=lease.holder,
                epoch=lease.epoch,
            )
            self.observer.incr("fleet.leases_expired")
        return self.clock() - start


@dataclass
class _Partition:
    """Supervisor-side view of one replicated partition."""

    name: str
    primary: str
    standby: Optional[str]
    #: On-disk replication log: every journal line ever shipped for
    #: this partition, in ship order — the anti-entropy source a
    #: rejoining shard recovers from.  Disk-backed (append-only, the
    #: same policy as the shards' own journals) so the supervisor's
    #: memory footprint stays O(1) under sustained load.
    replog_path: str = ""
    replog_count: int = 0
    #: Serialises this partition's promote/rejoin critical section;
    #: failovers of unrelated partitions never queue behind each other.
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: Guards the replog file: ship() appends from the event-loop
    #: thread while rejoin() snapshots it from an executor thread.
    replog_lock: threading.Lock = field(default_factory=threading.Lock)


class ReplicatedCluster(FleetCluster):
    """A fleet whose ring points at partitions, each a primary+standby.

    ``config.n_shards`` counts **partitions**; the cluster spawns two
    shard processes per partition (``part-NN-a`` / ``part-NN-b``) and
    keeps journaling on for every shard so a respawn always recovers.
    The base class's tenant registration (auth directory on *every*
    shard, standbys included) and shutdown lifecycles are inherited.
    """

    #: Front-door feature gate: plain clusters (and test stubs) lack it.
    replicated = True

    def __init__(
        self,
        config: FleetTierConfig = FleetTierConfig(),
        replication: ReplicationConfig = ReplicationConfig(),
        observer=NULL_OBSERVER,
        clock: Clock = MONOTONIC_CLOCK,
    ) -> None:
        super().__init__(replace(config, journal=True), observer=observer)
        self.replication = replication
        self.clock = clock
        self.leases = LeaseTable(
            default_ttl_s=replication.lease_ttl_s,
            clock=clock,
            observer=observer,
        )
        self._partitions: Dict[str, _Partition] = {}
        self.failovers = 0
        self.failovers_coalesced = 0
        self.rejoins = 0
        self.ship_skipped = 0
        self.last_mttr_s = 0.0

    # ------------------------------------------------------------------
    def _replica_spec(self, shard_id: str, partition: str) -> ShardSpec:
        return ShardSpec(
            shard_id=shard_id,
            fleet=replace(self.config.shard),
            journal_path=self._journal_path(shard_id),
            partition=partition,
            replicated=True,
        )

    def _spawn(self, shard_id: str, partition: str) -> ShardHandle:
        handle = ShardHandle(
            self._replica_spec(shard_id, partition), self.ctx, observer=self.observer
        )
        self._handles[shard_id] = handle
        self.observer.event(SHARD_SPAWNED, shard=shard_id, partition=partition)
        self.observer.incr("fleet.shards_spawned")
        return handle

    def _grant(self, partition: str) -> Lease:
        """Grant the next lease and deliver it to both live replicas."""
        part = self._partitions[partition]
        lease = self.leases.grant(partition, part.primary)
        for shard_id, role in ((part.primary, "primary"), (part.standby, "standby")):
            if shard_id is None:
                continue
            handle = self._handles.get(shard_id)
            if handle is None or not handle.alive:
                continue
            reply = handle.call(
                LeaseGrant(
                    partition=partition,
                    epoch=lease.epoch,
                    role=role,
                    ttl_s=lease.ttl_s,
                ),
                timeout=self.config.request_timeout_s,
            )
            assert isinstance(reply, Ack)
        self.observer.gauge(f"fleet.epoch.{partition}", float(lease.epoch))
        return lease

    def start(self) -> "ReplicatedCluster":
        """Spawn every partition's pair and grant epoch-1 leases."""
        if self._started:
            raise MedSenError("cluster already started")
        for index in range(self.config.n_shards):
            partition = f"part-{index:02d}"
            primary = f"{partition}-a"
            standby = f"{partition}-b"
            self._spawn(primary, partition)
            self._spawn(standby, partition)
            # _spawn resolved the journal dir; the replog lives beside
            # the shard journals and is reaped with them on shutdown.
            assert self._journal_dir is not None
            self._partitions[partition] = _Partition(
                name=partition,
                primary=primary,
                standby=standby,
                replog_path=os.path.join(self._journal_dir, f"{partition}.replog"),
            )
            self.ring.add_shard(partition)
            self._grant(partition)
        self._started = True
        return self

    # ------------------------------------------------------------------
    @property
    def partitions(self) -> Tuple[str, ...]:
        return tuple(sorted(self._partitions))

    def partition_of(self, tenant_id: str) -> str:
        """The partition owning a tenant (the ring maps to partitions)."""
        return self.ring.assign(tenant_id)

    def partition_epoch(self, partition: str) -> int:
        return self.leases.epoch(partition)

    def is_stale(self, partition: str, epoch: int) -> bool:
        """Fencing predicate for one reply's epoch tag."""
        return self.leases.is_stale(partition, epoch)

    def primary_id(self, partition: str) -> str:
        try:
            return self._partitions[partition].primary
        except KeyError:
            raise MedSenError(f"no such partition {partition!r}") from None

    def standby_id(self, partition: str) -> Optional[str]:
        try:
            return self._partitions[partition].standby
        except KeyError:
            raise MedSenError(f"no such partition {partition!r}") from None

    def handle_for(self, tenant_id: str) -> ShardHandle:
        """The *primary* handle of the tenant's partition."""
        return self._handles[self.primary_id(self.partition_of(tenant_id))]

    def standby_handle(self, partition: str) -> Optional[ShardHandle]:
        standby = self.standby_id(partition)
        if standby is None:
            return None
        return self._handles.get(standby)

    def renew(self, partition: str) -> Lease:
        """Heartbeat the sitting primary's lease: fresh TTL, same epoch.

        Only a holder-changing *grant* (start, failover) moves the
        epoch; a renewal merely extends the TTL window, so replies the
        primary already computed — or has queued — under its current
        epoch are never fenced as stale by its own heartbeat.  The
        shards' adopted epoch is unchanged, so no message is needed.
        """
        if partition not in self._partitions:
            raise MedSenError(f"no such partition {partition!r}")
        return self.leases.renew(partition)

    # ------------------------------------------------------------------
    def ship(self, partition: str, journal_entry: str, record: bool = True):
        """Ship one response's journal lines to the partition's standby.

        The lines land in the supervisor's on-disk replication log
        first (the durable anti-entropy source), then go to the live
        standby as a :class:`~repro.fleet.messages.JournalShip`; the
        returned future resolves with the standby's
        :class:`~repro.fleet.messages.ShipAck`.  With no live standby
        (mid-failover) the ship is counted as skipped and ``None`` is
        returned — the replog still has the lines, and the rejoin pass
        reconciles them.  ``record=False`` re-sends lines the replog
        already holds (a front-door retry after a failed ship) without
        appending them a second time — a duplicated replog line would
        replay as a duplicate record on rejoin.
        """
        part = self._partitions[partition]
        lines = tuple(journal_entry.split("\n"))
        if record:
            with part.replog_lock:
                with open(part.replog_path, "a", encoding="utf-8") as replog:
                    for line in lines:
                        replog.write(line + "\n")
                part.replog_count += len(lines)
        handle = self.standby_handle(partition)
        if handle is None or not handle.alive:
            self.ship_skipped += 1
            self.observer.incr("fleet.ship_skipped")
            return None
        self.observer.incr("fleet.entries_shipped", len(lines))
        return handle.request(
            JournalShip(
                partition=partition,
                epoch=self.leases.epoch(partition),
                entries=lines,
            )
        )

    # ------------------------------------------------------------------
    def _coalesce(self, partition: str, epoch: int) -> int:
        self.failovers_coalesced += 1
        self.observer.incr("fleet.failovers_coalesced")
        return epoch

    def fail_over(
        self, partition: str, observed_epoch: Optional[int] = None
    ) -> int:
        """Promote the partition's standby; returns the current epoch.

        Safe to call from any thread (the front door runs it in an
        executor).  ``observed_epoch`` is the partition epoch the
        caller saw when it witnessed the crash; concurrent *and
        straggling* callers coalesce on it — if the epoch has already
        advanced past what the caller observed, someone else promoted
        in the meantime and the current epoch is returned without
        touching roles (re-promoting here would demote the freshly
        promoted primary, and could re-trust a partitioned stale one
        with a newer epoch, defeating fencing).  Without an observed
        epoch the guard falls back to observed state: a live primary
        under an unexpired lease needs no failover.

        The promotion sequence is: wait out the old primary's lease
        (it can no longer believe it holds the partition), swap roles,
        grant the next epoch to the promoted standby, and leave the
        old primary — dead or merely partitioned — as an *unleased*
        ex-holder whose replies the front door fences.  The critical
        section is per-partition, so failovers of unrelated partitions
        proceed in parallel.
        """
        start = self.clock()
        try:
            part = self._partitions[partition]
        except KeyError:
            raise MedSenError(f"no such partition {partition!r}") from None
        with part.lock:
            current_epoch = self.leases.epoch(partition)
            if observed_epoch is not None and current_epoch > observed_epoch:
                # The crash the caller saw predates a promotion that
                # already happened — its failover is already done.
                return self._coalesce(partition, current_epoch)
            if observed_epoch is None:
                primary = self._handles.get(part.primary)
                if (
                    primary is not None
                    and primary.alive
                    and not self.leases.expired(partition)
                ):
                    # The sitting primary is live and still leased:
                    # nothing to fail over from.
                    return self._coalesce(partition, current_epoch)
            standby = self.standby_handle(partition)
            if standby is None or not standby.alive:
                raise MedSenError(
                    f"partition {partition!r} has no live standby to promote"
                )
            self.leases.wait_lapse(partition)
            old_primary = part.primary
            part.primary = part.standby  # type: ignore[assignment]
            part.standby = old_primary
            lease = self.leases.grant(partition, part.primary)
            reply = standby.call(
                LeaseGrant(
                    partition=partition,
                    epoch=lease.epoch,
                    role="primary",
                    ttl_s=lease.ttl_s,
                ),
                timeout=self.config.request_timeout_s,
            )
            assert isinstance(reply, Ack)
            self.failovers += 1
            self.last_mttr_s = self.clock() - start
        self.observer.event(
            REPLICA_PROMOTED,
            partition=partition,
            promoted=part.primary,
            demoted=old_primary,
            epoch=lease.epoch,
            mttr_s=self.last_mttr_s,
        )
        self.observer.incr("fleet.failovers")
        self.observer.gauge("fleet.failover_mttr_s", self.last_mttr_s)
        self.observer.gauge(f"fleet.epoch.{partition}", float(lease.epoch))
        return lease.epoch

    def rejoin(self, partition: str, grant_lease: bool = True) -> ShardHandle:
        """Anti-entropy rejoin of the partition's demoted ex-primary.

        The shard's journal file is **overwritten with the replication
        log** — the shipped history every acknowledged result went
        through — so any divergent records the fenced primary committed
        after promotion are discarded, and the respawned process
        recovers to exactly the replicated state.  It comes back as the
        partition's standby; with ``grant_lease=False`` it is left
        holding epoch 0 (useful to demonstrate fencing of a rejoined
        stale primary).
        """
        try:
            part = self._partitions[partition]
        except KeyError:
            raise MedSenError(f"no such partition {partition!r}") from None
        with part.lock:
            shard_id = part.standby
            if shard_id is None:
                raise MedSenError(f"partition {partition!r} has no shard to rejoin")
            old = self._handles.get(shard_id)
            if old is not None and old.process.is_alive():
                old.kill()
            spec = self._replica_spec(shard_id, partition)
            assert spec.journal_path is not None
            with part.replog_lock:
                # Snapshot the shipped history atomically w.r.t.
                # concurrent ships: the rejoined journal is a clean
                # prefix of the replog, never a torn interleaving.
                if os.path.exists(part.replog_path):
                    shutil.copyfile(part.replog_path, spec.journal_path)
                else:
                    open(spec.journal_path, "w", encoding="utf-8").close()
            handle = self._spawn(shard_id, partition)
        reenrolled = self._reenroll(shard_id)
        if grant_lease:
            epoch = self.leases.epoch(partition)
            reply = handle.call(
                LeaseGrant(
                    partition=partition,
                    epoch=epoch,
                    role="standby",
                    ttl_s=self.replication.lease_ttl_s,
                ),
                timeout=self.config.request_timeout_s,
            )
            assert isinstance(reply, Ack)
        self.rejoins += 1
        self.observer.event(
            REPLICA_REJOINED,
            partition=partition,
            shard=shard_id,
            reenrolled=reenrolled,
            replog_lines=part.replog_count,
        )
        self.observer.incr("fleet.rejoins")
        return handle

    # ------------------------------------------------------------------
    def fleet_record_hashes(self, timeout: Optional[float] = None) -> List[str]:
        """Sorted record hashes over **primaries only** — the standby
        holds a replica of the same records, so the base class's
        all-shards union would double-count every committed record."""
        timeout = timeout if timeout is not None else self.config.request_timeout_s
        primaries = {part.primary for part in self._partitions.values()}
        merged: List[str] = []
        for shard_id, digest in self.store_digests(timeout=timeout).items():
            if shard_id in primaries:
                merged.extend(digest.record_hashes)
        return sorted(merged)

    def replog_lines(self, partition: str) -> Tuple[str, ...]:
        """The partition's shipped journal history (drill introspection)."""
        part = self._partitions[partition]
        with part.replog_lock:
            if not os.path.exists(part.replog_path):
                return ()
            with open(part.replog_path, "r", encoding="utf-8") as replog:
                return tuple(replog.read().splitlines())
