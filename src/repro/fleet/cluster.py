"""Parent-side shard supervision: spawn, route, heal, drain, restart.

:class:`FleetCluster` owns N shard **processes** (each running
:func:`~repro.fleet.shard.shard_main`) plus the consistent-hash ring
that maps tenants onto them.  Every shard gets a dedicated duplex pipe
wrapped in a :class:`~repro.fleet.transport.FrameChannel`; a
:class:`ShardHandle` pairs the channel with a receiver thread that
resolves one :class:`concurrent.futures.Future` per outstanding message
id, so replies may arrive in any order (sessions finish whenever the
shard's worker pool finishes them) and the asyncio front door can
``await`` them without blocking its event loop.

Lifecycle is explicit and observable:

* **spawn** — fork/spawn the process, emit ``fleet.shard_spawned``;
* **health** — synchronous :class:`~repro.fleet.messages.HealthCheck`
  round trip with a timeout (a wedged shard is indistinguishable from a
  dead one, so both fail the probe);
* **drain** — stop routing new tenants to the shard, let in-flight work
  finish, then take its points off the ring (minimal key movement);
* **kill / restart** — hard-kill for chaos drills, then respawn from
  the *same* :class:`~repro.fleet.shard.ShardSpec`: the journal path is
  unchanged, so the replacement recovers its store partition
  bit-identically and re-enrols its tenants.

The cluster never shares interpreter state with its shards — telemetry
crosses back as lossless sketch state and is merged with
:func:`~repro.telemetry.quantiles.merge_registries`.
"""

import multiprocessing as mp
import os
import shutil
import tempfile
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro._util.errors import (
    ConfigurationError,
    MedSenError,
    OversizedPayloadError,
    ValidationError,
)
from repro.fleet.messages import (
    Ack,
    Drain,
    ErrorReply,
    HealthCheck,
    RegisterTenant,
    ShardHealth,
    ShardStoreDigest,
    ShardTelemetry,
    Shutdown,
    SnapshotRequest,
    StoreDigest,
)
from repro.fleet.ring import DEFAULT_VNODES, HashRing
from repro.fleet.shard import ShardSpec, shard_main
from repro.fleet.transport import FrameChannel
from repro.obs import (
    NULL_OBSERVER,
    SHARD_DRAINED,
    SHARD_EXITED,
    SHARD_RESTARTED,
    SHARD_SPAWNED,
)
from repro.serving.scheduler import FleetConfig
from repro.telemetry.quantiles import QuantileRegistry, merge_registries


class ShardCrashedError(MedSenError):
    """The shard process died (or its pipe broke) with replies pending."""


class ShardRequestError(MedSenError):
    """A shard refused a request with a typed :class:`ErrorReply`."""

    def __init__(self, shard_id: str, error_type: str, error_message: str) -> None:
        super().__init__(f"[{shard_id}] {error_type}: {error_message}")
        self.shard_id = shard_id
        self.error_type = error_type
        self.error_message = error_message


@dataclass(frozen=True)
class FleetTierConfig:
    """Everything that parameterises the sharded tier.

    Parameters
    ----------
    n_shards:
        Worker processes to spawn (each one full serving stack).
    shard:
        Template :class:`~repro.serving.scheduler.FleetConfig` applied
        to every shard — the shared fleet seed lives here, which is why
        honest outputs do not depend on shard count.
    max_inflight:
        Front-door bound on concurrently admitted sessions; beyond it
        submissions are shed with a typed refusal.
    vnodes:
        Virtual points per shard on the consistent-hash ring.
    journal:
        When True each shard appends committed records to its own
        journal file, enabling bit-identical restart recovery.
    journal_dir:
        Where shard journals live; ``None`` allocates (and later
        removes) a temporary directory.
    request_timeout_s:
        Parent-side ceiling on any single shard round trip.
    start_method:
        ``multiprocessing`` start method; ``None`` prefers ``fork``
        (cheap on Linux) and falls back to ``spawn``.
    """

    n_shards: int = 2
    shard: FleetConfig = field(default_factory=FleetConfig)
    max_inflight: int = 64
    vnodes: int = DEFAULT_VNODES
    journal: bool = False
    journal_dir: Optional[str] = None
    request_timeout_s: float = 120.0
    start_method: Optional[str] = None

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {self.vnodes}")
        if not self.request_timeout_s > 0:
            raise ConfigurationError(
                f"request_timeout_s must be > 0, got {self.request_timeout_s}"
            )


def _mp_context(start_method: Optional[str]):
    if start_method is not None:
        return mp.get_context(start_method)
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


class ShardHandle:
    """Parent-side endpoint of one shard process.

    ``request`` is thread-safe (sends are serialised under a lock) and
    returns a :class:`concurrent.futures.Future` resolved by the
    handle's receiver thread — with the reply payload on success, with
    :class:`ShardRequestError` for a typed refusal, or with
    :class:`ShardCrashedError` if the process dies first.
    """

    def __init__(self, spec: ShardSpec, ctx, observer=NULL_OBSERVER) -> None:
        self.spec = spec
        self.observer = observer
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=shard_main,
            args=(spec, child_conn),
            name=f"medsen-{spec.shard_id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.channel = FrameChannel(parent_conn)
        self._lock = threading.Lock()
        self._next_msg_id = 0
        self._pending: Dict[int, Future] = {}
        self._closed = False
        self._receiver = threading.Thread(
            target=self._receive_loop,
            name=f"recv-{spec.shard_id}",
            daemon=True,
        )
        self._receiver.start()

    # ------------------------------------------------------------------
    @property
    def shard_id(self) -> str:
        return self.spec.shard_id

    @property
    def alive(self) -> bool:
        return self.process.is_alive() and not self._closed

    @property
    def inflight(self) -> int:
        with self._lock:
            return len(self._pending)

    def request(self, payload) -> Future:
        """Send one message; the returned future resolves with the reply."""
        future: Future = Future()
        with self._lock:
            if self._closed:
                future.set_exception(
                    ShardCrashedError(f"shard {self.shard_id} is down")
                )
                return future
            msg_id = self._next_msg_id
            self._next_msg_id += 1
            self._pending[msg_id] = future
            try:
                self.channel.send(msg_id, payload)
            except (OSError, ValueError, BrokenPipeError) as exc:
                self._pending.pop(msg_id, None)
                error = ShardCrashedError(
                    f"shard {self.shard_id} pipe is gone: {exc}"
                )
                error.__cause__ = exc  # provenance survives the Future hop
                future.set_exception(error)
        return future

    def call(self, payload, timeout: Optional[float] = None):
        """Synchronous :meth:`request` (control-plane convenience)."""
        return self.request(payload).result(timeout=timeout)

    # ------------------------------------------------------------------
    def _receive_loop(self) -> None:
        while True:
            try:
                msg_id, payload = self.channel.recv()
            except (EOFError, OSError):
                break
            except (ValidationError, OversizedPayloadError):
                continue  # counted by the channel; keep receiving
            with self._lock:
                future = self._pending.pop(msg_id, None)
            if future is None:
                continue
            if isinstance(payload, ErrorReply):
                future.set_exception(
                    ShardRequestError(
                        payload.shard_id, payload.error_type, payload.error_message
                    )
                )
            else:
                future.set_result(payload)
        self._fail_pending(f"shard {self.shard_id} connection closed")

    def _fail_pending(self, reason: str) -> None:
        with self._lock:
            self._closed = True
            pending = list(self._pending.values())
            self._pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(ShardCrashedError(reason))

    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Hard-kill the process (chaos drill); pending requests fail."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=10.0)
        try:
            self.channel.close()
        except OSError:
            pass
        self._receiver.join(timeout=5.0)
        self._fail_pending(f"shard {self.shard_id} was killed")

    def close(self, timeout: float = 10.0) -> None:
        """Join the process after a clean shutdown message."""
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5.0)
        try:
            self.channel.close()
        except OSError:
            pass
        self._receiver.join(timeout=5.0)
        self._fail_pending(f"shard {self.shard_id} shut down")


class FleetCluster:
    """N shard processes, a ring, and the lifecycle verbs over them."""

    def __init__(
        self, config: FleetTierConfig = FleetTierConfig(), observer=NULL_OBSERVER
    ) -> None:
        if config.n_shards < 1:
            raise MedSenError(f"n_shards must be >= 1, got {config.n_shards}")
        self.config = config
        self.observer = observer
        self.ctx = _mp_context(config.start_method)
        self.ring = HashRing(vnodes=config.vnodes)
        self._handles: Dict[str, ShardHandle] = {}
        self._registered: Dict[str, object] = {}  # tenant -> identifier
        self._started = False
        self._journal_dir: Optional[str] = None
        self._owns_journal_dir = False

    # ------------------------------------------------------------------
    def _journal_path(self, shard_id: str) -> Optional[str]:
        if not self.config.journal:
            return None
        if self._journal_dir is None:
            if self.config.journal_dir is not None:
                self._journal_dir = self.config.journal_dir
                os.makedirs(self._journal_dir, exist_ok=True)
            else:
                self._journal_dir = tempfile.mkdtemp(prefix="medsen-fleet-")
                self._owns_journal_dir = True
        return os.path.join(self._journal_dir, f"{shard_id}.journal")

    def _spec(self, shard_id: str) -> ShardSpec:
        # Shards share the fleet seed: a session's RNG derives from
        # (seed, tenant, tenant_sequence), so partitioning is invisible
        # to honest numeric outputs.
        return ShardSpec(
            shard_id=shard_id,
            fleet=replace(self.config.shard),
            journal_path=self._journal_path(shard_id),
        )

    def start(self) -> "FleetCluster":
        """Spawn every shard and place it on the ring."""
        if self._started:
            raise MedSenError("cluster already started")
        for index in range(self.config.n_shards):
            shard_id = f"shard-{index:02d}"
            self._handles[shard_id] = ShardHandle(
                self._spec(shard_id), self.ctx, observer=self.observer
            )
            self.ring.add_shard(shard_id)
            self.observer.event(SHARD_SPAWNED, shard=shard_id)
            self.observer.incr("fleet.shards_spawned")
        self._started = True
        return self

    def __enter__(self) -> "FleetCluster":
        return self.start() if not self._started else self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    @property
    def shard_ids(self) -> List[str]:
        return sorted(self._handles)

    def handle_for(self, tenant_id: str) -> ShardHandle:
        """The live handle owning ``tenant_id`` (ring assignment)."""
        return self._handles[self.ring.assign(tenant_id)]

    def handle(self, shard_id: str) -> ShardHandle:
        try:
            return self._handles[shard_id]
        except KeyError:
            raise MedSenError(f"no such shard {shard_id!r}") from None

    # ------------------------------------------------------------------
    def register_tenant(self, tenant_id: str, identifier) -> None:
        """Enrol a tenant's cyto-coded password on **every** shard.

        The auth directory is replicated fleet-wide, not partitioned:
        authentication matches the *measured* (noisy) identifier
        against the whole enrolled population, so a shard that saw only
        its own tenants would resolve borderline matches differently
        than the single-process tier and break bit-identity.  Records,
        by contrast, stay partitioned — a session's record lands only
        on the shard that ran it.
        """
        futures = [
            handle.request(RegisterTenant(tenant_id=tenant_id, identifier=identifier))
            for _, handle in sorted(self._handles.items())
            if handle.alive
        ]
        for future in futures:
            reply = future.result(timeout=self.config.request_timeout_s)
            assert isinstance(reply, Ack)
        self._registered[tenant_id] = identifier

    def _reenroll(self, shard_id: str) -> int:
        """Replay the full auth directory onto one (fresh) shard."""
        handle = self._handles[shard_id]
        futures = [
            handle.request(RegisterTenant(tenant_id=tenant_id, identifier=identifier))
            for tenant_id, identifier in sorted(self._registered.items())
        ]
        for future in futures:
            future.result(timeout=self.config.request_timeout_s)
        return len(futures)

    # ------------------------------------------------------------------
    def health(self, timeout: Optional[float] = None) -> Dict[str, ShardHealth]:
        """Probe every live shard (round trip with a deadline)."""
        timeout = timeout if timeout is not None else self.config.request_timeout_s
        futures = {
            shard_id: handle.request(HealthCheck())
            for shard_id, handle in sorted(self._handles.items())
            if handle.alive
        }
        return {sid: fut.result(timeout=timeout) for sid, fut in futures.items()}

    def telemetry(self, timeout: Optional[float] = None) -> List[ShardTelemetry]:
        """Collect every shard's metrics + sketch state."""
        timeout = timeout if timeout is not None else self.config.request_timeout_s
        futures = [
            handle.request(SnapshotRequest())
            for _, handle in sorted(self._handles.items())
            if handle.alive
        ]
        return [fut.result(timeout=timeout) for fut in futures]

    def merged_quantiles(self, timeout: Optional[float] = None) -> QuantileRegistry:
        """Fleet-wide latency distributions: per-shard sketches merged
        bucket-by-bucket (never averaged percentiles)."""
        registries = [
            QuantileRegistry.from_state(shard.quantiles)
            for shard in self.telemetry(timeout=timeout)
        ]
        if not registries:
            return QuantileRegistry()
        return merge_registries(registries)

    def store_digests(
        self, timeout: Optional[float] = None
    ) -> Dict[str, ShardStoreDigest]:
        """Content hashes of every shard's record partition."""
        timeout = timeout if timeout is not None else self.config.request_timeout_s
        futures = {
            shard_id: handle.request(StoreDigest())
            for shard_id, handle in sorted(self._handles.items())
            if handle.alive
        }
        return {sid: fut.result(timeout=timeout) for sid, fut in futures.items()}

    def fleet_record_hashes(self, timeout: Optional[float] = None) -> List[str]:
        """Sorted union of record content hashes across all partitions —
        directly comparable with a single-process store's hashes."""
        merged: List[str] = []
        for digest in self.store_digests(timeout=timeout).values():
            merged.extend(digest.record_hashes)
        return sorted(merged)

    # ------------------------------------------------------------------
    def drain(self, shard_id: str, timeout: Optional[float] = None) -> ShardHealth:
        """Gracefully drain one shard and take it off the ring.

        In-flight sessions finish first (the shard acknowledges only
        when empty); afterwards its arcs fall to ring successors and
        remembered tenants are re-enrolled on their new owners.
        """
        handle = self.handle(shard_id)
        timeout = timeout if timeout is not None else self.config.request_timeout_s
        final = handle.call(Drain(), timeout=timeout)
        self.ring.remove_shard(shard_id)
        del self._handles[shard_id]
        handle.call(Shutdown(), timeout=timeout)
        handle.close()
        self.observer.event(SHARD_DRAINED, shard=shard_id)
        self.observer.incr("fleet.shards_drained")
        return final

    def kill(self, shard_id: str) -> None:
        """Hard-kill one shard (chaos drill). The ring keeps its slot —
        the tenant partition is frozen until :meth:`restart`."""
        handle = self.handle(shard_id)
        handle.kill()
        self.observer.event(
            SHARD_EXITED, shard=shard_id, exitcode=handle.process.exitcode
        )
        self.observer.incr("fleet.shards_killed")

    def restart(self, shard_id: str) -> ShardHandle:
        """Respawn a dead shard from its original spec.

        The journal path is unchanged, so the replacement process
        recovers its record partition bit-identically, and remembered
        tenants are re-enrolled before any new traffic lands.
        """
        old = self.handle(shard_id)
        if old.process.is_alive():
            old.kill()
        spec = old.spec
        self._handles[shard_id] = ShardHandle(spec, self.ctx, observer=self.observer)
        reenrolled = self._reenroll(shard_id)
        self.observer.event(SHARD_RESTARTED, shard=shard_id, reenrolled=reenrolled)
        self.observer.incr("fleet.shards_restarted")
        return self._handles[shard_id]

    # ------------------------------------------------------------------
    def shutdown(self, timeout: float = 30.0) -> None:
        """Clean stop: drain + shutdown every live shard, then reap."""
        futures = []
        for shard_id, handle in sorted(self._handles.items()):
            if handle.alive:
                futures.append((handle, handle.request(Shutdown())))
        for handle, future in futures:
            try:
                future.result(timeout=timeout)
            except Exception:  # best effort: a wedged shard is reaped below
                pass
            handle.close()
        for handle in self._handles.values():
            if handle.process.is_alive():
                handle.kill()
        self._handles.clear()
        self._started = False
        if self._owns_journal_dir and self._journal_dir is not None:
            shutil.rmtree(self._journal_dir, ignore_errors=True)
            self._journal_dir = None
            self._owns_journal_dir = False
