"""The shard worker process: one partition of the sharded cloud tier.

:func:`shard_main` is the entry point a
:class:`~repro.fleet.cluster.FleetCluster` spawns into each worker
**process**.  A shard owns a full vertical slice of the single-process
serving stack — its own :class:`~repro.serving.scheduler.FleetScheduler`
(thread pool, batcher, authenticator, circuit breaker), its own
:class:`~repro.cloud.server.AnalysisServer`, and its own *partition* of
the record store, optionally journaled for crash recovery — and drains
framed messages (:mod:`repro.fleet.transport`) from the parent.

Determinism: the scheduler inside every shard is built from the same
fleet seed, and each request's RNG derives from ``(seed, tenant,
tenant_sequence)`` with the sequence assigned by the front door, so a
session produces bit-identical honest outputs whether it runs on shard
3 of 8 or on the single-process tier (``tests/test_fleet_cluster.py``).
After a crash the shard replays its journal
(:func:`~repro.resilience.journal.recover_store`) and *resumes* tenant
sequence counters from the front door's numbers
(:meth:`~repro.serving.scheduler.FleetScheduler.resume_tenant_sequence`),
so recovery preserves both the store partition and the RNG coordinates.

Containment: a garbage frame, an unknown message type, or a refused
submission never kills the shard — each becomes a typed
:class:`~repro.fleet.messages.ErrorReply` (or a counted drop for
unparsable frames) and the loop keeps serving, mirroring the guard
layer's total-parsing contract.
"""

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro._util.errors import (
    ConfigurationError,
    MedSenError,
    OversizedPayloadError,
    ValidationError,
)
from repro.cloud.storage import RecordStore
from repro.fleet.messages import (
    Ack,
    Drain,
    ErrorReply,
    HealthCheck,
    JournalShip,
    LeaseGrant,
    RegisterTenant,
    SessionOutcome,
    ShardHealth,
    ShardStoreDigest,
    ShardTelemetry,
    ShipAck,
    Shutdown,
    SnapshotRequest,
    StoreDigest,
    StreamChunkAck,
    StreamChunkMsg,
    StreamClose,
    StreamClosed,
    StreamOpen,
    StreamOpened,
    StreamResume,
    StreamResumed,
    SubmitRequest,
    SubmitResponse,
)
from repro.fleet.transport import FrameChannel
from repro.obs import RECORD_QUARANTINED, SHARD_RECOVERED, context_or_none
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.resilience.journal import (
    RecordJournal,
    decode_entry,
    encode_entry,
    recover_store,
)
from repro.serving.queue import QueueFull
from repro.serving.scheduler import FleetConfig, FleetScheduler

#: How many recently answered (tenant, sequence) submissions a shard
#: remembers, so a transport-level duplicate re-delivery is answered
#: from cache instead of re-run (idempotent ingest across the process
#: boundary, same contract as the in-process request-id dedup).
DEDUP_CAPACITY = 4096

#: Main-loop poll interval while idle (seconds).
POLL_S = 0.005


@dataclass(frozen=True)
class ShardSpec:
    """Everything needed to (re)build one shard process.

    The spec is immutable and picklable: a restart after a crash spawns
    a fresh process from the *same* spec, and the journal path is where
    bit-identical recovery comes from.
    """

    shard_id: str
    fleet: FleetConfig
    journal_path: Optional[str] = None
    #: Replication partition this shard serves ("" = unreplicated tier).
    partition: str = ""
    #: When True the shard stamps replies with its lease epoch and
    #: attaches the committed record's journal line so the front door
    #: can ship it to the partition's standby before acking.
    replicated: bool = False


def record_content_hash(record) -> str:
    """Interleaving-independent content hash of one stored record.

    Matches the chaos campaign's convention: sequence numbers and
    timestamps are excluded (commit order depends on worker
    interleaving) so the hash is a pure function of the fleet seed.
    """
    from repro.cloud.api import report_to_dict

    payload = {
        "identifier": record.identifier_key,
        "metadata": [[k, v] for k, v in record.metadata],
        "report": report_to_dict(record.report),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=12).hexdigest()


def store_content_hashes(store: RecordStore) -> Tuple[str, ...]:
    """Sorted content hashes of every record in a store partition."""
    hashes = []
    for identifier_key in store.identifiers():
        for record in store.fetch(identifier_key):
            hashes.append(record_content_hash(record))
    return tuple(sorted(hashes))


class _ShardRuntime:
    """Mutable state of one running shard (wrapped for testability)."""

    def __init__(self, spec: ShardSpec, channel: FrameChannel) -> None:
        self.spec = spec
        self.channel = channel
        # Fresh per-process sinks: the parent merges shard telemetry
        # explicitly; sharing the process-default registry would alias
        # instruments if a test drives shard_main in-process.
        from repro.telemetry import TelemetryObserver

        self.observer = TelemetryObserver(metrics=MetricsRegistry(), events=EventLog())
        self.journal = (
            RecordJournal(spec.journal_path) if spec.journal_path else None
        )
        self.recovered_records = 0
        self.quarantined_entries = 0
        if spec.journal_path and os.path.exists(spec.journal_path):
            store, replay = recover_store(
                spec.journal_path, observer=self.observer, journal=self.journal
            )
            self.recovered_records = replay.n_recovered
            self.quarantined_entries = replay.n_quarantined
            self.observer.event(
                SHARD_RECOVERED,
                shard=spec.shard_id,
                records=self.recovered_records,
                quarantined=self.quarantined_entries,
            )
            self.observer.incr("fleet.shard_recoveries")
        else:
            store = RecordStore(observer=self.observer, journal=self.journal)
        self.store = store
        self.scheduler = FleetScheduler(
            spec.fleet, observer=self.observer, store=store
        ).start()
        #: msg_id -> in-flight SessionFuture
        self.pending: Dict[int, object] = {}
        #: (tenant, sequence) -> answered outcome, for duplicate replies.
        self.answered: "OrderedDict[Tuple[str, int], SessionOutcome]" = OrderedDict()
        self.accepting = True
        self.drain_reply: Optional[int] = None
        self.shutdown_reply: Optional[int] = None
        self._stream_gateway = None
        # Replication lane (repro.fleet.replication): the lease the
        # supervisor granted (epoch 0 = never leased, which is what a
        # freshly restarted stale primary holds until re-granted — the
        # front door fences its answers) and the standby apply state.
        self.epoch = 0
        self.role = "primary"
        self.replica_applied = 0
        self.replica_duplicates = 0
        self.replica_quarantined = 0
        # Content hashes of every record already in the store: shipped
        # dedup on the primary side, apply dedup on the standby side.
        # Seeded from recovery so a respawned shard never re-ships or
        # re-applies what its journal already holds.
        self._known_hashes = {
            record_content_hash(record)
            for identifier_key in store.identifiers()
            for record in store.fetch(identifier_key)
        }

    # ------------------------------------------------------------------
    @property
    def stream_gateway(self):
        """The shard's streaming lane, built lazily on first use.

        Sessions are shard-local (a tenant's stream lives where its
        one-shot requests route), keyed off the fleet's shared
        freshness secret — a fleet without one has no streaming lane,
        and the typed refusal reaches the device as an ErrorReply.
        """
        if self._stream_gateway is None:
            secret = self.spec.fleet.freshness_secret
            if not secret:
                raise ConfigurationError(
                    "fleet has no freshness_secret; the streaming lane "
                    "requires one (set FleetConfig.freshness_secret)"
                )
            from repro.stream.session import StreamGateway

            self._stream_gateway = StreamGateway(
                secret, observer=self.observer
            )
        return self._stream_gateway

    # ------------------------------------------------------------------
    def health(self) -> ShardHealth:
        return ShardHealth(
            shard_id=self.spec.shard_id,
            completed=self.scheduler.completed,
            failed=self.scheduler.failed,
            rejected=self.scheduler.rejected,
            inflight=len(self.pending),
            store_records=self.store.n_records,
            journal_entries=self.journal.entries_written if self.journal else 0,
            recovered_records=self.recovered_records,
            quarantined_entries=self.quarantined_entries,
            garbage_frames=self.channel.garbage_frames,
            epoch=self.epoch,
            role=self.role,
            replica_applied=self.replica_applied,
            replica_duplicates=self.replica_duplicates,
            replica_quarantined=self.replica_quarantined,
        )

    def telemetry(self) -> ShardTelemetry:
        snapshot = self.observer.metrics.snapshot()
        return ShardTelemetry(
            shard_id=self.spec.shard_id,
            counters=dict(snapshot["counters"]),
            gauges=dict(snapshot["gauges"]),
            quantiles=self.observer.quantiles.state(),
        )

    # ------------------------------------------------------------------
    def handle_submit(self, msg_id: int, msg: SubmitRequest) -> None:
        if not self.accepting:
            self.channel.send(
                msg_id,
                ErrorReply(
                    shard_id=self.spec.shard_id,
                    error_type="ShardDraining",
                    error_message=f"shard {self.spec.shard_id} is draining",
                ),
            )
            return
        if self.spec.replicated and self.role == "standby":
            # Standbys apply shipped journal lines; they never run
            # sessions, so a misrouted submission is a typed refusal
            # rather than a silent double execution.
            self.channel.send(
                msg_id,
                ErrorReply(
                    shard_id=self.spec.shard_id,
                    error_type="NotPrimary",
                    error_message=(
                        f"shard {self.spec.shard_id} is the standby for "
                        f"partition {self.spec.partition!r}"
                    ),
                ),
            )
            return
        key = (msg.tenant_id, msg.tenant_sequence)
        cached = self.answered.get(key)
        if cached is not None:
            self.observer.incr("fleet.duplicates_dropped")
            self.channel.send(
                msg_id,
                SubmitResponse(
                    shard_id=self.spec.shard_id,
                    tenant_id=msg.tenant_id,
                    tenant_sequence=msg.tenant_sequence,
                    ok=True,
                    outcome=cached,
                    duplicate=True,
                    epoch=self.epoch,
                ),
            )
            return
        try:
            # Front-door sequence numbers are authoritative; resuming
            # forward keeps RNG coordinates stable across a restart,
            # and a rewind (a replayed old submission) is refused.
            self.scheduler.resume_tenant_sequence(
                msg.tenant_id, msg.tenant_sequence
            )
            remote = context_or_none(msg.trace_context)
            with self.observer.span(
                "shard_ingress",
                remote_parent=remote,
                service=self.spec.shard_id,
                tenant=msg.tenant_id,
                tenant_sequence=msg.tenant_sequence,
            ):
                future = self.scheduler.submit(
                    msg.tenant_id,
                    msg.blood,
                    msg.identifier,
                    duration_s=msg.duration_s,
                    pipette_volume_ul=msg.pipette_volume_ul,
                    block=False,
                )
        except (MedSenError, QueueFull, ValidationError) as error:
            self.channel.send(
                msg_id,
                ErrorReply(
                    shard_id=self.spec.shard_id,
                    error_type=type(error).__name__,
                    error_message=str(error),
                ),
            )
            return
        assert future.request.tenant_sequence == msg.tenant_sequence
        self.pending[msg_id] = future

    def sweep(self) -> None:
        """Send terminal replies for every finished in-flight session."""
        for msg_id in list(self.pending):
            future = self.pending[msg_id]
            if not future.done():
                continue
            del self.pending[msg_id]
            request = future.request
            error = future.exception()
            if error is None:
                outcome = SessionOutcome.from_result(
                    future.result(),
                    request.tenant_id,
                    request.tenant_sequence,
                    shard_id=self.spec.shard_id,
                )
                self.answered[(request.tenant_id, request.tenant_sequence)] = outcome
                while len(self.answered) > DEDUP_CAPACITY:
                    self.answered.popitem(last=False)
                response = SubmitResponse(
                    shard_id=self.spec.shard_id,
                    tenant_id=request.tenant_id,
                    tenant_sequence=request.tenant_sequence,
                    ok=True,
                    outcome=outcome,
                    epoch=self.epoch,
                    journal_entry=self._entry_for_shipping(outcome.record_key),
                )
            else:
                response = SubmitResponse(
                    shard_id=self.spec.shard_id,
                    tenant_id=request.tenant_id,
                    tenant_sequence=request.tenant_sequence,
                    ok=False,
                    error_type=type(error).__name__,
                    error_message=str(error),
                    epoch=self.epoch,
                )
            self.channel.send(msg_id, response)

    def _entry_for_shipping(self, record_key: str) -> Optional[str]:
        """Journal lines for records committed since the last sweep.

        Replicated primaries attach the exact :func:`encode_entry`
        lines of every not-yet-shipped record under the session's key
        (newline-joined; normally exactly one), so the front door can
        forward verbatim journal bytes to the standby before acking.
        """
        if not self.spec.replicated or not record_key:
            return None
        lines = []
        for record in self.store.fetch(record_key):
            content_hash = record_content_hash(record)
            if content_hash in self._known_hashes:
                continue
            self._known_hashes.add(content_hash)
            lines.append(encode_entry(record))
        return "\n".join(lines) if lines else None

    # ------------------------------------------------------------------
    def handle_lease(self, msg_id: int, msg: LeaseGrant) -> None:
        """Adopt the supervisor's lease: epoch + role, never invented."""
        if msg.epoch < self.epoch:
            self.channel.send(
                msg_id,
                ErrorReply(
                    shard_id=self.spec.shard_id,
                    error_type="StaleLease",
                    error_message=(
                        f"refusing lease epoch {msg.epoch} < held {self.epoch}"
                    ),
                ),
            )
            return
        self.epoch = msg.epoch
        self.role = msg.role
        self.observer.gauge("fleet.epoch", float(self.epoch))
        self.observer.incr("fleet.leases_adopted")
        self.channel.send(msg_id, Ack(shard_id=self.spec.shard_id))

    def handle_ship(self, msg_id: int, msg: JournalShip) -> None:
        """Apply shipped journal lines to the standby's partition.

        Each line goes through the same :func:`decode_entry`
        verification crash recovery uses: a torn or corrupted line is
        quarantined (counted + audited), never applied; an intact line
        is restored with its original sequence number/timestamp and
        re-journaled locally so a promoted standby recovers
        bit-identically after its own crash.
        """
        applied = duplicates = quarantined = 0
        for line in msg.entries:
            try:
                record = decode_entry(line)
            except ValueError as exc:
                quarantined += 1
                self.observer.incr("replica.quarantined")
                self.observer.event(
                    RECORD_QUARANTINED,
                    shard=self.spec.shard_id,
                    partition=msg.partition,
                    reason=str(exc),
                )
                continue
            content_hash = record_content_hash(record)
            if content_hash in self._known_hashes:
                duplicates += 1
                continue
            self._known_hashes.add(content_hash)
            self.store._restore(record)
            if self.journal is not None:
                self.journal.append(record)
            applied += 1
        self.replica_applied += applied
        self.replica_duplicates += duplicates
        self.replica_quarantined += quarantined
        self.observer.incr("replica.applied", applied)
        self.observer.incr("replica.duplicates", duplicates)
        self.channel.send(
            msg_id,
            ShipAck(
                shard_id=self.spec.shard_id,
                partition=msg.partition,
                applied=applied,
                duplicates=duplicates,
                quarantined=quarantined,
                store_records=self.store.n_records,
            ),
        )

    # ------------------------------------------------------------------
    def dispatch(self, msg_id: int, msg: object) -> None:
        if isinstance(msg, SubmitRequest):
            self.handle_submit(msg_id, msg)
        elif isinstance(msg, RegisterTenant):
            self.scheduler.register_tenant(msg.tenant_id, msg.identifier)
            self.channel.send(msg_id, Ack(shard_id=self.spec.shard_id))
        elif isinstance(msg, LeaseGrant):
            self.handle_lease(msg_id, msg)
        elif isinstance(msg, JournalShip):
            self.handle_ship(msg_id, msg)
        elif isinstance(msg, HealthCheck):
            self.channel.send(msg_id, self.health())
        elif isinstance(msg, SnapshotRequest):
            self.channel.send(msg_id, self.telemetry())
        elif isinstance(msg, StoreDigest):
            hashes = store_content_hashes(self.store)
            self.channel.send(
                msg_id,
                ShardStoreDigest(
                    shard_id=self.spec.shard_id,
                    record_hashes=hashes,
                    n_records=len(hashes),
                ),
            )
        elif isinstance(msg, StreamOpen):
            opened = self.stream_gateway.open_session(
                msg.tenant_id,
                msg.n_channels,
                msg.sampling_rate_hz,
                msg.token_blob,
            )
            self.channel.send(
                msg_id,
                StreamOpened(
                    shard_id=self.spec.shard_id,
                    session_id=opened.session_id,
                    session_key=opened.session_key,
                    resume_token=opened.resume_token,
                    chunk_samples=opened.chunk_samples,
                    key_epoch=opened.key_epoch,
                ),
            )
        elif isinstance(msg, StreamChunkMsg):
            ack = self.stream_gateway.ingest_chunk(msg.blob)
            self.channel.send(
                msg_id,
                StreamChunkAck(
                    shard_id=self.spec.shard_id,
                    session_id=ack.session_id,
                    seq=ack.seq,
                    cursor=ack.cursor,
                    duplicate=ack.duplicate,
                    backpressure=ack.backpressure,
                    peaks_so_far=ack.peaks_so_far,
                ),
            )
        elif isinstance(msg, StreamResume):
            info = self.stream_gateway.resume(msg.session_id, msg.resume_token)
            self.channel.send(
                msg_id,
                StreamResumed(
                    shard_id=self.spec.shard_id,
                    session_id=info.session_id,
                    cursor=info.cursor,
                    chunk_samples=info.chunk_samples,
                    key_epoch=info.key_epoch,
                ),
            )
        elif isinstance(msg, StreamClose):
            outcome = self.stream_gateway.close_session(msg.session_id)
            self.channel.send(
                msg_id,
                StreamClosed(
                    shard_id=self.spec.shard_id,
                    session_id=outcome.session_id,
                    tenant_id=outcome.tenant_id,
                    n_chunks=outcome.n_chunks,
                    n_samples=outcome.n_samples,
                    n_duplicates=outcome.n_duplicates,
                    peak_count=len(outcome.report.peaks),
                    report_digest=outcome.digest,
                    degraded=outcome.degraded,
                    degraded_reason=outcome.degraded_reason,
                ),
            )
        elif isinstance(msg, Drain):
            self.accepting = False
            self.drain_reply = msg_id
        elif isinstance(msg, Shutdown):
            self.accepting = False
            self.shutdown_reply = msg_id
        else:
            self.channel.send(
                msg_id,
                ErrorReply(
                    shard_id=self.spec.shard_id,
                    error_type="UnknownMessage",
                    error_message=f"unhandled message type {type(msg).__name__}",
                ),
            )


def shard_main(spec: ShardSpec, conn) -> None:
    """Run one shard process until shutdown (or the pipe dies).

    The loop alternates between sweeping finished sessions out to the
    parent and draining inbound frames; drain/shutdown requests are
    acknowledged only once every in-flight session has been answered,
    so a clean drain never loses accepted work.
    """
    channel = FrameChannel(conn)
    runtime = _ShardRuntime(spec, channel)
    try:
        while True:
            runtime.sweep()
            if not runtime.pending:
                if runtime.drain_reply is not None:
                    channel.send(runtime.drain_reply, runtime.health())
                    runtime.drain_reply = None
                if runtime.shutdown_reply is not None:
                    runtime.scheduler.shutdown()
                    if runtime.journal is not None:
                        runtime.journal.close()
                    channel.send(runtime.shutdown_reply, Ack(shard_id=spec.shard_id))
                    return
            if not channel.poll(POLL_S):
                continue
            try:
                msg_id, msg = channel.recv()
            except (EOFError, OSError):
                # Parent is gone; nothing left to serve.
                return
            except (ValidationError, OversizedPayloadError):
                # Garbage frame: counted by the channel, refused, and
                # the shard keeps serving (hardening containment).
                runtime.observer.incr("fleet.garbage_frames")
                continue
            try:
                runtime.dispatch(msg_id, msg)
            except (EOFError, OSError, BrokenPipeError):
                return
            except BaseException as error:  # noqa: BLE001 - containment
                channel.send(
                    msg_id,
                    ErrorReply(
                        shard_id=spec.shard_id,
                        error_type=type(error).__name__,
                        error_message=str(error),
                    ),
                )
    finally:
        try:
            runtime.scheduler.shutdown(wait=False)
            if runtime.journal is not None:
                runtime.journal.close()
        except Exception:
            pass
