"""The asyncio ingest front door of the sharded cloud tier.

:class:`AsyncFrontDoor` is the single admission point for fleet
traffic.  For each submission it

1. **admits** — the same
   :func:`~repro.guard.admission.admit_session_params` total-parsing
   gate the thread-pool scheduler uses, so a malformed tenant id or an
   absurd duration is refused with a typed
   :class:`~repro._util.errors.AdmissionError` (counted under
   ``guard.rejected``) before any sequence number is spent;
2. **sheds** — at most ``max_inflight`` sessions may be outstanding;
   one more is refused with :class:`FleetSaturatedError` (the
   ``fleet.shed`` counter and a ``fleet.load_shed`` event record it)
   rather than queued without bound — bounded memory is the contract
   that lets the tier face a million-user arrival process;
3. **sequences** — assigns the tenant's next submission sequence, the
   second coordinate of the deterministic request RNG;
4. **routes** — consistent-hash ring → owning shard, MST1 trace
   context attached so the shard's span stitches to the ingress trace;
5. **awaits** — the shard handle's :class:`concurrent.futures.Future`
   is bridged onto the event loop with :func:`asyncio.wrap_future`, so
   thousands of outstanding sessions cost one coroutine each, not one
   thread each.

Because the front door runs on one event loop, its inflight counter
and sequence table need no locks — every mutation happens between
awaits.
"""

import asyncio
from typing import Dict, Optional

from repro._util.errors import MedSenError, UnknownSessionError
from repro.fleet.cluster import FleetCluster, ShardCrashedError, ShardRequestError
from repro.fleet.messages import (
    SessionOutcome,
    StreamChunkAck,
    StreamChunkMsg,
    StreamClose,
    StreamClosed,
    StreamOpen,
    StreamOpened,
    StreamResume,
    StreamResumed,
    SubmitRequest,
    SubmitResponse,
)
from repro.obs import (
    DEGRADED_ACK,
    EPOCH_FENCED,
    FLEET_SHED,
    HANDOFF_QUEUED,
    HANDOFF_SHED,
    NULL_OBSERVER,
    derive_trace_context,
)


class FleetSaturatedError(MedSenError):
    """Typed load-shed: the inflight bound is full; retry with backoff."""


class FleetRequestFailedError(MedSenError):
    """A routed session failed on its shard (typed, with provenance)."""

    def __init__(self, shard_id: str, error_type: str, error_message: str) -> None:
        super().__init__(f"[{shard_id}] {error_type}: {error_message}")
        self.shard_id = shard_id
        self.error_type = error_type
        self.error_message = error_message


class AsyncFrontDoor:
    """Admission, backpressure, sequencing, and routing for the fleet."""

    def __init__(
        self,
        cluster: FleetCluster,
        max_inflight: Optional[int] = None,
        observer=NULL_OBSERVER,
    ) -> None:
        self.cluster = cluster
        self.max_inflight = (
            max_inflight if max_inflight is not None else cluster.config.max_inflight
        )
        if self.max_inflight < 1:
            raise MedSenError(f"max_inflight must be >= 1, got {self.max_inflight}")
        self.observer = observer
        self._sequences: Dict[str, int] = {}
        self.inflight = 0
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.shed = 0
        self.retried = 0
        # Streaming lane: session routing + per-session send ordering.
        self._stream_tenants: Dict[str, str] = {}
        self._stream_locks: Dict[str, asyncio.Lock] = {}
        self.streams_opened = 0
        self.stream_chunks = 0
        # Replication lane (repro.fleet.replication) — opt-in: plain
        # clusters (and test stubs) have no `replicated` attribute and
        # keep the single-copy behaviour bit-for-bit.
        self._replicated = bool(getattr(cluster, "replicated", False))
        self._promotions: Dict[str, asyncio.Future] = {}
        self._handoff_waiters: Dict[str, int] = {}
        self._open_locks: Dict[str, asyncio.Lock] = {}
        self.fenced = 0
        self.handoff_queued = 0
        self.handoff_shed = 0
        self.degraded_acks = 0

    # ------------------------------------------------------------------
    async def register_tenant(self, tenant_id: str, identifier) -> None:
        """Enrol a tenant without blocking the event loop."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, self.cluster.register_tenant, tenant_id, identifier
        )

    # ------------------------------------------------------------------
    def _admit(self, tenant_id: str, duration_s: float, pipette_volume_ul: float):
        shard_cfg = self.cluster.config.shard
        from repro.guard.admission import admit_session_params

        admit_session_params(
            tenant_id,
            duration_s,
            pipette_volume_ul,
            max_duration_s=shard_cfg.max_duration_s,
            max_pipette_volume_ul=shard_cfg.max_pipette_volume_ul,
            observer=self.observer,
            boundary="fleet",
        )

    async def submit(
        self,
        tenant_id: str,
        blood,
        identifier,
        duration_s: float = 20.0,
        pipette_volume_ul: float = 2.0,
        timeout: Optional[float] = None,
        retries_on_crash: int = 0,
    ) -> SessionOutcome:
        """Admit, route, and await one diagnostic session.

        ``retries_on_crash`` replays the submission — with the *same*
        tenant sequence, so the request RNG coordinates are unchanged —
        after a shard crash, once the supervisor has restarted the
        shard.  The shard-side dedup cache makes the replay idempotent
        if the original actually completed.
        """
        # Admission before sequencing: a refused submission must not
        # burn a sequence number (replay determinism).
        self._admit(tenant_id, duration_s, pipette_volume_ul)
        if self.inflight >= self.max_inflight:
            self.shed += 1
            self.observer.incr("fleet.shed")
            self.observer.event(
                FLEET_SHED, tenant=tenant_id, inflight=self.inflight
            )
            raise FleetSaturatedError(
                f"fleet saturated: {self.inflight} sessions in flight "
                f"(bound {self.max_inflight})"
            )
        sequence = self._sequences.get(tenant_id, 0)
        self._sequences[tenant_id] = sequence + 1
        context = derive_trace_context(
            self.cluster.config.shard.seed, tenant_id, sequence
        )
        message = SubmitRequest(
            tenant_id=tenant_id,
            tenant_sequence=sequence,
            blood=blood,
            identifier=identifier,
            duration_s=duration_s,
            pipette_volume_ul=pipette_volume_ul,
            trace_context=context.to_bytes(),
        )
        timeout = (
            timeout if timeout is not None else self.cluster.config.request_timeout_s
        )
        self.inflight += 1
        self.submitted += 1
        self.observer.incr("fleet.submitted")
        try:
            attempts = 0
            handoffs = 0
            fences = 0
            while True:
                handle = self.cluster.handle_for(tenant_id)
                if self._replicated:
                    # Capture the routing-time epoch: a failover kicked
                    # off for a crash observed *at this epoch* coalesces
                    # with (never re-runs after) a promotion that
                    # already advanced it.
                    partition = self.cluster.partition_of(tenant_id)
                    routed_epoch = self.cluster.partition_epoch(partition)
                with self.observer.span(
                    "fleet_ingress",
                    remote_parent=context,
                    service="frontdoor",
                    tenant=tenant_id,
                    shard=handle.shard_id,
                ):
                    future = handle.request(message)
                try:
                    response = await asyncio.wait_for(
                        asyncio.wrap_future(future), timeout=timeout
                    )
                except ShardCrashedError as crash:
                    if self._replicated:
                        # Hinted handoff: queue (bounded) behind the
                        # partition's promotion, then re-route to the
                        # promoted standby with the same sequence.
                        if handoffs >= 2:
                            raise
                        handoffs += 1
                        await self._handoff(partition, routed_epoch, crash)
                        continue
                    if attempts >= retries_on_crash:
                        raise
                    attempts += 1
                    self.retried += 1
                    self.observer.incr("fleet.retries")
                    # Give the supervisor a beat to restart the shard;
                    # handle_for() re-resolves to the new process.
                    await asyncio.sleep(0.05 * attempts)
                    continue
                except ShardRequestError as refusal:
                    # The shard's typed ErrorReply, re-raised in the
                    # front door's vocabulary with provenance intact.
                    raise FleetRequestFailedError(
                        refusal.shard_id,
                        refusal.error_type,
                        refusal.error_message,
                    ) from refusal
                if self._replicated:
                    if self.cluster.is_stale(partition, response.epoch):
                        # A superseded primary answered: never ack its
                        # word — fence it and re-run on the current
                        # primary (same RNG coordinates, so the client
                        # sees the bit-identical outcome exactly once).
                        self.fenced += 1
                        self.observer.incr("fleet.fenced_responses")
                        self.observer.event(
                            EPOCH_FENCED,
                            partition=partition,
                            shard=response.shard_id,
                            stale_epoch=response.epoch,
                            current_epoch=self.cluster.partition_epoch(partition),
                        )
                        fences += 1
                        if fences >= 3:
                            raise FleetRequestFailedError(
                                response.shard_id,
                                "StaleEpoch",
                                f"partition {partition} kept answering with "
                                f"superseded epoch {response.epoch}",
                            )
                        continue
                    if response.ok and response.journal_entry:
                        # Synchronous replication: the standby holds the
                        # committed record's journal line before the
                        # client ever sees the ack.
                        await self._ship(partition, response.journal_entry, timeout)
                break
        except Exception:
            self.failed += 1
            self.observer.incr("fleet.failed")
            raise
        finally:
            self.inflight -= 1
        assert isinstance(response, SubmitResponse)
        if not response.ok:
            self.failed += 1
            self.observer.incr("fleet.failed")
            raise FleetRequestFailedError(
                response.shard_id,
                response.error_type or "SessionFailed",
                response.error_message or "session failed",
            )
        if response.duplicate:
            self.observer.incr("fleet.duplicates_answered")
        self.completed += 1
        self.observer.incr("fleet.completed")
        assert response.outcome is not None
        return response.outcome

    # ------------------------------------------------------------------
    # Replication lane (only active over a ReplicatedCluster).
    # ------------------------------------------------------------------
    def _degraded_ack(self, partition: str, reason: str) -> None:
        """Audit an ack whose only durable copies are the primary's
        journal and the supervisor's replication log (no live standby
        held the record when the client was acknowledged)."""
        self.degraded_acks += 1
        self.observer.incr("fleet.degraded_acks")
        self.observer.event(DEGRADED_ACK, partition=partition, reason=reason)

    async def _ship(
        self, partition: str, journal_entry: str, timeout: Optional[float]
    ) -> None:
        """Ship a committed record's journal lines to the standby and
        wait for its apply ack — the synchronous half of replication.

        The two-copy ack invariant is enforced, not hoped for: a ship
        the standby does not acknowledge is retried once (against the
        possibly-respawned standby, without re-recording lines the
        replication log already holds), and if the retry fails too the
        *submit* fails with a typed ``ReplicationFailed`` — the client
        is never told a result is durable when it is single-copy.  The
        one deliberate exception is a partition with **no live
        standby** (mid-failover): the supervisor's replication log
        already holds the lines, the rejoin pass reconciles them, and
        the degraded-durability ack is surfaced explicitly — counted
        (``degraded_acks``) and audited (``fleet.degraded_ack``) — so
        the window is visible, never silent.
        """
        future = self.cluster.ship(partition, journal_entry)
        if future is None:
            self._degraded_ack(partition, "no-live-standby")
            return
        for retry in (False, True):
            try:
                ack = await asyncio.wait_for(
                    asyncio.wrap_future(future), timeout=timeout
                )
            except (
                ShardCrashedError,
                ShardRequestError,
                asyncio.TimeoutError,
            ) as error:
                self.observer.incr("fleet.ship_failed")
                if not retry:
                    # The replog already recorded the lines; a second
                    # append would replay as a duplicate on rejoin.
                    future = self.cluster.ship(
                        partition, journal_entry, record=False
                    )
                    if future is None:
                        self._degraded_ack(partition, "standby-died-mid-ship")
                        return
                    continue
                raise FleetRequestFailedError(
                    self.cluster.standby_id(partition) or partition,
                    "ReplicationFailed",
                    f"standby for partition {partition} did not acknowledge "
                    f"the shipped journal lines; refusing to acknowledge a "
                    f"single-copy result",
                ) from error
            if ack.quarantined:
                self.observer.incr("fleet.ship_quarantined", ack.quarantined)
            return

    async def _handoff(
        self, partition: str, observed_epoch: int, crash: Exception
    ) -> None:
        """Queue (bounded) behind the partition's standby promotion.

        The first waiter kicks :meth:`ReplicatedCluster.fail_over` onto
        an executor thread, passing the epoch this request was routed
        under — a straggling crash report whose epoch a promotion has
        already superseded coalesces inside ``fail_over`` instead of
        demoting the freshly promoted primary.  Later waiters share the
        same promotion.  Beyond ``handoff_capacity`` waiters — or past
        the ``handoff_window_s`` deadline — the request is shed with
        the same typed refusal as steady-state overload, so failover
        pressure never buffers without bound.
        """
        replication = self.cluster.replication
        waiters = self._handoff_waiters.get(partition, 0)
        if waiters >= replication.handoff_capacity:
            self.handoff_shed += 1
            self.observer.incr("fleet.handoff_shed")
            self.observer.event(
                HANDOFF_SHED, partition=partition, waiters=waiters
            )
            raise FleetSaturatedError(
                f"partition {partition} failover queue full "
                f"({waiters}/{replication.handoff_capacity})"
            ) from crash
        self._handoff_waiters[partition] = waiters + 1
        self.handoff_queued += 1
        self.observer.incr("fleet.handoff_queued")
        self.observer.event(
            HANDOFF_QUEUED, partition=partition, waiters=waiters + 1
        )
        promotion = self._promotions.get(partition)
        if promotion is None:
            loop = asyncio.get_running_loop()
            promotion = loop.run_in_executor(
                None, self.cluster.fail_over, partition, observed_epoch
            )
            self._promotions[partition] = promotion
        try:
            await asyncio.wait_for(
                asyncio.shield(promotion),
                timeout=replication.handoff_window_s,
            )
        except asyncio.TimeoutError:
            self.handoff_shed += 1
            self.observer.incr("fleet.handoff_shed")
            self.observer.event(
                HANDOFF_SHED, partition=partition, waiters=waiters + 1
            )
            raise FleetSaturatedError(
                f"partition {partition} failover exceeded "
                f"{replication.handoff_window_s}s handoff window"
            ) from crash
        finally:
            self._handoff_waiters[partition] -= 1
            if promotion.done():
                self._promotions.pop(partition, None)

    # ------------------------------------------------------------------
    # Streaming lane: a session is pinned to its tenant's shard; chunk
    # sends for one session are serialised by a per-session lock so the
    # gateway's cursor never sees a racing out-of-order pair from us
    # (re-ordering *on the link* is the gateway's job to refuse).
    # Over a replicated cluster every stream message is **mirrored** to
    # the partition's standby: session ids and HMAC resume tokens are
    # deterministic functions of (secret, open order), so a standby that
    # sees the same messages in the same order holds an identical
    # gateway — which is what lets a session resume on the promoted
    # standby after its primary dies.
    # ------------------------------------------------------------------
    async def _await_reply(self, handle, message, timeout: Optional[float]):
        future = handle.request(message)
        try:
            return await asyncio.wait_for(
                asyncio.wrap_future(future), timeout=timeout
            )
        except ShardRequestError as refusal:
            # The receiver thread has already unpacked the shard's
            # typed ErrorReply; re-raise in the front door's own
            # failure vocabulary, provenance intact.
            raise FleetRequestFailedError(
                refusal.shard_id, refusal.error_type, refusal.error_message
            ) from refusal

    async def _mirror_to_standby(
        self, partition: str, message, timeout: Optional[float]
    ) -> None:
        standby = self.cluster.standby_handle(partition)
        if standby is None or not standby.alive:
            self.observer.incr("fleet.stream_mirror_skipped")
            return
        try:
            await self._await_reply(standby, message, timeout)
        except (
            FleetRequestFailedError,
            ShardCrashedError,
            asyncio.TimeoutError,
        ):
            self.observer.incr("fleet.stream_mirror_failed")

    async def _stream_request(
        self, tenant_id: str, message, timeout: Optional[float] = None
    ):
        timeout = (
            timeout if timeout is not None else self.cluster.config.request_timeout_s
        )
        handle = self.cluster.handle_for(tenant_id)
        if self._replicated:
            partition = self.cluster.partition_of(tenant_id)
            routed_epoch = self.cluster.partition_epoch(partition)
        try:
            response = await self._await_reply(handle, message, timeout)
        except ShardCrashedError as crash:
            if not self._replicated:
                raise
            await self._handoff(partition, routed_epoch, crash)
            # The promoted standby mirrors the session's gateway state;
            # re-issue on it (resume/chunk replay is gateway-idempotent).
            handle = self.cluster.handle_for(tenant_id)
            response = await self._await_reply(handle, message, timeout)
            return response
        if self._replicated:
            await self._mirror_to_standby(partition, message, timeout)
        return response

    def _stream_tenant(self, session_id: str) -> str:
        tenant_id = self._stream_tenants.get(session_id)
        if tenant_id is None:
            raise UnknownSessionError(
                f"front door has no open stream {session_id!r}"
            )
        return tenant_id

    async def open_stream(
        self,
        tenant_id: str,
        n_channels: int,
        sampling_rate_hz: float,
        token_blob: bytes,
        timeout: Optional[float] = None,
    ) -> StreamOpened:
        """Open a streaming session on the tenant's owning shard."""
        message = StreamOpen(
            tenant_id=tenant_id,
            n_channels=int(n_channels),
            sampling_rate_hz=float(sampling_rate_hz),
            token_blob=bytes(token_blob),
        )
        if self._replicated:
            # Session ids are per-gateway open counters, so opens must
            # hit the primary and its mirror in one serialised order —
            # otherwise two concurrent opens could swap identities on
            # the standby and resume-after-failover would cross wires.
            partition = self.cluster.partition_of(tenant_id)
            lock = self._open_locks.setdefault(partition, asyncio.Lock())
            async with lock:
                response = await self._stream_request(tenant_id, message, timeout)
        else:
            response = await self._stream_request(tenant_id, message, timeout)
        assert isinstance(response, StreamOpened)
        self._stream_tenants[response.session_id] = tenant_id
        self._stream_locks[response.session_id] = asyncio.Lock()
        self.streams_opened += 1
        self.observer.incr("fleet.streams_opened")
        return response

    async def stream_chunk(
        self, session_id: str, blob: bytes, timeout: Optional[float] = None
    ) -> StreamChunkAck:
        """Forward one sealed chunk to its session's shard, in order."""
        tenant_id = self._stream_tenant(session_id)
        async with self._stream_locks[session_id]:
            response = await self._stream_request(
                tenant_id,
                StreamChunkMsg(
                    tenant_id=tenant_id,
                    session_id=session_id,
                    blob=bytes(blob),
                ),
                timeout,
            )
        assert isinstance(response, StreamChunkAck)
        self.stream_chunks += 1
        self.observer.incr("fleet.stream_chunks")
        return response

    async def resume_stream(
        self,
        session_id: str,
        resume_token: str,
        timeout: Optional[float] = None,
    ) -> StreamResumed:
        """Re-attach to a session after a device-side disconnect."""
        tenant_id = self._stream_tenant(session_id)
        response = await self._stream_request(
            tenant_id,
            StreamResume(
                tenant_id=tenant_id,
                session_id=session_id,
                resume_token=resume_token,
            ),
            timeout,
        )
        assert isinstance(response, StreamResumed)
        self.observer.incr("fleet.streams_resumed")
        return response

    async def close_stream(
        self, session_id: str, timeout: Optional[float] = None
    ) -> StreamClosed:
        """Close a session and collect its terminal streamed outcome."""
        tenant_id = self._stream_tenant(session_id)
        async with self._stream_locks[session_id]:
            response = await self._stream_request(
                tenant_id,
                StreamClose(tenant_id=tenant_id, session_id=session_id),
                timeout,
            )
        assert isinstance(response, StreamClosed)
        self._stream_tenants.pop(session_id, None)
        self._stream_locks.pop(session_id, None)
        self.observer.incr("fleet.streams_closed")
        return response
