"""The asyncio ingest front door of the sharded cloud tier.

:class:`AsyncFrontDoor` is the single admission point for fleet
traffic.  For each submission it

1. **admits** — the same
   :func:`~repro.guard.admission.admit_session_params` total-parsing
   gate the thread-pool scheduler uses, so a malformed tenant id or an
   absurd duration is refused with a typed
   :class:`~repro._util.errors.AdmissionError` (counted under
   ``guard.rejected``) before any sequence number is spent;
2. **sheds** — at most ``max_inflight`` sessions may be outstanding;
   one more is refused with :class:`FleetSaturatedError` (the
   ``fleet.shed`` counter and a ``fleet.load_shed`` event record it)
   rather than queued without bound — bounded memory is the contract
   that lets the tier face a million-user arrival process;
3. **sequences** — assigns the tenant's next submission sequence, the
   second coordinate of the deterministic request RNG;
4. **routes** — consistent-hash ring → owning shard, MST1 trace
   context attached so the shard's span stitches to the ingress trace;
5. **awaits** — the shard handle's :class:`concurrent.futures.Future`
   is bridged onto the event loop with :func:`asyncio.wrap_future`, so
   thousands of outstanding sessions cost one coroutine each, not one
   thread each.

Because the front door runs on one event loop, its inflight counter
and sequence table need no locks — every mutation happens between
awaits.
"""

import asyncio
from typing import Dict, Optional

from repro._util.errors import MedSenError
from repro.fleet.cluster import FleetCluster, ShardCrashedError
from repro.fleet.messages import SessionOutcome, SubmitRequest, SubmitResponse
from repro.obs import FLEET_SHED, NULL_OBSERVER, derive_trace_context


class FleetSaturatedError(MedSenError):
    """Typed load-shed: the inflight bound is full; retry with backoff."""


class FleetRequestFailedError(MedSenError):
    """A routed session failed on its shard (typed, with provenance)."""

    def __init__(self, shard_id: str, error_type: str, error_message: str) -> None:
        super().__init__(f"[{shard_id}] {error_type}: {error_message}")
        self.shard_id = shard_id
        self.error_type = error_type
        self.error_message = error_message


class AsyncFrontDoor:
    """Admission, backpressure, sequencing, and routing for the fleet."""

    def __init__(
        self,
        cluster: FleetCluster,
        max_inflight: Optional[int] = None,
        observer=NULL_OBSERVER,
    ) -> None:
        self.cluster = cluster
        self.max_inflight = (
            max_inflight if max_inflight is not None else cluster.config.max_inflight
        )
        if self.max_inflight < 1:
            raise MedSenError(f"max_inflight must be >= 1, got {self.max_inflight}")
        self.observer = observer
        self._sequences: Dict[str, int] = {}
        self.inflight = 0
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.shed = 0
        self.retried = 0

    # ------------------------------------------------------------------
    async def register_tenant(self, tenant_id: str, identifier) -> None:
        """Enrol a tenant without blocking the event loop."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, self.cluster.register_tenant, tenant_id, identifier
        )

    # ------------------------------------------------------------------
    def _admit(self, tenant_id: str, duration_s: float, pipette_volume_ul: float):
        shard_cfg = self.cluster.config.shard
        from repro.guard.admission import admit_session_params

        admit_session_params(
            tenant_id,
            duration_s,
            pipette_volume_ul,
            max_duration_s=shard_cfg.max_duration_s,
            max_pipette_volume_ul=shard_cfg.max_pipette_volume_ul,
            observer=self.observer,
            boundary="fleet",
        )

    async def submit(
        self,
        tenant_id: str,
        blood,
        identifier,
        duration_s: float = 20.0,
        pipette_volume_ul: float = 2.0,
        timeout: Optional[float] = None,
        retries_on_crash: int = 0,
    ) -> SessionOutcome:
        """Admit, route, and await one diagnostic session.

        ``retries_on_crash`` replays the submission — with the *same*
        tenant sequence, so the request RNG coordinates are unchanged —
        after a shard crash, once the supervisor has restarted the
        shard.  The shard-side dedup cache makes the replay idempotent
        if the original actually completed.
        """
        # Admission before sequencing: a refused submission must not
        # burn a sequence number (replay determinism).
        self._admit(tenant_id, duration_s, pipette_volume_ul)
        if self.inflight >= self.max_inflight:
            self.shed += 1
            self.observer.incr("fleet.shed")
            self.observer.event(
                FLEET_SHED, tenant=tenant_id, inflight=self.inflight
            )
            raise FleetSaturatedError(
                f"fleet saturated: {self.inflight} sessions in flight "
                f"(bound {self.max_inflight})"
            )
        sequence = self._sequences.get(tenant_id, 0)
        self._sequences[tenant_id] = sequence + 1
        context = derive_trace_context(
            self.cluster.config.shard.seed, tenant_id, sequence
        )
        message = SubmitRequest(
            tenant_id=tenant_id,
            tenant_sequence=sequence,
            blood=blood,
            identifier=identifier,
            duration_s=duration_s,
            pipette_volume_ul=pipette_volume_ul,
            trace_context=context.to_bytes(),
        )
        timeout = (
            timeout if timeout is not None else self.cluster.config.request_timeout_s
        )
        self.inflight += 1
        self.submitted += 1
        self.observer.incr("fleet.submitted")
        try:
            attempts = 0
            while True:
                handle = self.cluster.handle_for(tenant_id)
                with self.observer.span(
                    "fleet_ingress",
                    remote_parent=context,
                    service="frontdoor",
                    tenant=tenant_id,
                    shard=handle.shard_id,
                ):
                    future = handle.request(message)
                try:
                    response = await asyncio.wait_for(
                        asyncio.wrap_future(future), timeout=timeout
                    )
                    break
                except ShardCrashedError:
                    if attempts >= retries_on_crash:
                        raise
                    attempts += 1
                    self.retried += 1
                    self.observer.incr("fleet.retries")
                    # Give the supervisor a beat to restart the shard;
                    # handle_for() re-resolves to the new process.
                    await asyncio.sleep(0.05 * attempts)
        except Exception:
            self.failed += 1
            self.observer.incr("fleet.failed")
            raise
        finally:
            self.inflight -= 1
        assert isinstance(response, SubmitResponse)
        if not response.ok:
            self.failed += 1
            self.observer.incr("fleet.failed")
            raise FleetRequestFailedError(
                response.shard_id,
                response.error_type or "SessionFailed",
                response.error_message or "session failed",
            )
        if response.duplicate:
            self.observer.incr("fleet.duplicates_answered")
        self.completed += 1
        self.observer.incr("fleet.completed")
        assert response.outcome is not None
        return response.outcome
