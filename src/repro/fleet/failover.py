"""Deterministic failover drill: kill a loaded primary, lose nothing.

``python -m repro failover --smoke`` runs one end-to-end drill over a
real :class:`~repro.fleet.replication.ReplicatedCluster` and asserts
the replication lane's whole contract:

* **zero acknowledged loss** — every outcome the front door acked is
  bit-identical to the single-process reference, and the fleet's
  record-store union (primaries only) equals the reference store's
  content hashes, even though a primary was SIGKILLed mid-campaign;
* **bounded MTTR** — the standby promotes within the lease window
  (plus scheduling slack), measured by the supervisor;
* **fencing** — a partitioned (SIGSTOPped, then resumed) stale primary
  answers with a superseded epoch; the front door refuses the reply,
  re-runs the session on the promoted primary, and the client sees the
  bit-identical outcome exactly once;
* **anti-entropy** — the demoted ex-primary rejoins from the shipped
  replication log and converges to the promoted primary's exact
  record partition;
* **stream continuity** — a streaming session opened on the doomed
  primary resumes on the promoted standby via its original HMAC resume
  token and closes with the one-shot detector's digest.

Everything is seeded; the drill's digest is a pure function of its
seed, which is how CI pins it.
"""

import asyncio
import hashlib
import json
import os
import signal
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro._util.rng import ensure_rng
from repro.fleet.campaign import _reference_outcomes, _submit_round
from repro.fleet.frontdoor import AsyncFrontDoor, FleetRequestFailedError
from repro.fleet.cluster import FleetTierConfig
from repro.fleet.replication import ReplicatedCluster, ReplicationConfig
from repro.obs import NULL_OBSERVER
from repro.resilience.chaos import InvariantResult
from repro.resilience.journal import decode_entry
from repro.serving.scheduler import FleetConfig
from repro.serving.workload import ClinicWorkload

#: Freshness secret for the drill's streaming leg (drill-local; any
#: fleet deploys its own).
DRILL_SECRET = b"medsen-failover-drill-secret"

#: Scheduling slack allowed on top of the lease TTL when bounding MTTR.
MTTR_SLACK_S = 5.0


@dataclass
class FailoverReport:
    """Everything one failover drill produced."""

    seed: int
    n_partitions: int
    invariants: List[InvariantResult] = field(default_factory=list)
    n_acked: int = 0
    n_failovers: int = 0
    n_rejoins: int = 0
    n_fenced: int = 0
    n_handoff_queued: int = 0
    n_shed_during_failover: int = 0
    mttr_s: float = 0.0
    lease_ttl_s: float = 0.0
    replog_lines: int = 0
    outcome_digests: Tuple[str, ...] = ()
    digest: str = ""

    @property
    def passed(self) -> bool:
        return all(inv.ok for inv in self.invariants)

    def failures(self) -> List[InvariantResult]:
        return [inv for inv in self.invariants if not inv.ok]

    def format(self) -> str:
        lines = [
            f"failover drill seed {self.seed}, {self.n_partitions} replicated "
            f"partitions: {'PASS' if self.passed else 'FAIL'}",
            f"acked             {self.n_acked} sessions, "
            f"{self.n_shed_during_failover} shed during failover",
            f"failovers         {self.n_failovers} promotions "
            f"(last MTTR {self.mttr_s * 1000:.0f} ms, lease TTL "
            f"{self.lease_ttl_s * 1000:.0f} ms), {self.n_rejoins} rejoins",
            f"fencing           {self.n_fenced} stale-epoch replies refused, "
            f"{self.n_handoff_queued} requests queued through handoff",
            f"replication       {self.replog_lines} journal lines shipped",
            f"digest            {self.digest}",
        ]
        for inv in self.invariants:
            mark = "ok " if inv.ok else "FAIL"
            lines.append(
                f"invariant [{mark}]   {inv.name}"
                + (f" — {inv.detail}" if inv.detail else "")
            )
        return "\n".join(lines)


def _partition_tenants(
    cluster: ReplicatedCluster, tenants: Tuple[str, ...]
) -> Dict[str, List[str]]:
    by_partition: Dict[str, List[str]] = {}
    for tenant in tenants:
        by_partition.setdefault(cluster.partition_of(tenant), []).append(tenant)
    return by_partition


async def _stream_leg(
    door: AsyncFrontDoor,
    tenant: str,
    trace,
    fs_hz: float,
    pause_after: int,
):
    """Open + first chunks of a stream; returns a resumable cursor."""
    from repro.guard.freshness import TokenMinter
    from repro.stream import seal_chunk

    minter = TokenMinter(DRILL_SECRET)
    opened = await door.open_stream(tenant, trace.shape[0], fs_hz, minter.mint())
    seq, pos = 0, 0
    while pos < trace.shape[1] and seq < pause_after:
        samples = trace[:, pos : pos + opened.chunk_samples]
        blob = seal_chunk(
            samples,
            DRILL_SECRET,
            opened.session_key,
            seq,
            key_epoch=opened.key_epoch,
            sampling_rate_hz=fs_hz,
        )
        await door.stream_chunk(opened.session_id, blob)
        pos += samples.shape[1]
        seq += 1
    return opened, seq, pos


async def _finish_stream(
    door: AsyncFrontDoor,
    opened,
    trace,
    fs_hz: float,
    seq: int,
    pos: int,
):
    from repro.stream import seal_chunk

    info = await door.resume_stream(opened.session_id, opened.resume_token)
    seq = info.cursor
    pos = min(pos, seq * opened.chunk_samples)
    while pos < trace.shape[1]:
        samples = trace[:, pos : pos + opened.chunk_samples]
        blob = seal_chunk(
            samples,
            DRILL_SECRET,
            opened.session_key,
            seq,
            key_epoch=opened.key_epoch,
            sampling_rate_hz=fs_hz,
        )
        await door.stream_chunk(opened.session_id, blob)
        pos += samples.shape[1]
        seq += 1
    return await door.close_stream(opened.session_id)


async def _drill(
    report: FailoverReport,
    cluster: ReplicatedCluster,
    workload: ClinicWorkload,
    reference: Dict[Tuple[str, int], str],
    reference_hashes: List[str],
    observer,
) -> None:
    from repro.dsp import PeakDetector
    from repro.stream import report_digest, synthetic_stream_trace

    loop = asyncio.get_running_loop()
    door = AsyncFrontDoor(cluster, observer=observer)
    from repro.fleet.campaign import _fleet_identifiers

    identifiers = _fleet_identifiers(workload)
    for tenant, identifier in identifiers.items():
        await door.register_tenant(tenant, identifier)

    tenants = workload.tenant_ids()
    by_partition = _partition_tenants(cluster, tenants)
    victim = cluster.partition_of(tenants[0])
    fence_partition = next(
        (part for part in sorted(by_partition) if part != victim), victim
    )

    half = workload.requests_per_tenant // 2
    first_half = tuple(range(half))
    second_half = tuple(range(half, workload.requests_per_tenant))
    digests: Dict[Tuple[str, int], str] = {}
    acked = []

    # ------------------------------------------------ steady-state round
    round_one = await _submit_round(door, workload, identifiers, first_half)
    for key, digest, outcome in round_one:
        digests[key] = digest
        if outcome is not None:
            acked.append(outcome)

    # Streaming session pinned to the doomed partition, paused mid-way.
    fs_hz = 1000.0
    trace = synthetic_stream_trace(
        ensure_rng(report.seed + 71), n_channels=2, n_samples=2200
    )
    stream_tenant = by_partition[victim][0]
    opened, stream_seq, stream_pos = await _stream_leg(
        door, stream_tenant, trace, fs_hz, pause_after=2
    )

    # -------------------------------------- SIGKILL the loaded primary
    # Renew the victim's lease first so promotion genuinely waits out a
    # live lease window (otherwise the start-time lease has long lapsed
    # and the drill would never exercise the safety delay).
    cluster.renew(victim)
    doomed = cluster.primary_id(victim)
    round_two_tasks = [
        asyncio.ensure_future(
            door.submit(
                tenant,
                workload.blood_sample(tenant_index, sequence),
                identifiers[tenant],
                duration_s=workload.duration_s,
            )
        )
        for sequence in second_half
        for tenant_index, tenant in enumerate(tenants)
    ]
    keys = [
        (tenant, sequence)
        for sequence in second_half
        for tenant in tenants
    ]
    await asyncio.sleep(0.02)  # let the round land in flight
    await loop.run_in_executor(None, cluster.kill, doomed)
    results = await asyncio.gather(*round_two_tasks, return_exceptions=True)
    for key, result in zip(keys, results):
        if isinstance(result, FleetRequestFailedError):
            # Same failure encoding as the single-process reference: a
            # session that fails must fail with the same typed error.
            digests[key] = f"error:{result.error_type}"
        elif isinstance(result, BaseException):
            digests[key] = f"error:{type(result).__name__}"
        else:
            digests[key] = result.digest()
            acked.append(result)

    report.invariants.append(
        InvariantResult(
            name="failover-standby-promoted-within-lease-window",
            ok=cluster.failovers >= 1
            and cluster.last_mttr_s
            <= cluster.replication.lease_ttl_s + MTTR_SLACK_S,
            detail=(
                f"{cluster.failovers} promotions, MTTR "
                f"{cluster.last_mttr_s * 1000:.0f} ms vs lease "
                f"{cluster.replication.lease_ttl_s * 1000:.0f} ms + slack"
            ),
        )
    )

    # -------------------------------------------- zero acknowledged loss
    matched = sum(
        1 for key, digest in digests.items() if reference.get(key) == digest
    )
    report.invariants.append(
        InvariantResult(
            name="acked-outcomes-bit-identical-to-no-fault-reference",
            ok=bool(digests) and matched == len(digests),
            detail=f"{matched}/{len(digests)} digests match through a failover",
        )
    )
    fleet_hashes = cluster.fleet_record_hashes()
    report.invariants.append(
        InvariantResult(
            name="no-acked-record-lost-across-failover",
            ok=fleet_hashes == sorted(reference_hashes),
            detail=(
                f"{len(fleet_hashes)} records on promoted primaries vs "
                f"{len(reference_hashes)} in the no-fault reference store"
            ),
        )
    )
    shipped_ok = 0
    for partition in cluster.partitions:
        for line in cluster.replog_lines(partition):
            decode_entry(line)  # raises on a torn/corrupt shipped line
            shipped_ok += 1
    report.replog_lines = shipped_ok
    report.invariants.append(
        InvariantResult(
            name="shipped-journal-lines-verify",
            ok=shipped_ok >= len(reference_hashes),
            detail=f"{shipped_ok} shipped lines re-verified CRC-clean",
        )
    )

    # --------------------------------------- stream resumes on standby
    closed = await _finish_stream(
        door, opened, trace, fs_hz, stream_seq, stream_pos
    )
    one_shot = PeakDetector().detect(trace, fs_hz)
    report.invariants.append(
        InvariantResult(
            name="stream-session-resumes-on-promoted-standby",
            ok=closed.report_digest == report_digest(one_shot)
            and closed.n_samples == trace.shape[1],
            detail=(
                f"resumed at cursor {stream_seq}, closed with "
                f"{closed.n_chunks} chunks bit-identical to one-shot"
            ),
        )
    )

    # ------------------------------------------- anti-entropy rejoin
    await loop.run_in_executor(None, cluster.rejoin, victim)
    report.n_rejoins = cluster.rejoins
    digests_by_shard = cluster.store_digests()
    primary_hashes = digests_by_shard[cluster.primary_id(victim)].record_hashes
    standby_id = cluster.standby_id(victim)
    rejoined_hashes = digests_by_shard[standby_id].record_hashes
    report.invariants.append(
        InvariantResult(
            name="rejoined-standby-converges-from-shipped-journal",
            ok=sorted(rejoined_hashes) == sorted(primary_hashes),
            detail=(
                f"{len(rejoined_hashes)} rejoined records == "
                f"{len(primary_hashes)} promoted-primary records"
            ),
        )
    )

    # ------------------------------------ fence a partitioned primary
    # SIGSTOP the primary (unreachable, not dead), let a request queue
    # on it, promote the standby, then SIGCONT: the old primary answers
    # with a superseded epoch and the front door must refuse it and
    # re-run on the promoted primary — acked exactly once.
    fence_tenant = by_partition[fence_partition][0]
    stale = cluster._handles[cluster.primary_id(fence_partition)]
    fenced_before = door.fenced
    os.kill(stale.process.pid, signal.SIGSTOP)
    try:
        sequence = door._sequences.get(fence_tenant, 0)
        fence_task = asyncio.ensure_future(
            door.submit(
                fence_tenant,
                workload.blood_sample(tenants.index(fence_tenant), sequence),
                identifiers[fence_tenant],
                duration_s=workload.duration_s,
            )
        )
        await asyncio.sleep(0.05)  # the request is queued on the pipe
        await loop.run_in_executor(None, cluster.fail_over, fence_partition)
    finally:
        os.kill(stale.process.pid, signal.SIGCONT)
    fence_outcome = await fence_task
    report.invariants.append(
        InvariantResult(
            name="stale-epoch-primary-fenced-no-double-ack",
            ok=door.fenced > fenced_before and fence_outcome is not None,
            detail=(
                f"{door.fenced - fenced_before} stale replies fenced; session "
                f"re-ran on {cluster.primary_id(fence_partition)} and acked once"
            ),
        )
    )
    # The fenced ex-primary rejoins from the replog: its divergent
    # post-fence commit is discarded, not merged.
    await loop.run_in_executor(None, cluster.rejoin, fence_partition)
    report.n_rejoins = cluster.rejoins

    report.n_acked = len(acked)
    report.n_failovers = cluster.failovers
    report.n_fenced = door.fenced
    report.n_handoff_queued = door.handoff_queued
    report.n_shed_during_failover = door.handoff_shed
    report.mttr_s = cluster.last_mttr_s
    report.outcome_digests = tuple(
        digests[key] for key in sorted(digests)
    )


def run_failover(
    seed: int = 0,
    n_partitions: int = 2,
    smoke: bool = True,
    lease_ttl_s: float = 0.3,
    observer=NULL_OBSERVER,
) -> FailoverReport:
    """Run one failover drill and return its report."""
    workload = ClinicWorkload(
        n_tenants=4 if smoke else 8,
        requests_per_tenant=4 if smoke else 6,
        duration_s=6.0 if smoke else 8.0,
        seed=seed + 2016,
    )
    fleet = FleetConfig(
        seed=seed,
        n_workers=2,
        queue_capacity=max(64, workload.n_requests),
        freshness_secret=DRILL_SECRET,
    )
    reference, reference_hashes = _reference_outcomes(workload, fleet)
    tier = FleetTierConfig(
        n_shards=n_partitions,
        shard=fleet,
        max_inflight=max(64, workload.n_requests),
        journal=True,
    )
    replication = ReplicationConfig(
        lease_ttl_s=lease_ttl_s,
        handoff_capacity=max(64, workload.n_requests),
        handoff_window_s=30.0,
    )
    report = FailoverReport(
        seed=seed, n_partitions=n_partitions, lease_ttl_s=lease_ttl_s
    )
    with ReplicatedCluster(tier, replication, observer=observer) as cluster:
        asyncio.run(
            _drill(report, cluster, workload, reference, reference_hashes, observer)
        )
    payload = json.dumps(
        {
            "seed": report.seed,
            "n_partitions": report.n_partitions,
            "outcomes": list(report.outcome_digests),
            "invariants": [[inv.name, inv.ok] for inv in report.invariants],
            "fenced": report.n_fenced >= 1,
            "failovers": report.n_failovers,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    report.digest = hashlib.blake2b(
        payload.encode("utf-8"), digest_size=12
    ).hexdigest()
    return report
