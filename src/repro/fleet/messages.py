"""Wire messages between the fleet front door and its shard processes.

Everything crossing the process boundary is a small frozen dataclass
defined here, framed by :mod:`repro.fleet.transport`.  Requests travel
parent → shard; each carries an envelope message id the shard echoes in
its reply, so the parent's single receiver thread can resolve replies
that arrive out of submission order (sessions finish whenever their
shard's worker pool finishes them).

:class:`SessionOutcome` is the compact honest-path result a shard sends
back instead of the full ``SessionResult`` object graph: exactly the
numeric outputs the determinism guarantee covers, plus a BLAKE2b digest
over them so bit-identity with the single-process tier is a one-line
comparison (the chaos campaign and ``bench_scaling`` both use it).
"""

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.auth.identifier import CytoIdentifier
from repro.particles.sample import Sample


@dataclass(frozen=True)
class SessionOutcome:
    """Honest-path numeric outputs of one diagnostic session."""

    tenant_id: str
    tenant_sequence: int
    diagnosis_label: str
    concentration_per_ul: float
    auth_accepted: bool
    auth_user_id: Optional[str]
    record_key: str
    report_count: int
    decrypted_count: float
    marker_count: float
    shard_id: str = ""

    @classmethod
    def from_result(
        cls, result, tenant_id: str, tenant_sequence: int, shard_id: str = ""
    ) -> "SessionOutcome":
        """Distil a :class:`~repro.core.protocol.SessionResult`."""
        return cls(
            tenant_id=tenant_id,
            tenant_sequence=tenant_sequence,
            diagnosis_label=result.diagnosis.label,
            concentration_per_ul=float(result.diagnosis.concentration_per_ul),
            auth_accepted=bool(result.auth.accepted),
            auth_user_id=result.auth.user_id,
            record_key=result.record_key,
            report_count=int(result.relay.report.count),
            decrypted_count=float(result.decryption.total_count),
            marker_count=float(result.marker_count),
            shard_id=shard_id,
        )

    def digest(self) -> str:
        """Interleaving- and shard-independent content hash.

        Excludes ``shard_id`` on purpose: *where* a session ran is
        deployment topology; *what* it produced must be a pure function
        of ``(fleet seed, tenant, tenant_sequence)``.
        """
        payload = json.dumps(
            {
                "tenant": self.tenant_id,
                "sequence": self.tenant_sequence,
                "label": self.diagnosis_label,
                "concentration": self.concentration_per_ul,
                "accepted": self.auth_accepted,
                "user": self.auth_user_id,
                "record_key": self.record_key,
                "report_count": self.report_count,
                "decrypted": self.decrypted_count,
                "marker": self.marker_count,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.blake2b(payload.encode("utf-8"), digest_size=12).hexdigest()


# ---------------------------------------------------------------------------
# Parent → shard
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RegisterTenant:
    """Enrol a tenant's cyto-coded password on its owning shard."""

    tenant_id: str
    identifier: CytoIdentifier


@dataclass(frozen=True)
class SubmitRequest:
    """One routed diagnostic session.

    ``tenant_sequence`` is assigned by the front door (the fleet-wide
    source of truth); the shard *verifies* its scheduler agrees — and
    resumes the counter after a restart — so the request RNG
    coordinates survive both routing and recovery.  ``trace_context``
    is the MST1 wire form of the front door's ingress span, adopted by
    the shard as remote parent so the cross-process trace stitches.
    """

    tenant_id: str
    tenant_sequence: int
    blood: Sample
    identifier: CytoIdentifier
    duration_s: float = 20.0
    pipette_volume_ul: float = 2.0
    trace_context: Optional[bytes] = None


@dataclass(frozen=True)
class StreamOpen:
    """Open one streaming session on the tenant's owning shard.

    ``token_blob`` is the device's MSF1/MSF2 freshness token; the
    shard's stream gateway admits it (replay- and epoch-checked)
    before any session state exists.
    """

    tenant_id: str
    n_channels: int
    sampling_rate_hz: float
    token_blob: bytes


@dataclass(frozen=True)
class StreamChunkMsg:
    """One sealed MSS1 chunk in transit to its session's shard."""

    tenant_id: str
    session_id: str
    blob: bytes


@dataclass(frozen=True)
class StreamResume:
    """Re-attach to a session after a disconnect (token-authenticated)."""

    tenant_id: str
    session_id: str
    resume_token: str


@dataclass(frozen=True)
class StreamClose:
    """Finish a session's detector and return its terminal outcome."""

    tenant_id: str
    session_id: str


@dataclass(frozen=True)
class LeaseGrant:
    """Assign a shard its replication role under an epoch-numbered lease.

    The cluster supervisor is the only lease authority; a shard never
    invents an epoch.  ``epoch`` tags every subsequent
    :class:`SubmitResponse` the shard produces, which is what lets the
    front door *fence* a stale primary after a failover — a response
    carrying a superseded epoch is refused, never acknowledged to the
    client (no split-brain double-acks).
    """

    partition: str
    epoch: int
    role: str  # "primary" | "standby"
    ttl_s: float


@dataclass(frozen=True)
class JournalShip:
    """Ship checksummed journal lines to a partition's standby.

    ``entries`` are verbatim :func:`~repro.resilience.journal.encode_entry`
    lines — the exact bytes the primary journaled — so the standby
    verifies the same CRCs the crash-recovery path does and quarantines
    (never applies) a damaged or torn line.
    """

    partition: str
    epoch: int
    entries: Tuple[str, ...]


@dataclass(frozen=True)
class HealthCheck:
    """Liveness + progress probe."""


@dataclass(frozen=True)
class SnapshotRequest:
    """Ask for the shard's telemetry state (metrics + sketches)."""


@dataclass(frozen=True)
class StoreDigest:
    """Ask for a content hash of the shard's record-store partition."""


@dataclass(frozen=True)
class Drain:
    """Stop accepting submissions, finish in-flight work, then report."""


@dataclass(frozen=True)
class Shutdown:
    """Clean exit: drain, close the journal, acknowledge, return."""


# ---------------------------------------------------------------------------
# Shard → parent
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Ack:
    """Generic success reply for control messages."""

    shard_id: str


@dataclass(frozen=True)
class SubmitResponse:
    """Terminal reply for one :class:`SubmitRequest`.

    ``epoch`` is the lease epoch the shard held when it answered
    (0 = unleased, the single-copy tier); the front door compares it
    against the partition's current epoch and fences stale answers.
    ``journal_entry`` carries the committed record's checksummed
    journal line on replicated partitions, so the front door can ship
    it to the standby *before* acknowledging the client.
    """

    shard_id: str
    tenant_id: str
    tenant_sequence: int
    ok: bool
    outcome: Optional[SessionOutcome] = None
    error_type: Optional[str] = None
    error_message: Optional[str] = None
    duplicate: bool = False
    epoch: int = 0
    journal_entry: Optional[str] = None


@dataclass(frozen=True)
class ShipAck:
    """Reply to one :class:`JournalShip`: what the standby did with it."""

    shard_id: str
    partition: str
    applied: int
    duplicates: int
    quarantined: int
    store_records: int


@dataclass(frozen=True)
class StreamOpened:
    """Reply to :class:`StreamOpen`: the session's credentials."""

    shard_id: str
    session_id: str
    session_key: bytes
    resume_token: str
    chunk_samples: int
    key_epoch: int


@dataclass(frozen=True)
class StreamChunkAck:
    """Reply to one :class:`StreamChunkMsg` (accepted or duplicate)."""

    shard_id: str
    session_id: str
    seq: int
    cursor: int
    duplicate: bool
    backpressure: bool
    peaks_so_far: int


@dataclass(frozen=True)
class StreamResumed:
    """Reply to :class:`StreamResume`: where to pick up."""

    shard_id: str
    session_id: str
    cursor: int
    chunk_samples: int
    key_epoch: int


@dataclass(frozen=True)
class StreamClosed:
    """Reply to :class:`StreamClose`: the terminal streamed outcome.

    Carries the scalar projection of the session (counts + the
    canonical report digest) rather than the full report object graph —
    the digest is what the bit-identity checks compare.
    """

    shard_id: str
    session_id: str
    tenant_id: str
    n_chunks: int
    n_samples: int
    n_duplicates: int
    peak_count: int
    report_digest: str
    degraded: bool = False
    degraded_reason: str = ""


@dataclass(frozen=True)
class ShardHealth:
    """One shard's progress counters and recovery provenance."""

    shard_id: str
    completed: int
    failed: int
    rejected: int
    inflight: int
    store_records: int
    journal_entries: int
    recovered_records: int = 0
    quarantined_entries: int = 0
    garbage_frames: int = 0
    epoch: int = 0
    role: str = "primary"
    replica_applied: int = 0
    replica_duplicates: int = 0
    replica_quarantined: int = 0


@dataclass(frozen=True)
class ShardTelemetry:
    """One shard's metrics + quantile-sketch state for the roll-up.

    ``quantiles`` is the lossless
    :meth:`~repro.telemetry.quantiles.QuantileRegistry.state` dump; the
    parent rebuilds per-shard registries and merges them with
    :func:`~repro.telemetry.quantiles.merge_registries`, so fleet p99s
    come from summed bucket counts, never averaged percentiles.
    """

    shard_id: str
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    quantiles: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class ShardStoreDigest:
    """Content hashes of every record on the shard's store partition.

    Hashes exclude sequence numbers and timestamps (commit order is
    interleaving-dependent); the *set* of content hashes is the
    partition's canonical value for recovery bit-identity checks.
    """

    shard_id: str
    record_hashes: Tuple[str, ...]
    n_records: int


@dataclass(frozen=True)
class ErrorReply:
    """Typed failure for a request the shard refused or could not run."""

    shard_id: str
    error_type: str
    error_message: str
