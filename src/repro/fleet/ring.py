"""Consistent-hash ring: tenants → shard processes.

The sharded cloud tier partitions tenants across worker processes so
each tenant's records, lockout state, and submission sequence live on
exactly one shard.  A :class:`HashRing` places ``vnodes`` virtual
points per shard on a 64-bit circle (BLAKE2b over ``shard_id#replica``
— never Python's per-process-salted ``hash``) and assigns a tenant to
the first shard point at or after the tenant's own hash.

Two properties matter for the fleet and are property-tested
(``tests/test_fleet_ring.py``):

* **balance** — with the default 128 virtual nodes per shard, the load
  over many tenants stays within a modest factor of the fair share;
* **minimal movement** — adding or draining one shard only moves the
  keys that land on (or leave) that shard's arcs; every other tenant
  keeps its assignment, so a scale-out does not reshuffle the fleet's
  record partitioning.

The ring is deterministic: the same shard ids produce the identical
assignment in every process, so the front door, a restarted shard, and
an offline replay all agree on who owns a tenant.
"""

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

from repro._util.errors import ConfigurationError

#: Virtual points per shard; more points = tighter balance, slower build.
DEFAULT_VNODES = 128

_SPACE = 1 << 64


def _point(key: str) -> int:
    """Deterministic 64-bit ring position for a key."""
    digest = hashlib.blake2b(
        b"medsen-ring:" + key.encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring over named shards.

    Parameters
    ----------
    shard_ids:
        Initial shard names (order-insensitive: the ring layout is a
        pure function of the *set* of ids).
    vnodes:
        Virtual points per shard.
    """

    def __init__(
        self, shard_ids: Sequence[str] = (), vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._shards: List[str] = []
        self._points: List[int] = []
        self._owners: List[str] = []
        for shard_id in shard_ids:
            self.add_shard(shard_id)

    # ------------------------------------------------------------------
    @property
    def shard_ids(self) -> Tuple[str, ...]:
        """Shards currently on the ring, sorted."""
        return tuple(sorted(self._shards))

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shards

    # ------------------------------------------------------------------
    def add_shard(self, shard_id: str) -> None:
        """Place one shard's virtual points on the ring."""
        if not shard_id or not isinstance(shard_id, str):
            raise ConfigurationError(f"shard id must be a non-empty str, got {shard_id!r}")
        if shard_id in self._shards:
            raise ConfigurationError(f"shard {shard_id!r} already on the ring")
        self._shards.append(shard_id)
        for replica in range(self.vnodes):
            point = _point(f"{shard_id}#{replica}")
            index = bisect.bisect_left(self._points, point)
            # 64-bit BLAKE2b collisions between distinct vnode labels
            # are effectively impossible; ties break by owner name so
            # even that case stays deterministic.
            if index < len(self._points) and self._points[index] == point:
                if self._owners[index] <= shard_id:
                    continue
                self._owners[index] = shard_id
                continue
            self._points.insert(index, point)
            self._owners.insert(index, shard_id)

    def remove_shard(self, shard_id: str) -> None:
        """Drain one shard off the ring (its arcs fall to successors)."""
        if shard_id not in self._shards:
            raise ConfigurationError(f"shard {shard_id!r} not on the ring")
        self._shards.remove(shard_id)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != shard_id
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    # ------------------------------------------------------------------
    def assign(self, tenant_id: str) -> str:
        """The shard owning ``tenant_id`` (first point clockwise)."""
        if not self._points:
            raise ConfigurationError("cannot assign on an empty ring")
        point = _point("tenant:" + tenant_id)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def assignment(self, tenant_ids: Sequence[str]) -> Dict[str, str]:
        """Bulk :meth:`assign` (tenant → shard)."""
        return {tenant: self.assign(tenant) for tenant in tenant_ids}

    def load(self, tenant_ids: Sequence[str]) -> Dict[str, int]:
        """Tenants per shard over a concrete population (all shards
        present, including empty ones)."""
        counts = {shard: 0 for shard in self._shards}
        for tenant in tenant_ids:
            counts[self.assign(tenant)] += 1
        return counts

    def imbalance(self, tenant_ids: Sequence[str]) -> float:
        """Max shard load over the fair share (1.0 = perfectly even)."""
        if not tenant_ids or not self._shards:
            return 1.0
        counts = self.load(tenant_ids)
        fair = len(tenant_ids) / len(self._shards)
        return max(counts.values()) / fair
