"""``repro.fleet`` — the multi-process sharded cloud tier.

The single-process serving stack (:mod:`repro.serving`) scales until
one interpreter is the bottleneck; this package shards it across worker
**processes** while keeping the determinism contract intact: every
honest numeric output is a pure function of ``(fleet seed, tenant,
tenant_sequence)``, so a 4-shard fleet, a 1-shard fleet, and the
single-process tier produce bit-identical results for the same traffic
(Paper §2's trusted-sensing guarantee survives horizontal scaling).

Layers, bottom up:

* :mod:`~repro.fleet.ring` — consistent-hash ring (tenant → shard);
* :mod:`~repro.fleet.transport` — checksummed ``MSFT`` frames over
  pipes, garbage refused before unpickling;
* :mod:`~repro.fleet.messages` — the frozen wire dataclasses;
* :mod:`~repro.fleet.shard` — the worker process: a full
  scheduler + server + journaled store partition per shard;
* :mod:`~repro.fleet.cluster` — parent-side supervision: spawn,
  health, drain, kill, restart-with-recovery;
* :mod:`~repro.fleet.frontdoor` — the asyncio ingest path: guard
  admission, bounded inflight with typed shedding, sequencing,
  routing, trace propagation, epoch fencing and hinted handoff;
* :mod:`~repro.fleet.replication` — replicated partitions: a
  primary + synchronous standby per hash-ring partition, journal
  shipping before ack, lease-based failover with stale-epoch fencing,
  anti-entropy rejoin from the shipped history;
* :mod:`~repro.fleet.failover` — the ``python -m repro failover``
  drill: SIGKILL a loaded primary and assert zero acked loss, bounded
  MTTR, fencing, and bit-identical honest outcomes;
* :mod:`~repro.fleet.loadgen` — heavy-tailed million-user arrival
  replay in bounded memory;
* :mod:`~repro.fleet.campaign` — the ``python -m repro fleet``
  smoke/drill campaigns (determinism, recovery, shedding invariants).
"""

from repro.fleet.campaign import ALL_PHASES, FleetReport, run_fleet
from repro.fleet.cluster import (
    FleetCluster,
    FleetTierConfig,
    ShardCrashedError,
    ShardHandle,
    ShardRequestError,
)
from repro.fleet.failover import FailoverReport, run_failover
from repro.fleet.frontdoor import (
    AsyncFrontDoor,
    FleetRequestFailedError,
    FleetSaturatedError,
)
from repro.fleet.loadgen import (
    LoadProfile,
    LoadReport,
    SpaceSaving,
    generate_arrivals,
    replay,
)
from repro.fleet.messages import (
    JournalShip,
    LeaseGrant,
    SessionOutcome,
    ShardHealth,
    ShardTelemetry,
    ShipAck,
)
from repro.fleet.replication import (
    Lease,
    LeaseTable,
    ReplicatedCluster,
    ReplicationConfig,
)
from repro.fleet.ring import DEFAULT_VNODES, HashRing
from repro.fleet.shard import ShardSpec, shard_main, store_content_hashes
from repro.fleet.transport import (
    FRAME_MAGIC,
    FrameChannel,
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
)

__all__ = [
    "ALL_PHASES",
    "AsyncFrontDoor",
    "DEFAULT_VNODES",
    "FRAME_MAGIC",
    "FailoverReport",
    "FleetCluster",
    "FleetReport",
    "FleetRequestFailedError",
    "FleetSaturatedError",
    "FleetTierConfig",
    "FrameChannel",
    "HashRing",
    "JournalShip",
    "Lease",
    "LeaseGrant",
    "LeaseTable",
    "LoadProfile",
    "LoadReport",
    "MAX_FRAME_BYTES",
    "ReplicatedCluster",
    "ReplicationConfig",
    "SessionOutcome",
    "ShardCrashedError",
    "ShardHandle",
    "ShardHealth",
    "ShardRequestError",
    "ShardSpec",
    "ShardTelemetry",
    "ShipAck",
    "SpaceSaving",
    "decode_frame",
    "encode_frame",
    "generate_arrivals",
    "replay",
    "run_failover",
    "run_fleet",
    "shard_main",
    "store_content_hashes",
]
