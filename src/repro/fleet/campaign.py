"""Fleet campaigns: determinism, shedding, chaos, and hardening drills.

``python -m repro fleet --smoke`` runs every phase against a real
multi-process cluster and checks the invariants the sharded tier is
built around:

* **determinism** — the same clinic traffic through a 1-process
  scheduler and through N shard processes produces bit-identical
  session outcomes, and the union of shard store partitions equals the
  single-process store (content hashes);
* **telemetry** — per-shard counters and quantile sketches roll up by
  summation/bucket-merge and account for every session exactly once;
* **shedding** — the asyncio front door refuses the
  ``max_inflight+1``-th concurrent session with a typed
  :class:`~repro.fleet.frontdoor.FleetSaturatedError`, loses nothing
  below the bound, and guard-refuses malformed submissions before any
  sequence number is spent;
* **chaos** — ``SIGKILL`` a shard mid-campaign, restart it from its
  journal, and require (a) bit-identical record recovery and (b)
  bit-identical post-restart traffic (the resumed sequence counters at
  work);
* **harden** — write raw garbage into a shard's pipe; the shard must
  count and refuse the frames and keep serving;
* **load** — replay a heavy-tailed arrival tape
  (:mod:`repro.fleet.loadgen`) and require exact accounting of every
  arrival (completed + shed + rejected + failed).

The phases share one cluster, so later phases also regression-test the
state earlier phases left behind (exactly how a long-lived fleet runs).
"""

import asyncio
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro._util.errors import AdmissionError, MedSenError
from repro.fleet.cluster import FleetCluster, FleetTierConfig
from repro.fleet.frontdoor import (
    AsyncFrontDoor,
    FleetRequestFailedError,
    FleetSaturatedError,
)
from repro.fleet.loadgen import (
    ENROLL_ATTEMPTS,
    LoadProfile,
    LoadReport,
    replay,
    tenant_blood,
    tenant_identifier,
)
from repro.fleet.messages import SessionOutcome
from repro.fleet.shard import store_content_hashes
from repro.obs import NULL_OBSERVER
from repro.resilience.chaos import InvariantResult
from repro.serving.scheduler import FleetConfig, FleetScheduler
from repro.serving.workload import ClinicWorkload

#: Phase order matters: reference-compared traffic (determinism, chaos)
#: runs before phases that enrol extra tenants (shedding's burst
#: tenant, the load replay) — the auth directory is fleet-global, so a
#: late enrolment must never be able to perturb an earlier comparison.
ALL_PHASES: Tuple[str, ...] = (
    "determinism",
    "telemetry",
    "chaos",
    "harden",
    "shedding",
    "load",
)


@dataclass
class FleetReport:
    """Everything one fleet campaign produced."""

    seed: int
    n_shards: int
    phases: Tuple[str, ...] = ALL_PHASES
    invariants: List[InvariantResult] = field(default_factory=list)
    n_sessions: int = 0
    n_shed: int = 0
    n_rejected: int = 0
    n_failed: int = 0
    n_garbage_frames: int = 0
    n_recovered_records: int = 0
    n_restarts: int = 0
    shard_completed: Dict[str, int] = field(default_factory=dict)
    load: Optional[LoadReport] = None
    outcome_digests: Tuple[str, ...] = ()
    digest: str = ""

    @property
    def passed(self) -> bool:
        return all(inv.ok for inv in self.invariants)

    def failures(self) -> List[InvariantResult]:
        return [inv for inv in self.invariants if not inv.ok]

    def format(self) -> str:
        lines = [
            f"fleet campaign seed {self.seed}, {self.n_shards} shards, "
            f"phases {'/'.join(self.phases)}: "
            f"{'PASS' if self.passed else 'FAIL'}",
            f"sessions          {self.n_sessions} completed, {self.n_shed} shed, "
            f"{self.n_rejected} rejected, {self.n_failed} failed",
            f"resilience        {self.n_restarts} shard restarts, "
            f"{self.n_recovered_records} records recovered, "
            f"{self.n_garbage_frames} garbage frames refused",
            "shards            "
            + ", ".join(
                f"{sid}:{count}" for sid, count in sorted(self.shard_completed.items())
            ),
            f"digest            {self.digest}",
        ]
        if self.load is not None:
            lines.append("load replay")
            lines.extend("  " + line for line in self.load.format().splitlines())
        for inv in self.invariants:
            mark = "ok " if inv.ok else "FAIL"
            lines.append(
                f"invariant [{mark}]   {inv.name}"
                + (f" — {inv.detail}" if inv.detail else "")
            )
        return "\n".join(lines)


def _reference_outcomes(
    workload: ClinicWorkload, fleet: FleetConfig
) -> Tuple[Dict[Tuple[str, int], str], List[str]]:
    """Single-process ground truth: outcome digests + store hashes."""
    digests: Dict[Tuple[str, int], str] = {}
    with FleetScheduler(fleet) as scheduler:
        identifiers = workload.identifiers(scheduler.device_config)
        for tenant, identifier in identifiers.items():
            scheduler.register_tenant(tenant, identifier)
        futures = []
        for sequence in range(workload.requests_per_tenant):
            for tenant_index, tenant in enumerate(workload.tenant_ids()):
                futures.append(
                    scheduler.submit(
                        tenant,
                        workload.blood_sample(tenant_index, sequence),
                        identifiers[tenant],
                        duration_s=workload.duration_s,
                        block=True,
                    )
                )
        for future in futures:
            future.wait(timeout=300)
            request = future.request
            key = (request.tenant_id, request.tenant_sequence)
            error = future.exception()
            if error is not None:
                # Failures are part of the contract: a session that
                # fails on the single-process tier must fail with the
                # same typed error on the sharded tier, never silently
                # "succeed" with different numbers.
                digests[key] = f"error:{type(error).__name__}"
            else:
                outcome = SessionOutcome.from_result(
                    future.result(), request.tenant_id, request.tenant_sequence
                )
                digests[key] = outcome.digest()
        hashes = list(store_content_hashes(scheduler.store))
    return digests, hashes


async def _submit_round(
    door: AsyncFrontDoor,
    workload: ClinicWorkload,
    identifiers: Dict,
    sequences: Tuple[int, ...],
    retries_on_crash: int = 0,
) -> List[Tuple[Tuple[str, int], str, Optional[SessionOutcome]]]:
    """Submit one round; per session return ``(key, digest, outcome)``.

    A failed session yields ``error:<TypeName>`` as its digest — the
    same encoding the single-process reference uses, so bit-identity
    comparisons cover failures as first-class results.
    """
    keys: List[Tuple[str, int]] = []
    coros = []
    for sequence in sequences:
        for tenant_index, tenant in enumerate(workload.tenant_ids()):
            keys.append((tenant, sequence))
            coros.append(
                door.submit(
                    tenant,
                    workload.blood_sample(tenant_index, sequence),
                    identifiers[tenant],
                    duration_s=workload.duration_s,
                    retries_on_crash=retries_on_crash,
                )
            )
    results = await asyncio.gather(*coros, return_exceptions=True)
    rows: List[Tuple[Tuple[str, int], str, Optional[SessionOutcome]]] = []
    for key, result in zip(keys, results):
        if isinstance(result, SessionOutcome):
            rows.append((key, result.digest(), result))
        elif isinstance(result, FleetRequestFailedError):
            rows.append((key, f"error:{result.error_type}", None))
        elif isinstance(result, BaseException):
            rows.append((key, f"error:{type(result).__name__}", None))
        else:  # pragma: no cover - gather only returns the above
            rows.append((key, "error:UnknownResult", None))
    return rows


async def _run_phases(
    report: FleetReport,
    cluster: FleetCluster,
    workload: ClinicWorkload,
    reference: Dict[Tuple[str, int], str],
    reference_hashes: List[str],
    observer,
    smoke: bool,
) -> None:
    phases = report.phases
    door = AsyncFrontDoor(cluster, observer=observer)
    identifiers = _fleet_identifiers(workload)
    for tenant, identifier in identifiers.items():
        await door.register_tenant(tenant, identifier)

    half = workload.requests_per_tenant // 2
    first_half = tuple(range(half))
    second_half = tuple(range(half, workload.requests_per_tenant))
    outcomes: List[SessionOutcome] = []
    burst_completed = 0

    # ------------------------------------------------------ determinism
    if "determinism" in phases or "chaos" in phases:
        round_one = await _submit_round(door, workload, identifiers, first_half)
        outcomes.extend(outcome for _, _, outcome in round_one if outcome)
        matched = sum(
            1 for key, digest, _ in round_one if reference.get(key) == digest
        )
        if "determinism" in phases:
            report.invariants.append(
                InvariantResult(
                    name="outcomes_bit_identical_to_single_process",
                    ok=bool(round_one) and matched == len(round_one),
                    detail=f"{matched}/{len(round_one)} digests match",
                )
            )

    # -------------------------------------------------------- telemetry
    if "telemetry" in phases:
        healths = cluster.health()
        shard_total = sum(health.completed for health in healths.values())
        report.invariants.append(
            InvariantResult(
                name="shard_counters_account_for_every_session",
                ok=shard_total == door.completed,
                detail=f"sum(shards)={shard_total}, frontdoor={door.completed}",
            )
        )
        merged = cluster.merged_quantiles()
        merged_count = (
            merged.histogram("serve.e2e_s").count
            if "serve.e2e_s" in merged.names()
            else 0
        )
        report.invariants.append(
            InvariantResult(
                name="merged_latency_sketch_counts_every_session",
                ok=merged_count == door.completed,
                detail=f"merged count={merged_count}, frontdoor={door.completed}",
            )
        )

    # ------------------------------------------------------------ chaos
    if "chaos" in phases:
        pre_hashes = cluster.fleet_record_hashes()
        victim = outcomes[0].shard_id if outcomes else cluster.shard_ids[0]
        cluster.kill(victim)
        cluster.restart(victim)
        report.n_restarts += 1
        post_hashes = cluster.fleet_record_hashes()
        victim_health = cluster.health()[victim]
        report.n_recovered_records += victim_health.recovered_records
        report.invariants.append(
            InvariantResult(
                name="journal_recovery_bit_identical",
                ok=post_hashes == pre_hashes,
                detail=(
                    f"{victim_health.recovered_records} records recovered on "
                    f"{victim}; {len(post_hashes)}/{len(pre_hashes)} hashes match"
                ),
            )
        )
        round_two = await _submit_round(
            door, workload, identifiers, second_half, retries_on_crash=1
        )
        outcomes.extend(outcome for _, _, outcome in round_two if outcome)
        matched = sum(
            1 for key, digest, _ in round_two if reference.get(key) == digest
        )
        report.invariants.append(
            InvariantResult(
                name="post_restart_outcomes_bit_identical",
                ok=bool(round_two) and matched == len(round_two),
                detail=f"{matched}/{len(round_two)} digests match after restart",
            )
        )
        if "determinism" in phases:
            fleet_hashes = cluster.fleet_record_hashes()
            report.invariants.append(
                InvariantResult(
                    name="store_partition_union_matches_single_process",
                    ok=fleet_hashes == sorted(reference_hashes),
                    detail=(
                        f"{len(fleet_hashes)} partitioned vs "
                        f"{len(reference_hashes)} single-process records"
                    ),
                )
            )

    # ----------------------------------------------------------- harden
    if "harden" in phases:
        target = cluster.shard_ids[-1]
        handle = cluster.handle(target)
        for garbage in (
            b"\x00\x01\x02 not a frame",
            b"XXXX" + b"\x00" * 16,  # wrong magic
            b"MSFT" + b"\xff" * 20,  # CRC mismatch
        ):
            handle.channel.conn.send_bytes(garbage)
        health = cluster.health()[target]
        report.n_garbage_frames += health.garbage_frames
        report.invariants.append(
            InvariantResult(
                name="garbage_frames_refused_and_shard_survives",
                ok=health.garbage_frames >= 3,
                detail=(
                    f"{health.garbage_frames} garbage frames counted; "
                    f"health probe still answers"
                ),
            )
        )

    # --------------------------------------------------------- shedding
    if "shedding" in phases:
        # A dedicated burst tenant, enrolled only now: reference-compared
        # traffic is already done, so the extra directory entry cannot
        # perturb any bit-identity check above.
        burst_tenant = "burst-tenant-00"
        burst_door = AsyncFrontDoor(cluster, max_inflight=2, observer=observer)
        # The clinic tenants may already hold most of the small robust
        # password space; walk the alternate draws until one enrols
        # (same idiom as loadgen enrolment).
        for attempt in range(ENROLL_ATTEMPTS):
            burst_identifier = tenant_identifier(
                report.seed, burst_tenant, attempt
            )
            try:
                await burst_door.register_tenant(burst_tenant, burst_identifier)
                break
            except MedSenError:
                if attempt == ENROLL_ATTEMPTS - 1:
                    raise
        burst = await asyncio.gather(
            *[
                burst_door.submit(
                    burst_tenant,
                    tenant_blood(report.seed, burst_tenant, 0, index),
                    burst_identifier,
                    duration_s=workload.duration_s,
                )
                for index in range(6)
            ],
            return_exceptions=True,
        )
        shed = sum(1 for r in burst if isinstance(r, FleetSaturatedError))
        ok_count = sum(1 for r in burst if isinstance(r, SessionOutcome))
        other = len(burst) - shed - ok_count
        burst_completed = burst_door.completed
        report.n_shed += shed
        report.invariants.append(
            InvariantResult(
                name="front_door_sheds_typed_and_loses_nothing_below_bound",
                ok=shed == len(burst) - 2 and ok_count == 2 and other == 0,
                detail=f"{ok_count} completed, {shed} typed sheds, {other} other",
            )
        )
        probes = (
            ("empty tenant id", "", workload.duration_s),
            ("edge-whitespace tenant id", " padded ", workload.duration_s),
            ("NaN duration", burst_tenant, float("nan")),
            ("negative duration", burst_tenant, -4.0),
        )
        refused = []
        for label, tenant, duration in probes:
            try:
                await door.submit(
                    tenant,
                    tenant_blood(report.seed, burst_tenant, 0, 99),
                    burst_identifier,
                    duration_s=duration,
                )
            except AdmissionError:
                refused.append(label)
        report.n_rejected += len(refused)
        report.invariants.append(
            InvariantResult(
                name="guard_refuses_malformed_submissions",
                ok=len(refused) == len(probes),
                detail=f"{len(refused)}/{len(probes)} probes refused typed",
            )
        )

    # ------------------------------------------------------------- load
    if "load" in phases:
        if smoke:
            profile = LoadProfile(
                population=1_000_000,
                duration_s=30.0,
                base_rate_per_s=3.0,
                flash_crowds=((15.0, 3.0, 12.0),),
                session_duration_s=4.0,
                slow_duration_s=8.0,
                seed=report.seed,
            )
        else:
            profile = LoadProfile(
                population=1_000_000,
                duration_s=90.0,
                base_rate_per_s=4.0,
                flash_crowds=((45.0, 5.0, 40.0),),
                session_duration_s=4.0,
                slow_duration_s=10.0,
                seed=report.seed,
            )
        # Population replay gets its own cluster: the clinic + burst
        # enrolments above can occupy the entire robust password space
        # (nine identifiers at the paper's alphabet), which would refuse
        # every loadgen enrolment against the shared auth directory.
        with FleetCluster(cluster.config, observer=observer) as load_cluster:
            load_door = AsyncFrontDoor(load_cluster, observer=observer)
            if smoke:
                load = await replay(load_door, profile, max_arrivals=24)
            else:
                load = await replay(load_door, profile, time_scale=0.05)
        report.load = load
        accounted = load.n_completed + load.n_shed + load.n_rejected + load.n_failed
        report.invariants.append(
            InvariantResult(
                name="load_replay_accounts_for_every_arrival",
                ok=accounted == load.n_arrivals and load.n_distinct_tenants >= 2,
                detail=(
                    f"{accounted}/{load.n_arrivals} accounted over "
                    f"{load.n_distinct_tenants} tenants"
                ),
            )
        )
        report.n_shed += load.n_shed
        report.n_rejected += load.n_rejected
        report.n_failed += load.n_failed

    report.n_sessions = (
        door.completed
        + burst_completed
        + (report.load.n_completed if report.load else 0)
    )
    report.n_failed += door.failed
    report.shard_completed = {
        sid: health.completed for sid, health in cluster.health().items()
    }
    report.outcome_digests = tuple(outcome.digest() for outcome in outcomes)


def _fleet_identifiers(workload: ClinicWorkload):
    """Identifiers without a scheduler in hand (same device config)."""
    from repro.core.config import MedSenConfig

    return workload.identifiers(MedSenConfig())


def run_fleet(
    seed: int = 0,
    n_shards: int = 2,
    smoke: bool = True,
    phases: Tuple[str, ...] = ALL_PHASES,
    observer=NULL_OBSERVER,
) -> FleetReport:
    """Run one fleet campaign and return its report.

    ``phases`` selects a subset — ``python -m repro chaos --fleet`` runs
    just the kill/restart drill, ``harden --fleet`` just the garbage
    containment drill (each with the determinism round it depends on).
    """
    unknown = set(phases) - set(ALL_PHASES)
    if unknown:
        raise MedSenError(f"unknown fleet phases: {sorted(unknown)}")
    workload = ClinicWorkload(
        n_tenants=4 if smoke else 8,
        requests_per_tenant=4 if smoke else 6,
        duration_s=6.0 if smoke else 8.0,
        seed=seed + 2016,
    )
    fleet = FleetConfig(
        seed=seed,
        n_workers=2,
        queue_capacity=max(64, workload.n_requests),
    )
    report = FleetReport(seed=seed, n_shards=n_shards, phases=tuple(phases))
    needs_reference = bool({"determinism", "chaos"} & set(phases))
    reference: Dict[Tuple[str, int], str] = {}
    reference_hashes: List[str] = []
    if needs_reference:
        reference, reference_hashes = _reference_outcomes(workload, fleet)
    tier = FleetTierConfig(
        n_shards=n_shards,
        shard=fleet,
        max_inflight=max(64, workload.n_requests),
        journal=True,
    )
    with FleetCluster(tier, observer=observer) as cluster:
        asyncio.run(
            _run_phases(
                report,
                cluster,
                workload,
                reference,
                reference_hashes,
                observer,
                smoke,
            )
        )
    payload = json.dumps(
        {
            "seed": report.seed,
            "n_shards": report.n_shards,
            "phases": list(report.phases),
            "outcomes": list(report.outcome_digests),
            "invariants": [
                [inv.name, inv.ok] for inv in report.invariants
            ],
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    report.digest = hashlib.blake2b(
        payload.encode("utf-8"), digest_size=12
    ).hexdigest()
    return report
