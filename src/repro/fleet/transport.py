"""Framed, checksummed message transport between fleet processes.

The front door and its shard processes talk over ordinary
:func:`multiprocessing.Pipe` connections, but never exchange raw
pickles: every message travels as an ``MSFT`` frame —

``MSFT | u32 crc | u64 msg_id | pickle(payload)``

— so a torn, truncated, or corrupted frame (or an attacker writing
garbage into the socket, which the hardening campaign does on purpose)
is refused with a typed :class:`~repro._util.errors.ValidationError`
*before* any byte reaches the unpickler.  The CRC covers the message id
and payload; the magic pins the protocol so a stray writer cannot be
mistaken for a peer.

Framing is deterministic: the same ``(msg_id, payload)`` always encodes
to the identical bytes (pickle protocol pinned), which keeps transport
traffic replayable alongside the rest of the seeded fleet.
"""

import pickle
import struct
import zlib
from typing import Any, Tuple

from repro._util.errors import OversizedPayloadError, ValidationError

#: Frame magic for fleet transport messages.
FRAME_MAGIC = b"MSFT"

_HEADER = struct.Struct("<4sIQ")

#: Pickle protocol pinned so frames are byte-stable across runs.
PICKLE_PROTOCOL = 4

#: Per-frame size cap: honest frames are a few hundred KB at most (one
#: blood sample's particle draw); the cap stops an adversarial peer
#: from turning the receiver into an allocation bomb.
MAX_FRAME_BYTES = 32 << 20


def encode_frame(msg_id: int, payload: Any) -> bytes:
    """Serialize one message into a checksummed frame."""
    if msg_id < 0:
        raise ValidationError(f"msg_id must be >= 0, got {msg_id}")
    body = pickle.dumps(payload, protocol=PICKLE_PROTOCOL)
    crc = zlib.crc32(msg_id.to_bytes(8, "little") + body) & 0xFFFFFFFF
    frame = _HEADER.pack(FRAME_MAGIC, crc, msg_id) + body
    if len(frame) > MAX_FRAME_BYTES:
        raise OversizedPayloadError(
            f"frame of {len(frame)} bytes exceeds the {MAX_FRAME_BYTES} cap"
        )
    return frame


def decode_frame(blob: Any) -> Tuple[int, Any]:
    """Parse one frame back into ``(msg_id, payload)``.

    Total: anything that is not a well-formed frame — wrong type, short
    header, bad magic, CRC mismatch, over-cap size, or an unpicklable
    body — raises a typed :class:`ValidationError` (or
    :class:`OversizedPayloadError`), never an untyped exception, so a
    shard fed garbage refuses and keeps serving.
    """
    if not isinstance(blob, (bytes, bytearray, memoryview)):
        raise ValidationError(f"frame must be bytes, got {type(blob).__name__}")
    blob = bytes(blob)
    if len(blob) > MAX_FRAME_BYTES:
        raise OversizedPayloadError(
            f"frame of {len(blob)} bytes exceeds the {MAX_FRAME_BYTES} cap"
        )
    if len(blob) < _HEADER.size:
        raise ValidationError(f"frame of {len(blob)} bytes is shorter than the header")
    magic, crc, msg_id = _HEADER.unpack_from(blob)
    if magic != FRAME_MAGIC:
        raise ValidationError(f"bad frame magic {magic!r}")
    body = blob[_HEADER.size :]
    expected = zlib.crc32(msg_id.to_bytes(8, "little") + body) & 0xFFFFFFFF
    if crc != expected:
        raise ValidationError("frame CRC mismatch (torn or tampered frame)")
    try:
        payload = pickle.loads(body)
    except Exception as exc:  # pickle raises a small zoo of error types
        raise ValidationError(f"frame body does not unpickle: {exc}") from exc
    return int(msg_id), payload


class FrameChannel:
    """One side of a framed duplex channel over a pipe connection.

    Thin, synchronous, and single-owner per direction: the shard's main
    loop is the only sender on its side, and the parent serialises
    sends under the shard handle's lock.  Counters record traffic and
    refused garbage for the fleet report.
    """

    def __init__(self, conn) -> None:
        self.conn = conn
        self.frames_sent = 0
        self.frames_received = 0
        self.garbage_frames = 0

    def send(self, msg_id: int, payload: Any) -> None:
        """Frame and send one message."""
        self.conn.send_bytes(encode_frame(msg_id, payload))
        self.frames_sent += 1

    def poll(self, timeout: float = 0.0) -> bool:
        """Whether a frame is ready to receive."""
        return self.conn.poll(timeout)

    def recv(self) -> Tuple[int, Any]:
        """Receive one frame (blocking).

        Raises :class:`ValidationError` for a garbage frame (counted),
        and lets ``EOFError``/``OSError`` propagate when the peer is
        gone — the caller owns the liveness decision.
        """
        blob = self.conn.recv_bytes()
        try:
            return decode_frame(blob)
        except (ValidationError, OversizedPayloadError):
            self.garbage_frames += 1
            raise
        finally:
            self.frames_received += 1

    def close(self) -> None:
        self.conn.close()
