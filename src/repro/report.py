"""Session run reports: a Markdown artifact per diagnostic.

Clinics and auditors want a record of *how* a result was produced, not
just the result.  :func:`render_session_report` turns a
:class:`~repro.core.protocol.SessionResult` into a self-contained
Markdown document covering the capture, the ciphertext the cloud saw,
the decryption arithmetic, authentication, the diagnosis and the cost
breakdown — everything already decoded inside the TCB, so the report
leaks nothing a patient-side document would not.
"""

from pathlib import Path
from typing import Optional, Union

from repro.core.protocol import SessionResult


def render_session_report(result: SessionResult, title: str = "MedSen session") -> str:
    """Render one session as Markdown."""
    capture = result.capture
    truth = capture.ground_truth
    timing = result.timing
    lines = [
        f"# {title}",
        "",
        "## Capture",
        "",
        f"- duration: {capture.duration_s:.0f} s, "
        f"pumped volume: {capture.pumped_volume_ul:.3f} µL",
        f"- encrypted: {capture.encrypted}",
        f"- trace: {capture.trace.n_channels} carriers x "
        f"{capture.trace.n_samples} samples at "
        f"{capture.trace.sampling_rate_hz:.0f} Hz",
        "",
        "## Ciphertext (what the cloud saw)",
        "",
        f"- peaks reported: {result.relay.report.count}",
        f"- uploaded: {result.relay.uploaded_bytes / 1e3:.0f} kB "
        f"(raw {result.relay.raw_bytes / 1e3:.0f} kB)",
        f"- analysed {'locally on the phone' if result.relay.analyzed_locally else 'in the cloud'}",
        "",
        "## Decryption (inside the TCB)",
        "",
        f"- recovered particle count: {result.decryption.total_count}",
        f"- cleanly recovered particles: {len(result.decryption.clean_particles)}",
        f"- merged dips credited: {result.decryption.merge_credits}",
        "",
        "## Authentication",
        "",
        f"- recovered identifier: `{result.auth.recovered.as_string()}`",
        f"- decision: "
        + (
            f"accepted as **{result.auth.user_id}**"
            if result.auth.accepted
            else "rejected (no registry match)"
        ),
        f"- measured bead concentrations (/µL): "
        + ", ".join(f"{c:.0f}" for c in result.auth.measured_concentrations_per_ul),
        "",
        "## Diagnosis",
        "",
        f"- {result.diagnosis.marker_name}: "
        f"{result.diagnosis.concentration_per_ul:.0f} /µL → "
        f"**{result.diagnosis.label}**",
        f"- notification: {result.notification().render()}",
        "",
        "## Cost",
        "",
        "| stage | seconds |",
        "|---|---|",
        f"| compression | {timing.compression_s:.3f} |",
        f"| transfer | {timing.transfer_s:.3f} |",
        f"| cloud analysis | {timing.cloud_analysis_s:.3f} |",
        f"| decryption | {timing.decryption_s:.3f} |",
        f"| classification | {timing.classification_s:.3f} |",
        f"| **end-to-end** | **{timing.end_to_end_s:.3f}** |",
        "",
        "## Ground truth (simulation only)",
        "",
        f"- particles that reached the sensor: {dict(truth.arrived_counts)}",
        f"- ciphertext dip events emitted: {truth.n_pulse_events}",
        "",
    ]
    return "\n".join(lines)


def write_session_report(
    result: SessionResult,
    path: Union[str, Path],
    title: Optional[str] = None,
) -> Path:
    """Render and write the report; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        render_session_report(result, title=title or f"MedSen session — {path.stem}")
    )
    return path
