"""Command-line interface: ``python -m repro <command>``.

Sixteen subcommands cover the workflows a bench scientist or security
reviewer would reach for first:

* ``demo``      — one full secure diagnostic session, verbose
  (``--report`` writes a Markdown session report, ``--trace-out``
  a Chrome-trace JSON of the session's spans).
* ``stats``     — run an instrumented session and print the span
  tree, metrics table, and audit event log (``--trace-out`` /
  ``--events-out`` export Chrome-trace JSON / JSONL).
* ``keysize``   — Eq. 2 key-length calculator.
* ``attacks``   — run the eavesdropper suite against a fresh capture.
* ``selftest``  — electrode-array self-test with optional injected
  faults (``--dead/--weak/--stuck``).
* ``serve``     — multi-tenant serving fleet over a synthetic clinic
  workload: worker pool, fair queue, dynamic batching, retry/breaker
  (``--smoke`` runs the small CI check).
* ``chaos``     — seeded fault-injection campaign across every layer,
  checking the resilience invariants (``--smoke`` is the CI gate;
  ``--fleet`` runs the kill/restart drill against the sharded tier
  followed by the lease-fenced failover drill).
* ``harden``    — adversarial hardening campaign: protocol fuzzing,
  garbage admission, replay/freshness, envelope tampering, and auth
  lockout invariants (``--smoke`` is the CI gate; ``--fleet`` runs the
  garbage-frame and shedding drills against the sharded tier).
* ``fleet``     — multi-process sharded cloud tier campaign:
  bit-identity vs the single-process scheduler, telemetry roll-up,
  shard kill/restart with journal recovery, garbage-frame containment,
  typed load shedding, and a heavy-tailed load replay (``--smoke`` is
  the CI gate, ``--drill`` the long variant).
* ``stream``    — disconnection-tolerance drill for the streaming
  lane: chunked bit-identity, disconnect/resume, mid-stream key
  rotation, congestion backoff, and watchdog reaping (``--smoke`` is
  the CI gate).
* ``failover``  — replicated-partition drill: journal-shipped
  standbys, SIGKILL of a loaded primary, lease-fenced promotion with
  zero acked loss, stale-epoch fencing, stream resume on the promoted
  standby, and anti-entropy rejoin (``--smoke`` is the CI gate).
* ``figures``   — regenerate the paper's evaluation figures as SVG.
* ``alphabet``  — password-space statistics for the default alphabet.
* ``top``       — run an instrumented fleet and render the telemetry
  dashboard: SLO burn rates, counters, and quantile sketches
  (``--shards N`` runs the traffic through N shard processes and
  renders the cross-shard roll-up: summed counters, bucket-merged
  quantile sketches — never averaged percentiles).
* ``profile``   — stage-by-stage pipeline profile (demodulate /
  detrend / threshold / classify / authenticate) with optional
  folded-stack flamegraph output.
* ``bench``     — run the benchmark trajectory and write versioned
  ``BENCH_<area>.json`` artifacts (``--check`` gates against the
  committed baseline).

``serve``, ``chaos``, ``harden``, ``fleet``, ``stream`` and
``failover`` share one observability parent parser: all accept ``--trace-out`` /
``--events-out`` to export their runs as Chrome-trace JSON and JSONL
audit events.
"""

import argparse
import sys
from typing import List, Optional

from repro._util.errors import MedSenError
from repro.telemetry.bench import DEFAULT_AREAS as _BENCH_DEFAULT_AREAS


def _run_instrumented_session(seed: int, duration_s: float, concentration: float):
    """One observed diagnostic session (shared by demo/stats)."""
    from repro import CytoIdentifier, MedSenSession, Sample
    from repro.obs import EventLog, MetricsRegistry, Observer
    from repro.particles import BLOOD_CELL

    observer = Observer(metrics=MetricsRegistry(), events=EventLog())
    session = MedSenSession(rng=seed, observer=observer)
    identifier = CytoIdentifier(session.config.alphabet, (2, 1))
    session.authenticator.register("demo-user", identifier)
    blood = Sample.from_concentrations({BLOOD_CELL: concentration}, volume_ul=10)
    result = session.run_diagnostic(
        blood, identifier, duration_s=duration_s, rng=seed + 1
    )
    return result, observer


def _export_observability(observer, trace_out, events_out) -> None:
    """Honour ``--trace-out`` / ``--events-out`` for an observed run."""
    if trace_out:
        path = observer.tracer.write_chrome_trace(trace_out)
        print(f"trace written: {path}")
    if events_out:
        from repro.obs import JsonlFileSink

        with JsonlFileSink(events_out) as sink:
            for event in observer.events.events:
                sink.emit(event)
        print(f"events written: {events_out}")


def _cmd_demo(args: argparse.Namespace) -> int:
    result, observer = _run_instrumented_session(
        args.seed, args.duration, args.concentration
    )
    truth = result.capture.ground_truth
    print(f"particles arrived:   {truth.total_arrived}")
    print(f"ciphertext peaks:    {result.relay.report.count}")
    print(f"decrypted count:     {result.decryption.total_count}")
    print(f"authenticated:       {result.auth.user_id}")
    print(f"diagnosis:           {result.diagnosis.label} "
          f"({result.diagnosis.concentration_per_ul:.0f}/µL)")
    print(f"notification:        {result.notification().render()}")
    print(f"processing time:     {result.timing.processing_s:.3f} s")
    if args.report:
        from repro.report import write_session_report

        path = write_session_report(result, args.report)
        print(f"report written:      {path}")
    if args.trace_out:
        path = observer.tracer.write_chrome_trace(args.trace_out)
        print(f"trace written:       {path}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs import format_event_log, format_metrics_table, format_span_tree

    result, observer = _run_instrumented_session(
        args.seed, args.duration, args.concentration
    )
    print("=== span tree ===")
    print(format_span_tree(observer.tracer))
    print()
    print("=== metrics ===")
    print(format_metrics_table(observer.metrics))
    print()
    print("=== audit events ===")
    print(format_event_log(observer.events, limit=args.events))
    print()
    print(f"session outcome: auth={result.auth.accepted} "
          f"diagnosis={result.diagnosis.label} "
          f"recovered_count={result.decryption.total_count}")
    _export_observability(observer, args.trace_out, args.events_out)
    return 0


def _cmd_keysize(args: argparse.Namespace) -> int:
    from repro.crypto.key import eq2_bits_per_unit, eq2_key_length_bits

    bits = eq2_key_length_bits(args.cells, args.electrodes, args.gain_bits, args.flow_bits)
    per_unit = eq2_bits_per_unit(args.electrodes, args.gain_bits, args.flow_bits)
    print(f"bits per cell: {per_unit}")
    print(f"total key:     {bits:,} bits ({bits / 8 / 1e6:.3f} MB)")
    return 0


def _cmd_attacks(args: argparse.Namespace) -> int:
    from repro.attacks import (
        AmplitudeClusteringAttack,
        DivideByExpectationAttack,
        FeatureClusteringAttack,
        NaivePeakCountAttack,
        PeriodicTrainAttack,
        WidthClusteringAttack,
        score_count_attack,
    )
    from repro.attacks.scenarios import encrypted_capture

    true_count, report, knowledge = encrypted_capture(args.seed)
    print(f"true particles: {true_count}; ciphertext peaks: {report.count}")
    attacks = [
        NaivePeakCountAttack(),
        DivideByExpectationAttack(assume_avoid_consecutive=True),
        AmplitudeClusteringAttack(),
        WidthClusteringAttack(),
        PeriodicTrainAttack(),
        FeatureClusteringAttack(),
    ]
    for attack in attacks:
        estimate = attack.estimate_count(report, knowledge)
        error = score_count_attack(estimate, true_count)
        print(f"{attack.name:<24} estimate={estimate:8.1f}  error={error:.2f}")
    return 0


def _cmd_selftest(args: argparse.Namespace) -> int:
    from repro.hardware.electrodes import standard_array
    from repro.hardware.faults import FaultModel, self_test

    array = standard_array(args.outputs)
    fault_model = FaultModel(
        dead_electrodes=frozenset(args.dead),
        weak_electrodes=frozenset(args.weak),
        stuck_on_electrodes=frozenset(args.stuck),
    )
    report = self_test(array, fault_model, rng=args.seed)
    for entry in report.electrodes:
        print(
            f"electrode {entry.electrode}: {entry.verdict:<6} "
            f"(dips {entry.observed_dips}/{entry.expected_dips}, "
            f"depth {entry.mean_depth:.5f})"
        )
    if report.healthy:
        print("array healthy")
        return 0
    print(f"faults detected: {report.faulty_electrodes()}")
    return 1


def _cmd_alphabet(args: argparse.Namespace) -> int:
    from repro.attacks.bruteforce import bruteforce_expected_attempts
    from repro.auth.alphabet import DEFAULT_ALPHABET
    from repro.auth.collision import (
        level_confusion_probability,
        password_space_entropy_bits,
        password_space_size,
    )

    alphabet = DEFAULT_ALPHABET
    print(f"bead types: {[t.name for t in alphabet.bead_types]}")
    print(f"levels (particles/µL): {alphabet.levels_per_ul}")
    print(f"password space: {password_space_size(alphabet)} "
          f"({password_space_entropy_bits(alphabet):.1f} bits)")
    print(f"expected brute-force submissions: "
          f"{bruteforce_expected_attempts(alphabet):.0f}")
    for level in range(alphabet.n_levels):
        p = level_confusion_probability(alphabet, level, args.volume)
        print(f"level {level} confusion at {args.volume} µL: {p:.4f}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs import (
        EventLog,
        MetricsRegistry,
        Observer,
        format_metrics_table,
    )
    from repro.serving import (
        ClinicWorkload,
        FleetConfig,
        FleetScheduler,
        run_clinic,
    )

    if args.smoke:
        # CI-friendly: tiny workload, exercise batching + failure
        # injection + backpressure paths, exit non-zero on any anomaly.
        config = FleetConfig(
            seed=args.seed,
            n_workers=2,
            queue_capacity=8,
            batch_size=2,
            batch_linger_s=0.01,
            drop_probability=0.05,
            duplicate_probability=0.05,
            deadline_s=30.0,
        )
        workload = ClinicWorkload(
            n_tenants=2, requests_per_tenant=2, duration_s=8.0
        )
    else:
        config = FleetConfig(
            seed=args.seed,
            n_workers=args.workers,
            queue_capacity=args.queue_capacity,
            batch_size=args.batch_size,
            batch_linger_s=args.batch_linger,
            drop_probability=args.drop,
            timeout_probability=args.timeout,
            duplicate_probability=args.duplicate,
            deadline_s=args.deadline,
        )
        workload = ClinicWorkload(
            n_tenants=args.tenants,
            requests_per_tenant=args.requests,
            duration_s=args.duration,
        )
    observer = Observer(metrics=MetricsRegistry(), events=EventLog())
    print(
        f"serving {workload.n_requests} sessions from {workload.n_tenants} "
        f"tenants on {config.n_workers} workers "
        f"(batch {config.batch_size}, queue {config.queue_capacity})"
    )
    with FleetScheduler(config, observer=observer) as scheduler:
        report = run_clinic(scheduler, workload)
    print(report.format())
    if args.metrics:
        print()
        print(format_metrics_table(observer.metrics))
    _export_observability(observer, args.trace_out, args.events_out)
    if args.smoke:
        healthy = (
            report.n_completed + report.n_failed == workload.n_requests
            and report.n_completed >= workload.n_requests - 1
        )
        print("smoke:", "PASS" if healthy else "FAIL")
        return 0 if healthy else 1
    return 0


def _run_fleet_campaign(args: argparse.Namespace, phases, smoke: bool) -> int:
    """Shared driver for ``fleet`` and the ``--fleet`` drill variants."""
    from repro.fleet import run_fleet
    from repro.obs import EventLog, MetricsRegistry, Observer, format_metrics_table

    observer = Observer(metrics=MetricsRegistry(), events=EventLog())
    report = run_fleet(
        seed=args.seed,
        n_shards=args.shards,
        smoke=smoke,
        phases=phases,
        observer=observer,
    )
    print(report.format())
    if getattr(args, "metrics", False):
        print()
        print(format_metrics_table(observer.metrics))
    _export_observability(
        observer,
        getattr(args, "trace_out", None),
        getattr(args, "events_out", None),
    )
    return 0 if report.passed else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.obs import EventLog, MetricsRegistry, Observer, format_metrics_table
    from repro.resilience import run_campaign

    if args.fleet:
        # The sharded-tier kill/restart drill: the determinism round
        # provides the bit-identity baseline the recovery check needs.
        # The replicated-partition failover drill rides along so the
        # same gate covers lease fencing and zero acked loss.
        code = _run_fleet_campaign(
            args, phases=("determinism", "chaos"), smoke=True
        )
        from repro.fleet import run_failover

        print()
        failover_report = run_failover(
            seed=args.seed, n_partitions=args.shards, smoke=True
        )
        print(failover_report.format())
        return code or (0 if failover_report.passed else 1)
    campaign = "smoke" if args.smoke else args.campaign
    observer = Observer(metrics=MetricsRegistry(), events=EventLog())
    report = run_campaign(seed=args.seed, campaign=campaign, observer=observer)
    print(report.format())
    if args.metrics:
        print()
        print(format_metrics_table(observer.metrics))
    _export_observability(observer, args.trace_out, args.events_out)
    return 0 if report.passed else 1


def _cmd_harden(args: argparse.Namespace) -> int:
    from repro.guard.campaign import run_hardening
    from repro.obs import EventLog, MetricsRegistry, Observer, format_metrics_table

    if args.fleet:
        # The sharded-tier trust-boundary drill: raw garbage frames
        # must be refused and counted, saturation must shed typed, and
        # the guard must refuse malformed submissions at the front door.
        return _run_fleet_campaign(args, phases=("harden", "shedding"), smoke=True)
    observer = Observer(metrics=MetricsRegistry(), events=EventLog())
    report = run_hardening(
        seed=args.seed,
        n_mutations=args.mutations,
        smoke=args.smoke,
        observer=observer,
    )
    print(report.format())
    if args.metrics:
        print()
        print(format_metrics_table(observer.metrics))
    _export_observability(observer, args.trace_out, args.events_out)
    return 0 if report.passed else 1


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import ALL_PHASES

    phases = tuple(args.phases) if args.phases else ALL_PHASES
    return _run_fleet_campaign(args, phases=phases, smoke=not args.drill)


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.obs import EventLog, MetricsRegistry, Observer, format_metrics_table
    from repro.stream import run_stream

    observer = Observer(metrics=MetricsRegistry(), events=EventLog())
    report = run_stream(seed=args.seed, smoke=args.smoke, observer=observer)
    print(report.format())
    if args.metrics:
        print()
        print(format_metrics_table(observer.metrics))
    _export_observability(observer, args.trace_out, args.events_out)
    return 0 if report.passed else 1


def _cmd_failover(args: argparse.Namespace) -> int:
    from repro.fleet import run_failover
    from repro.obs import EventLog, MetricsRegistry, Observer, format_metrics_table

    observer = Observer(metrics=MetricsRegistry(), events=EventLog())
    report = run_failover(
        seed=args.seed,
        n_partitions=args.partitions,
        smoke=args.smoke,
        lease_ttl_s=args.lease_ttl,
        observer=observer,
    )
    print(report.format())
    if args.metrics:
        print()
        print(format_metrics_table(observer.metrics))
    _export_observability(observer, args.trace_out, args.events_out)
    return 0 if report.passed else 1


def _cmd_top_sharded(args: argparse.Namespace) -> int:
    """``top --shards N``: clinic traffic through N shard processes,
    then the cross-shard telemetry roll-up.

    Counters sum; quantile sketches merge bucket-by-bucket via
    :func:`~repro.telemetry.merge_registries` — the fleet p99 is the
    true cross-shard p99, never an average of per-shard percentiles.
    Per-shard gauges stay namespaced (a gauge is a point-in-time value;
    summing gauges across shards would fabricate a number no shard
    ever reported).
    """
    import asyncio
    import time

    from repro.core.config import MedSenConfig
    from repro.fleet import AsyncFrontDoor, FleetCluster, FleetTierConfig
    from repro.obs import MetricsRegistry
    from repro.serving import ClinicWorkload, FleetConfig
    from repro.telemetry import QuantileRegistry, merge_registries, render_dashboard

    workload = ClinicWorkload(
        n_tenants=args.tenants,
        requests_per_tenant=args.requests,
        duration_s=args.duration,
        seed=args.seed,
    )
    shard_config = FleetConfig(
        seed=args.seed,
        n_workers=args.workers,
        queue_capacity=max(8, workload.n_requests),
        batch_size=args.batch_size,
    )
    tier = FleetTierConfig(
        n_shards=args.shards,
        shard=shard_config,
        max_inflight=max(8, workload.n_requests),
    )
    started = time.monotonic()
    with FleetCluster(tier) as cluster:
        door = AsyncFrontDoor(cluster)

        async def run() -> None:
            identifiers = workload.identifiers(MedSenConfig())
            for tenant, identifier in identifiers.items():
                await door.register_tenant(tenant, identifier)
            coros = []
            for sequence in range(workload.requests_per_tenant):
                for tenant_index, tenant in enumerate(workload.tenant_ids()):
                    coros.append(
                        door.submit(
                            tenant,
                            workload.blood_sample(tenant_index, sequence),
                            identifiers[tenant],
                            duration_s=workload.duration_s,
                        )
                    )
            await asyncio.gather(*coros, return_exceptions=True)

        asyncio.run(run())
        snapshots = cluster.telemetry()
        healths = cluster.health()
    elapsed = time.monotonic() - started
    rollup = MetricsRegistry()
    for snapshot in snapshots:
        for name, value in sorted(snapshot.counters.items()):
            rollup.counter(name).inc(value)
        for name, value in sorted(snapshot.gauges.items()):
            rollup.gauge(f"{name}[{snapshot.shard_id}]").set(value)
    merged = merge_registries(
        [QuantileRegistry.from_state(s.quantiles) for s in snapshots]
    )
    print(render_dashboard(rollup, merged, None, now_s=elapsed))
    print()
    lane = ", ".join(
        f"{sid}:{health.completed}" for sid, health in sorted(healths.items())
    )
    print(
        f"fleet: {door.completed}/{workload.n_requests} completed over "
        f"{args.shards} shards ({lane}), "
        f"{door.completed / elapsed:.2f} sessions/s"
    )
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs import EventLog, MetricsRegistry
    from repro.serving import ClinicWorkload, FleetConfig, FleetScheduler, run_clinic
    from repro.telemetry import TelemetryObserver, render_observer

    if args.shards > 0:
        return _cmd_top_sharded(args)
    observer = TelemetryObserver(metrics=MetricsRegistry(), events=EventLog())
    config = FleetConfig(
        seed=args.seed,
        n_workers=args.workers,
        queue_capacity=max(8, args.tenants * args.requests),
        batch_size=args.batch_size,
    )
    workload = ClinicWorkload(
        n_tenants=args.tenants,
        requests_per_tenant=args.requests,
        duration_s=args.duration,
        seed=args.seed,
    )
    observer.tick()
    with FleetScheduler(config, observer=observer) as scheduler:
        report = run_clinic(scheduler, workload)
    observer.tick()
    print(render_observer(observer))
    print()
    print(
        f"fleet: {report.n_completed}/{workload.n_requests} completed, "
        f"{report.sessions_per_second:.2f} sessions/s"
    )
    worst = observer.engine.worst_state()
    if args.strict and worst == "page":
        print("telemetry: PAGE")
        return 1
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.telemetry import profile_pipeline

    result = profile_pipeline(
        duration_s=args.duration, n_particles=args.particles, seed=args.seed
    )
    print(result.format())
    if args.folded_out:
        with open(args.folded_out, "w", encoding="utf-8") as handle:
            handle.write(result.profiler.folded() + "\n")
        print(f"folded stacks written: {args.folded_out}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.telemetry import run_benchmarks

    outcome = run_benchmarks(
        areas=tuple(args.areas),
        quick=args.quick,
        bench_dir=args.bench_dir,
        out_dir=args.out_dir,
        baseline_dir=(args.baseline_dir or args.out_dir) if args.check else None,
    )
    for area, path in sorted(outcome["artifacts"].items()):
        print(f"{area} -> {path}")
    regressions = outcome["regressions"]
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond tolerance:")
        for regression in regressions:
            print(f"  {regression.format()}")
        return 1
    if args.check:
        print("bench gate: PASS")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.plots import generate_all_figures

    written = generate_all_figures(args.output)
    for name, path in sorted(written.items()):
        print(f"{name} -> {path}")
    return 0


def _observability_parent() -> argparse.ArgumentParser:
    """Shared ``--trace-out`` / ``--events-out`` flags for observed runs.

    One parent parser instead of four hand-rolled copies, so every
    campaign subcommand exports its run the same way with the same help
    text (``demo`` keeps its bespoke trace-only flag, ``stats`` its own
    wording — they predate the observed-campaign family).
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--trace-out", type=str, default=None,
                        help="write Chrome-trace JSON of the run's spans")
    parent.add_argument("--events-out", type=str, default=None,
                        help="write the audit event log as JSONL")
    return parent


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MedSen reproduction: secure point-of-care diagnostics",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    obs_parent = _observability_parent()

    demo = subparsers.add_parser("demo", help="run one full secure session")
    demo.add_argument("--seed", type=int, default=42)
    demo.add_argument("--duration", type=float, default=60.0)
    demo.add_argument("--concentration", type=float, default=400.0,
                      help="true marker concentration (cells/µL)")
    demo.add_argument("--report", type=str, default=None,
                      help="write a Markdown session report to this path")
    demo.add_argument("--trace-out", type=str, default=None,
                      help="write Chrome-trace JSON of the session's spans")
    demo.set_defaults(handler=_cmd_demo)

    stats = subparsers.add_parser(
        "stats", help="instrumented session: span tree + metrics + audit log"
    )
    stats.add_argument("--seed", type=int, default=42)
    stats.add_argument("--duration", type=float, default=20.0)
    stats.add_argument("--concentration", type=float, default=400.0,
                       help="true marker concentration (cells/µL)")
    stats.add_argument("--events", type=int, default=30,
                       help="audit events to print (0 = all retained)")
    stats.add_argument("--trace-out", type=str, default=None,
                       help="write Chrome-trace JSON to this path")
    stats.add_argument("--events-out", type=str, default=None,
                       help="write the audit event log as JSONL to this path")
    stats.set_defaults(handler=_cmd_stats)

    keysize = subparsers.add_parser("keysize", help="Eq. 2 key-length calculator")
    keysize.add_argument("--cells", type=int, default=20_000)
    keysize.add_argument("--electrodes", type=int, default=16)
    keysize.add_argument("--gain-bits", type=int, default=4)
    keysize.add_argument("--flow-bits", type=int, default=4)
    keysize.set_defaults(handler=_cmd_keysize)

    attacks = subparsers.add_parser("attacks", help="eavesdropper suite")
    attacks.add_argument("--seed", type=int, default=2024)
    attacks.set_defaults(handler=_cmd_attacks)

    selftest = subparsers.add_parser("selftest", help="electrode self-test")
    selftest.add_argument("--outputs", type=int, default=9, choices=(2, 3, 5, 9, 16))
    selftest.add_argument("--dead", type=int, nargs="*", default=[])
    selftest.add_argument("--weak", type=int, nargs="*", default=[])
    selftest.add_argument("--stuck", type=int, nargs="*", default=[])
    selftest.add_argument("--seed", type=int, default=0)
    selftest.set_defaults(handler=_cmd_selftest)

    serve = subparsers.add_parser(
        "serve",
        parents=[obs_parent],
        help="run a multi-tenant serving fleet over a clinic workload",
    )
    serve.add_argument("--seed", type=int, default=2016)
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument("--tenants", type=int, default=4)
    serve.add_argument("--requests", type=int, default=4,
                       help="requests per tenant")
    serve.add_argument("--duration", type=float, default=20.0,
                       help="capture duration per session (s)")
    serve.add_argument("--queue-capacity", type=int, default=64)
    serve.add_argument("--batch-size", type=int, default=1,
                       help="dynamic batching: max coalesced traces (1 = off)")
    serve.add_argument("--batch-linger", type=float, default=0.02,
                       help="dynamic batching: max wait for riders (s)")
    serve.add_argument("--drop", type=float, default=0.0,
                       help="per-attempt drop probability on the uplink")
    serve.add_argument("--timeout", type=float, default=0.0,
                       help="per-attempt timeout probability on the uplink")
    serve.add_argument("--duplicate", type=float, default=0.0,
                       help="per-attempt duplicate-delivery probability")
    serve.add_argument("--deadline", type=float, default=None,
                       help="per-request virtual-time deadline (s)")
    serve.add_argument("--metrics", action="store_true",
                       help="print the metrics table after the run")
    serve.add_argument("--smoke", action="store_true",
                       help="small fixed workload; exit 1 on anomalies (CI)")
    serve.set_defaults(handler=_cmd_serve)

    chaos = subparsers.add_parser(
        "chaos",
        parents=[obs_parent],
        help="seeded fault-injection campaign with resilience invariants",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--campaign", type=str, default="smoke",
                       help="campaign name (see repro.resilience.CAMPAIGNS)")
    chaos.add_argument("--metrics", action="store_true",
                       help="print the metrics table after the run")
    chaos.add_argument("--smoke", action="store_true",
                       help="shorthand for --campaign smoke (CI gate)")
    chaos.add_argument("--fleet", action="store_true",
                       help="run the kill/restart drill against the sharded tier")
    chaos.add_argument("--shards", type=int, default=2,
                       help="shard processes for --fleet")
    chaos.set_defaults(handler=_cmd_chaos)

    harden = subparsers.add_parser(
        "harden",
        parents=[obs_parent],
        help="adversarial hardening campaign: fuzz + trust boundaries",
    )
    harden.add_argument("--seed", type=int, default=0)
    harden.add_argument("--mutations", type=int, default=10_000,
                        help="fuzz mutations per parser")
    harden.add_argument("--metrics", action="store_true",
                        help="print the metrics table after the run")
    harden.add_argument("--smoke", action="store_true",
                        help="reduced fuzz budget; exit 1 on any violation (CI)")
    harden.add_argument("--fleet", action="store_true",
                        help="run garbage-frame + shedding drills on the sharded tier")
    harden.add_argument("--shards", type=int, default=2,
                        help="shard processes for --fleet")
    harden.set_defaults(handler=_cmd_harden)

    figures = subparsers.add_parser(
        "figures", help="regenerate the paper's figures as SVG files"
    )
    figures.add_argument("--output", type=str, default="figures")
    figures.set_defaults(handler=_cmd_figures)

    alphabet = subparsers.add_parser("alphabet", help="password-space statistics")
    alphabet.add_argument("--volume", type=float, default=0.16,
                          help="sampled volume in µL")
    alphabet.set_defaults(handler=_cmd_alphabet)

    top = subparsers.add_parser(
        "top", help="instrumented fleet run + telemetry dashboard (SLOs, quantiles)"
    )
    top.add_argument("--seed", type=int, default=2016)
    top.add_argument("--workers", type=int, default=2)
    top.add_argument("--tenants", type=int, default=2)
    top.add_argument("--requests", type=int, default=3,
                     help="requests per tenant")
    top.add_argument("--duration", type=float, default=8.0,
                     help="capture duration per session (s)")
    top.add_argument("--batch-size", type=int, default=1)
    top.add_argument("--shards", type=int, default=0,
                     help="run the traffic through N shard processes and "
                          "render the merged cross-shard roll-up (0 = off)")
    top.add_argument("--strict", action="store_true",
                     help="exit 1 if any SLO is in the page state")
    top.set_defaults(handler=_cmd_top)

    fleet = subparsers.add_parser(
        "fleet",
        parents=[obs_parent],
        help="sharded cloud tier campaign: determinism, recovery, shedding",
    )
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--shards", type=int, default=2,
                       help="worker shard processes")
    fleet.add_argument("--smoke", action="store_true",
                       help="small fixed campaign; exit 1 on any violation (CI)")
    fleet.add_argument("--drill", action="store_true",
                       help="long campaign: bigger workload + paced load replay")
    fleet.add_argument("--phases", type=str, nargs="*", default=None,
                       help="phase subset (default: all; see repro.fleet.ALL_PHASES)")
    fleet.add_argument("--metrics", action="store_true",
                       help="print the parent-side metrics table after the run")
    fleet.set_defaults(handler=_cmd_fleet)

    stream = subparsers.add_parser(
        "stream",
        parents=[obs_parent],
        help="disconnection-tolerance drill: streaming resume, rotation, congestion",
    )
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--smoke", action="store_true",
                        help="reduced drill; exit 1 on any violation (CI gate)")
    stream.add_argument("--metrics", action="store_true",
                        help="print the metrics table after the run")
    stream.set_defaults(handler=_cmd_stream)

    failover = subparsers.add_parser(
        "failover",
        parents=[obs_parent],
        help="replicated-partition drill: SIGKILL failover, fencing, rejoin",
    )
    failover.add_argument("--seed", type=int, default=0)
    failover.add_argument("--partitions", type=int, default=2,
                          help="replicated partitions (one primary+standby pair each)")
    failover.add_argument("--lease-ttl", type=float, default=0.3,
                          help="primary lease TTL (s); bounds promotion MTTR")
    failover.add_argument("--smoke", action="store_true",
                          help="small fixed workload; exit 1 on any violation (CI gate)")
    failover.add_argument("--metrics", action="store_true",
                          help="print the metrics table after the run")
    failover.set_defaults(handler=_cmd_failover)

    profile = subparsers.add_parser(
        "profile", help="stage-by-stage pipeline profile (flamegraph-ready)"
    )
    profile.add_argument("--duration", type=float, default=8.0,
                         help="synthetic capture duration (s)")
    profile.add_argument("--particles", type=int, default=60,
                         help="bead transits in the capture")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--folded-out", type=str, default=None,
                         help="write folded stacks for flamegraph.pl/speedscope")
    profile.set_defaults(handler=_cmd_profile)

    bench = subparsers.add_parser(
        "bench", help="run the benchmark trajectory; write BENCH_<area>.json"
    )
    bench.add_argument("--areas", type=str, nargs="*",
                       default=list(_BENCH_DEFAULT_AREAS),
                       help="bench areas (bench_<area>.py with a collect())")
    bench.add_argument("--quick", action="store_true",
                       help="reduced workloads (CI)")
    bench.add_argument("--out-dir", type=str, default=".",
                       help="directory for the BENCH_*.json artifacts")
    bench.add_argument("--bench-dir", type=str, default=None,
                       help="benchmarks directory (default: repo's benchmarks/)")
    bench.add_argument("--check", action="store_true",
                       help="compare against committed baselines; exit 1 on regression")
    bench.add_argument("--baseline-dir", type=str, default=None,
                       help="baseline directory for --check (default: --out-dir)")
    bench.set_defaults(handler=_cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except MedSenError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
