"""The smartphone side: relay app, USB accessory link, performance model.

The phone is explicitly *outside* the trusted computing base (paper
§II/§VI-D): it provides the user interface, shares its connectivity,
compresses and relays encrypted captures to the cloud, and relays
analysis outcomes back — all over ciphertext.

* :mod:`~repro.mobile.usb` — the Android Open Accessory handshake
  between the controller daemon and the phone app.
* :mod:`~repro.mobile.phone` — the relay app (compression, upload,
  result forwarding) and a local-analysis mode for small captures.
* :mod:`~repro.mobile.perf` — processing-time models of the paper's
  two platforms (Intel i7 computer vs Nexus 5), calibrated on the
  Figure 14 measurements.
"""

from repro.mobile.app import AppState, DiagnosticApp
from repro.mobile.perf import COMPUTER_I7, DevicePerfModel, NEXUS5
from repro.mobile.phone import RelayOutcome, Smartphone
from repro.mobile.usb import AccessoryLink, AccessoryState

__all__ = [
    "AppState",
    "DiagnosticApp",
    "COMPUTER_I7",
    "DevicePerfModel",
    "NEXUS5",
    "RelayOutcome",
    "Smartphone",
    "AccessoryLink",
    "AccessoryState",
]
