"""Android Open Accessory link (paper §VI-D).

"The Raspberry Pi runs a daemon listening for events on the USB port.
When the phone is connected, the daemon exchanges information with the
device using the Android Open Accessory Protocol.  This first exchange
invites the user to download the diagnostic application from the Google
Play Store."

:class:`AccessoryLink` reproduces that handshake as a small state
machine: the accessory (controller daemon) identifies itself with the
AOA string set, the phone either has the app (-> connected) or is
pointed at the store URL, and once connected both sides exchange
framed messages.  No security properties live at this layer (§VI-D:
"No specific security requirements for the user privacy are addressed
at this layer") — everything crossing it is ciphertext or UI text.
"""

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from repro._util.errors import ConfigurationError


class AccessoryState(enum.Enum):
    """Link state machine states."""

    DISCONNECTED = "disconnected"
    HANDSHAKING = "handshaking"
    AWAITING_APP = "awaiting_app"
    CONNECTED = "connected"


#: The AOA identification strings the accessory presents.
DEFAULT_IDENTITY: Dict[str, str] = {
    "manufacturer": "MedSen",
    "model": "MedSen-POC",
    "description": "Secure point-of-care diagnostic sensor",
    "version": "1.0",
    "uri": "https://play.google.com/store/apps/details?id=edu.rutgers.medsen",
}

_REQUIRED_IDENTITY_KEYS = ("manufacturer", "model", "version", "uri")


@dataclass
class AccessoryLink:
    """One controller-daemon <-> phone-app USB session."""

    identity: Dict[str, str] = field(default_factory=lambda: dict(DEFAULT_IDENTITY))

    def __post_init__(self) -> None:
        missing = [key for key in _REQUIRED_IDENTITY_KEYS if key not in self.identity]
        if missing:
            raise ConfigurationError(f"identity missing required keys: {missing}")
        self._state = AccessoryState.DISCONNECTED
        self._to_phone: Deque[bytes] = deque()
        self._to_accessory: Deque[bytes] = deque()
        self._bytes_transferred = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> AccessoryState:
        """Current link state."""
        return self._state

    @property
    def bytes_transferred(self) -> int:
        """Total payload bytes moved over the link."""
        return self._bytes_transferred

    # ------------------------------------------------------------------
    # Handshake
    # ------------------------------------------------------------------
    def plug_in(self) -> Dict[str, str]:
        """Phone detects the accessory; returns the AOA identity strings."""
        if self._state is not AccessoryState.DISCONNECTED:
            raise ConfigurationError(f"cannot plug in while {self._state.value}")
        self._state = AccessoryState.HANDSHAKING
        return dict(self.identity)

    def phone_responds(self, app_installed: bool) -> AccessoryState:
        """Phone answers the handshake.

        Without the app, the link parks in ``AWAITING_APP`` (the user
        is invited to install from the store URI); installing later via
        :meth:`app_installed` completes the connection.
        """
        if self._state is not AccessoryState.HANDSHAKING:
            raise ConfigurationError(f"no handshake in progress (state={self._state.value})")
        self._state = (
            AccessoryState.CONNECTED if app_installed else AccessoryState.AWAITING_APP
        )
        return self._state

    def app_installed(self) -> AccessoryState:
        """The user installed the app; the link connects."""
        if self._state is not AccessoryState.AWAITING_APP:
            raise ConfigurationError(f"not awaiting app install (state={self._state.value})")
        self._state = AccessoryState.CONNECTED
        return self._state

    def unplug(self) -> None:
        """Physically disconnect; queues are dropped."""
        self._state = AccessoryState.DISCONNECTED
        self._to_phone.clear()
        self._to_accessory.clear()

    # ------------------------------------------------------------------
    # Framed message exchange
    # ------------------------------------------------------------------
    def accessory_send(self, payload: bytes) -> None:
        """Controller daemon writes a frame to the phone."""
        self._require_connected()
        self._to_phone.append(bytes(payload))
        self._bytes_transferred += len(payload)

    def phone_send(self, payload: bytes) -> None:
        """Phone app writes a frame to the controller daemon."""
        self._require_connected()
        self._to_accessory.append(bytes(payload))
        self._bytes_transferred += len(payload)

    def phone_receive(self) -> Optional[bytes]:
        """Phone app reads the next frame (None if queue empty)."""
        self._require_connected()
        return self._to_phone.popleft() if self._to_phone else None

    def accessory_receive(self) -> Optional[bytes]:
        """Controller daemon reads the next frame (None if empty)."""
        self._require_connected()
        return self._to_accessory.popleft() if self._to_accessory else None

    def _require_connected(self) -> None:
        if self._state is not AccessoryState.CONNECTED:
            raise ConfigurationError(
                f"link is not connected (state={self._state.value})"
            )
