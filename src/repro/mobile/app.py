"""The Android diagnostic app's state machine (paper §VI-D).

"This app has two purposes: it provides an interface for the user to
start the blood test and provides a test progression feedback to the
user via information on the screen, and relays the measurements to the
cloud infrastructure."

:class:`DiagnosticApp` models exactly that: a UI state machine from
plug-in through test progression to the displayed outcome, with an
event log standing in for the on-screen feedback.  It carries no
security responsibilities — everything it touches is ciphertext or
display text (the phone sits outside the TCB).
"""

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro._util.errors import ConfigurationError
from repro.mobile.usb import AccessoryLink, AccessoryState


class AppState(enum.Enum):
    """Screens of the diagnostic app."""

    WAITING_FOR_DEVICE = "waiting_for_device"
    READY = "ready"
    TEST_RUNNING = "test_running"
    UPLOADING = "uploading"
    AWAITING_RESULTS = "awaiting_results"
    SHOWING_RESULT = "showing_result"
    ERROR = "error"


_TRANSITIONS = {
    AppState.WAITING_FOR_DEVICE: {AppState.READY, AppState.ERROR},
    AppState.READY: {AppState.TEST_RUNNING, AppState.ERROR},
    AppState.TEST_RUNNING: {AppState.UPLOADING, AppState.ERROR},
    AppState.UPLOADING: {AppState.AWAITING_RESULTS, AppState.ERROR},
    AppState.AWAITING_RESULTS: {AppState.SHOWING_RESULT, AppState.ERROR},
    AppState.SHOWING_RESULT: {AppState.READY, AppState.ERROR},
    AppState.ERROR: {AppState.WAITING_FOR_DEVICE},
}


@dataclass
class DiagnosticApp:
    """UI state machine + progression log."""

    link: AccessoryLink = field(default_factory=AccessoryLink)

    def __post_init__(self) -> None:
        self._state = AppState.WAITING_FOR_DEVICE
        self._log: List[Tuple[AppState, str]] = []
        self._result_text: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def state(self) -> AppState:
        """Current screen."""
        return self._state

    @property
    def progression_log(self) -> Tuple[Tuple[AppState, str], ...]:
        """All (state, message) feedback shown to the user so far."""
        return tuple(self._log)

    @property
    def result_text(self) -> Optional[str]:
        """The displayed outcome, once available."""
        return self._result_text

    def _transition(self, to_state: AppState, message: str) -> None:
        if to_state not in _TRANSITIONS[self._state]:
            raise ConfigurationError(
                f"illegal app transition {self._state.value} -> {to_state.value}"
            )
        self._state = to_state
        self._log.append((to_state, message))

    # ------------------------------------------------------------------
    # User / system events
    # ------------------------------------------------------------------
    def device_connected(self) -> None:
        """USB handshake completed; show the start-test screen."""
        if self.link.state is not AccessoryState.CONNECTED:
            raise ConfigurationError("accessory link is not connected")
        self._transition(AppState.READY, "MedSen device detected — ready to test")

    def start_test(self) -> None:
        """User taps 'start blood test'."""
        self._transition(AppState.TEST_RUNNING, "test running — keep the device still")

    def capture_complete(self) -> None:
        """Controller reports the capture finished; upload begins."""
        self._transition(AppState.UPLOADING, "uploading encrypted measurements")

    def upload_complete(self) -> None:
        """Compressed capture delivered to the cloud."""
        self._transition(AppState.AWAITING_RESULTS, "waiting for analysis results")

    def result_received(self, display_text: str) -> None:
        """Decoded outcome forwarded by the controller for display."""
        if not display_text:
            raise ConfigurationError("display_text must be non-empty")
        self._result_text = display_text
        self._transition(AppState.SHOWING_RESULT, display_text)

    def acknowledge_result(self) -> None:
        """User dismisses the result; back to ready."""
        self._transition(AppState.READY, "ready for the next test")

    def fail(self, reason: str) -> None:
        """Any stage failed; show the error screen."""
        self._state = AppState.ERROR
        self._log.append((AppState.ERROR, f"error: {reason}"))

    def reset(self) -> None:
        """Recover from error by re-detecting the device."""
        if self._state is not AppState.ERROR:
            raise ConfigurationError("reset is only valid from the error screen")
        self._transition(AppState.WAITING_FOR_DEVICE, "reconnect the MedSen device")
        self._result_text = None
