"""Processing-time models of the evaluation platforms (Figure 14).

The paper times its peak analysis at three sample sizes on two
platforms::

    samples   computer (i7-4710MQ)   smartphone (Nexus 5)
    240607    0.110 s                0.452 s
    481214    0.215 s                0.810 s
    962428    0.343 s                1.554 s

Both platforms are well fitted by an affine model (fixed overhead plus
per-sample cost); :data:`COMPUTER_I7` and :data:`NEXUS5` are
least-squares fits of those six points.  The phone's ~4x slope is what
motivates offloading peak analysis to the cloud for large captures,
while small captures can stay on the phone (§VII-B).
"""

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro._util.validation import check_positive

#: The Figure 14 sample sizes.
FIG14_SAMPLE_SIZES: Tuple[int, ...] = (240607, 481214, 962428)

#: The Figure 14 reported times (seconds).
FIG14_COMPUTER_TIMES_S: Tuple[float, ...] = (0.110, 0.215, 0.343)
FIG14_PHONE_TIMES_S: Tuple[float, ...] = (0.452, 0.810, 1.554)


@dataclass(frozen=True)
class DevicePerfModel:
    """Affine processing-time model: ``time = overhead + rate * n``.

    Parameters
    ----------
    name:
        Platform label for reporting.
    overhead_s:
        Fixed cost per analysis job (dispatch, allocation).
    seconds_per_sample:
        Marginal cost per input sample.
    """

    name: str
    overhead_s: float
    seconds_per_sample: float

    def __post_init__(self) -> None:
        check_positive("overhead_s", self.overhead_s, allow_zero=True)
        check_positive("seconds_per_sample", self.seconds_per_sample)

    def processing_time_s(self, n_samples: int) -> float:
        """Predicted analysis time for ``n_samples`` input samples."""
        if n_samples < 0:
            raise ValueError(f"n_samples must be >= 0, got {n_samples}")
        return self.overhead_s + self.seconds_per_sample * n_samples

    def speedup_over(self, other: "DevicePerfModel", n_samples: int) -> float:
        """How much faster this platform is than ``other`` at a size."""
        return other.processing_time_s(n_samples) / self.processing_time_s(n_samples)

    @classmethod
    def fit(
        cls, name: str, sample_sizes: Sequence[int], times_s: Sequence[float]
    ) -> "DevicePerfModel":
        """Least-squares affine fit of measured (size, time) points."""
        sizes = np.asarray(sample_sizes, dtype=float)
        times = np.asarray(times_s, dtype=float)
        if sizes.shape != times.shape or sizes.size < 2:
            raise ValueError("need >= 2 matching (size, time) points")
        slope, intercept = np.polyfit(sizes, times, 1)
        return cls(
            name=name,
            overhead_s=float(max(intercept, 0.0)),
            seconds_per_sample=float(slope),
        )


#: The paper's computer platform, fitted on the Figure 14 bars.
COMPUTER_I7 = DevicePerfModel.fit(
    "Intel i7-4710MQ (16GB RAM)", FIG14_SAMPLE_SIZES, FIG14_COMPUTER_TIMES_S
)

#: The paper's smartphone platform, fitted on the Figure 14 bars.
NEXUS5 = DevicePerfModel.fit(
    "Nexus 5 - Snapdragon 800 (2GB RAM)", FIG14_SAMPLE_SIZES, FIG14_PHONE_TIMES_S
)
