"""The smartphone relay app (paper §VI-D, §VII-B).

The app "provides an interface for the user to start the blood test
..., and relays the measurements to the cloud infrastructure in charge
of performing the heavy computation.  It also receives the analysis
outcomes and forwards them to MedSen device."  For network efficiency
it zip-compresses captures before upload (§VII-B), and for small
captures it can run the peak analysis locally instead (§VII-B /
Figure 14).
"""

from dataclasses import dataclass, field
from typing import Optional

from repro._util.validation import check_positive
from repro.cloud.network import NetworkModel
from repro.cloud.server import AnalysisServer
from repro.dsp.peakdetect import PeakDetector, PeakReport
from repro.dsp.recording import CsvRecordingModel, compressed_size_bytes
from repro.guard.admission import DEFAULT_TRACE_POLICY, TraceAdmissionPolicy, admit_trace
from repro.guard.envelope import SecureChannel
from repro.hardware.acquisition import AcquiredTrace
from repro.mobile.perf import NEXUS5, DevicePerfModel
from repro.obs import NULL_OBSERVER, TRACE_RELAYED

#: Approximate serialized size of a peak report entry (timestamp,
#: depth, width, channel amplitudes) sent back to the phone.
_REPORT_BYTES_PER_PEAK = 64.0
_REPORT_BYTES_BASE = 256.0


@dataclass(frozen=True)
class RelayOutcome:
    """What one relayed analysis cost and returned."""

    report: PeakReport
    analyzed_locally: bool
    raw_bytes: int
    uploaded_bytes: float
    compression_time_s: float
    transfer_time_s: float
    analysis_time_s: float

    @property
    def total_time_s(self) -> float:
        """Phone-observed time from capture handoff to report."""
        return self.compression_time_s + self.transfer_time_s + self.analysis_time_s


@dataclass
class Smartphone:
    """Relay app: compress, upload, and forward results.

    Parameters
    ----------
    network:
        Uplink/downlink model used for transfer estimates.
    perf:
        Local processing-time model (defaults to the Nexus 5 fit).
    local_analysis_threshold_samples:
        Captures with at most this many total samples are analysed on
        the phone instead of being uploaded ("For smaller samples,
        MedSen could be configured to perform the peak counting signal
        processing on the smartphone locally").  0 disables local mode.
    observer:
        Observability sink (relay spans, transfer metrics, audit
        events); the default records nothing.
    admission:
        Trace admission policy applied before any relay work — the
        phone refuses malformed/NaN-poisoned captures at its own
        boundary instead of shipping them on.  ``None`` disables.
    channel:
        Optional :class:`~repro.guard.envelope.SecureChannel` pairing
        this phone with the cloud.  When set, uploads carry a freshness
        token and the report comes back HMAC-sealed; the phone verifies
        the envelope *before* forwarding anything to the controller.
    """

    network: NetworkModel = field(default_factory=NetworkModel)
    perf: DevicePerfModel = NEXUS5
    recording: CsvRecordingModel = field(default_factory=CsvRecordingModel)
    local_analysis_threshold_samples: int = 0
    compression_bytes_per_s: float = 40e6
    compression_level: int = 6
    observer: object = NULL_OBSERVER
    admission: Optional[TraceAdmissionPolicy] = DEFAULT_TRACE_POLICY
    channel: Optional[SecureChannel] = None

    def __post_init__(self) -> None:
        if self.local_analysis_threshold_samples < 0:
            raise ValueError("local_analysis_threshold_samples must be >= 0")
        check_positive("compression_bytes_per_s", self.compression_bytes_per_s)

    # ------------------------------------------------------------------
    def relay(
        self,
        trace: AcquiredTrace,
        server: AnalysisServer,
        local_detector: Optional[PeakDetector] = None,
    ) -> RelayOutcome:
        """Process one capture: locally if small, otherwise via cloud.

        Timing is *modelled* (network/perf models) except the cloud's
        analysis time, which is actually measured by the server.

        The relay is itself a trust boundary: a malformed or poisoned
        capture is refused with a typed
        :class:`~repro._util.errors.AdmissionError` before compression,
        upload, or local analysis.
        """
        if self.admission is not None:
            admit_trace(
                trace, self.admission, observer=self.observer, boundary="relay"
            )
        with self.observer.span("relay", service="phone") as relay_span:
            total_samples = trace.n_channels * trace.n_samples
            payload = self.recording.encode(trace.voltages, trace.sampling_rate_hz)
            raw_bytes = len(payload)

            if (
                self.local_analysis_threshold_samples
                and total_samples <= self.local_analysis_threshold_samples
            ):
                detector = local_detector or server.detector
                with self.observer.span("local_analysis", samples=total_samples):
                    report = detector.detect(trace.voltages, trace.sampling_rate_hz)
                relay_span.set_attribute("analyzed_locally", True)
                self.observer.incr("relay.local_analyses")
                self.observer.event(
                    TRACE_RELAYED,
                    analyzed_locally=True,
                    raw_bytes=raw_bytes,
                    uploaded_bytes=0.0,
                )
                return RelayOutcome(
                    report=report,
                    analyzed_locally=True,
                    raw_bytes=raw_bytes,
                    uploaded_bytes=0.0,
                    compression_time_s=0.0,
                    transfer_time_s=0.0,
                    analysis_time_s=self.perf.processing_time_s(total_samples),
                )

            with self.observer.span("compress", raw_bytes=raw_bytes):
                compressed = compressed_size_bytes(payload, level=self.compression_level)
            compression_time = raw_bytes / self.compression_bytes_per_s
            self.observer.event(
                TRACE_RELAYED,
                analyzed_locally=False,
                raw_bytes=raw_bytes,
                uploaded_bytes=float(compressed),
            )
            if self.channel is not None:
                # The MSF2 token carries this relay span's identity so
                # the cloud's span becomes a child of this trace; the
                # MSE2 response carries the cloud span back as a link.
                sealed = server.analyze_sealed(
                    trace,
                    freshness_token=self.channel.new_token(
                        trace_context=relay_span.context()
                    ),
                )
                report = self.channel.receive(sealed, boundary="relay")
                if self.channel.last_context is not None:
                    relay_span.add_link(self.channel.last_context)
            else:
                report = server.analyze(trace)
            response_bytes = _REPORT_BYTES_BASE + _REPORT_BYTES_PER_PEAK * report.count
            with self.observer.span(
                "transfer", uploaded_bytes=float(compressed)
            ) as transfer_span:
                transfer_time = self.network.round_trip(
                    compressed, response_bytes, observer=self.observer
                )
                transfer_span.set_attribute("modelled_s", transfer_time)
            relay_span.set_attribute("analyzed_locally", False)
            self.observer.incr("relay.uploads")
            self.observer.incr("relay.raw_bytes", raw_bytes)
            self.observer.observe("relay.compression_ratio", raw_bytes / max(compressed, 1))
            # The calling thread's own job time: concurrent relays must
            # not read whichever job another worker finished last.
            analysis_time = getattr(server, "last_processing_time_s", None)
            if analysis_time is None:
                analysis_time = server.total_processing_time_s / max(
                    server.jobs_processed, 1
                )
            return RelayOutcome(
                report=report,
                analyzed_locally=False,
                raw_bytes=raw_bytes,
                uploaded_bytes=float(compressed),
                compression_time_s=compression_time,
                transfer_time_s=transfer_time,
                analysis_time_s=analysis_time,
            )
