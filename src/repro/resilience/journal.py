"""Append-only checksummed record journal with crash recovery.

The in-memory :class:`repro.cloud.storage.RecordStore` loses everything
when the serving process dies.  The journal makes committed records
durable: every ``store()`` appends one self-verifying JSONL line, and
after a crash :func:`recover_store` replays the log to reconstruct the
store **bit-identically** — same reports, same sequence numbers, same
timestamps (floats survive the JSON round trip via shortest-repr).

Each line carries two integrity layers:

* the record's own payload checksum (CRC32 over the canonical payload,
  the same value :class:`~repro.cloud.storage.StoredRecord` verifies on
  fetch), and
* a line CRC over the *entire* journal entry, so a torn write or
  bit-flip in the framing itself is also caught.

Replay never propagates corruption: a line that fails either check (or
does not parse) is **quarantined** — counted, reported via a
``record.quarantined`` audit event, and skipped — while every intact
line is restored.  A truncated final line (the classic crash-mid-write
artifact) is quarantined the same way.
"""

import json
import os
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro._util.errors import ConfigurationError
from repro.cloud.storage import (
    RecordStore,
    StoredRecord,
    payload_checksum,
    record_payload_dict,
)
from repro.obs import NULL_OBSERVER, RECORD_QUARANTINED, WALL_CLOCK, Clock


def _canonical(obj: Dict[str, Any]) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _line_crc(entry: Dict[str, Any]) -> int:
    return zlib.crc32(_canonical(entry).encode("utf-8")) & 0xFFFFFFFF


def encode_entry(record: StoredRecord) -> str:
    """One journal line (without trailing newline) for a record."""
    entry = {"payload": record.payload(), "checksum": record.checksum}
    entry["crc"] = _line_crc({"payload": entry["payload"], "checksum": entry["checksum"]})
    return _canonical(entry)


def decode_entry(line: str) -> StoredRecord:
    """Parse and verify one journal line back into a record.

    Raises ``ValueError`` on any integrity violation: unparsable JSON,
    a line CRC mismatch (torn/bit-flipped framing), or a payload
    checksum mismatch (corrupted record contents).
    """
    from repro.cloud.api import report_from_dict

    try:
        raw = json.loads(line)
        if not isinstance(raw, dict) or "payload" not in raw or "crc" not in raw:
            raise ValueError("journal entry missing payload/crc framing")
        payload = raw["payload"]
        checksum = int(raw.get("checksum", 0))
        expected_crc = _line_crc({"payload": payload, "checksum": checksum})
        if int(raw["crc"]) != expected_crc:
            raise ValueError("journal line CRC mismatch")
        if checksum != payload_checksum(payload):
            raise ValueError("record payload checksum mismatch")
        metadata = tuple((str(k), str(v)) for k, v in payload["metadata"])
        record = StoredRecord(
            identifier_key=str(payload["identifier"]),
            report=report_from_dict(payload["report"]),
            sequence_number=int(payload["sequence_number"]),
            stored_at_s=float(payload["stored_at_s"]),
            metadata=metadata,
            checksum=checksum,
        )
        # The report round-trips losslessly, so the reconstructed payload
        # must reproduce the journaled one exactly.
        if record_payload_dict(
            record.identifier_key,
            record.report,
            record.sequence_number,
            record.stored_at_s,
            record.metadata,
        ) != payload:
            raise ValueError("journal entry does not round-trip")
        return record
    except ValueError:
        raise
    except (KeyError, TypeError, OverflowError) as exc:
        # Structurally surprising JSON (wrong nesting, wrong types):
        # normalise to the documented ValueError contract.
        raise ValueError(f"journal entry malformed: {exc}") from exc


@dataclass(frozen=True)
class QuarantinedEntry:
    """One journal line that failed verification during replay."""

    line_number: int
    reason: str


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of a journal replay."""

    records: Tuple[StoredRecord, ...]
    quarantined: Tuple[QuarantinedEntry, ...]

    @property
    def n_recovered(self) -> int:
        return len(self.records)

    @property
    def n_quarantined(self) -> int:
        return len(self.quarantined)


class RecordJournal:
    """Append-only durable log of committed records.

    Pass an instance as ``RecordStore(journal=...)``; the store appends
    every committed record under its own lock, so the journal sees
    records in commit order.

    Parameters
    ----------
    path:
        JSONL file to append to (created on first append).
    fsync:
        Flush-to-disk per append.  Defaults off — the chaos runner's
        crash model is process death, not power loss, and per-record
        fsync dominates runtime in tests.
    """

    def __init__(self, path: str, fsync: bool = False) -> None:
        if not path:
            raise ConfigurationError("journal path must be non-empty")
        self.path = path
        self.fsync = fsync
        self._handle = None
        self.entries_written = 0

    def append(self, record: StoredRecord) -> None:
        """Durably append one committed record."""
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(encode_entry(record) + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.entries_written += 1

    def close(self) -> None:
        """Close the file handle (a later append reopens it)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RecordJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


#: Content cap per journal line during replay.  Honest entries are a
#: few KB (one record's JSON); 1 MiB admits even absurdly peak-dense
#: reports while a maliciously huge line is skimmed in bounded chunks
#: and quarantined instead of ballooning recovery memory.
MAX_JOURNAL_LINE_BYTES = 1 << 20


def _capped_lines(handle, max_line_bytes: int):
    """Yield ``(line_number, line_or_none)``; an over-cap line yields
    ``None`` after its tail is skimmed (never held) in bounded reads."""
    line_number = 0
    while True:
        chunk = handle.readline(max_line_bytes + 1)
        if not chunk:
            return
        line_number += 1
        if len(chunk) > max_line_bytes and not chunk.endswith("\n"):
            while True:
                tail = handle.readline(max_line_bytes)
                if not tail or tail.endswith("\n"):
                    break
            yield line_number, None
        else:
            yield line_number, chunk


def replay_journal(
    path: str,
    observer=NULL_OBSERVER,
    max_line_bytes: int = MAX_JOURNAL_LINE_BYTES,
) -> ReplayResult:
    """Read a journal back, quarantining corrupt lines.

    Every intact entry is returned in journal order; every damaged one
    becomes a :class:`QuarantinedEntry` with a ``record.quarantined``
    audit event and a ``journal.quarantined`` counter increment —
    corruption is surfaced, never silently loaded or silently dropped.
    A missing journal file replays to an empty result (a store that
    never committed anything has nothing to recover).  Lines longer
    than ``max_line_bytes`` are quarantined without ever being read
    into memory whole (an attacker-controlled journal cannot turn
    recovery into an allocation bomb).
    """
    if max_line_bytes < 1:
        raise ConfigurationError("max_line_bytes must be >= 1")
    records: List[StoredRecord] = []
    quarantined: List[QuarantinedEntry] = []
    if not os.path.exists(path):
        return ReplayResult(records=(), quarantined=())
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in _capped_lines(handle, max_line_bytes):
            if line is None:
                entry = QuarantinedEntry(
                    line_number=line_number,
                    reason=f"line exceeds {max_line_bytes} byte cap",
                )
                quarantined.append(entry)
                observer.incr("journal.quarantined")
                observer.incr("journal.oversized_lines")
                observer.event(
                    RECORD_QUARANTINED,
                    journal=path,
                    line_number=line_number,
                    reason=entry.reason,
                )
                continue
            line = line.strip()
            if not line:
                continue
            try:
                records.append(decode_entry(line))
            except (ValueError, KeyError, TypeError) as exc:
                entry = QuarantinedEntry(line_number=line_number, reason=str(exc))
                quarantined.append(entry)
                observer.incr("journal.quarantined")
                observer.event(
                    RECORD_QUARANTINED,
                    journal=path,
                    line_number=line_number,
                    reason=entry.reason,
                )
    observer.incr("journal.replayed", len(records))
    return ReplayResult(records=tuple(records), quarantined=tuple(quarantined))


def recover_store(
    path: str,
    clock: Clock = WALL_CLOCK,
    observer=NULL_OBSERVER,
    journal: Optional[RecordJournal] = None,
) -> Tuple[RecordStore, ReplayResult]:
    """Rebuild a :class:`RecordStore` from its journal after a crash.

    Returns the recovered store plus the replay result (so callers can
    check ``n_quarantined`` and alarm).  Committed records come back
    bit-identical — original sequence numbers and timestamps included —
    and new stores continue the sequence from the highest recovered
    number.  Pass ``journal`` to resume journaling into the same (or a
    fresh) log.
    """
    replay = replay_journal(path, observer=observer)
    store = RecordStore(clock=clock, observer=observer, journal=journal)
    for record in replay.records:
        store._restore(record)
    return store, replay
