"""Unified, seeded fault injection across every pipeline layer.

One :class:`FaultPlan` declares the fault rates for all layers the
chaos runner exercises — electrode faults on the sensor, sample
dropouts/saturation in the acquired trace, controller/server key-epoch
desync, record/journal corruption, worker crashes and poison requests
in the serving fleet (network drop/timeout/duplicate rates ride on the
existing :class:`~repro.cloud.network.UnreliableNetworkModel` knobs).

A :class:`FaultInjector` turns the plan into *deterministic* per-site
decisions: every decision draws from a fresh generator derived from
``(chaos seed, site, label, index)`` alone — never from shared stream
state — so the full fault schedule is a pure function of the seed and
identical regardless of worker count or thread interleaving (the same
construction as :func:`~repro.serving.request.derive_request_rng`).
Every injected fault is recorded in the injection log and emitted as a
``fault.injected`` audit event.
"""

import hashlib
import threading
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from repro._util.errors import ConfigurationError
from repro._util.validation import check_in_range
from repro.hardware.acquisition import AcquiredTrace
from repro.hardware.electrodes import ElectrodeArray
from repro.hardware.faults import FaultModel
from repro.obs import FAULT_INJECTED, NULL_OBSERVER
from repro.serving.scheduler import WorkerCrash

#: Injection sites (the ``site`` field of log entries and events).
SITE_SENSOR = "sensor"
SITE_DSP = "dsp"
SITE_CRYPTO = "crypto"
SITE_STORAGE = "storage"
SITE_NETWORK = "network"
SITE_SCHEDULER = "scheduler"
SITE_REPLICATION = "replication"


@dataclass(frozen=True)
class FaultPlan:
    """Per-layer fault rates for one chaos campaign.

    All rates are probabilities in ``[0, 1]`` evaluated per opportunity
    (per trial, per request, per journal line).  The network-layer
    rates are consumed by the fleet's unreliable-link model rather than
    the injector itself, but live here so one object describes the
    whole campaign.
    """

    # Sensor layer: electrode faults on a trial's device.
    sensor_fault_rate: float = 0.0
    max_dead_electrodes: int = 1
    weak_electrode_rate: float = 0.5
    # DSP layer: corruption of the acquired trace.
    dropout_rate: float = 0.0
    saturation_rate: float = 0.0
    corruption_span_fraction: float = 0.08
    # Crypto layer: controller/server key-epoch desync.
    desync_rate: float = 0.0
    # Storage layer: bit-flips in the record journal.
    storage_corruption_rate: float = 0.0
    # Serving layer: worker crashes and poison requests.
    worker_crash_rate: float = 0.0
    poison_tenants: Tuple[str, ...] = ()
    # Network layer: forwarded to UnreliableNetworkModel by the runner.
    drop_probability: float = 0.0
    timeout_probability: float = 0.0
    duplicate_probability: float = 0.0
    # Streaming lane: chunk loss, mid-stream disconnects, congestion.
    chunk_drop_rate: float = 0.0
    disconnect_rate: float = 0.0
    congestion_rate: float = 0.0
    # Replication layer: partitions, lease expiry, primary crashes.
    partition_rate: float = 0.0
    lease_expiry_rate: float = 0.0
    primary_crash_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "sensor_fault_rate",
            "weak_electrode_rate",
            "dropout_rate",
            "saturation_rate",
            "desync_rate",
            "storage_corruption_rate",
            "worker_crash_rate",
            "drop_probability",
            "timeout_probability",
            "duplicate_probability",
            "chunk_drop_rate",
            "disconnect_rate",
            "congestion_rate",
            "partition_rate",
            "lease_expiry_rate",
            "primary_crash_rate",
        ):
            check_in_range(name, getattr(self, name), 0.0, 1.0)
        check_in_range(
            "corruption_span_fraction", self.corruption_span_fraction, 0.0, 0.5
        )
        if self.max_dead_electrodes < 0:
            raise ConfigurationError("max_dead_electrodes must be >= 0")
        object.__setattr__(self, "poison_tenants", tuple(self.poison_tenants))

    @property
    def any_faults(self) -> bool:
        """Whether the plan injects anything at all."""
        return bool(
            self.sensor_fault_rate
            or self.dropout_rate
            or self.saturation_rate
            or self.desync_rate
            or self.storage_corruption_rate
            or self.worker_crash_rate
            or self.poison_tenants
            or self.drop_probability
            or self.timeout_probability
            or self.duplicate_probability
            or self.chunk_drop_rate
            or self.disconnect_rate
            or self.congestion_rate
            or self.partition_rate
            or self.lease_expiry_rate
            or self.primary_crash_rate
        )

    @property
    def any_stream_faults(self) -> bool:
        """Whether the plan exercises the streaming lane at all."""
        return bool(
            self.chunk_drop_rate or self.disconnect_rate or self.congestion_rate
        )

    @property
    def any_replication_faults(self) -> bool:
        """Whether the plan exercises the replicated-partition layer."""
        return bool(
            self.partition_rate
            or self.lease_expiry_rate
            or self.primary_crash_rate
        )


@dataclass(frozen=True)
class InjectedFault:
    """One realised fault (for the deterministic injection log)."""

    site: str
    label: str
    index: int
    detail: str


def _tag(text: str) -> int:
    return int.from_bytes(
        hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest(), "big"
    )


class FaultInjector:
    """Seeded, thread-safe fault decisions for every layer.

    Parameters
    ----------
    plan:
        The campaign's fault rates.
    seed:
        Chaos seed; with (site, label, index) it fully determines every
        decision.
    observer:
        Observability sink; each realised fault emits ``fault.injected``
        and bumps ``chaos.faults_injected``.
    """

    def __init__(self, plan: FaultPlan, seed: int = 0, observer=NULL_OBSERVER) -> None:
        self.plan = plan
        self.seed = int(seed)
        self.observer = observer
        self._log: List[InjectedFault] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _rng(self, site: str, label: str, index: int) -> np.random.Generator:
        """Fresh generator for one decision — order-independent."""
        return np.random.default_rng(
            np.random.SeedSequence(
                entropy=self.seed, spawn_key=(_tag(site), _tag(label), int(index))
            )
        )

    def _record(self, site: str, label: str, index: int, detail: str) -> None:
        fault = InjectedFault(site=site, label=label, index=index, detail=detail)
        with self._lock:
            self._log.append(fault)
        self.observer.incr("chaos.faults_injected")
        self.observer.event(
            FAULT_INJECTED, site=site, label=label, index=index, detail=detail
        )

    @property
    def injections(self) -> Tuple[InjectedFault, ...]:
        """All realised faults, sorted (deterministic across threads)."""
        with self._lock:
            log = list(self._log)
        return tuple(sorted(log, key=lambda f: (f.site, f.label, f.index, f.detail)))

    def record_external(self, site: str, label: str, index: int, detail: str) -> None:
        """Log a fault realised by another component (e.g. the network
        link's duplicate deliveries) so the injection log covers every
        layer the campaign exercised."""
        self._record(site, label, index, detail)

    def injected_sites(self) -> Tuple[str, ...]:
        """Distinct sites that saw at least one fault, sorted."""
        return tuple(sorted({fault.site for fault in self.injections}))

    # ------------------------------------------------------------------
    # Sensor layer
    # ------------------------------------------------------------------
    def sensor_fault_model(
        self, label: str, index: int, array: Optional[ElectrodeArray] = None
    ) -> Optional[FaultModel]:
        """Electrode faults for one trial's device, or ``None``.

        Draws dead (and possibly weak) electrodes from the non-lead
        outputs — killing the lead electrode would break the plaintext
        identifier path, which is a different (FAILED-grade) scenario
        than the degradable dead-electrode one this models.
        """
        if self.plan.sensor_fault_rate <= 0:
            return None
        rng = self._rng(SITE_SENSOR, label, index)
        if rng.random() >= self.plan.sensor_fault_rate:
            return None
        n_outputs = array.n_outputs if array is not None else 9
        lead = array.lead_electrode if array is not None else n_outputs
        candidates = [e for e in range(1, n_outputs + 1) if e != lead]
        n_dead = int(rng.integers(1, self.plan.max_dead_electrodes + 1))
        n_dead = min(n_dead, max(len(candidates) - 1, 1))
        chosen = rng.choice(len(candidates), size=n_dead, replace=False)
        dead = frozenset(candidates[int(i)] for i in np.atleast_1d(chosen))
        weak: frozenset = frozenset()
        if rng.random() < self.plan.weak_electrode_rate:
            remaining = [e for e in candidates if e not in dead]
            if remaining:
                weak = frozenset({remaining[int(rng.integers(len(remaining)))]})
        model = FaultModel(dead_electrodes=dead, weak_electrodes=weak)
        self._record(
            SITE_SENSOR,
            label,
            index,
            f"dead={sorted(dead)} weak={sorted(weak)}",
        )
        return model

    # ------------------------------------------------------------------
    # DSP layer
    # ------------------------------------------------------------------
    def corrupt_trace(
        self, trace: AcquiredTrace, label: str, index: int
    ) -> Tuple[AcquiredTrace, Tuple[str, ...]]:
        """Maybe corrupt an acquired trace (dropouts / saturation).

        Returns ``(trace, applied)`` where ``applied`` names the
        corruptions injected (empty = untouched).  Dropouts zero random
        sample spans (a flaky ADC/DMA); saturation clamps the trace's
        deepest excursions flat (an overdriven front-end).  Both leave
        flat-line runs that :func:`trace_quality` detects, so the
        pipeline can *know* its input is damaged.
        """
        applied: List[str] = []
        rng = self._rng(SITE_DSP, label, index)
        voltages = trace.voltages
        span = max(int(voltages.shape[1] * self.plan.corruption_span_fraction), 8)
        if self.plan.dropout_rate > 0 and rng.random() < self.plan.dropout_rate:
            voltages = np.array(voltages, copy=True)
            start = int(rng.integers(0, max(voltages.shape[1] - span, 1)))
            voltages[:, start : start + span] = 0.0
            applied.append("dropout")
        if self.plan.saturation_rate > 0 and rng.random() < self.plan.saturation_rate:
            voltages = np.array(voltages, copy=True) if not applied else voltages
            # A transient overload pins the span flat at each channel's
            # rail (98th-percentile excursion).
            rail = np.percentile(voltages, 98.0, axis=1, keepdims=True)
            start = int(rng.integers(0, max(voltages.shape[1] - span, 1)))
            voltages[:, start : start + span] = rail
            applied.append("saturation")
        if not applied:
            return trace, ()
        self._record(SITE_DSP, label, index, "+".join(applied))
        return replace(trace, voltages=voltages), tuple(applied)

    # ------------------------------------------------------------------
    # Crypto layer
    # ------------------------------------------------------------------
    def should_desync(self, label: str, index: int) -> bool:
        """Whether to desync the controller's key epoch this trial."""
        if self.plan.desync_rate <= 0:
            return False
        hit = self._rng(SITE_CRYPTO, label, index).random() < self.plan.desync_rate
        if hit:
            self._record(SITE_CRYPTO, label, index, "key-epoch desync")
        return hit

    # ------------------------------------------------------------------
    # Storage layer
    # ------------------------------------------------------------------
    def corrupt_journal_file(self, path: str, label: str = "journal") -> Optional[int]:
        """Flip one byte in a deterministic journal line (crash damage).

        Returns the 1-based line number corrupted, or ``None`` when the
        plan has no storage corruption or the journal is empty.
        """
        if self.plan.storage_corruption_rate <= 0:
            return None
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        if not lines:
            return None
        rng = self._rng(SITE_STORAGE, label, 0)
        if rng.random() >= self.plan.storage_corruption_rate:
            return None
        target = int(rng.integers(len(lines)))
        line = lines[target]
        # Flip one digit inside the payload so the JSON still parses
        # but the checksum no longer matches.
        flipped = None
        for position in range(len(line)):
            ch = line[position]
            if ch.isdigit():
                flipped = line[:position] + str((int(ch) + 1) % 10) + line[position + 1 :]
                break
        if flipped is None:
            return None
        lines[target] = flipped
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        self._record(SITE_STORAGE, label, target, f"bit-flip on line {target + 1}")
        return target + 1

    # ------------------------------------------------------------------
    # Serving layer (FleetScheduler fault_injector protocol)
    # ------------------------------------------------------------------
    def on_request_start(self, tenant_id: str, sequence: int, attempt: int = 0) -> None:
        """Scheduler hook: raise :class:`WorkerCrash` when scheduled.

        Poison tenants crash the worker on *every* attempt (so they hit
        the dead-letter quarantine); transient crashes fire only on the
        first attempt, modelling a fault the retry outlives.
        """
        if tenant_id in self.plan.poison_tenants:
            self._record(
                SITE_SCHEDULER, tenant_id, sequence, f"poison crash (attempt {attempt})"
            )
            raise WorkerCrash(
                f"poison request {tenant_id}:{sequence} (attempt {attempt})"
            )
        if self.plan.worker_crash_rate <= 0 or attempt > 0:
            return
        rng = self._rng(SITE_SCHEDULER, tenant_id, sequence)
        if rng.random() < self.plan.worker_crash_rate:
            self._record(SITE_SCHEDULER, tenant_id, sequence, "transient worker crash")
            raise WorkerCrash(
                f"injected crash while serving {tenant_id}:{sequence}"
            )

    # ------------------------------------------------------------------
    # Replication layer (replicated partitions / lease-fenced failover)
    # ------------------------------------------------------------------
    def should_partition(self, label: str, index: int) -> bool:
        """Whether to partition this replica pair's primary (SIGSTOP-
        style: the process stays alive but becomes unreachable)."""
        if self.plan.partition_rate <= 0:
            return False
        hit = (
            self._rng(SITE_REPLICATION, f"{label}#partition", index).random()
            < self.plan.partition_rate
        )
        if hit:
            self._record(SITE_REPLICATION, label, index, "primary partitioned")
        return hit

    def should_expire_lease(self, label: str, index: int) -> bool:
        """Whether to let this partition's lease lapse without renewal."""
        if self.plan.lease_expiry_rate <= 0:
            return False
        hit = (
            self._rng(SITE_REPLICATION, f"{label}#lease", index).random()
            < self.plan.lease_expiry_rate
        )
        if hit:
            self._record(SITE_REPLICATION, label, index, "lease expired")
        return hit

    def should_crash_primary(self, label: str, index: int) -> bool:
        """Whether to hard-kill this partition's primary (SIGKILL)."""
        if self.plan.primary_crash_rate <= 0:
            return False
        hit = (
            self._rng(SITE_REPLICATION, f"{label}#crash", index).random()
            < self.plan.primary_crash_rate
        )
        if hit:
            self._record(SITE_REPLICATION, label, index, "primary crashed")
        return hit

    # ------------------------------------------------------------------
    # Streaming lane (DeviceStreamer injector protocol; network site)
    # ------------------------------------------------------------------
    def should_drop_chunk(self, label: str, seq: int, attempt: int) -> bool:
        """Whether a chunk's *first* transmission vanishes on the link.

        Retransmits always land, so one drop costs exactly one retry —
        the streaming analogue of the transient worker crash.
        """
        if self.plan.chunk_drop_rate <= 0 or attempt > 0:
            return False
        hit = (
            self._rng(SITE_NETWORK, f"{label}#drop", seq).random()
            < self.plan.chunk_drop_rate
        )
        if hit:
            self._record(SITE_NETWORK, label, seq, f"stream chunk {seq} dropped")
        return hit

    def disconnect_mode(self, label: str, seq: int) -> Optional[str]:
        """Disconnect before this chunk: ``None``, ``"chunk-lost"``, or
        ``"ack-lost"`` (the gateway analysed it but the ack died)."""
        if self.plan.disconnect_rate <= 0:
            return None
        rng = self._rng(SITE_NETWORK, f"{label}#disconnect", seq)
        if rng.random() >= self.plan.disconnect_rate:
            return None
        mode = "ack-lost" if rng.random() < 0.5 else "chunk-lost"
        self._record(
            SITE_NETWORK, label, seq, f"stream disconnect ({mode}) at chunk {seq}"
        )
        return mode

    def congestion_signal(self, label: str, seq: int) -> bool:
        """Whether the link backpressures this chunk's ack."""
        if self.plan.congestion_rate <= 0:
            return False
        hit = (
            self._rng(SITE_NETWORK, f"{label}#congestion", seq).random()
            < self.plan.congestion_rate
        )
        if hit:
            self._record(SITE_NETWORK, label, seq, f"stream congestion at chunk {seq}")
        return hit


# ---------------------------------------------------------------------------
# Trace health scan (the DSP layer's own damage detector)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TraceQuality:
    """Result of scanning a trace for acquisition damage.

    ``flatline_fraction`` is the fraction of consecutive sample pairs
    with *exactly* equal values: continuous front-end noise makes exact
    repeats vanishingly rare, so runs of them indicate dropouts (stuck
    at zero) or saturation (clamped at a rail).
    """

    flatline_fraction: float
    threshold: float

    @property
    def ok(self) -> bool:
        return self.flatline_fraction <= self.threshold


def trace_quality(voltages: np.ndarray, threshold: float = 0.01) -> TraceQuality:
    """Scan a ``(n_channels, n_samples)`` trace for flat-line damage."""
    voltages = np.asarray(voltages, dtype=float)
    if voltages.ndim == 1:
        voltages = voltages[np.newaxis, :]
    if voltages.shape[1] < 2:
        return TraceQuality(flatline_fraction=0.0, threshold=threshold)
    repeats = np.diff(voltages, axis=1) == 0.0
    return TraceQuality(
        flatline_fraction=float(np.mean(repeats)), threshold=threshold
    )
