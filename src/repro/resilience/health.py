"""Per-component health states: OK / DEGRADED / FAILED.

The chaos runner's core invariant is "no silent wrong counts": a run
must end either correct-within-tolerance or with an *explicit* health
alarm.  The :class:`HealthRegistry` is that alarm — a thread-safe map
from component name (``sensor``, ``dsp``, ``crypto``, ``storage``,
``network``, ``scheduler``, ...) to its current status, wired into the
observability layer (a ``health.changed`` audit event and a
``health.<component>`` gauge on every transition).

Status severity is ordered ``OK < DEGRADED < FAILED`` and transitions
are monotone within a run unless explicitly cleared: a component that
degraded stays at least degraded, so a late recovery cannot mask an
earlier alarm in the final report.
"""

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro._util.errors import ConfigurationError
from repro.obs import HEALTH_CHANGED, NULL_OBSERVER

#: The three health states, in increasing severity.
OK = "ok"
DEGRADED = "degraded"
FAILED = "failed"

_SEVERITY = {OK: 0, DEGRADED: 1, FAILED: 2}


@dataclass(frozen=True)
class ComponentHealth:
    """One component's current health verdict."""

    component: str
    status: str
    reason: str = ""

    def __post_init__(self) -> None:
        if self.status not in _SEVERITY:
            raise ConfigurationError(
                f"unknown health status {self.status!r}; "
                f"expected one of {sorted(_SEVERITY)}"
            )

    @property
    def severity(self) -> int:
        """Numeric severity (0=ok, 1=degraded, 2=failed)."""
        return _SEVERITY[self.status]


class HealthRegistry:
    """Thread-safe OK/DEGRADED/FAILED map for pipeline components.

    Parameters
    ----------
    observer:
        Observability sink; every status *change* emits a
        ``health.changed`` event and updates the ``health.<component>``
        gauge (0/1/2).  The default records nothing.
    """

    def __init__(self, observer=NULL_OBSERVER) -> None:
        self.observer = observer
        self._states: Dict[str, ComponentHealth] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def set_status(self, component: str, status: str, reason: str = "") -> ComponentHealth:
        """Record ``component``'s health, never *downgrading* severity.

        An escalation (ok -> degraded -> failed) always applies; an
        attempted de-escalation keeps the worse state (use
        :meth:`clear` to reset a component explicitly).  Returns the
        effective state after the call.
        """
        if not component:
            raise ConfigurationError("component name must be non-empty")
        proposed = ComponentHealth(component=component, status=status, reason=reason)
        with self._lock:
            current = self._states.get(component)
            if current is not None and current.severity >= proposed.severity:
                return current
            self._states[component] = proposed
        self.observer.gauge(f"health.{component}", float(proposed.severity))
        self.observer.event(
            HEALTH_CHANGED, component=component, status=status, reason=reason
        )
        return proposed

    def degrade(self, component: str, reason: str = "") -> ComponentHealth:
        """Shorthand for ``set_status(component, DEGRADED, reason)``."""
        return self.set_status(component, DEGRADED, reason)

    def fail(self, component: str, reason: str = "") -> ComponentHealth:
        """Shorthand for ``set_status(component, FAILED, reason)``."""
        return self.set_status(component, FAILED, reason)

    def clear(self, component: str) -> None:
        """Forget a component's state (next set starts from scratch)."""
        with self._lock:
            self._states.pop(component, None)

    # ------------------------------------------------------------------
    def status(self, component: str) -> str:
        """Current status of ``component`` (unknown components are OK)."""
        with self._lock:
            state = self._states.get(component)
        return OK if state is None else state.status

    def get(self, component: str) -> Optional[ComponentHealth]:
        """Full state for ``component``, or ``None`` if never reported."""
        with self._lock:
            return self._states.get(component)

    @property
    def overall(self) -> str:
        """Worst status across all components (OK when empty)."""
        with self._lock:
            if not self._states:
                return OK
            worst = max(self._states.values(), key=lambda s: s.severity)
        return worst.status

    @property
    def is_operational(self) -> bool:
        """True while no component has FAILED."""
        return self.overall != FAILED

    def snapshot(self) -> Tuple[ComponentHealth, ...]:
        """All reported states, sorted by component name (deterministic)."""
        with self._lock:
            states = tuple(
                self._states[name] for name in sorted(self._states)
            )
        return states

    def format(self) -> str:
        """Human-readable health table, one component per line."""
        states = self.snapshot()
        if not states:
            return "all components ok"
        width = max(len(s.component) for s in states)
        lines = []
        for state in states:
            line = f"{state.component:<{width}}  {state.status.upper():<8}"
            if state.reason:
                line += f"  {state.reason}"
            lines.append(line)
        return "\n".join(lines)
