"""Seeded chaos campaigns: end-to-end fault injection with invariants.

``python -m repro chaos --seed S --campaign C`` executes one campaign
in three phases and checks the system-wide resilience invariants:

* **Phase A — degraded sensing.**  Single-device trials with injected
  electrode faults, trace corruption (dropouts/saturation) and
  key-epoch desync.  Invariant: *no silent wrong counts* — every trial
  either decodes correct-within-tolerance or carries an explicit
  DEGRADED/FAILED verdict.
* **Phase B — fleet chaos.**  A multi-worker
  :class:`~repro.serving.scheduler.FleetScheduler` run under network
  duplicates, transient worker crashes and a poison tenant, journaling
  every committed record.  Invariants: no deadlock (every future
  resolves), full accounting (completed + failed = submitted), poison
  requests quarantined, duplicates deduplicated.
* **Phase C — crash recovery.**  The "process dies": the journal is
  (deterministically) corrupted and replayed.  Invariants: every
  intact committed record recovers **bit-identically**, every damaged
  line is quarantined with an audit event, never loaded.
* **Phase D — streaming lane.**  Chunk loss, mid-stream disconnects
  and congestion against the windowed streaming session.  Invariants:
  resume is bit-identical and congestion degrades explicitly.
* **Phase E — replicated partition.**  The committed records are
  journal-shipped to an in-process standby (torn tail quarantined, not
  applied), a primary lease lapses under a manual clock and the
  standby promotes at the next epoch, and a crashed ex-primary rejoins
  from the shipped history alone.  Invariants: standby convergence,
  stale-epoch fencing, rejoin convergence.  (The multiprocess SIGKILL
  failover drill lives in ``python -m repro failover``.)

Determinism: the same ``(seed, campaign)`` produces the identical fault
schedule, health report, record contents, and hence the identical
:attr:`ChaosReport.digest` — the property the chaos tests pin.
"""

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro._util.errors import MedSenError
from repro.cloud.server import AnalysisServer
from repro.cloud.storage import RecordStore
from repro.core.device import MedSenDevice
from repro.core.diagnosis import CD4_STAGING
from repro.obs import NULL_OBSERVER, ManualClock
from repro.particles.library import get_particle_type
from repro.particles.sample import Sample
from repro.resilience.degraded import evaluate_degraded
from repro.resilience.faults import FaultInjector, FaultPlan, trace_quality
from repro.resilience.health import DEGRADED, FAILED, OK, HealthRegistry
from repro.resilience.journal import (
    RecordJournal,
    decode_entry,
    encode_entry,
    recover_store,
    replay_journal,
)
from repro.serving.request import derive_request_rng
from repro.serving.scheduler import FleetConfig, FleetScheduler
from repro.serving.workload import ClinicWorkload


class ChaosError(MedSenError):
    """The chaos runner itself was misused (unknown campaign, ...)."""


@dataclass(frozen=True)
class Campaign:
    """One named chaos campaign: fault plan + workload shape."""

    name: str
    description: str
    plan: FaultPlan
    n_sensor_trials: int = 3
    n_desync_trials: int = 1
    trial_duration_s: float = 6.0
    n_tenants: int = 2
    requests_per_tenant: int = 2
    fleet_duration_s: float = 8.0
    n_workers: int = 4
    tolerance_fraction: float = 0.5
    wait_timeout_s: float = 300.0


#: The campaign registry.  ``smoke`` is the CI gate: every layer sees
#: at least one fault, in a couple of minutes of compute.
CAMPAIGNS: Dict[str, Campaign] = {
    "smoke": Campaign(
        name="smoke",
        description="one fault per layer, minimal workload (the CI gate)",
        plan=FaultPlan(
            sensor_fault_rate=1.0,
            max_dead_electrodes=1,
            weak_electrode_rate=1.0,
            dropout_rate=1.0,
            saturation_rate=0.0,
            desync_rate=1.0,
            storage_corruption_rate=1.0,
            worker_crash_rate=0.5,
            poison_tenants=("clinic-01",),
            duplicate_probability=1.0,
            chunk_drop_rate=0.4,
            disconnect_rate=0.3,
            congestion_rate=1.0,
            partition_rate=1.0,
            lease_expiry_rate=1.0,
            primary_crash_rate=1.0,
        ),
        n_sensor_trials=2,
        n_desync_trials=1,
        trial_duration_s=5.0,
        n_tenants=2,
        requests_per_tenant=2,
        fleet_duration_s=6.0,
    ),
    "sensor": Campaign(
        name="sensor",
        description="heavier electrode/DSP fault sweep, no fleet faults",
        plan=FaultPlan(
            sensor_fault_rate=0.8,
            max_dead_electrodes=2,
            weak_electrode_rate=0.5,
            dropout_rate=0.5,
            saturation_rate=0.5,
            desync_rate=0.5,
        ),
        n_sensor_trials=6,
        n_desync_trials=2,
    ),
    "fleet": Campaign(
        name="fleet",
        description="serving-layer chaos: crashes, poison, duplicates, corruption",
        plan=FaultPlan(
            worker_crash_rate=0.4,
            poison_tenants=("clinic-02",),
            duplicate_probability=0.5,
            drop_probability=0.1,
            storage_corruption_rate=1.0,
            partition_rate=1.0,
            lease_expiry_rate=1.0,
            primary_crash_rate=1.0,
        ),
        n_sensor_trials=0,
        n_desync_trials=0,
        n_tenants=3,
        requests_per_tenant=3,
    ),
}


@dataclass(frozen=True)
class InvariantResult:
    """One checked invariant."""

    name: str
    ok: bool
    detail: str = ""


@dataclass
class ChaosReport:
    """Everything one chaos run produced."""

    campaign: str
    seed: int
    invariants: List[InvariantResult] = field(default_factory=list)
    health: Tuple = ()
    injections: Tuple = ()
    trial_outcomes: List[Tuple] = field(default_factory=list)
    record_hashes: Tuple[str, ...] = ()
    n_submitted: int = 0
    n_completed: int = 0
    n_failed: int = 0
    n_quarantined: int = 0
    n_worker_crashes: int = 0
    n_worker_restarts: int = 0
    n_duplicates_dropped: int = 0
    n_records_committed: int = 0
    n_records_recovered: int = 0
    n_records_quarantined: int = 0
    n_replica_applied: int = 0
    n_replica_quarantined: int = 0
    replication_epoch: int = 0
    stream_digest: str = ""
    digest: str = ""

    @property
    def passed(self) -> bool:
        return all(inv.ok for inv in self.invariants)

    def failures(self) -> List[InvariantResult]:
        return [inv for inv in self.invariants if not inv.ok]

    def format(self) -> str:
        """Human-readable chaos summary."""
        lines = [
            f"chaos campaign {self.campaign!r} seed {self.seed}: "
            f"{'PASS' if self.passed else 'FAIL'}",
            f"faults injected   {len(self.injections)} across sites "
            f"{sorted({f.site for f in self.injections})}",
            f"fleet             {self.n_completed}/{self.n_submitted} completed, "
            f"{self.n_failed} failed, {self.n_quarantined} quarantined, "
            f"{self.n_worker_crashes} crashes / {self.n_worker_restarts} restarts, "
            f"{self.n_duplicates_dropped} duplicates dropped",
            f"recovery          {self.n_records_recovered}/{self.n_records_committed} "
            f"records recovered, {self.n_records_quarantined} quarantined",
            f"digest            {self.digest}",
        ]
        if self.stream_digest:
            lines.insert(
                len(lines) - 1, f"stream outcome    {self.stream_digest}"
            )
        if self.n_replica_applied or self.n_replica_quarantined:
            lines.insert(
                len(lines) - 1,
                f"replication       {self.n_replica_applied} records applied "
                f"on the standby, {self.n_replica_quarantined} torn lines "
                f"quarantined, epoch {self.replication_epoch}",
            )
        for state in self.health:
            lines.append(
                f"health            {state.component}: {state.status.upper()}"
                + (f" ({state.reason})" if state.reason else "")
            )
        for inv in self.invariants:
            mark = "ok " if inv.ok else "FAIL"
            lines.append(
                f"invariant [{mark}]   {inv.name}"
                + (f" — {inv.detail}" if inv.detail else "")
            )
        return "\n".join(lines)


def _canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _record_content_hash(record) -> str:
    """Interleaving-independent content hash for one stored record.

    Excludes the sequence number and timestamp on purpose: workers
    commit in nondeterministic order, but *what* each tenant's record
    contains is a pure function of the seed.
    """
    from repro.cloud.api import report_to_dict

    payload = {
        "identifier": record.identifier_key,
        "metadata": [[k, v] for k, v in record.metadata],
        "report": report_to_dict(record.report),
    }
    return hashlib.blake2b(
        _canonical(payload).encode("utf-8"), digest_size=12
    ).hexdigest()


def run_campaign(
    seed: int = 0,
    campaign: str = "smoke",
    observer=NULL_OBSERVER,
    journal_dir: Optional[str] = None,
) -> ChaosReport:
    """Execute one chaos campaign end to end and check its invariants.

    Never raises on an invariant *violation* — the report carries the
    verdicts (``report.passed``) so the CLI and CI can render them —
    but raises :class:`ChaosError` for an unknown campaign name.
    """
    if campaign not in CAMPAIGNS:
        raise ChaosError(
            f"unknown campaign {campaign!r}; available: {sorted(CAMPAIGNS)}"
        )
    spec = CAMPAIGNS[campaign]
    report = ChaosReport(campaign=campaign, seed=int(seed))
    health = HealthRegistry(observer=observer)
    injector = FaultInjector(spec.plan, seed=seed, observer=observer)
    checks: List[InvariantResult] = report.invariants

    # ------------------------------------------------------------------
    # Phase A — degraded sensing, trace corruption, key desync
    # ------------------------------------------------------------------
    server = AnalysisServer(keep_history=False, observer=observer)
    silent_wrong: List[str] = []
    for trial in range(spec.n_sensor_trials):
        label = f"{campaign}#sensor"
        rng = derive_request_rng(seed, label, trial)
        sample = Sample.from_concentrations(
            {get_particle_type("blood_cell"): 400.0 * float(rng.uniform(0.8, 1.2))},
            volume_ul=10.0,
            rng=rng,
        )
        device = MedSenDevice(
            rng=rng,
            fault_model=injector.sensor_fault_model(label, trial),
            observer=observer,
        )
        capture = device.run_capture(sample, spec.trial_duration_s, encrypt=True)
        trace, corruptions = injector.corrupt_trace(capture.trace, label, trial)
        quality = trace_quality(trace.voltages)
        peak_report = server.analyze(trace)
        diagnosis = evaluate_degraded(
            device,
            peak_report,
            pumped_volume_ul=capture.pumped_volume_ul,
            diagnostic=CD4_STAGING,
            observer=observer,
        )
        trial_status = diagnosis.status
        if not quality.ok:
            if trial_status == OK:
                trial_status = DEGRADED
            health.degrade(
                "dsp",
                "+".join(corruptions) if corruptions else "flat-line damage detected",
            )
        if diagnosis.status == DEGRADED:
            health.degrade("sensor", diagnosis.reason)
        elif diagnosis.status == FAILED:
            health.fail("sensor", diagnosis.reason)
        truth = capture.ground_truth.total_arrived
        tolerance = max(5.0, spec.tolerance_fraction * truth)
        within = abs(diagnosis.count - truth) <= tolerance
        if trial_status == OK and not within:
            silent_wrong.append(
                f"trial {trial}: count {diagnosis.count} vs truth {truth} with OK health"
            )
        report.trial_outcomes.append(
            (trial, trial_status, diagnosis.count, truth, list(diagnosis.possible_labels))
        )
    if spec.n_sensor_trials:
        checks.append(
            InvariantResult(
                name="no-silent-wrong-counts",
                ok=not silent_wrong,
                detail="; ".join(silent_wrong),
            )
        )

    # Key-epoch desync and resynchronisation.
    for trial in range(spec.n_desync_trials):
        label = f"{campaign}#desync"
        rng = derive_request_rng(seed, label, trial)
        sample = Sample.from_concentrations(
            {get_particle_type("blood_cell"): 400.0},
            volume_ul=10.0,
            rng=rng,
        )
        device = MedSenDevice(rng=rng, observer=observer)
        capture = device.run_capture(sample, spec.trial_duration_s, encrypt=True)
        peak_report = server.analyze(capture.trace)
        baseline = device.decrypt(peak_report).total_count
        if injector.should_desync(label, trial):
            # The controller re-provisions (a new session starting)
            # while the cloud is still analysing the old capture.
            device.controller.provision(
                spec.trial_duration_s,
                epoch_duration_s=device.config.epoch_duration_s,
            )
        desynced = device.controller.fingerprint() != capture.plan_fingerprint
        if desynced:
            resynced = device.controller.resync(capture.plan_fingerprint)
            if not resynced:
                health.fail("crypto", "key-epoch desync beyond plan history")
                checks.append(
                    InvariantResult(
                        name="desync-resynchronised",
                        ok=False,
                        detail=f"trial {trial}: fingerprint aged out of history",
                    )
                )
                continue
            recovered = device.decrypt(peak_report).total_count
            checks.append(
                InvariantResult(
                    name="desync-resynchronised",
                    ok=recovered == baseline,
                    detail=f"trial {trial}: count {recovered} vs baseline {baseline}",
                )
            )

    # ------------------------------------------------------------------
    # Phase B — fleet chaos with a journaling store
    # ------------------------------------------------------------------
    own_tmp: Optional[tempfile.TemporaryDirectory] = None
    if journal_dir is None:
        own_tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        journal_dir = own_tmp.name
    journal_path = os.path.join(journal_dir, f"chaos-{campaign}-{seed}.journal")
    try:
        journal = RecordJournal(journal_path)
        store = RecordStore(clock=ManualClock(), observer=observer, journal=journal)
        config = FleetConfig(
            seed=seed,
            n_workers=spec.n_workers,
            queue_capacity=max(spec.n_tenants * spec.requests_per_tenant, 8),
            drop_probability=spec.plan.drop_probability,
            timeout_probability=spec.plan.timeout_probability,
            duplicate_probability=spec.plan.duplicate_probability,
            keep_history=False,
        )
        workload = ClinicWorkload(
            n_tenants=spec.n_tenants,
            requests_per_tenant=spec.requests_per_tenant,
            seed=seed,
            duration_s=spec.fleet_duration_s,
        )
        scheduler = FleetScheduler(
            config, observer=observer, store=store, fault_injector=injector
        )
        identifiers = workload.identifiers(scheduler.device_config)
        futures = []
        with scheduler:
            for tenant, identifier in identifiers.items():
                scheduler.register_tenant(tenant, identifier)
            for sequence in range(workload.requests_per_tenant):
                for tenant_index, tenant in enumerate(workload.tenant_ids()):
                    futures.append(
                        scheduler.submit(
                            tenant,
                            workload.blood_sample(tenant_index, sequence),
                            identifiers[tenant],
                            duration_s=workload.duration_s,
                            block=True,
                            timeout=spec.wait_timeout_s,
                        )
                    )
            all_done = all(f.wait(spec.wait_timeout_s) for f in futures)
        report.n_submitted = len(futures)
        report.n_completed = scheduler.completed
        report.n_failed = scheduler.failed
        report.n_quarantined = len(scheduler.dead_letters)
        report.n_worker_crashes = scheduler.worker_crashes
        report.n_worker_restarts = scheduler.worker_restarts
        report.n_duplicates_dropped = scheduler.server.duplicates_dropped
        checks.append(
            InvariantResult(
                name="no-deadlock",
                ok=all_done,
                detail="" if all_done else "a future never resolved",
            )
        )
        checks.append(
            InvariantResult(
                name="full-accounting",
                ok=report.n_completed + report.n_failed == report.n_submitted,
                detail=(
                    f"{report.n_completed} completed + {report.n_failed} failed "
                    f"of {report.n_submitted} submitted"
                ),
            )
        )
        if spec.plan.poison_tenants:
            expected = sum(
                spec.requests_per_tenant
                for tenant in spec.plan.poison_tenants
                if tenant in identifiers
            )
            checks.append(
                InvariantResult(
                    name="poison-quarantined",
                    ok=report.n_quarantined == expected,
                    detail=f"{report.n_quarantined} quarantined, expected {expected}",
                )
            )
        if spec.plan.duplicate_probability > 0:
            checks.append(
                InvariantResult(
                    name="duplicates-deduplicated",
                    ok=report.n_duplicates_dropped > 0,
                    detail=f"{report.n_duplicates_dropped} duplicates dropped",
                )
            )
        if scheduler.worker_crashes:
            health.degrade(
                "scheduler",
                f"{scheduler.worker_crashes} worker crashes "
                f"({report.n_quarantined} requests quarantined)",
            )
        if report.n_duplicates_dropped:
            health.degrade("network", "duplicate deliveries observed and dropped")
            injector.record_external(
                "network",
                "fleet",
                0,
                f"{report.n_duplicates_dropped} duplicate deliveries",
            )
        report.record_hashes = tuple(
            sorted(
                _record_content_hash(record)
                for identifier in store.identifiers()
                for record in store.fetch(identifier)
            )
        )
        report.n_records_committed = store.n_records
        journal.close()

        # --------------------------------------------------------------
        # Phase C — crash the process, damage the journal, recover
        # --------------------------------------------------------------
        committed = sorted(
            (
                record
                for identifier in store.identifiers()
                for record in store.fetch(identifier)
            ),
            key=lambda record: record.sequence_number,
        )
        corrupted_line = injector.corrupt_journal_file(journal_path)
        recovered_store, replay = recover_store(journal_path, observer=observer)
        report.n_records_recovered = replay.n_recovered
        report.n_records_quarantined = replay.n_quarantined
        if corrupted_line is not None:
            health.degrade(
                "storage", f"journal line {corrupted_line} corrupt; quarantined"
            )
        expected_payloads = [
            record.payload()
            for index, record in enumerate(committed, start=1)
            if index != corrupted_line
        ]
        recovered_payloads = [record.payload() for record in replay.records]
        checks.append(
            InvariantResult(
                name="recovery-bit-identical",
                ok=recovered_payloads == expected_payloads,
                detail=(
                    f"{len(recovered_payloads)} recovered payloads vs "
                    f"{len(expected_payloads)} expected"
                ),
            )
        )
        expected_quarantined = 0 if corrupted_line is None else 1
        checks.append(
            InvariantResult(
                name="corruption-quarantined",
                ok=replay.n_quarantined == expected_quarantined,
                detail=(
                    f"{replay.n_quarantined} quarantined, "
                    f"expected {expected_quarantined}"
                ),
            )
        )
        # The recovered store must serve the surviving records verbatim.
        recovered_ok = all(
            record.verify()
            for identifier in recovered_store.identifiers()
            for record in recovered_store.fetch(identifier)
        )
        checks.append(
            InvariantResult(
                name="recovered-store-verifies",
                ok=recovered_ok,
                detail="all recovered records pass their checksums"
                if recovered_ok
                else "a recovered record failed verification",
            )
        )
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()

    # ------------------------------------------------------------------
    # Phase D — streaming lane: disconnect/resume + congestion drill
    # ------------------------------------------------------------------
    if spec.plan.any_stream_faults:
        from repro.dsp.peakdetect import PeakDetector
        from repro.stream.campaign import synthetic_stream_trace
        from repro.stream.session import (
            DeviceStreamer,
            StreamGateway,
            StreamSessionConfig,
            report_digest,
        )

        stream_label = f"{campaign}#stream"
        stream_rng = derive_request_rng(seed, stream_label, 0)
        stream_fs = 1000.0
        stream_trace = synthetic_stream_trace(
            stream_rng, n_samples=3000, sampling_rate_hz=stream_fs
        )
        stream_config = StreamSessionConfig(
            chunk_samples=512, min_chunk_samples=64, max_chunk_samples=512
        )
        stream_secret = b"chaos-stream-secret"
        gateway = StreamGateway(
            stream_secret, config=stream_config, observer=observer
        )
        streamer = DeviceStreamer(
            stream_trace,
            stream_fs,
            "clinic-stream",
            stream_secret,
            config=stream_config,
            observer=observer,
            rng=stream_rng,
        )
        outcome = streamer.run(gateway, injector=injector, label=stream_label)
        report.stream_digest = outcome.digest
        expected = report_digest(
            PeakDetector().detect(stream_trace, stream_fs)
        )
        identical = outcome.digest == expected
        replayed_nothing = gateway.chunks_analyzed == streamer.chunks_sent
        checks.append(
            InvariantResult(
                name="stream-resume-bit-identical",
                ok=identical and replayed_nothing,
                detail=(
                    f"{streamer.disconnects} disconnects, "
                    f"{streamer.retransmits} retransmits, "
                    f"{streamer.duplicate_acks} duplicate acks; "
                    f"{gateway.chunks_analyzed} chunks analysed of "
                    f"{streamer.chunks_sent} sent"
                    + ("" if identical else "; DIGEST MISMATCH")
                ),
            )
        )
        if spec.plan.congestion_rate:
            checks.append(
                InvariantResult(
                    name="stream-congestion-degrades",
                    ok=outcome.degraded and streamer.controller.floored,
                    detail=outcome.degraded_reason
                    or "congested stream never hit the floor",
                )
            )
            if outcome.degraded:
                health.degrade("network", outcome.degraded_reason)

    # ------------------------------------------------------------------
    # Phase E — replicated partition: shipped-journal convergence,
    # lease-fenced promotion, anti-entropy rejoin (all in-process; the
    # multiprocess SIGKILL drill is ``python -m repro failover``)
    # ------------------------------------------------------------------
    if spec.plan.any_replication_faults:
        from repro.fleet.replication import LeaseTable

        replication_label = f"{campaign}#replication"
        partition = "part-00"
        shipped = [encode_entry(record) for record in committed]
        torn = bool(shipped) and injector.should_partition(replication_label, 0)
        if torn:
            # The pair partitions mid-ship: the last line lands torn,
            # exactly like a journal tail cut off mid-record.
            shipped[-1] = shipped[-1][: max(len(shipped[-1]) // 2, 1)]
        standby = RecordStore(clock=ManualClock(), observer=observer)
        torn_quarantined = 0
        for line in shipped:
            try:
                standby._restore(decode_entry(line))
            except ValueError:
                torn_quarantined += 1
        report.n_replica_applied = standby.n_records
        report.n_replica_quarantined = torn_quarantined
        expected_hashes = sorted(
            _record_content_hash(record)
            for record in (committed[:-1] if torn else committed)
        )
        standby_hashes = sorted(
            _record_content_hash(record)
            for identifier in standby.identifiers()
            for record in standby.fetch(identifier)
        )
        checks.append(
            InvariantResult(
                name="replication-standby-converges",
                ok=standby_hashes == expected_hashes
                and torn_quarantined == (1 if torn else 0),
                detail=(
                    f"{standby.n_records} applied / {torn_quarantined} "
                    f"quarantined of {len(shipped)} shipped lines"
                ),
            )
        )
        if torn:
            health.degrade(
                "replication", "torn shipped line quarantined on the standby"
            )

        lease_clock = ManualClock()
        lease_table = LeaseTable(
            default_ttl_s=0.5, clock=lease_clock, observer=observer
        )
        first = lease_table.grant(partition, f"{partition}-a")
        if injector.should_expire_lease(replication_label, 0):
            lease_clock.advance(first.ttl_s)
            lapsed = lease_table.expired(partition)
            promoted = lease_table.grant(partition, f"{partition}-b")
            report.replication_epoch = promoted.epoch
            checks.append(
                InvariantResult(
                    name="replication-stale-epoch-fenced",
                    ok=(
                        lapsed
                        and promoted.epoch == first.epoch + 1
                        and lease_table.is_stale(partition, first.epoch)
                        and not lease_table.is_stale(partition, promoted.epoch)
                    ),
                    detail=(
                        f"epoch {first.epoch} fenced after promotion to "
                        f"epoch {promoted.epoch}"
                    ),
                )
            )
            health.degrade(
                "replication",
                "primary lease lapsed; standby promoted at the next epoch",
            )
        if injector.should_crash_primary(replication_label, 0):
            # Anti-entropy: the crashed ex-primary rejoins from the
            # shipped history alone and must match the standby exactly.
            rejoined = RecordStore(clock=ManualClock(), observer=observer)
            for line in shipped:
                try:
                    rejoined._restore(decode_entry(line))
                except ValueError:
                    pass
            rejoined_hashes = sorted(
                _record_content_hash(record)
                for identifier in rejoined.identifiers()
                for record in rejoined.fetch(identifier)
            )
            checks.append(
                InvariantResult(
                    name="replication-rejoin-converges",
                    ok=rejoined_hashes == standby_hashes,
                    detail=(
                        f"{rejoined.n_records} rejoined records vs "
                        f"{standby.n_records} on the standby"
                    ),
                )
            )

    # ------------------------------------------------------------------
    # Final report: explicit health, deterministic digest
    # ------------------------------------------------------------------
    report.health = health.snapshot()
    report.injections = injector.injections
    alarmed = health.overall != OK
    any_injected = bool(report.injections)
    if any_injected:
        checks.append(
            InvariantResult(
                name="faults-surfaced-in-health",
                ok=alarmed,
                detail=f"overall health {health.overall!r} "
                f"after {len(report.injections)} injections",
            )
        )
    report.digest = hashlib.blake2b(
        _canonical(
            {
                "campaign": campaign,
                "seed": int(seed),
                "injections": [
                    [f.site, f.label, f.index, f.detail] for f in report.injections
                ],
                "health": [
                    [s.component, s.status, s.reason] for s in report.health
                ],
                "trials": [
                    [t[0], t[1], t[2], t[3], t[4]] for t in report.trial_outcomes
                ],
                "records": list(report.record_hashes),
                "recovered": [
                    report.n_records_recovered,
                    report.n_records_quarantined,
                ],
                "stream": report.stream_digest,
                "replication": [
                    report.n_replica_applied,
                    report.n_replica_quarantined,
                    report.replication_epoch,
                ],
            }
        ).encode("utf-8"),
        digest_size=16,
    ).hexdigest()
    return report
