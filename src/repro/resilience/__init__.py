"""Fault injection, crash recovery, and degraded-mode operation.

A point-of-care diagnostic device fails in the field — electrodes die,
ADCs drop samples, radios duplicate packets, serving processes crash —
and the paper's security argument only holds if failure is *loud*:
every run must end either correct-within-tolerance or with an explicit
health alarm.  This package provides the machinery:

* :mod:`~repro.resilience.health` — per-component OK/DEGRADED/FAILED
  registry wired into observability;
* :mod:`~repro.resilience.faults` — one seeded :class:`FaultPlan` /
  :class:`FaultInjector` composing failures at every layer, plus the
  DSP layer's own :func:`trace_quality` damage detector;
* :mod:`~repro.resilience.journal` — append-only checksummed record
  journal with bit-identical crash replay and corruption quarantine;
* :mod:`~repro.resilience.degraded` — self-test-driven electrode
  masking and widened-confidence diagnosis;
* :mod:`~repro.resilience.chaos` — the seeded chaos campaign runner
  behind ``python -m repro chaos``.
"""

from repro.resilience.chaos import (
    CAMPAIGNS,
    Campaign,
    ChaosError,
    ChaosReport,
    InvariantResult,
    run_campaign,
)
from repro.resilience.degraded import (
    DegradedDiagnosis,
    MaskingPolicy,
    evaluate_degraded,
    masking_policy,
    widened_fraction,
)
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    InjectedFault,
    TraceQuality,
    trace_quality,
)
from repro.resilience.health import (
    DEGRADED,
    FAILED,
    OK,
    ComponentHealth,
    HealthRegistry,
)
from repro.resilience.journal import (
    QuarantinedEntry,
    RecordJournal,
    ReplayResult,
    recover_store,
    replay_journal,
)

__all__ = [
    "CAMPAIGNS",
    "Campaign",
    "ChaosError",
    "ChaosReport",
    "ComponentHealth",
    "DEGRADED",
    "DegradedDiagnosis",
    "FAILED",
    "FaultInjector",
    "FaultPlan",
    "HealthRegistry",
    "InjectedFault",
    "InvariantResult",
    "MaskingPolicy",
    "OK",
    "QuarantinedEntry",
    "RecordJournal",
    "ReplayResult",
    "TraceQuality",
    "evaluate_degraded",
    "masking_policy",
    "recover_store",
    "replay_journal",
    "run_campaign",
    "trace_quality",
    "widened_fraction",
]
