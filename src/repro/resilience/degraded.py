"""Degraded-mode analysis: keep diagnosing on a partially-dead array.

A deployed dongle with a broken electrode should not simply go dark —
the paper's own prototype shipped with a flawed ninth electrode
(§VII-A) and kept producing usable data.  This module turns a
:func:`~repro.hardware.faults.self_test` verdict into a *masking
policy* and a widened-confidence diagnosis:

* **dead** electrodes are masked out of the decryption template: their
  dips are truly absent, so decrypting against the full schedule would
  under-match every particle signature.  The per-epoch multiplication
  factor ``m(E)`` re-derives from the surviving electrodes.
* **weak** electrodes stay *in* the template — their attenuated dips
  are still detected, and masking them would leave real peaks
  unassigned to anchor spurious groups — but they widen the confidence
  interval instead.
* **stuck-on** electrodes (or an all-dead array) are unrecoverable:
  the report is :data:`~repro.resilience.health.FAILED`, never a
  silently wrong count.

The result is a :class:`DegradedDiagnosis` carrying the point estimate,
the widened concentration interval, and *every* clinical band that
interval touches — an honest "moderate-or-severe" instead of a falsely
confident single label.
"""

from dataclasses import dataclass
from typing import Optional, Tuple

from repro._util.errors import ConfigurationError
from repro.core.diagnosis import ThresholdDiagnostic
from repro.dsp.peakdetect import PeakReport
from repro.hardware.faults import SelfTestReport
from repro.obs import NULL_OBSERVER
from repro.resilience.health import DEGRADED, FAILED, OK

#: Confidence-interval widening weights (fractions of the estimate).
BASE_WIDENING = 0.10
DEAD_DIP_WEIGHT = 0.50
WEAK_DIP_WEIGHT = 0.25


@dataclass(frozen=True)
class MaskingPolicy:
    """What the self-test verdict means for decryption."""

    masked_electrodes: Tuple[int, ...]
    weak_electrodes: Tuple[int, ...]
    refuse: bool
    reason: str

    @property
    def is_clean(self) -> bool:
        return not (self.masked_electrodes or self.weak_electrodes or self.refuse)


def masking_policy(report: SelfTestReport) -> MaskingPolicy:
    """Derive the degraded-mode policy from a self-test report."""
    stuck = report.electrodes_with_verdict("stuck")
    if not report.operational:
        reason = (
            f"stuck-on contamination (electrodes {stuck})"
            if stuck
            else "all electrodes dead"
        )
        return MaskingPolicy(
            masked_electrodes=(), weak_electrodes=(), refuse=True, reason=reason
        )
    dead = tuple(report.electrodes_with_verdict("dead"))
    weak = tuple(report.electrodes_with_verdict("weak"))
    reason = ""
    if dead or weak:
        reason = f"dead={list(dead)} weak={list(weak)}"
    return MaskingPolicy(
        masked_electrodes=dead, weak_electrodes=weak, refuse=False, reason=reason
    )


def widened_fraction(array, masked: Tuple[int, ...], weak: Tuple[int, ...]) -> float:
    """Half-width of the degraded confidence interval, as a fraction.

    Grows with the *dip share* the faults touch: masking a double-dip
    electrode forfeits more evidence than masking the single-dip lead,
    so the interval widens by the fraction of expected dips lost (dead,
    full weight) or unreliable (weak, quarter weight) on top of a base
    uncertainty floor.
    """
    total_dips = sum(array.dips_per_particle(e) for e in array.electrode_numbers)
    dead_dips = sum(array.dips_per_particle(e) for e in masked)
    weak_dips = sum(array.dips_per_particle(e) for e in weak)
    return (
        BASE_WIDENING
        + DEAD_DIP_WEIGHT * (dead_dips / total_dips)
        + WEAK_DIP_WEIGHT * (weak_dips / total_dips)
    )


@dataclass(frozen=True)
class DegradedDiagnosis:
    """A diagnosis produced under acknowledged hardware damage.

    ``status`` is never silently OK when faults were masked: a healthy
    run is OK with a single possible label, a masked run is DEGRADED
    with a widened interval, and an unrecoverable array is FAILED with
    no labels at all (the explicit alarm).
    """

    status: str
    marker_name: str
    count: int
    concentration_per_ul: float
    interval_per_ul: Tuple[float, float]
    possible_labels: Tuple[str, ...]
    masked_electrodes: Tuple[int, ...]
    weak_electrodes: Tuple[int, ...]
    reason: str = ""

    @property
    def is_conclusive(self) -> bool:
        """Whether the widened interval still pins a single band."""
        return len(self.possible_labels) == 1

    def format(self) -> str:
        """One-paragraph human summary."""
        if self.status == FAILED:
            return f"FAILED: {self.reason}"
        low, high = self.interval_per_ul
        labels = " or ".join(self.possible_labels)
        line = (
            f"{self.status.upper()}: {self.marker_name} ≈ "
            f"{self.concentration_per_ul:.1f}/µL "
            f"[{low:.1f}, {high:.1f}] → {labels}"
        )
        if self.reason:
            line += f" ({self.reason})"
        return line


def evaluate_degraded(
    device,
    report: PeakReport,
    pumped_volume_ul: float,
    diagnostic: ThresholdDiagnostic,
    self_report: Optional[SelfTestReport] = None,
    delivery_efficiency: float = 1.0,
    observer=NULL_OBSERVER,
) -> DegradedDiagnosis:
    """Decrypt + diagnose with the device's faults acknowledged.

    Runs the masking policy off the device's self-test, decrypts with
    dead electrodes masked, converts the count to a concentration and
    maps the *widened interval* onto the diagnostic's bands.  The
    invariant callers rely on: the result is OK only when the self-test
    was clean — any wrong-count risk surfaces as DEGRADED or FAILED.
    """
    if pumped_volume_ul <= 0:
        raise ConfigurationError("pumped_volume_ul must be > 0")
    self_report = self_report if self_report is not None else device.self_test()
    policy = masking_policy(self_report)
    if policy.refuse:
        observer.incr("resilience.refusals")
        return DegradedDiagnosis(
            status=FAILED,
            marker_name=diagnostic.marker_name,
            count=0,
            concentration_per_ul=0.0,
            interval_per_ul=(0.0, 0.0),
            possible_labels=(),
            masked_electrodes=(),
            weak_electrodes=(),
            reason=policy.reason,
        )
    try:
        if policy.masked_electrodes:
            decryption = device.decrypt_degraded(report, policy.masked_electrodes)
        else:
            decryption = device.decrypt(report)
    except ConfigurationError as exc:
        # An epoch lost every live electrode: nothing left to decode.
        observer.incr("resilience.refusals")
        return DegradedDiagnosis(
            status=FAILED,
            marker_name=diagnostic.marker_name,
            count=0,
            concentration_per_ul=0.0,
            interval_per_ul=(0.0, 0.0),
            possible_labels=(),
            masked_electrodes=policy.masked_electrodes,
            weak_electrodes=policy.weak_electrodes,
            reason=str(exc),
        )
    count = decryption.total_count
    concentration = count / pumped_volume_ul / delivery_efficiency
    if policy.is_clean:
        outcome = diagnostic.evaluate(concentration)
        return DegradedDiagnosis(
            status=OK,
            marker_name=diagnostic.marker_name,
            count=count,
            concentration_per_ul=concentration,
            interval_per_ul=(concentration, concentration),
            possible_labels=(outcome.label,),
            masked_electrodes=(),
            weak_electrodes=(),
        )
    width = widened_fraction(
        device.array, policy.masked_electrodes, policy.weak_electrodes
    )
    low = max(concentration * (1.0 - width), 0.0)
    high = concentration * (1.0 + width)
    labels = tuple(
        band.label
        for band in diagnostic.bands
        if band.lower_per_ul <= high and low < band.upper_per_ul
    )
    observer.incr("resilience.degraded_diagnoses")
    return DegradedDiagnosis(
        status=DEGRADED,
        marker_name=diagnostic.marker_name,
        count=count,
        concentration_per_ul=concentration,
        interval_per_ul=(low, high),
        possible_labels=labels,
        masked_electrodes=policy.masked_electrodes,
        weak_electrodes=policy.weak_electrodes,
        reason=policy.reason,
    )
