"""MedSen reproduction: secure point-of-care diagnostics.

A from-scratch Python reproduction of *"Secure Point-of-Care Medical
Diagnostics via Trusted Sensing and Cyto-Coded Passwords"* (Le et al.,
DSN 2016): an impedance-cytometry point-of-care sensor whose analog
output is encrypted *by sensor configuration* (electrode selection,
per-electrode gains, flow speed), and whose users authenticate by
mixing secret bead cocktails — cyto-coded passwords — into their blood
sample.

Quickstart
----------
>>> from repro import MedSenSession, CytoIdentifier
>>> from repro.particles import Sample, BLOOD_CELL
>>> session = MedSenSession(rng=0)
>>> alice = CytoIdentifier.random(session.config.alphabet, rng=1)
>>> session.authenticator.register("alice", alice)
>>> blood = Sample.from_concentrations({BLOOD_CELL: 5000}, volume_ul=10)
>>> result = session.run_diagnostic(blood, alice, duration_s=60.0, rng=2)
>>> result.auth.accepted, result.diagnosis.label  # doctest: +SKIP

Package map
-----------
``repro.core``          device assembly, protocol, diagnosis
``repro.crypto``        the analog cipher (keys, encrypt, decrypt)
``repro.auth``          cyto-coded passwords and authentication
``repro.hardware``      electrodes, multiplexer, controller, front-end
``repro.physics``       circuit model, pulses, noise, lock-in
``repro.microfluidics`` channel, flow, pump, transport
``repro.particles``     blood cells and password beads
``repro.dsp``           detrending, peak detection, features
``repro.cloud``         untrusted analysis server, storage, network
``repro.mobile``        smartphone relay, USB link, perf models
``repro.attacks``       eavesdropper baselines
``repro.analysis``      calibration fits, metrics, entropy
``repro.obs``           tracing, metrics registry, audit event log
``repro.guard``         trust-boundary hardening: admission, freshness,
                        envelopes, lockout, protocol fuzzing
"""

from repro._util.errors import (
    AdmissionError,
    AuthenticationError,
    ConfigurationError,
    DecryptionError,
    EnvelopeError,
    IntegrityError,
    LockoutError,
    MalformedPayloadError,
    MedSenError,
    OversizedPayloadError,
    ReplayError,
    StaleEpochError,
    TrustBoundaryError,
    ValidationError,
)
from repro.auth import (
    BeadAlphabet,
    CytoIdentifier,
    ParticleClassifier,
    ServerAuthenticator,
)
from repro.core import (
    CD4_STAGING,
    CaptureResult,
    MedSenConfig,
    MedSenDevice,
    MedSenSession,
    SessionResult,
    ThresholdDiagnostic,
)
from repro.particles import BEAD_3P58, BEAD_7P8, BLOOD_CELL, Sample

__version__ = "1.0.0"

__all__ = [
    "AdmissionError",
    "AuthenticationError",
    "ConfigurationError",
    "DecryptionError",
    "EnvelopeError",
    "IntegrityError",
    "LockoutError",
    "MalformedPayloadError",
    "MedSenError",
    "OversizedPayloadError",
    "ReplayError",
    "StaleEpochError",
    "TrustBoundaryError",
    "ValidationError",
    "BeadAlphabet",
    "CytoIdentifier",
    "ParticleClassifier",
    "ServerAuthenticator",
    "CD4_STAGING",
    "CaptureResult",
    "MedSenConfig",
    "MedSenDevice",
    "MedSenSession",
    "SessionResult",
    "ThresholdDiagnostic",
    "BEAD_3P58",
    "BEAD_7P8",
    "BLOOD_CELL",
    "Sample",
    "__version__",
]
