"""Pipette manufacturing: physical carriers of cyto-coded identifiers.

Paper §V: an identifier "can be associated either to a single
diagnostic (different identifiers per pipette), several diagnostics
(multiple pipettes carrying the same identifier) or the entire set of
diagnostics from a specific user (all pipettes from a user) depending
on the diagnostic privacy requirements", and §VI-B: "A set of
miniaturized micro-pipettes purchased by the same user would embed the
same identifier."

:class:`PipetteBatch` models one manufactured batch: N single-use
pipettes whose realised bead contents fluctuate around the identifier's
nominal concentrations with a manufacturing tolerance.  Privacy policy
is expressed through batch granularity (per-test, per-course, or
per-user batches).
"""

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro._util.errors import ConfigurationError, ValidationError
from repro._util.rng import RngLike, ensure_rng
from repro._util.validation import check_in_range, check_positive
from repro.auth.identifier import CytoIdentifier
from repro.particles.sample import Sample


class LinkagePolicy(enum.Enum):
    """How many diagnostics one identifier links together (§V)."""

    PER_TEST = "per_test"  # a fresh identifier per pipette
    PER_COURSE = "per_course"  # one identifier per treatment course
    PER_USER = "per_user"  # one identifier for everything


@dataclass
class PipetteBatch:
    """A manufactured box of password pipettes.

    Parameters
    ----------
    identifier:
        The cyto-coded identifier embedded in every pipette.
    n_pipettes:
        Pipettes in the box.
    pipette_volume_ul:
        Bead suspension volume per pipette.
    manufacturing_cv:
        Relative lot-to-lot concentration tolerance of the filling
        process (adds to Poisson fluctuation).
    """

    identifier: CytoIdentifier
    n_pipettes: int = 25
    pipette_volume_ul: float = 2.0
    manufacturing_cv: float = 0.03
    policy: LinkagePolicy = LinkagePolicy.PER_USER

    def __post_init__(self) -> None:
        if self.n_pipettes < 1:
            raise ConfigurationError("n_pipettes must be >= 1")
        check_positive("pipette_volume_ul", self.pipette_volume_ul)
        check_in_range("manufacturing_cv", self.manufacturing_cv, 0.0, 0.5)
        self._remaining = self.n_pipettes

    # ------------------------------------------------------------------
    @property
    def remaining(self) -> int:
        """Unused pipettes left in the box."""
        return self._remaining

    def draw_pipette(
        self,
        final_volume_ul: Optional[float] = None,
        rng: RngLike = None,
    ) -> Sample:
        """Take one pipette from the box (single use).

        The realised concentrations include manufacturing tolerance on
        top of the aliquot's Poisson statistics.  Raises when the box
        is empty — the patient must order a new batch.
        """
        if self._remaining <= 0:
            raise ConfigurationError("pipette box is empty; order a new batch")
        generator = ensure_rng(rng)
        self._remaining -= 1
        nominal = self.identifier.to_sample(
            self.pipette_volume_ul,
            final_volume_ul=final_volume_ul,
            rng=generator,
            poisson=True,
        )
        if self.manufacturing_cv == 0.0:
            return nominal
        scale = max(1.0 + generator.normal(0.0, self.manufacturing_cv), 0.0)
        counts = {
            ptype: max(int(round(count * scale)), 0)
            for ptype, count in nominal.counts.items()
        }
        return Sample(volume_liters=nominal.volume_liters, counts=counts)

    # ------------------------------------------------------------------
    def linkable_records(self, n_tests: int) -> int:
        """How many of ``n_tests`` become linkable under the policy.

        PER_TEST: nothing links (1 record per identifier);
        PER_COURSE / PER_USER: every test in the batch's scope links.
        """
        if n_tests < 0:
            raise ValidationError("n_tests must be >= 0")
        if self.policy is LinkagePolicy.PER_TEST:
            return min(n_tests, 1)
        return n_tests


def provision_batches(
    identifier: CytoIdentifier,
    n_tests: int,
    policy: LinkagePolicy,
    tests_per_course: int = 5,
    rng: RngLike = None,
) -> List[PipetteBatch]:
    """Manufacture batches implementing a linkage policy for a patient.

    PER_TEST mints a fresh random identifier per pipette (maximum
    unlinkability); PER_COURSE one identifier per ``tests_per_course``
    block; PER_USER a single batch with the given identifier.
    """
    if n_tests < 1:
        raise ValidationError("n_tests must be >= 1")
    if tests_per_course < 1:
        raise ValidationError("tests_per_course must be >= 1")
    generator = ensure_rng(rng)
    if policy is LinkagePolicy.PER_USER:
        return [PipetteBatch(identifier, n_pipettes=n_tests, policy=policy)]
    if policy is LinkagePolicy.PER_COURSE:
        batches = []
        remaining = n_tests
        while remaining > 0:
            size = min(tests_per_course, remaining)
            course_identifier = CytoIdentifier.random(identifier.alphabet, rng=generator)
            batches.append(
                PipetteBatch(course_identifier, n_pipettes=size, policy=policy)
            )
            remaining -= size
        return batches
    # PER_TEST
    return [
        PipetteBatch(
            CytoIdentifier.random(identifier.alphabet, rng=generator),
            n_pipettes=1,
            policy=policy,
        )
        for _ in range(n_tests)
    ]
