"""The cyto-coded password alphabet (paper §V, §VII-C).

"In conceptual comparison to traditional password paradigms, the number
of password characters would correspond to the number of bead types
involved, and specific character value within the password would
correspond to the number (concentration) of beads of a particular
type."

A :class:`BeadAlphabet` is therefore a list of synthetic bead types,
each with an ordered tuple of admissible concentration levels
(particles/µL).  §VII-C observes that *low* bead concentrations have
less variance and better resolution, so the default levels are low and
geometrically spaced — counting noise is Poisson, so geometric spacing
keeps every adjacent pair of levels separated by a comparable number of
standard deviations.
"""

from dataclasses import dataclass
from typing import Tuple

from repro._util.errors import ConfigurationError
from repro.particles.library import BEAD_3P58, BEAD_7P8
from repro.particles.types import ParticleType


@dataclass(frozen=True)
class BeadAlphabet:
    """Bead types and their admissible concentration levels.

    Parameters
    ----------
    bead_types:
        The synthetic bead species available as password characters.
    levels_per_ul:
        Concentration levels, shared by all types, in particles/µL;
        strictly increasing, may start at 0 ("character absent").
        The defaults stay low (§VII-C) *and* keep the worst-case total
        bead load inside the sensor's coincidence envelope: beyond
        ~2 particles/s the multi-electrode dip trains of different
        particles overlap and counting accuracy degrades.
    """

    bead_types: Tuple[ParticleType, ...] = (BEAD_3P58, BEAD_7P8)
    levels_per_ul: Tuple[float, ...] = (0.0, 250.0, 550.0, 1200.0)

    def __post_init__(self) -> None:
        types = tuple(self.bead_types)
        if not types:
            raise ConfigurationError("alphabet requires at least one bead type")
        names = [t.name for t in types]
        if len(set(names)) != len(names):
            raise ConfigurationError("bead types must be distinct")
        for bead in types:
            if not bead.is_synthetic:
                raise ConfigurationError(
                    f"{bead.name} is not synthetic; passwords use synthetic beads only"
                )
        levels = tuple(float(level) for level in self.levels_per_ul)
        if len(levels) < 2:
            raise ConfigurationError("alphabet requires at least two levels")
        if any(b <= a for a, b in zip(levels, levels[1:])):
            raise ConfigurationError("levels must be strictly increasing")
        if levels[0] < 0:
            raise ConfigurationError("levels must be non-negative")
        object.__setattr__(self, "bead_types", types)
        object.__setattr__(self, "levels_per_ul", levels)

    # ------------------------------------------------------------------
    @property
    def n_characters(self) -> int:
        """Password length: the number of bead types."""
        return len(self.bead_types)

    @property
    def n_levels(self) -> int:
        """Character-value count: levels per bead type."""
        return len(self.levels_per_ul)

    def concentration_for_level(self, level: int) -> float:
        """Concentration (particles/µL) of a level index."""
        if not 0 <= level < self.n_levels:
            raise ConfigurationError(f"level {level} out of range 0..{self.n_levels - 1}")
        return self.levels_per_ul[level]

    def nearest_level(self, concentration_per_ul: float) -> int:
        """Level whose concentration best explains a measurement.

        Comparison happens in sqrt space: bead counting is Poisson, so
        sqrt is the variance-stabilising transform and the decision
        boundaries sit a constant number of standard deviations from
        each level.
        """
        if concentration_per_ul < 0:
            concentration_per_ul = 0.0
        import math

        observed = math.sqrt(concentration_per_ul)
        best_level, best_error = 0, float("inf")
        for level, reference in enumerate(self.levels_per_ul):
            error = abs(observed - math.sqrt(reference))
            if error < best_error:
                best_level, best_error = level, error
        return best_level

    def bead_type_named(self, name: str) -> ParticleType:
        """Look up one of the alphabet's bead types by name."""
        for bead in self.bead_types:
            if bead.name == name:
                return bead
        raise ConfigurationError(f"bead type {name!r} is not in this alphabet")


#: The prototype's alphabet: the paper's two fabricated bead sizes.
DEFAULT_ALPHABET = BeadAlphabet()
