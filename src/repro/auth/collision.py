"""Password-space and collision analysis (paper §V / §VII-C).

"Section VI and Section VII describe how to chose the bead types and
concentrations in order to generate a dictionary of unique identifiers
with limited risk of collisions of passwords by different users."

Bead counting is Poisson: a user whose identifier encodes level ``a``
for some bead type will be *measured* at a fluctuating count, and the
quantiser may land on the neighbouring level ``b``.  These helpers
compute that confusion probability exactly (Poisson tail masses over
the sqrt-space decision boundaries) so alphabets can be engineered for
a target error rate — and they quantify why §VII-C prefers *low*
concentrations: relative Poisson noise shrinks as 1/sqrt(N), so for a
fixed number of distinguishable levels, low geometric levels give more
levels per usable range.
"""

import math
from typing import Tuple

from scipy import stats

from repro._util.errors import ValidationError
from repro._util.validation import check_in_range, check_positive
from repro.auth.alphabet import BeadAlphabet
from repro.auth.identifier import CytoIdentifier


def password_space_size(alphabet: BeadAlphabet) -> int:
    """Number of valid identifiers: ``L^T - (all-absent combinations)``.

    Only the single all-zero-concentration combination is invalid (an
    identifier must contain at least one bead), and only when level 0
    encodes concentration zero.
    """
    total = alphabet.n_levels**alphabet.n_characters
    if alphabet.concentration_for_level(0) == 0.0:
        total -= 1
    return total


def password_space_entropy_bits(alphabet: BeadAlphabet) -> float:
    """log2 of the password-space size."""
    return math.log2(password_space_size(alphabet))


def _expected_count(
    alphabet: BeadAlphabet,
    level: int,
    sampled_volume_ul: float,
    delivery_efficiency: float,
) -> float:
    concentration = alphabet.concentration_for_level(level)
    return concentration * sampled_volume_ul * delivery_efficiency


def level_confusion_probability(
    alphabet: BeadAlphabet,
    true_level: int,
    sampled_volume_ul: float,
    delivery_efficiency: float = 0.92,
) -> float:
    """Probability a bead type at ``true_level`` is quantised elsewhere.

    The measured count is Poisson with the loss-corrected expectation;
    the quantiser picks the nearest level in sqrt space, so the correct
    decision region is an interval of counts whose Poisson mass we
    evaluate exactly.
    """
    check_positive("sampled_volume_ul", sampled_volume_ul)
    check_in_range("delivery_efficiency", delivery_efficiency, 0.0, 1.0, low_inclusive=False)
    if not 0 <= true_level < alphabet.n_levels:
        raise ValidationError(f"true_level {true_level} out of range")

    expected = _expected_count(alphabet, true_level, sampled_volume_ul, delivery_efficiency)
    # Decision boundaries in *count* units.  The quantiser compares
    # sqrt(concentration_measured) to sqrt(level concentrations); since
    # concentration = count / (volume * efficiency) with positive scale,
    # boundaries map monotonically to counts.
    scale = sampled_volume_ul * delivery_efficiency

    def boundary(level_low: int, level_high: int) -> float:
        """Count-space decision boundary between two adjacent levels."""
        c_low = alphabet.concentration_for_level(level_low)
        c_high = alphabet.concentration_for_level(level_high)
        sqrt_mid = 0.5 * (math.sqrt(c_low) + math.sqrt(c_high))
        return (sqrt_mid**2) * scale

    lower = boundary(true_level - 1, true_level) if true_level > 0 else -math.inf
    upper = (
        boundary(true_level, true_level + 1)
        if true_level < alphabet.n_levels - 1
        else math.inf
    )

    if expected == 0.0:
        # Deterministic zero count: confused only if 0 falls outside
        # the decision region (cannot happen when level 0 is zero).
        in_region = (lower < 0.0) and (0.0 <= upper)
        return 0.0 if in_region else 1.0

    distribution = stats.poisson(expected)
    mass_below = distribution.cdf(math.floor(lower)) if lower > -math.inf else 0.0
    mass_at_or_below_upper = (
        distribution.cdf(math.floor(upper)) if upper < math.inf else 1.0
    )
    correct = mass_at_or_below_upper - mass_below
    return float(min(max(1.0 - correct, 0.0), 1.0))


def identifier_error_probability(
    identifier: CytoIdentifier,
    sampled_volume_ul: float,
    delivery_efficiency: float = 0.92,
) -> float:
    """Probability the identifier is recovered with >= 1 wrong character."""
    correct = 1.0
    for level in identifier.levels:
        confusion = level_confusion_probability(
            identifier.alphabet, level, sampled_volume_ul, delivery_efficiency
        )
        correct *= 1.0 - confusion
    return 1.0 - correct


def collision_probability(
    identifier_a: CytoIdentifier,
    identifier_b: CytoIdentifier,
    sampled_volume_ul: float,
    delivery_efficiency: float = 0.92,
) -> float:
    """Probability a sample from user A is *recovered as* identifier B.

    Upper-bounds per-character: characters where A and B agree must be
    recovered correctly; characters where they differ must each be
    confused into exactly B's level, which we bound by the total
    confusion probability of A's level.
    """
    if identifier_a.alphabet is not identifier_b.alphabet and (
        identifier_a.alphabet.levels_per_ul != identifier_b.alphabet.levels_per_ul
    ):
        raise ValidationError("identifiers must share an alphabet")
    probability = 1.0
    for level_a, level_b in zip(identifier_a.levels, identifier_b.levels):
        confusion = level_confusion_probability(
            identifier_a.alphabet, level_a, sampled_volume_ul, delivery_efficiency
        )
        probability *= (1.0 - confusion) if level_a == level_b else confusion
    return probability


def min_distinguishable_levels(
    max_concentration_per_ul: float,
    sampled_volume_ul: float,
    delivery_efficiency: float = 0.92,
    sigma_separation: float = 4.0,
) -> Tuple[int, Tuple[float, ...]]:
    """How many levels fit under ``max_concentration`` at a target margin.

    Builds levels from 0 upward such that adjacent levels are separated
    by ``sigma_separation`` Poisson standard deviations in sqrt space
    (where the Poisson sd is ~1/2 independent of rate), and returns the
    level count and the level concentrations.  Demonstrates the §VII-C
    observation: halving the top concentration costs only ~one level.
    """
    check_positive("max_concentration_per_ul", max_concentration_per_ul)
    check_positive("sampled_volume_ul", sampled_volume_ul)
    check_positive("sigma_separation", sigma_separation)
    scale = sampled_volume_ul * delivery_efficiency
    # sqrt(count) has sd ~ 1/2 for Poisson; adjacent sqrt-count spacing
    # must be >= sigma_separation / 2.
    step = sigma_separation / 2.0
    levels = [0.0]
    sqrt_count = 0.0
    while True:
        sqrt_count += step
        concentration = (sqrt_count**2) / scale
        if concentration > max_concentration_per_ul:
            break
        levels.append(concentration)
    return len(levels), tuple(levels)
