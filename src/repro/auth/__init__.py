"""Cyto-coded passwords and patient authentication (paper §V, §VII-C).

A patient's password is a secret mixture of synthetic micro-beads added
to the blood sample: the *bead types* act as password characters and
the *concentration level* of each type is the character value.  The
server recovers the bead statistics from the sample and authenticates
the patient without any on-screen entry.

* :mod:`~repro.auth.alphabet` — bead types x concentration levels: the
  password alphabet and its size/entropy.
* :mod:`~repro.auth.identifier` — concrete identifiers, their bead
  samples (the "pipette"), and comparison.
* :mod:`~repro.auth.classifier` — the Gaussian (Mahalanobis)
  nearest-centroid classifier that separates the Figure 16 clusters.
* :mod:`~repro.auth.enrollment` — builds reference populations and a
  trained classifier from labelled calibration runs.
* :mod:`~repro.auth.authenticator` — server-side matching of recovered
  bead statistics against registered identifiers, plus the §V
  ciphertext-integrity check.
* :mod:`~repro.auth.collision` — password-space and collision analysis
  used to pick level spacings (§VII-C: low concentrations have lower
  variance, allowing more distinguishable levels).
"""

from repro.auth.alphabet import BeadAlphabet, DEFAULT_ALPHABET
from repro.auth.authenticator import AuthDecision, ServerAuthenticator
from repro.auth.classifier import ClassificationReport, ParticleClassifier
from repro.auth.collision import (
    collision_probability,
    level_confusion_probability,
    password_space_entropy_bits,
    password_space_size,
)
from repro.auth.enrollment import enroll_classifier, simulate_reference_features
from repro.auth.identifier import CytoIdentifier
from repro.auth.pipette import LinkagePolicy, PipetteBatch, provision_batches

__all__ = [
    "BeadAlphabet",
    "DEFAULT_ALPHABET",
    "AuthDecision",
    "ServerAuthenticator",
    "ClassificationReport",
    "ParticleClassifier",
    "collision_probability",
    "level_confusion_probability",
    "password_space_entropy_bits",
    "password_space_size",
    "enroll_classifier",
    "simulate_reference_features",
    "CytoIdentifier",
    "LinkagePolicy",
    "PipetteBatch",
    "provision_batches",
]
