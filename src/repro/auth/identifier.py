"""Cyto-coded identifiers: concrete passwords over a bead alphabet.

An identifier assigns one concentration level to each bead type of the
alphabet.  ``to_sample`` manufactures the corresponding "pipette": the
bead suspension a patient mixes with their blood (paper §II: "the
user's blood sample is mixed with a user-specific number of artificial
beads before passing through the MedSen's sensor").
"""

import hmac
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro._util.errors import ConfigurationError, ValidationError
from repro._util.rng import RngLike, ensure_rng
from repro.auth.alphabet import BeadAlphabet
from repro.particles.sample import Sample
from repro.particles.types import ParticleType


@dataclass(frozen=True)
class CytoIdentifier:
    """One patient's cyto-coded password.

    ``levels`` holds one level index per alphabet bead type, in the
    alphabet's type order.  At least one character must be non-zero —
    an all-absent identifier would be indistinguishable from plain
    blood (and could not serve the §V integrity check).
    """

    alphabet: BeadAlphabet
    levels: Tuple[int, ...]

    def __post_init__(self) -> None:
        levels = tuple(int(level) for level in self.levels)
        if len(levels) != self.alphabet.n_characters:
            raise ValidationError(
                f"identifier needs {self.alphabet.n_characters} levels, got {len(levels)}"
            )
        for level in levels:
            if not 0 <= level < self.alphabet.n_levels:
                raise ValidationError(
                    f"level {level} out of range 0..{self.alphabet.n_levels - 1}"
                )
        if all(self.alphabet.concentration_for_level(level) == 0.0 for level in levels):
            raise ValidationError("identifier must contain at least one non-absent bead type")
        object.__setattr__(self, "levels", levels)

    # ------------------------------------------------------------------
    @classmethod
    def random(cls, alphabet: BeadAlphabet, rng: RngLike = None) -> "CytoIdentifier":
        """Draw a uniformly random valid identifier."""
        generator = ensure_rng(rng)
        while True:
            levels = tuple(
                int(generator.integers(0, alphabet.n_levels))
                for _ in range(alphabet.n_characters)
            )
            if any(alphabet.concentration_for_level(level) > 0 for level in levels):
                return cls(alphabet=alphabet, levels=levels)

    # ------------------------------------------------------------------
    def concentrations_per_ul(self) -> Dict[ParticleType, float]:
        """Bead concentration per type encoded by this identifier."""
        return {
            bead: self.alphabet.concentration_for_level(level)
            for bead, level in zip(self.alphabet.bead_types, self.levels)
        }

    def to_sample(
        self,
        volume_ul: float,
        final_volume_ul: Optional[float] = None,
        rng: RngLike = None,
        poisson: bool = True,
    ) -> Sample:
        """Manufacture the password pipette: a bead suspension.

        The alphabet's levels are concentrations *in the sample the
        sensor sees*.  Pass ``final_volume_ul`` (blood + pipette) and
        the pipette is manufactured proportionally more concentrated,
        so that after mixing the final concentrations hit the levels —
        this is what "specifically crafted mini-pipettes" (§II) encode.

        With ``poisson=True`` the realised bead counts fluctuate around
        the nominal concentrations the way a real aliquot does.
        """
        factor = 1.0
        if final_volume_ul is not None:
            if final_volume_ul < volume_ul:
                raise ValidationError(
                    "final_volume_ul must be >= the pipette volume"
                )
            factor = final_volume_ul / volume_ul
        concentrations = {
            bead: concentration * factor
            for bead, concentration in self.concentrations_per_ul().items()
        }
        return Sample.from_concentrations(
            concentrations, volume_ul=volume_ul, rng=rng, poisson=poisson
        )

    # ------------------------------------------------------------------
    def canonical_bytes(self) -> bytes:
        """Deterministic byte encoding of (alphabet, levels).

        Two identifiers are equal exactly when their canonical bytes
        are equal: bead-type names, level concentrations, and the level
        assignment all participate.  This is the encoding the
        authenticator compares in constant time.
        """
        parts = (
            ",".join(bead.name for bead in self.alphabet.bead_types),
            ",".join(repr(float(c)) for c in self.alphabet.levels_per_ul),
            ",".join(str(level) for level in self.levels),
        )
        return "\x1f".join(parts).encode("utf-8")

    def matches(self, other: "CytoIdentifier") -> bool:
        """Exact identifier equality (same alphabet and levels).

        Compared via :func:`hmac.compare_digest` over the canonical
        encodings, so a registry scan does not leak *where* a candidate
        first diverges from a registered identifier through timing
        (classic byte-by-byte short-circuit side channel).
        """
        return hmac.compare_digest(self.canonical_bytes(), other.canonical_bytes())

    def hamming_distance(self, other: "CytoIdentifier") -> int:
        """Number of characters (bead types) whose levels differ."""
        if len(self.levels) != len(other.levels):
            raise ConfigurationError("identifiers have different lengths")
        return sum(1 for a, b in zip(self.levels, other.levels) if a != b)

    def as_string(self) -> str:
        """Human-readable form, e.g. ``bead_3.58um:2|bead_7.8um:0``."""
        return "|".join(
            f"{bead.name}:{level}"
            for bead, level in zip(self.alphabet.bead_types, self.levels)
        )
