"""Gaussian nearest-centroid particle classifier (the Figure 16 step).

The server must tell password beads apart from blood cells (and bead
types from each other) using only per-particle amplitude features at a
few carrier frequencies.  Figure 16 shows the three populations form
well-separated clusters in the (500 kHz, 2500 kHz) amplitude plane; a
Gaussian model per class with Mahalanobis-distance assignment separates
them "with clear margins" and additionally yields a rejection rule for
outliers (particles matching no known population).
"""

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro._util.errors import ConfigurationError, ValidationError


@dataclass(frozen=True)
class _ClassModel:
    """Fitted Gaussian for one particle class."""

    name: str
    mean: np.ndarray
    covariance: np.ndarray
    inverse_covariance: np.ndarray
    n_training: int


@dataclass(frozen=True)
class ClassificationReport:
    """Outcome of classifying a batch of particles."""

    labels: Tuple[str, ...]
    distances: np.ndarray  # (n_particles, n_classes) Mahalanobis distances
    class_names: Tuple[str, ...]
    rejected: Tuple[bool, ...]

    def counts(self) -> Dict[str, int]:
        """Accepted particles per class."""
        out: Dict[str, int] = {name: 0 for name in self.class_names}
        for label, rejected in zip(self.labels, self.rejected):
            if not rejected:
                out[label] += 1
        return out

    @property
    def n_rejected(self) -> int:
        """Particles assigned to no known population."""
        return sum(self.rejected)


class ParticleClassifier:
    """Mahalanobis nearest-centroid classifier with outlier rejection.

    Parameters
    ----------
    rejection_distance:
        Particles farther than this Mahalanobis distance from *every*
        class centroid are rejected rather than force-assigned.  With
        2-D Gaussian features, 3.5 keeps >99.7 % of in-class particles.
    regularization:
        Diagonal loading added to covariance estimates for numerical
        stability with small training sets.
    """

    def __init__(self, rejection_distance: float = 3.5, regularization: float = 1e-12) -> None:
        if rejection_distance <= 0:
            raise ValidationError("rejection_distance must be > 0")
        if regularization < 0:
            raise ValidationError("regularization must be >= 0")
        self.rejection_distance = rejection_distance
        self.regularization = regularization
        self._classes: List[_ClassModel] = []
        self._n_features: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        """Whether the classifier has at least one fitted class."""
        return bool(self._classes)

    @property
    def class_names(self) -> Tuple[str, ...]:
        """Fitted class names in fit order."""
        return tuple(model.name for model in self._classes)

    def fit(self, features_by_class: Mapping[str, np.ndarray]) -> "ParticleClassifier":
        """Fit one Gaussian per class from labelled feature matrices.

        ``features_by_class`` maps class name to an ``(n_i, d)`` array;
        every class needs at least ``d + 1`` training particles.
        """
        if not features_by_class:
            raise ConfigurationError("fit() requires at least one class")
        self._classes = []
        self._n_features = None
        for name, features in features_by_class.items():
            features = np.asarray(features, dtype=float)
            if features.ndim != 2:
                raise ValidationError(f"features for {name!r} must be 2-D")
            n, d = features.shape
            if self._n_features is None:
                self._n_features = d
            elif d != self._n_features:
                raise ValidationError("all classes must share the feature dimension")
            if n < d + 1:
                raise ValidationError(
                    f"class {name!r} has {n} training particles; needs >= {d + 1}"
                )
            mean = features.mean(axis=0)
            centered = features - mean
            covariance = centered.T @ centered / (n - 1)
            covariance = covariance + self.regularization * np.eye(d)
            try:
                inverse = np.linalg.inv(covariance)
            except np.linalg.LinAlgError:
                covariance = covariance + 1e-9 * np.eye(d) * float(np.trace(covariance))
                inverse = np.linalg.inv(covariance)
            self._classes.append(
                _ClassModel(
                    name=name,
                    mean=mean,
                    covariance=covariance,
                    inverse_covariance=inverse,
                    n_training=n,
                )
            )
        return self

    # ------------------------------------------------------------------
    def mahalanobis_distances(self, features: np.ndarray) -> np.ndarray:
        """(n, n_classes) Mahalanobis distance matrix."""
        self._require_fitted()
        features = np.atleast_2d(np.asarray(features, dtype=float))
        if features.shape[1] != self._n_features:
            raise ValidationError(
                f"features have {features.shape[1]} dims, classifier fitted on "
                f"{self._n_features}"
            )
        distances = np.empty((features.shape[0], len(self._classes)))
        for j, model in enumerate(self._classes):
            delta = features - model.mean
            distances[:, j] = np.sqrt(np.einsum("ni,ij,nj->n", delta, model.inverse_covariance, delta))
        return distances

    def classify(self, features: np.ndarray) -> ClassificationReport:
        """Assign each particle to its nearest class (or reject)."""
        distances = self.mahalanobis_distances(features)
        nearest = np.argmin(distances, axis=1)
        best = distances[np.arange(distances.shape[0]), nearest]
        labels = tuple(self._classes[j].name for j in nearest)
        rejected = tuple(bool(d > self.rejection_distance) for d in best)
        return ClassificationReport(
            labels=labels,
            distances=distances,
            class_names=self.class_names,
            rejected=rejected,
        )

    def predict(self, features: np.ndarray) -> List[str]:
        """Labels only (rejected particles labelled ``"rejected"``)."""
        report = self.classify(features)
        return [
            "rejected" if rejected else label
            for label, rejected in zip(report.labels, report.rejected)
        ]

    # ------------------------------------------------------------------
    def margin_between(self, class_a: str, class_b: str) -> float:
        """Separation margin between two classes in pooled-σ units.

        Mahalanobis distance between the two centroids under the pooled
        covariance, the standard separability index; the paper's "clear
        margins" claim corresponds to values well above ~4.
        """
        model_a = self._model_named(class_a)
        model_b = self._model_named(class_b)
        pooled = 0.5 * (model_a.covariance + model_b.covariance)
        delta = model_a.mean - model_b.mean
        return float(np.sqrt(delta @ np.linalg.inv(pooled) @ delta))

    def centroid(self, class_name: str) -> np.ndarray:
        """Fitted centroid of one class."""
        return self._model_named(class_name).mean.copy()

    # ------------------------------------------------------------------
    def _model_named(self, name: str) -> _ClassModel:
        self._require_fitted()
        for model in self._classes:
            if model.name == name:
                return model
        raise ConfigurationError(f"class {name!r} not fitted; have {self.class_names}")

    def _require_fitted(self) -> None:
        if not self._classes:
            raise ConfigurationError("classifier is not fitted")
