"""Classifier enrollment from reference populations.

Before the system can read cyto-coded passwords it needs reference
clusters for each particle species (the paper builds them from the
calibration runs behind Figures 15/16).  Enrollment here simulates the
same thing: draw particles from each species' population model, push
them through the measurement model (transduction + amplitude-estimation
noise), and fit the Gaussian classifier on the resulting features.

The features produced match what the decryptor recovers for real
particles: gain-corrected fractional dip depths at the feature
carriers.
"""

from typing import Dict, Optional, Sequence

import numpy as np

from repro._util.errors import ConfigurationError
from repro._util.rng import RngLike, ensure_rng
from repro.auth.classifier import ParticleClassifier
from repro.dsp.features import DEFAULT_FEATURE_FREQUENCIES_HZ
from repro.particles.types import ParticleType
from repro.physics.electrical import ElectrodePairCircuit

#: Default amplitude-estimation noise: std-dev of the recovered dip
#: depth, as a fraction of baseline.  Matches the residual noise of the
#: detect-and-recover chain at the default acquisition settings.
DEFAULT_AMPLITUDE_NOISE = 1.2e-4


def simulate_reference_features(
    particle_type: ParticleType,
    n_particles: int,
    feature_frequencies_hz: Sequence[float] = DEFAULT_FEATURE_FREQUENCIES_HZ,
    circuit: Optional[ElectrodePairCircuit] = None,
    amplitude_noise: float = DEFAULT_AMPLITUDE_NOISE,
    rng: RngLike = None,
) -> np.ndarray:
    """Reference feature matrix ``(n_particles, n_features)`` for a species.

    Each row is one particle's measured dip depth at the feature
    carriers, including population diameter variability and measurement
    noise — the quantities the Figure 16 scatter actually plots.
    """
    if n_particles < 1:
        raise ConfigurationError(f"n_particles must be >= 1, got {n_particles}")
    if amplitude_noise < 0:
        raise ConfigurationError("amplitude_noise must be >= 0")
    generator = ensure_rng(rng)
    circuit = circuit or ElectrodePairCircuit()
    frequencies = np.asarray([float(f) for f in feature_frequencies_hz])
    if frequencies.size == 0:
        raise ConfigurationError("feature_frequencies_hz must be non-empty")

    diameters = np.atleast_1d(particle_type.draw_diameter(generator, size=n_particles))
    features = np.empty((n_particles, frequencies.size))
    for i, diameter in enumerate(diameters):
        drops = particle_type.relative_drop(frequencies, diameter_m=float(diameter))
        features[i] = circuit.measured_drop(frequencies, drops)
    if amplitude_noise > 0:
        features = features + generator.normal(0.0, amplitude_noise, size=features.shape)
    return features


def enroll_classifier(
    particle_types: Sequence[ParticleType],
    n_per_class: int = 200,
    feature_frequencies_hz: Sequence[float] = DEFAULT_FEATURE_FREQUENCIES_HZ,
    circuit: Optional[ElectrodePairCircuit] = None,
    amplitude_noise: float = DEFAULT_AMPLITUDE_NOISE,
    rejection_distance: float = 3.5,
    rng: RngLike = None,
) -> ParticleClassifier:
    """Fit a :class:`ParticleClassifier` on simulated reference runs."""
    if not particle_types:
        raise ConfigurationError("particle_types must be non-empty")
    generator = ensure_rng(rng)
    features_by_class: Dict[str, np.ndarray] = {}
    for particle_type in particle_types:
        features_by_class[particle_type.name] = simulate_reference_features(
            particle_type,
            n_per_class,
            feature_frequencies_hz=feature_frequencies_hz,
            circuit=circuit,
            amplitude_noise=amplitude_noise,
            rng=generator,
        )
    classifier = ParticleClassifier(rejection_distance=rejection_distance)
    return classifier.fit(features_by_class)
