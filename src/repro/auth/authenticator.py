"""Server-side cyto-coded authentication (paper §V).

"The cloud server authenticates the user based on the statistics and
characteristics of the beads with the blood sample, and links the
user's identity to the encrypted analysis outcomes."

The server holds a registry of (user id, identifier) pairs.  Given the
bead counts recovered from a sample and the pumped volume, it converts
counts to concentrations (correcting for the calibrated delivery
efficiency), quantises them to alphabet levels, and matches the
recovered identifier against the registry.  The same recovered
identifier doubles as the §V integrity check on stored ciphertexts.
"""

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro._util.errors import AuthenticationError, ConfigurationError, IntegrityError
from repro._util.validation import check_in_range, check_positive
from repro.auth.alphabet import BeadAlphabet
from repro.auth.classifier import ClassificationReport
from repro.auth.identifier import CytoIdentifier
from repro.guard.lockout import AttemptThrottle, LockoutPolicy
from repro.obs import AUTH_ACCEPTED, AUTH_REJECTED, NULL_OBSERVER


@dataclass(frozen=True)
class AuthDecision:
    """Outcome of one authentication attempt."""

    accepted: bool
    user_id: Optional[str]
    recovered: CytoIdentifier
    measured_concentrations_per_ul: Tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "measured_concentrations_per_ul",
            tuple(float(c) for c in self.measured_concentrations_per_ul),
        )


class ServerAuthenticator:
    """Registry plus the count-to-identifier decision procedure.

    Parameters
    ----------
    alphabet:
        The deployment's bead alphabet.
    delivery_efficiency:
        Calibrated fraction of beads that survive inlet settling and
        wall adsorption (the Fig 12/13 slope); measured concentrations
        are divided by it before level quantisation.
    observer:
        Observability sink (auth accept/reject audit events and
        counters); the default records nothing.
    lockout:
        Optional :class:`~repro.guard.lockout.LockoutPolicy`.  When
        set, authentication attempts carrying a ``source`` are
        throttled: after the policy's failure budget is exhausted the
        source is refused with
        :class:`~repro._util.errors.LockoutError` for an exponentially
        growing window.  ``None`` (the default) preserves the
        unthrottled behaviour.
    clock:
        Monotonic clock for the throttle (injectable for tests);
        ignored when ``lockout`` is None.
    """

    def __init__(
        self,
        alphabet: BeadAlphabet,
        delivery_efficiency: float = 0.92,
        observer=NULL_OBSERVER,
        lockout: Optional[LockoutPolicy] = None,
        clock: Any = None,
    ) -> None:
        check_in_range("delivery_efficiency", delivery_efficiency, 0.0, 1.0, low_inclusive=False)
        self.alphabet = alphabet
        self.delivery_efficiency = delivery_efficiency
        self.observer = observer
        self.lockout = lockout
        self.throttle: Optional[AttemptThrottle] = (
            AttemptThrottle(lockout, clock=clock, observer=observer)
            if lockout is not None
            else None
        )
        self._registry: Dict[str, CytoIdentifier] = {}

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register(self, user_id: str, identifier: CytoIdentifier) -> None:
        """Register a user's identifier.

        Rejects duplicate *identifiers* as well as duplicate user ids:
        two users sharing an identifier could not be told apart (the
        collision §V/§VII-C is engineered to avoid).
        """
        if not user_id:
            raise ConfigurationError("user_id must be non-empty")
        if user_id in self._registry:
            raise ConfigurationError(f"user {user_id!r} is already registered")
        for existing_user, existing in self._registry.items():
            if existing.matches(identifier):
                raise ConfigurationError(
                    f"identifier already registered to {existing_user!r}; "
                    "identifiers must be unique"
                )
        self._registry[user_id] = identifier

    def deregister(self, user_id: str) -> None:
        """Remove a user from the registry."""
        if user_id not in self._registry:
            raise ConfigurationError(f"user {user_id!r} is not registered")
        del self._registry[user_id]

    @property
    def n_registered(self) -> int:
        """Number of registered users."""
        return len(self._registry)

    def identifier_of(self, user_id: str) -> CytoIdentifier:
        """Registered identifier of a user."""
        try:
            return self._registry[user_id]
        except KeyError:
            raise ConfigurationError(f"user {user_id!r} is not registered") from None

    # ------------------------------------------------------------------
    # Recovery and matching
    # ------------------------------------------------------------------
    def recover_identifier(
        self,
        bead_counts: Mapping[str, float],
        pumped_volume_ul: float,
    ) -> Tuple[CytoIdentifier, Tuple[float, ...]]:
        """Quantise measured bead counts to the nearest identifier.

        ``bead_counts`` maps bead-type names to counted beads (possibly
        non-integer after clean-fraction scaling).  Returns the
        recovered identifier and the loss-corrected concentrations.
        """
        check_positive("pumped_volume_ul", pumped_volume_ul)
        levels = []
        concentrations = []
        for bead in self.alphabet.bead_types:
            count = float(bead_counts.get(bead.name, 0.0))
            if count < 0:
                raise ConfigurationError(f"negative count for {bead.name}")
            concentration = count / pumped_volume_ul / self.delivery_efficiency
            concentrations.append(concentration)
            levels.append(self.alphabet.nearest_level(concentration))
        recovered = CytoIdentifier(alphabet=self.alphabet, levels=tuple(levels))
        return recovered, tuple(concentrations)

    def authenticate(
        self,
        bead_counts: Mapping[str, float],
        pumped_volume_ul: float,
        source: Optional[str] = None,
    ) -> AuthDecision:
        """Match recovered bead statistics against the registry.

        ``source`` names the attempt's blast-radius unit (tenant,
        device, endpoint) for the lockout throttle; a locked-out
        source is refused with
        :class:`~repro._util.errors.LockoutError` before any matching
        work runs, and repeated failures extend the lockout
        exponentially.  Matching itself is constant-time per candidate
        (:meth:`CytoIdentifier.matches <repro.auth.identifier.CytoIdentifier.matches>`)
        and scans the whole registry without early exit, so timing
        reveals neither the diverging byte nor which user matched.
        """
        if self.throttle is not None and source is not None:
            self.throttle.check(source)
        with self.observer.span("authenticate") as span:
            try:
                recovered, concentrations = self.recover_identifier(
                    bead_counts, pumped_volume_ul
                )
            except Exception as exc:  # all-absent recovery -> no password beads
                self.observer.incr("auth.errors")
                if self.throttle is not None and source is not None:
                    self.throttle.record_failure(source)
                raise AuthenticationError(
                    f"could not recover an identifier: {exc}"
                ) from exc
            matched_user: Optional[str] = None
            for user_id, registered in self._registry.items():
                # No break: registered identifiers are unique, so at
                # most one matches, and scanning the rest keeps the
                # registry walk the same length for every outcome.
                if registered.matches(recovered):
                    matched_user = user_id
            decision = AuthDecision(
                accepted=matched_user is not None,
                user_id=matched_user,
                recovered=recovered,
                measured_concentrations_per_ul=concentrations,
            )
            span.set_attribute("accepted", decision.accepted)
        if decision.accepted:
            if self.throttle is not None and source is not None:
                self.throttle.record_success(source)
            self.observer.incr("auth.accepted")
            self.observer.event(
                AUTH_ACCEPTED,
                user_id=decision.user_id,
                identifier=recovered.as_string(),
            )
        else:
            if self.throttle is not None and source is not None:
                self.throttle.record_failure(source)
            self.observer.incr("auth.rejected")
            self.observer.event(AUTH_REJECTED, identifier=recovered.as_string())
        return decision

    # ------------------------------------------------------------------
    # §V integrity check
    # ------------------------------------------------------------------
    def verify_integrity(self, user_id: str, recovered: CytoIdentifier) -> None:
        """Check a ciphertext's embedded identifier against its record.

        "If the identifier recovered from the ciphertext differs from
        the one used to fetch the data from the remote service, then
        the ciphertext is not the one corresponding to the identifier."
        Raises :class:`IntegrityError` on mismatch.
        """
        registered = self.identifier_of(user_id)
        if not registered.matches(recovered):
            raise IntegrityError(
                f"ciphertext identifier {recovered.as_string()} does not match "
                f"the record registered to {user_id!r} ({registered.as_string()})"
            )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def counts_from_classification(
        report: ClassificationReport, scale: float = 1.0
    ) -> Dict[str, float]:
        """Bead counts per class from a classification report.

        ``scale`` extrapolates from the cleanly recovered subset to the
        full recovered count (total_count / clean_count).
        """
        if scale <= 0:
            raise ConfigurationError("scale must be > 0")
        return {name: count * scale for name, count in report.counts().items()}
