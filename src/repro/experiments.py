"""Reusable experiment runners behind the figure benchmarks and plots.

These functions encapsulate the workloads of the paper's evaluation so
that the benchmark harnesses, the SVG figure generators and user
notebooks all run the *same* experiment definitions:

* :func:`single_key_plan` / :func:`acquire_particle_events` — one fixed
  key, controlled particle arrivals, full encrypt-acquire-detect chain
  (Figures 7/8/11).
* :func:`run_bead_dilution_series` — the Fig 12/13 calibration
  protocol: dilution ladder, plaintext counting, estimated vs measured.
* :func:`make_fig14_capture` — a single-channel capture with realistic
  peak density at an exact sample count (Figure 14 timing workloads).
"""

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro._util.rng import RngLike
from repro.core.device import MedSenDevice
from repro.crypto.encryptor import EncryptionPlan, SignalEncryptor
from repro.crypto.gains import GainTable
from repro.crypto.key import EpochKey, KeySchedule
from repro.dsp.peakdetect import PeakDetector, PeakReport
from repro.hardware.acquisition import AcquiredTrace, AcquisitionFrontEnd
from repro.hardware.electrodes import ElectrodeArray, standard_array
from repro.microfluidics.channel import MicrofluidicChannel
from repro.microfluidics.flow import FlowSpeedTable
from repro.microfluidics.transport import ParticleArrival
from repro.particles.sample import Particle, Sample
from repro.particles.types import ParticleType
from repro.physics.lockin import LockInAmplifier
from repro.physics.noise import NoiseModel
from repro.physics.peaks import PulseEvent

#: Carrier set used by the figure experiments (includes the 500/2500 kHz
#: feature carriers of Figures 15/16).
FIGURE_CARRIERS_HZ = (500e3, 1000e3, 2000e3, 2500e3, 3000e3)


def single_key_plan(
    active,
    array: Optional[ElectrodeArray] = None,
    gain_level: int = 8,
    flow_level: int = 8,
    epoch_s: float = 10.0,
) -> EncryptionPlan:
    """A one-epoch plan with a fixed key, for controlled figures."""
    array = array or standard_array(9)
    key = EpochKey(frozenset(active), tuple([gain_level] * array.n_outputs), flow_level)
    schedule = KeySchedule(epoch_duration_s=epoch_s, epochs=(key,))
    return EncryptionPlan(schedule, array, GainTable(), FlowSpeedTable())


def acquire_particle_events(
    plan: EncryptionPlan,
    particle_type: ParticleType,
    arrival_times: Sequence[float],
    duration_s: float,
    rng: RngLike = 0,
    carriers: Tuple[float, ...] = FIGURE_CARRIERS_HZ,
    noise: Optional[NoiseModel] = None,
) -> Tuple[List[PulseEvent], AcquiredTrace, PeakReport]:
    """Run fixed arrivals through the encrypt-acquire-detect chain."""
    channel = MicrofluidicChannel()
    velocity = channel.velocity_for_flow_rate(
        plan.flow_table.rate_for_level(plan.schedule.epochs[0].flow_level)
    )
    arrivals = [
        ParticleArrival(t, Particle(particle_type, particle_type.diameter_m), velocity)
        for t in arrival_times
    ]
    encryptor = SignalEncryptor(carrier_frequencies_hz=carriers)
    events = encryptor.events_for_arrivals(arrivals, plan)
    lockin = LockInAmplifier(carrier_frequencies_hz=carriers)
    kwargs = {"noise": noise} if noise is not None else {}
    front_end = AcquisitionFrontEnd(lockin=lockin, **kwargs)
    trace = front_end.acquire(events, duration_s, rng=rng)
    report = PeakDetector().detect(trace.voltages, trace.sampling_rate_hz)
    return events, trace, report


def run_bead_dilution_series(
    bead: ParticleType,
    concentrations_per_ul: Sequence[float] = (250.0, 500.0, 1000.0, 1500.0, 2000.0),
    runs_per_concentration: int = 2,
    duration_s: float = 120.0,
    seed0: int = 100,
    device_rng: int = 55,
) -> Tuple[np.ndarray, np.ndarray]:
    """The Fig 12/13 protocol: returns (estimated, measured) counts."""
    device = MedSenDevice(rng=device_rng)
    detector = PeakDetector()
    estimated, measured = [], []
    seed = seed0
    for concentration in concentrations_per_ul:
        for _ in range(runs_per_concentration):
            sample = Sample.from_concentrations(
                {bead: concentration}, volume_ul=5.0, rng=seed, poisson=True
            )
            capture = device.run_capture(
                sample, duration_s, encrypt=False, rng=np.random.default_rng(seed)
            )
            report = detector.detect(
                capture.trace.voltages, capture.trace.sampling_rate_hz
            )
            estimated.append(concentration * capture.pumped_volume_ul)
            measured.append(report.count)
            seed += 1
    return np.asarray(estimated), np.asarray(measured)


def make_fig14_capture(
    n_samples: int, sampling_rate_hz: float = 450.0, seed: int = 0
) -> np.ndarray:
    """A single-channel capture with realistic peak density, exactly
    ``n_samples`` long (the Figure 14 timing workload)."""
    from repro.physics.peaks import synthesize_pulse_train

    duration = n_samples / sampling_rate_hz
    rng = np.random.default_rng(seed)
    centers = np.sort(rng.uniform(1.0, duration - 1.0, size=max(int(duration / 2), 1)))
    events = [
        PulseEvent(center_s=c, width_s=0.02, amplitudes=np.array([0.01]))
        for c in centers
    ]
    trace = synthesize_pulse_train(events, 1, sampling_rate_hz, duration)
    return NoiseModel().apply(trace, sampling_rate_hz, rng=rng)[:, :n_samples]
