"""Multi-tenant serving: many patients, one untrusted cloud.

The paper's deployment story (§V-§VII) is a fleet of MedSen dongles
sharing one cloud; this package turns the one-shot
:class:`~repro.core.protocol.MedSenSession` pipeline into a serving
stack that can sustain that load:

* :mod:`repro.serving.request` — the job model: a
  :class:`SessionRequest` submitted by a tenant and the
  :class:`SessionFuture` its caller waits on, with a per-request RNG
  derived from ``(fleet seed, tenant, sequence)`` so a fleet run is
  reproducible regardless of worker interleaving;
* :mod:`repro.serving.queue` — a bounded submission queue with
  per-tenant lanes and round-robin fair dequeue; overflow either
  rejects (:class:`QueueFull`) or blocks, the caller's choice;
* :mod:`repro.serving.retry` — exponential backoff with deterministic
  injected jitter, per-request deadlines, and a circuit breaker that
  sheds load while the cloud is down;
* :mod:`repro.serving.client` — the resilient cloud client applying
  that policy over the lossy relay
  (:class:`repro.cloud.network.UnreliableNetworkModel`);
* :mod:`repro.serving.batcher` — a dynamic batcher that coalesces
  queued traces into one vectorised detrend+threshold pass
  (max-batch-size / max-linger knobs, like an inference server);
* :mod:`repro.serving.scheduler` — the thread-pool
  :class:`FleetScheduler` tying it all together;
* :mod:`repro.serving.workload` — synthetic clinic workloads and the
  throughput/latency report behind ``python -m repro serve``.

Everything is instrumented through :mod:`repro.obs` (queue-depth
gauge, batch-size and end-to-end latency histograms, retry / shed /
circuit audit events).  See ``docs/serving.md``.
"""

from repro.serving.batcher import BatchingAnalysisServer
from repro.serving.client import ResilientAnalysisClient, RetryBudgetExceeded
from repro.serving.queue import FairSubmissionQueue, QueueFull
from repro.serving.request import (
    RequestState,
    SessionFuture,
    SessionRequest,
    derive_request_rng,
)
from repro.serving.retry import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceeded,
    RetryPolicy,
)
from repro.serving.scheduler import (
    FleetConfig,
    FleetScheduler,
    PoisonRequestError,
    WorkerCrash,
)
from repro.serving.workload import ClinicReport, ClinicWorkload, run_clinic

__all__ = [
    "BatchingAnalysisServer",
    "ResilientAnalysisClient",
    "RetryBudgetExceeded",
    "FairSubmissionQueue",
    "QueueFull",
    "RequestState",
    "SessionFuture",
    "SessionRequest",
    "derive_request_rng",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineExceeded",
    "RetryPolicy",
    "FleetConfig",
    "FleetScheduler",
    "PoisonRequestError",
    "WorkerCrash",
    "ClinicReport",
    "ClinicWorkload",
    "run_clinic",
]
