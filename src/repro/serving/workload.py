"""Synthetic clinic workloads and the serving throughput report.

A :class:`ClinicWorkload` models a day at a point-of-care site: a
handful of tenants (patients with enrolled cyto-coded passwords), each
submitting a stream of diagnostic requests with their own disease
stage (marker concentration baseline).  :func:`run_clinic` drives a
:class:`~repro.serving.scheduler.FleetScheduler` through the workload
and distils a :class:`ClinicReport` — sessions/sec, latency
percentiles, retry/shed/reject counts, batching behaviour — which
backs both ``python -m repro serve`` and
``benchmarks/bench_throughput.py``.

Workload generation is deterministic: samples and identifiers come
from ``derive_request_rng(seed, tenant, sequence)``-style child
streams, so two schedulers fed the same workload see byte-identical
submissions.
"""

from dataclasses import dataclass, field
from time import monotonic as _monotonic
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro._util.validation import check_positive
from repro.auth.identifier import CytoIdentifier
from repro.core.config import MedSenConfig
from repro.particles.library import get_particle_type
from repro.particles.sample import Sample
from repro.serving.queue import QueueFull
from repro.serving.request import SessionFuture, derive_request_rng
from repro.serving.scheduler import FleetScheduler


@dataclass(frozen=True)
class ClinicWorkload:
    """A reproducible multi-tenant request stream.

    Parameters
    ----------
    n_tenants, requests_per_tenant:
        Shape of the stream (submissions interleave round-robin).
    seed:
        Drives identifier assignment and per-sample particle draws —
        independent of the fleet seed, so the same workload can be
        replayed against differently-seeded fleets.
    duration_s:
        Capture duration per session (shorter = faster benchmarks).
    marker_baselines_per_ul:
        Tenant disease stages to cycle through; defaults span the CD4
        staging thresholds (healthy, watch, ART, critical).
    """

    n_tenants: int = 4
    requests_per_tenant: int = 4
    seed: int = 2016
    duration_s: float = 20.0
    blood_volume_ul: float = 10.0
    marker_baselines_per_ul: Tuple[float, ...] = (700.0, 450.0, 300.0, 150.0)

    def __post_init__(self) -> None:
        if self.n_tenants < 1:
            raise ValueError(f"n_tenants must be >= 1, got {self.n_tenants}")
        if self.requests_per_tenant < 1:
            raise ValueError(
                f"requests_per_tenant must be >= 1, got {self.requests_per_tenant}"
            )
        check_positive("duration_s", self.duration_s)
        check_positive("blood_volume_ul", self.blood_volume_ul)

    @property
    def n_requests(self) -> int:
        return self.n_tenants * self.requests_per_tenant

    def tenant_ids(self) -> List[str]:
        return [f"clinic-{index:02d}" for index in range(self.n_tenants)]

    def identifiers(self, config: MedSenConfig) -> Dict[str, CytoIdentifier]:
        """A distinct cyto-coded password per tenant."""
        assignments: Dict[str, CytoIdentifier] = {}
        for index, tenant in enumerate(self.tenant_ids()):
            rng = derive_request_rng(self.seed, tenant + "#identifier", 0)
            taken = {i.as_string() for i in assignments.values()}
            # Re-draw until distinct (collisions would alias record-store
            # keys) and with every bead type present: an absent character
            # is unrecoverable from the short benchmark captures, and a
            # real enrolment station would reject such fragile passwords.
            while True:
                identifier = CytoIdentifier.random(config.alphabet, rng=rng)
                if min(identifier.levels) >= 1 and identifier.as_string() not in taken:
                    break
            assignments[tenant] = identifier
        return assignments

    def blood_sample(self, tenant_index: int, sequence: int) -> Sample:
        """The tenant's blood draw for one visit (deterministic)."""
        baseline = self.marker_baselines_per_ul[
            tenant_index % len(self.marker_baselines_per_ul)
        ]
        rng = derive_request_rng(
            self.seed, f"clinic-{tenant_index:02d}#blood", sequence
        )
        # Day-to-day biological variation around the stage baseline.
        concentration = baseline * float(rng.uniform(0.9, 1.1))
        return Sample.from_concentrations(
            {get_particle_type("blood_cell"): concentration},
            volume_ul=self.blood_volume_ul,
            rng=rng,
        )


@dataclass
class ClinicReport:
    """What one clinic run achieved."""

    n_submitted: int = 0
    n_completed: int = 0
    n_failed: int = 0
    n_rejected: int = 0
    wall_time_s: float = 0.0
    latencies_s: List[float] = field(default_factory=list)
    queue_waits_s: List[float] = field(default_factory=list)
    retries: int = 0
    sheds: int = 0
    duplicates: int = 0
    breaker_opens: int = 0
    batches_flushed: int = 0
    mean_batch_size: float = 0.0
    failures_by_type: Dict[str, int] = field(default_factory=dict)

    @property
    def sessions_per_second(self) -> float:
        if self.wall_time_s <= 0:
            return 0.0
        return self.n_completed / self.wall_time_s

    def latency_percentile(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), q))

    def format(self) -> str:
        """Human-readable summary for the CLI / benchmark output."""
        lines = [
            f"sessions      {self.n_completed}/{self.n_submitted} completed, "
            f"{self.n_failed} failed, {self.n_rejected} rejected",
            f"throughput    {self.sessions_per_second:.2f} sessions/s "
            f"({self.wall_time_s:.2f} s wall)",
            f"latency       p50 {self.latency_percentile(50):.3f} s   "
            f"p95 {self.latency_percentile(95):.3f} s   "
            f"p99 {self.latency_percentile(99):.3f} s",
            f"resilience    {self.retries} retries, {self.sheds} sheds, "
            f"{self.duplicates} duplicate deliveries, "
            f"{self.breaker_opens} breaker trips",
        ]
        if self.batches_flushed:
            lines.append(
                f"batching      {self.batches_flushed} batches, "
                f"mean size {self.mean_batch_size:.2f}"
            )
        if self.failures_by_type:
            summary = ", ".join(
                f"{name}×{count}" for name, count in sorted(self.failures_by_type.items())
            )
            lines.append(f"failures      {summary}")
        return "\n".join(lines)


def run_clinic(
    scheduler: FleetScheduler,
    workload: ClinicWorkload = ClinicWorkload(),
    block_on_backpressure: bool = True,
    submit_timeout_s: Optional[float] = 60.0,
) -> ClinicReport:
    """Drive the scheduler through the workload and collect the report.

    Submissions interleave round-robin across tenants (the fairness
    stress case).  When the queue pushes back, either block for space
    (default — measures sustained throughput) or count the reject and
    move on (``block_on_backpressure=False`` — measures shedding).
    """
    report = ClinicReport()
    identifiers = workload.identifiers(scheduler.device_config)
    for tenant, identifier in identifiers.items():
        scheduler.register_tenant(tenant, identifier)

    tenants = workload.tenant_ids()
    futures: List[SessionFuture] = []
    started = _monotonic()
    for sequence in range(workload.requests_per_tenant):
        for tenant_index, tenant in enumerate(tenants):
            blood = workload.blood_sample(tenant_index, sequence)
            report.n_submitted += 1
            try:
                futures.append(
                    scheduler.submit(
                        tenant,
                        blood,
                        identifiers[tenant],
                        duration_s=workload.duration_s,
                        block=block_on_backpressure,
                        timeout=submit_timeout_s,
                    )
                )
            except QueueFull:
                report.n_rejected += 1

    for future in futures:
        future.wait()
        if future.exception() is None:
            report.n_completed += 1
            report.latencies_s.append(future.latency_s)
            report.queue_waits_s.append(future.queue_wait_s)
        else:
            report.n_failed += 1
            name = type(future.exception()).__name__
            report.failures_by_type[name] = report.failures_by_type.get(name, 0) + 1
    report.wall_time_s = _monotonic() - started

    report.retries = _counter(scheduler, "serve.retries")
    report.sheds = _counter(scheduler, "serve.sheds")
    report.duplicates = _counter(scheduler, "serve.duplicate_deliveries")
    report.breaker_opens = scheduler.breaker.times_opened
    backend = scheduler.backend
    report.batches_flushed = getattr(backend, "batches_flushed", 0)
    report.mean_batch_size = getattr(backend, "mean_batch_size", 0.0)
    return report


def _counter(scheduler: FleetScheduler, name: str) -> int:
    """Read a counter off the scheduler's observer, if it keeps metrics."""
    metrics = getattr(scheduler.observer, "metrics", None)
    if metrics is None or name not in getattr(metrics, "names", lambda: [])():
        return 0
    return int(metrics.counter(name).value)
